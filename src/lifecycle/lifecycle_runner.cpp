#include "lifecycle/lifecycle_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "sched/list_scheduler.h"
#include "sched/platform_state.h"
#include "tgen/graph_gen.h"
#include "tgen/profile_presets.h"
#include "util/json_reader.h"
#include "util/rng.h"

namespace ides {

namespace {

/// Per-step chain-seed stream of a lifecycle run (see rngStreamSeed),
/// fanned out per step index so every step explores an independent
/// proposal stream regardless of what earlier steps consumed.
constexpr std::uint64_t kStepSeedStream = 0x6c666353;  // "lfcS"

std::string d17(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string d6(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

const char* boolStr(bool b) { return b ? "true" : "false"; }

/// Committed placements of one living graph, keyed by LOCAL index within
/// the graph (process/message creation order). Local indexing survives
/// model rebuilds: the graph regenerates bit-identically from its spec
/// seed, so position k names the same process before and after a rebuild —
/// even though the global dense ids shifted with the live set.
struct GraphPlacement {
  std::vector<std::int32_t> nodes;  ///< by local process index
};

/// The spec's percent scaling applied to the base generator ranges. Range
/// scaling preserves the generator's draw pattern, so only the drawn
/// VALUES change — the topology and the allowed-node sets are invariant,
/// which is what keeps stored placements pinnable across spec changes.
GraphGenConfig scaledGraphGen(const ScenarioConfig& config,
                              const LifecycleGraphSpec& spec) {
  GraphGenConfig cfg = config.graphGen;
  cfg.processCount = spec.processCount;
  cfg.wcetMin = std::max<Time>(
      1, config.graphGen.wcetMin * spec.wcetScalePercent / 100);
  cfg.wcetMax = std::max(
      cfg.wcetMin, config.graphGen.wcetMax * spec.wcetScalePercent / 100);
  cfg.msgMin = std::max<std::int64_t>(
      1, config.graphGen.msgMin * spec.msgScalePercent / 100);
  cfg.msgMax = std::max(cfg.msgMin,
                        config.graphGen.msgMax * spec.msgScalePercent / 100);
  return cfg;
}

/// Warm seed: survivors pinned to their stored nodes, fresh graphs left
/// invalid, then ONE pinned-HCP pass over all graphs — the scheduler keeps
/// pinned entries and chooses earliest-finish nodes for the rest, deriving
/// hints consistent with the new model. Returns nullopt when the pinned
/// layout cannot even be placed (the caller cold-starts).
std::optional<MappingSolution> buildWarmSeed(
    const BuiltDesign& built, const LivingDesign& living,
    const std::map<std::uint64_t, GraphPlacement>& placements,
    const PlatformState& baseline) {
  const SystemModel& sys = built.system;
  MappingSolution seed(sys);
  for (std::size_t i = 0; i < living.graphs.size(); ++i) {
    const auto it = placements.find(living.graphs[i].uid);
    if (it == placements.end()) continue;  // fresh graph: HCP places it
    const GraphPlacement& p = it->second;
    const ProcessGraph& g = sys.graph(built.graphIds[i]);
    if (p.nodes.size() != g.processes.size()) {
      continue;  // stale shape: treat as fresh
    }
    bool pinnable = true;
    for (std::size_t k = 0; k < g.processes.size() && pinnable; ++k) {
      const NodeId node{p.nodes[k]};
      pinnable = node.valid() &&
                 static_cast<std::size_t>(node.index()) <
                     sys.architecture().nodeCount() &&
                 sys.process(g.processes[k]).allowedOn(node);
    }
    if (!pinnable) continue;
    // Nodes only, no stored hints: a hint is a schedule-order nudge tuned
    // against LAST step's timing, and restoring it after an event distorts
    // the list scheduler more the harder the previous step optimized. The
    // placement structure lives in the node assignment; the pinned-HCP
    // pass below derives fresh hints consistent with the new model.
    for (std::size_t k = 0; k < g.processes.size(); ++k) {
      seed.setNode(g.processes[k], NodeId{p.nodes[k]});
    }
  }

  PlatformState state = baseline;
  ScheduleRequest req;
  req.graphs = built.graphIds;
  req.mapping = &seed;
  req.chooseNodes = true;
  const ScheduleOutcome outcome = scheduleGraphs(sys, req, state);
  if (!outcome.placed) return std::nullopt;
  return outcome.mapping;
}

/// Store the committed mapping back as per-uid local placements (feasible
/// steps only; an infeasible step keeps the last committed design). Only
/// node assignments are kept — see buildWarmSeed on why hints are not.
void commitPlacements(const BuiltDesign& built, const LivingDesign& living,
                      const MappingSolution& mapping,
                      std::map<std::uint64_t, GraphPlacement>& placements) {
  for (std::size_t i = 0; i < living.graphs.size(); ++i) {
    const ProcessGraph& g = built.system.graph(built.graphIds[i]);
    GraphPlacement p;
    p.nodes.reserve(g.processes.size());
    for (const ProcessId pid : g.processes) {
      p.nodes.push_back(mapping.nodeOf(pid).value);
    }
    placements[living.graphs[i].uid] = std::move(p);
  }
}

}  // namespace

const char* toString(StartPolicy policy) {
  return policy == StartPolicy::Warm ? "warm" : "cold";
}

StartPolicy startPolicyFromString(std::string_view name) {
  if (name == "warm") return StartPolicy::Warm;
  if (name == "cold") return StartPolicy::Cold;
  throw std::invalid_argument("unknown start policy \"" + std::string(name) +
                              "\" (expected warm or cold)");
}

BuiltDesign buildDesignModel(const ScenarioConfig& config,
                             const LivingDesign& design) {
  if (design.graphs.empty()) {
    throw std::invalid_argument(
        "buildDesignModel: the living design has no graphs");
  }
  std::vector<double> speeds(design.speedPercents.size());
  for (std::size_t n = 0; n < speeds.size(); ++n) {
    speeds[n] = design.speedPercents[n] / 100.0;
  }
  // Snap the TDMA round against the smallest reachable hyperperiod
  // (basePeriod / max divisor): the divisor chain makes it divide every
  // possible live set's hyperperiod, so the architecture is identical at
  // every step no matter which periods are currently live.
  const std::vector<Time> slots =
      snapSlotLengths(config.nodeCount, config.slotLength,
                      config.basePeriod / config.periodDivisors.back());
  BuiltDesign built{
      SystemModel(
          makeUniformArchitecture(slots, config.bytesPerTick, speeds)),
      paperFutureProfile(config.tmin, config.tneed, config.bneedBytes),
      {}};
  built.graphIds.reserve(design.graphs.size());
  for (const LifecycleGraphSpec& spec : design.graphs) {
    const ApplicationId app = built.system.addApplication(
        "uid" + std::to_string(spec.uid), AppKind::Current);
    Rng rng(spec.seed);
    const GraphGenConfig cfg = scaledGraphGen(config, spec);
    built.graphIds.push_back(generateGraph(built.system, app, spec.period,
                                           spec.deadline, cfg, rng,
                                           spec.offset));
  }
  built.system.finalize();
  return built;
}

LifecycleReport runLifecycle(const LifecycleScenario& scenario,
                             const LifecycleOptions& options) {
  validateScenarioConfig(scenario.config);
  validateOptions(options.designer);
  const StrategyRegistry& registry = options.registry != nullptr
                                         ? *options.registry
                                         : StrategyRegistry::builtin();
  if (!registry.contains(options.strategy)) {
    // Resolve eagerly for the error message; create() throws with the list.
    (void)registry.create(options.strategy, options.designer);
  }

  using Clock = std::chrono::steady_clock;
  const auto runStart = Clock::now();

  LifecycleReport report;
  report.strategy = options.strategy;
  report.policy = options.policy;
  report.scenarioSeed = scenario.config.seed;
  report.steps.reserve(scenario.events.size());

  LivingDesign living = initialDesign(scenario.config);
  std::map<std::uint64_t, GraphPlacement> placements;
  const std::uint64_t stepSeedBase =
      rngStreamSeed(options.designer.sa.seed, kStepSeedStream);

  for (std::size_t s = 0; s < scenario.events.size(); ++s) {
    if (options.stop != nullptr && options.stop->stopRequested()) {
      report.stopped = true;
      break;
    }
    const LifecycleEvent& event = scenario.events[s];
    applyEvent(living, event);
    if (event.kind == LifecycleEventKind::RemoveGraph) {
      placements.erase(event.uid);
    }

    const auto stepStart = Clock::now();
    const TraceSpan stepSpan(
        "lifecycle:step" + std::to_string(s) + ":" + toString(event.kind),
        "lifecycle");
    const BuiltDesign built = buildDesignModel(scenario.config, living);
    const SystemModel& sys = built.system;

    DesignerOptions stepOptions = options.designer;
    const std::uint64_t stepSeed = rngStreamSeed(stepSeedBase, s);
    stepOptions.sa.seed = stepSeed;
    stepOptions.tabu.seed = stepSeed;

    // Every living graph is Current, so the frozen baseline is the empty
    // platform — lifecycle freezes nothing; continuity comes from the warm
    // seed, not from frozen occupancy.
    SolutionEvaluator evaluator(
        sys, PlatformState(sys.architecture(), sys.hyperperiod()),
        built.profile, stepOptions.weights);

    std::optional<MappingSolution> warmSeed;
    if (options.policy == StartPolicy::Warm) {
      warmSeed =
          buildWarmSeed(built, living, placements, evaluator.baseline());
    }

    StopToken stepStop;
    const bool hasDeadline = options.stepDeadlineSeconds > 0.0;
    if (hasDeadline) stepStop.setTimeout(options.stepDeadlineSeconds);
    RunContext context;
    context.stop = hasDeadline ? &stepStop : options.stop;
    bool warmAccepted = false;
    context.progress = [&](const ProgressEvent& ev) {
      if (ev.phase == "warm-start") warmAccepted = true;
      if (options.progress) options.progress(ev);
    };

    const std::unique_ptr<Optimizer> optimizer =
        registry.create(options.strategy, stepOptions);
    const RunReport run = optimizer->run(
        evaluator, context, warmSeed ? &*warmSeed : nullptr);

    LifecycleStep step;
    step.step = static_cast<int>(s);
    step.event = event.kind;
    step.uid =
        event.kind == LifecycleEventKind::PlatformPerturb ? 0 : event.uid;
    step.liveGraphs = living.graphs.size();
    step.liveProcesses = living.totalProcesses();
    step.warmStart = warmAccepted;
    step.feasible = run.feasible;
    step.cost = run.objective;
    step.evaluations = run.evaluations;
    step.proposals = run.proposals;
    step.accepted = run.accepted;
    step.zeroDeltaSkips = run.zeroDeltaSkips;
    step.stopped = run.stopped;
    step.seconds =
        std::chrono::duration<double>(Clock::now() - stepStart).count();
    if (telemetryEnabled()) {
      telemetry()
          .histogram("ides_lifecycle_step_seconds",
                     "Wall time of one lifecycle event's re-optimization",
                     {0.01, 0.05, 0.2, 1.0, 5.0, 30.0, 120.0})
          .observe(step.seconds);
    }
    report.steps.push_back(step);

    if (warmAccepted) ++report.warmStarts;
    if (run.feasible) {
      ++report.feasibleSteps;
      commitPlacements(built, living, run.mapping, placements);
    }
  }

  std::vector<double> costs;
  costs.reserve(report.feasibleSteps);
  for (const LifecycleStep& step : report.steps) {
    if (step.feasible) costs.push_back(step.cost);
  }
  if (!costs.empty()) {
    std::sort(costs.begin(), costs.end());
    const std::size_t mid = costs.size() / 2;
    report.medianCost = costs.size() % 2 == 1
                            ? costs[mid]
                            : (costs[mid - 1] + costs[mid]) / 2.0;
  }
  report.totalSeconds =
      std::chrono::duration<double>(Clock::now() - runStart).count();
  return report;
}

std::string lifecycleReportJson(const LifecycleReport& report, bool timing) {
  std::string out = "{\n";
  out += "  \"schema\": 1,\n";
  out += "  \"kind\": \"lifecycle_report\",\n";
  out += "  \"strategy\": " + jsonQuote(report.strategy) + ",\n";
  out += "  \"policy\": " + jsonQuote(toString(report.policy)) + ",\n";
  out += "  \"scenario_seed\": \"" +
         std::to_string(
             static_cast<unsigned long long>(report.scenarioSeed)) +
         "\",\n";
  out += "  \"steps\": [";
  for (std::size_t i = 0; i < report.steps.size(); ++i) {
    const LifecycleStep& s = report.steps[i];
    out += (i == 0 ? "" : ",");
    out += "\n    {\"step\": " + std::to_string(s.step);
    out += ", \"event\": " + jsonQuote(toString(s.event));
    out += ", \"uid\": " + std::to_string(s.uid);
    out += ", \"live_graphs\": " + std::to_string(s.liveGraphs);
    out += ", \"live_processes\": " + std::to_string(s.liveProcesses);
    out += ", \"warm_start\": ";
    out += boolStr(s.warmStart);
    out += ", \"feasible\": ";
    out += boolStr(s.feasible);
    out += ", \"cost\": " + d17(s.cost);
    out += ", \"evaluations\": " + std::to_string(s.evaluations);
    out += ", \"proposals\": " + std::to_string(s.proposals);
    out += ", \"accepted\": " + std::to_string(s.accepted);
    out += ", \"zero_delta_skips\": " + std::to_string(s.zeroDeltaSkips);
    out += ", \"stopped\": ";
    out += boolStr(s.stopped);
    if (timing) out += ", \"seconds\": " + d6(s.seconds);
    out += "}";
  }
  out += "\n  ],\n";
  out += "  \"summary\": {\n";
  out += "    \"steps\": " + std::to_string(report.steps.size()) + ",\n";
  out += "    \"feasible_steps\": " + std::to_string(report.feasibleSteps) +
         ",\n";
  out += "    \"warm_starts\": " + std::to_string(report.warmStarts) + ",\n";
  out += "    \"median_cost\": " + d17(report.medianCost) + ",\n";
  if (timing) {
    out += "    \"total_seconds\": " + d6(report.totalSeconds) + ",\n";
  }
  out += "    \"stopped\": ";
  out += boolStr(report.stopped);
  out += "\n  }\n}\n";
  return out;
}

}  // namespace ides
