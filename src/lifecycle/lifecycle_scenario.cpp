#include "lifecycle/lifecycle_scenario.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/json_reader.h"
#include "util/rng.h"

namespace ides {

namespace {

/// Stream ids of one scenario seed (see rngStreamSeed): the event stream
/// drives every generator decision; the graph-seed stream is fanned out per
/// uid so a spec's generation seed never depends on event-draw order.
constexpr std::uint64_t kEventStream = 0x6c666345;      // "lfcE"
constexpr std::uint64_t kGraphSeedStream = 0x6c666347;  // "lfcG"

std::string d17(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string i64s(std::int64_t value) {
  return std::to_string(static_cast<long long>(value));
}

/// u64 values (seeds) are rendered as strings: JSON numbers travel through
/// doubles in this codebase's reader, which cannot round-trip 64 bits.
std::string u64Quoted(std::uint64_t value) {
  return "\"" + std::to_string(static_cast<unsigned long long>(value)) + "\"";
}

std::uint64_t u64At(const JsonValue& obj, std::string_view key) {
  const std::string& text = obj.stringAt(key);
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    throw std::runtime_error("lifecycle scenario: field \"" +
                             std::string(key) + "\" is not a u64 string");
  }
  return std::stoull(text);
}

std::size_t sizeAt(const JsonValue& obj, std::string_view key) {
  const std::int64_t v = obj.intAt(key);
  if (v < 0) {
    throw std::runtime_error("lifecycle scenario: field \"" +
                             std::string(key) + "\" must be >= 0");
  }
  return static_cast<std::size_t>(v);
}

int intFieldAt(const JsonValue& obj, std::string_view key) {
  return static_cast<int>(obj.intAt(key));
}

LifecycleGraphSpec* findMutable(LivingDesign& design, std::uint64_t uid) {
  for (LifecycleGraphSpec& g : design.graphs) {
    if (g.uid == uid) return &g;
  }
  return nullptr;
}

[[noreturn]] void badConfig(const std::string& what) {
  throw std::invalid_argument("ScenarioConfig: " + what);
}

[[noreturn]] void badEvent(const std::string& what) {
  throw std::invalid_argument("applyEvent: " + what);
}

}  // namespace

const char* toString(LifecycleEventKind kind) {
  switch (kind) {
    case LifecycleEventKind::AddGraph: return "add_graph";
    case LifecycleEventKind::RemoveGraph: return "remove_graph";
    case LifecycleEventKind::SpecChange: return "spec_change";
    case LifecycleEventKind::DeadlineTighten: return "deadline_tighten";
    case LifecycleEventKind::PlatformPerturb: return "platform_perturb";
  }
  return "?";
}

LifecycleEventKind lifecycleEventKindFromString(std::string_view name) {
  if (name == "add_graph") return LifecycleEventKind::AddGraph;
  if (name == "remove_graph") return LifecycleEventKind::RemoveGraph;
  if (name == "spec_change") return LifecycleEventKind::SpecChange;
  if (name == "deadline_tighten") return LifecycleEventKind::DeadlineTighten;
  if (name == "platform_perturb") return LifecycleEventKind::PlatformPerturb;
  throw std::invalid_argument("unknown lifecycle event kind \"" +
                              std::string(name) + "\"");
}

void validateScenarioConfig(const ScenarioConfig& c) {
  if (c.steps < 1) badConfig("steps must be >= 1");
  if (c.initialGraphs < 1) badConfig("initialGraphs must be >= 1");
  if (c.initialGraphs > static_cast<std::size_t>(c.steps)) {
    badConfig("initialGraphs must be <= steps");
  }
  if (c.minLiveGraphs < 1) badConfig("minLiveGraphs must be >= 1");
  if (c.minLiveGraphs > c.maxLiveGraphs) {
    badConfig("minLiveGraphs must be <= maxLiveGraphs");
  }
  if (c.initialGraphs > c.maxLiveGraphs) {
    badConfig("initialGraphs must be <= maxLiveGraphs");
  }
  if (c.nodeCount < 2) badConfig("nodeCount must be >= 2");
  if (c.speedPercents.empty()) badConfig("speedPercents must be non-empty");
  for (const int p : c.speedPercents) {
    if (p <= 0) badConfig("speedPercents must be > 0");
  }
  if (c.slotLength <= 0) badConfig("slotLength must be > 0");
  if (c.bytesPerTick <= 0) badConfig("bytesPerTick must be > 0");
  if (c.basePeriod <= 0) badConfig("basePeriod must be > 0");
  if (c.periodDivisors.empty()) badConfig("periodDivisors must be non-empty");
  for (std::size_t i = 0; i < c.periodDivisors.size(); ++i) {
    const Time d = c.periodDivisors[i];
    if (d <= 0) badConfig("periodDivisors must be > 0");
    if (c.basePeriod % d != 0) {
      badConfig("every period divisor must divide basePeriod");
    }
    // Divisibility chain: the hyperperiod of any live graph set is then
    // basePeriod / d for some listed d, and the TDMA round snapped against
    // the smallest reachable hyperperiod divides them all.
    if (i > 0 && d % c.periodDivisors[i - 1] != 0) {
      badConfig("periodDivisors must form a divisibility chain "
                "(each divides the next)");
    }
  }
  const Time minHyperperiod = c.basePeriod / c.periodDivisors.back();
  if (c.tmin <= 0) badConfig("tmin must be > 0");
  if (minHyperperiod % c.tmin != 0) {
    badConfig("tmin must divide basePeriod / max(periodDivisors)");
  }
  if (c.tneed <= 0 || c.tneed > c.tmin) {
    badConfig("tneed must be in (0, tmin]");
  }
  if (c.bneedBytes <= 0) badConfig("bneedBytes must be > 0");
  if (c.graphProcessesMin < 1 ||
      c.graphProcessesMin > c.graphProcessesMax) {
    badConfig("graphProcesses range must satisfy 1 <= min <= max");
  }
  const auto probOk = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!probOk(c.probRemove) || !probOk(c.probSpecChange) ||
      !probOk(c.probDeadlineTighten) || !probOk(c.probPlatformPerturb)) {
    badConfig("event probabilities must be in [0, 1]");
  }
  if (c.probRemove + c.probSpecChange + c.probDeadlineTighten +
          c.probPlatformPerturb >
      1.0) {
    badConfig("event probabilities must sum to <= 1");
  }
  const auto pctRange = [](int lo, int hi) { return lo > 0 && lo <= hi; };
  if (!pctRange(c.wcetScaleMinPercent, c.wcetScaleMaxPercent)) {
    badConfig("wcetScale percent range must satisfy 0 < min <= max");
  }
  if (!pctRange(c.msgScaleMinPercent, c.msgScaleMaxPercent)) {
    badConfig("msgScale percent range must satisfy 0 < min <= max");
  }
  if (!pctRange(c.speedMinPercent, c.speedMaxPercent)) {
    badConfig("speed percent range must satisfy 0 < min <= max");
  }
  if (c.deadlineTightenPercent <= 0 || c.deadlineTightenPercent > 100) {
    badConfig("deadlineTightenPercent must be in (0, 100]");
  }
  if (c.minDeadlinePercent <= 0 || c.minDeadlinePercent > 100) {
    badConfig("minDeadlinePercent must be in (0, 100]");
  }
  if (c.graphGen.wcetMin < 1 || c.graphGen.wcetMin > c.graphGen.wcetMax) {
    badConfig("graphGen wcet range must satisfy 1 <= min <= max");
  }
  if (c.graphGen.msgMin < 1 || c.graphGen.msgMin > c.graphGen.msgMax) {
    badConfig("graphGen msg range must satisfy 1 <= min <= max");
  }
}

const LifecycleGraphSpec* LivingDesign::find(std::uint64_t uid) const {
  for (const LifecycleGraphSpec& g : graphs) {
    if (g.uid == uid) return &g;
  }
  return nullptr;
}

std::size_t LivingDesign::totalProcesses() const {
  std::size_t total = 0;
  for (const LifecycleGraphSpec& g : graphs) total += g.processCount;
  return total;
}

LivingDesign initialDesign(const ScenarioConfig& config) {
  LivingDesign design;
  design.speedPercents.resize(config.nodeCount);
  for (std::size_t n = 0; n < config.nodeCount; ++n) {
    design.speedPercents[n] =
        config.speedPercents[n % config.speedPercents.size()];
  }
  return design;
}

void applyEvent(LivingDesign& design, const LifecycleEvent& event) {
  switch (event.kind) {
    case LifecycleEventKind::AddGraph: {
      const LifecycleGraphSpec& s = event.add;
      if (s.uid == 0 || s.uid != event.uid) {
        badEvent("add_graph uid must be non-zero and match the spec");
      }
      if (design.find(s.uid) != nullptr) {
        badEvent("add_graph uid " + std::to_string(s.uid) +
                 " already exists");
      }
      if (s.processCount == 0) badEvent("add_graph needs processes");
      if (s.period <= 0 || s.deadline <= 0 || s.offset < 0 ||
          s.offset + s.deadline > s.period) {
        badEvent("add_graph timing must satisfy 0 < deadline, 0 <= offset, "
                 "offset + deadline <= period");
      }
      if (s.wcetScalePercent <= 0 || s.msgScalePercent <= 0) {
        badEvent("add_graph scale percents must be > 0");
      }
      design.graphs.push_back(s);
      return;
    }
    case LifecycleEventKind::RemoveGraph: {
      for (std::size_t i = 0; i < design.graphs.size(); ++i) {
        if (design.graphs[i].uid == event.uid) {
          design.graphs.erase(design.graphs.begin() +
                              static_cast<std::ptrdiff_t>(i));
          return;
        }
      }
      badEvent("remove_graph: unknown uid " + std::to_string(event.uid));
    }
    case LifecycleEventKind::SpecChange: {
      LifecycleGraphSpec* g = findMutable(design, event.uid);
      if (g == nullptr) {
        badEvent("spec_change: unknown uid " + std::to_string(event.uid));
      }
      if (event.wcetScalePercent <= 0 || event.msgScalePercent <= 0) {
        badEvent("spec_change scale percents must be > 0");
      }
      g->wcetScalePercent = event.wcetScalePercent;
      g->msgScalePercent = event.msgScalePercent;
      return;
    }
    case LifecycleEventKind::DeadlineTighten: {
      LifecycleGraphSpec* g = findMutable(design, event.uid);
      if (g == nullptr) {
        badEvent("deadline_tighten: unknown uid " +
                 std::to_string(event.uid));
      }
      if (event.deadline <= 0 || g->offset + event.deadline > g->period) {
        badEvent("deadline_tighten: deadline out of the graph's window");
      }
      g->deadline = event.deadline;
      return;
    }
    case LifecycleEventKind::PlatformPerturb: {
      if (event.node >= design.speedPercents.size()) {
        badEvent("platform_perturb: node out of range");
      }
      if (event.speedPercent <= 0) {
        badEvent("platform_perturb: speed percent must be > 0");
      }
      design.speedPercents[event.node] = event.speedPercent;
      return;
    }
  }
  badEvent("unknown event kind");
}

LifecycleScenario generateScenario(const ScenarioConfig& config) {
  validateScenarioConfig(config);
  LifecycleScenario scenario;
  scenario.config = config;
  scenario.events.reserve(static_cast<std::size_t>(config.steps));

  LivingDesign design = initialDesign(config);
  Rng rng(rngStreamSeed(config.seed, kEventStream));
  const std::uint64_t graphSeedBase =
      rngStreamSeed(config.seed, kGraphSeedStream);
  std::uint64_t nextUid = 1;

  const auto makeAdd = [&] {
    LifecycleEvent ev;
    ev.kind = LifecycleEventKind::AddGraph;
    LifecycleGraphSpec s;
    s.uid = nextUid++;
    // Seeded off the uid, not the event stream: the spec fully determines
    // the graph, independent of what happened around it.
    s.seed = rngStreamSeed(graphSeedBase, s.uid);
    s.processCount = static_cast<std::size_t>(rng.uniformInt(
        static_cast<std::int64_t>(config.graphProcessesMin),
        static_cast<std::int64_t>(config.graphProcessesMax)));
    s.period =
        config.basePeriod /
        config.periodDivisors[rng.index(config.periodDivisors.size())];
    s.deadline = s.period;
    ev.uid = s.uid;
    ev.add = s;
    return ev;
  };

  for (int i = 0; i < config.steps; ++i) {
    LifecycleEvent ev;
    if (static_cast<std::size_t>(i) < config.initialGraphs) {
      ev = makeAdd();
    } else {
      const double r = rng.uniform01();
      double cum = config.probRemove;
      LifecycleEventKind kind = LifecycleEventKind::AddGraph;
      if (r < cum) {
        kind = LifecycleEventKind::RemoveGraph;
      } else if (r < (cum += config.probSpecChange)) {
        kind = LifecycleEventKind::SpecChange;
      } else if (r < (cum += config.probDeadlineTighten)) {
        kind = LifecycleEventKind::DeadlineTighten;
      } else if (r < (cum += config.probPlatformPerturb)) {
        kind = LifecycleEventKind::PlatformPerturb;
      }
      // Live-set guards: a drawn kind that would violate the bounds falls
      // back to a spec change, which is always applicable (minLiveGraphs
      // >= 1 keeps at least one target alive).
      if (kind == LifecycleEventKind::RemoveGraph &&
          design.graphs.size() <= config.minLiveGraphs) {
        kind = LifecycleEventKind::SpecChange;
      }
      if (kind == LifecycleEventKind::AddGraph &&
          design.graphs.size() >= config.maxLiveGraphs) {
        kind = LifecycleEventKind::SpecChange;
      }
      switch (kind) {
        case LifecycleEventKind::AddGraph:
          ev = makeAdd();
          break;
        case LifecycleEventKind::RemoveGraph:
          ev.kind = kind;
          ev.uid = design.graphs[rng.index(design.graphs.size())].uid;
          break;
        case LifecycleEventKind::SpecChange:
          ev.kind = kind;
          ev.uid = design.graphs[rng.index(design.graphs.size())].uid;
          ev.wcetScalePercent = static_cast<int>(rng.uniformInt(
              config.wcetScaleMinPercent, config.wcetScaleMaxPercent));
          ev.msgScalePercent = static_cast<int>(rng.uniformInt(
              config.msgScaleMinPercent, config.msgScaleMaxPercent));
          break;
        case LifecycleEventKind::DeadlineTighten: {
          const LifecycleGraphSpec& g =
              design.graphs[rng.index(design.graphs.size())];
          ev.kind = kind;
          ev.uid = g.uid;
          const Time floor = g.period * config.minDeadlinePercent / 100;
          Time tightened =
              g.deadline * config.deadlineTightenPercent / 100;
          tightened = std::max(tightened, floor);
          tightened = std::min(tightened, g.period - g.offset);
          ev.deadline = std::max<Time>(tightened, 1);
          break;
        }
        case LifecycleEventKind::PlatformPerturb:
          ev.kind = kind;
          ev.node = rng.index(config.nodeCount);
          ev.speedPercent = static_cast<int>(rng.uniformInt(
              config.speedMinPercent, config.speedMaxPercent));
          break;
      }
    }
    applyEvent(design, ev);
    scenario.events.push_back(ev);
  }
  return scenario;
}

std::string scenarioJson(const LifecycleScenario& scenario) {
  const ScenarioConfig& c = scenario.config;
  std::string out = "{\n";
  out += "  \"schema\": 1,\n";
  out += "  \"kind\": \"lifecycle_scenario\",\n";
  out += "  \"config\": {\n";
  out += "    \"seed\": " + u64Quoted(c.seed) + ",\n";
  out += "    \"steps\": " + std::to_string(c.steps) + ",\n";
  out += "    \"node_count\": " + std::to_string(c.nodeCount) + ",\n";
  out += "    \"speed_percents\": [";
  for (std::size_t i = 0; i < c.speedPercents.size(); ++i) {
    out += (i == 0 ? "" : ", ") + std::to_string(c.speedPercents[i]);
  }
  out += "],\n";
  out += "    \"slot_length\": " + i64s(c.slotLength) + ",\n";
  out += "    \"bytes_per_tick\": " + i64s(c.bytesPerTick) + ",\n";
  out += "    \"base_period\": " + i64s(c.basePeriod) + ",\n";
  out += "    \"period_divisors\": [";
  for (std::size_t i = 0; i < c.periodDivisors.size(); ++i) {
    out += (i == 0 ? "" : ", ") + i64s(c.periodDivisors[i]);
  }
  out += "],\n";
  out += "    \"tmin\": " + i64s(c.tmin) + ",\n";
  out += "    \"tneed\": " + i64s(c.tneed) + ",\n";
  out += "    \"bneed_bytes\": " + i64s(c.bneedBytes) + ",\n";
  out += "    \"initial_graphs\": " + std::to_string(c.initialGraphs) + ",\n";
  out += "    \"min_live_graphs\": " + std::to_string(c.minLiveGraphs) +
         ",\n";
  out += "    \"max_live_graphs\": " + std::to_string(c.maxLiveGraphs) +
         ",\n";
  out += "    \"graph_processes_min\": " +
         std::to_string(c.graphProcessesMin) + ",\n";
  out += "    \"graph_processes_max\": " +
         std::to_string(c.graphProcessesMax) + ",\n";
  out += "    \"prob_remove\": " + d17(c.probRemove) + ",\n";
  out += "    \"prob_spec_change\": " + d17(c.probSpecChange) + ",\n";
  out += "    \"prob_deadline_tighten\": " + d17(c.probDeadlineTighten) +
         ",\n";
  out += "    \"prob_platform_perturb\": " + d17(c.probPlatformPerturb) +
         ",\n";
  out += "    \"wcet_scale_min_percent\": " +
         std::to_string(c.wcetScaleMinPercent) + ",\n";
  out += "    \"wcet_scale_max_percent\": " +
         std::to_string(c.wcetScaleMaxPercent) + ",\n";
  out += "    \"msg_scale_min_percent\": " +
         std::to_string(c.msgScaleMinPercent) + ",\n";
  out += "    \"msg_scale_max_percent\": " +
         std::to_string(c.msgScaleMaxPercent) + ",\n";
  out += "    \"speed_min_percent\": " + std::to_string(c.speedMinPercent) +
         ",\n";
  out += "    \"speed_max_percent\": " + std::to_string(c.speedMaxPercent) +
         ",\n";
  out += "    \"deadline_tighten_percent\": " +
         std::to_string(c.deadlineTightenPercent) + ",\n";
  out += "    \"min_deadline_percent\": " +
         std::to_string(c.minDeadlinePercent) + ",\n";
  out += "    \"graph_gen\": {\n";
  out += "      \"edge_density\": " + d17(c.graphGen.edgeDensity) + ",\n";
  out += "      \"layer_width\": " + std::to_string(c.graphGen.layerWidth) +
         ",\n";
  out += "      \"wcet_min\": " + i64s(c.graphGen.wcetMin) + ",\n";
  out += "      \"wcet_max\": " + i64s(c.graphGen.wcetMax) + ",\n";
  out += "      \"wcet_node_variation\": " +
         d17(c.graphGen.wcetNodeVariation) + ",\n";
  out += "      \"restricted_mapping_prob\": " +
         d17(c.graphGen.restrictedMappingProb) + ",\n";
  out += "      \"restricted_fraction\": " +
         d17(c.graphGen.restrictedFraction) + ",\n";
  out += "      \"msg_min\": " + i64s(c.graphGen.msgMin) + ",\n";
  out += "      \"msg_max\": " + i64s(c.graphGen.msgMax) + "\n";
  out += "    }\n";
  out += "  },\n";
  out += "  \"events\": [";
  for (std::size_t i = 0; i < scenario.events.size(); ++i) {
    const LifecycleEvent& ev = scenario.events[i];
    out += (i == 0 ? "" : ",");
    out += "\n    {\"kind\": ";
    out += jsonQuote(toString(ev.kind));
    switch (ev.kind) {
      case LifecycleEventKind::AddGraph:
        out += ", \"uid\": " + std::to_string(ev.uid);
        out += ", \"seed\": " + u64Quoted(ev.add.seed);
        out += ", \"process_count\": " + std::to_string(ev.add.processCount);
        out += ", \"period\": " + i64s(ev.add.period);
        out += ", \"deadline\": " + i64s(ev.add.deadline);
        out += ", \"offset\": " + i64s(ev.add.offset);
        out += ", \"wcet_scale_percent\": " +
               std::to_string(ev.add.wcetScalePercent);
        out += ", \"msg_scale_percent\": " +
               std::to_string(ev.add.msgScalePercent);
        break;
      case LifecycleEventKind::RemoveGraph:
        out += ", \"uid\": " + std::to_string(ev.uid);
        break;
      case LifecycleEventKind::SpecChange:
        out += ", \"uid\": " + std::to_string(ev.uid);
        out += ", \"wcet_scale_percent\": " +
               std::to_string(ev.wcetScalePercent);
        out += ", \"msg_scale_percent\": " +
               std::to_string(ev.msgScalePercent);
        break;
      case LifecycleEventKind::DeadlineTighten:
        out += ", \"uid\": " + std::to_string(ev.uid);
        out += ", \"deadline\": " + i64s(ev.deadline);
        break;
      case LifecycleEventKind::PlatformPerturb:
        out += ", \"node\": " + std::to_string(ev.node);
        out += ", \"speed_percent\": " + std::to_string(ev.speedPercent);
        break;
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

LifecycleScenario parseScenario(std::string_view text) {
  const JsonValue root = parseJson(text);
  if (root.intAt("schema") != 1 ||
      root.stringAt("kind") != "lifecycle_scenario") {
    throw std::runtime_error(
        "lifecycle scenario: unknown schema or document kind");
  }

  LifecycleScenario scenario;
  ScenarioConfig& c = scenario.config;
  const JsonValue& cfg = root.at("config");
  c.seed = u64At(cfg, "seed");
  c.steps = static_cast<int>(cfg.intAt("steps"));
  c.nodeCount = sizeAt(cfg, "node_count");
  c.speedPercents.clear();
  for (const JsonValue& v : cfg.at("speed_percents").items) {
    c.speedPercents.push_back(static_cast<int>(v.numberValue));
  }
  c.slotLength = cfg.intAt("slot_length");
  c.bytesPerTick = cfg.intAt("bytes_per_tick");
  c.basePeriod = cfg.intAt("base_period");
  c.periodDivisors.clear();
  for (const JsonValue& v : cfg.at("period_divisors").items) {
    c.periodDivisors.push_back(static_cast<Time>(v.numberValue));
  }
  c.tmin = cfg.intAt("tmin");
  c.tneed = cfg.intAt("tneed");
  c.bneedBytes = cfg.intAt("bneed_bytes");
  c.initialGraphs = sizeAt(cfg, "initial_graphs");
  c.minLiveGraphs = sizeAt(cfg, "min_live_graphs");
  c.maxLiveGraphs = sizeAt(cfg, "max_live_graphs");
  c.graphProcessesMin = sizeAt(cfg, "graph_processes_min");
  c.graphProcessesMax = sizeAt(cfg, "graph_processes_max");
  c.probRemove = cfg.numberAt("prob_remove");
  c.probSpecChange = cfg.numberAt("prob_spec_change");
  c.probDeadlineTighten = cfg.numberAt("prob_deadline_tighten");
  c.probPlatformPerturb = cfg.numberAt("prob_platform_perturb");
  c.wcetScaleMinPercent = intFieldAt(cfg, "wcet_scale_min_percent");
  c.wcetScaleMaxPercent = intFieldAt(cfg, "wcet_scale_max_percent");
  c.msgScaleMinPercent = intFieldAt(cfg, "msg_scale_min_percent");
  c.msgScaleMaxPercent = intFieldAt(cfg, "msg_scale_max_percent");
  c.speedMinPercent = intFieldAt(cfg, "speed_min_percent");
  c.speedMaxPercent = intFieldAt(cfg, "speed_max_percent");
  c.deadlineTightenPercent = intFieldAt(cfg, "deadline_tighten_percent");
  c.minDeadlinePercent = intFieldAt(cfg, "min_deadline_percent");
  const JsonValue& gg = cfg.at("graph_gen");
  c.graphGen.edgeDensity = gg.numberAt("edge_density");
  c.graphGen.layerWidth = sizeAt(gg, "layer_width");
  c.graphGen.wcetMin = gg.intAt("wcet_min");
  c.graphGen.wcetMax = gg.intAt("wcet_max");
  c.graphGen.wcetNodeVariation = gg.numberAt("wcet_node_variation");
  c.graphGen.restrictedMappingProb = gg.numberAt("restricted_mapping_prob");
  c.graphGen.restrictedFraction = gg.numberAt("restricted_fraction");
  c.graphGen.msgMin = gg.intAt("msg_min");
  c.graphGen.msgMax = gg.intAt("msg_max");
  validateScenarioConfig(c);

  const JsonValue& events = root.at("events");
  if (!events.isArray()) {
    throw std::runtime_error("lifecycle scenario: \"events\" must be array");
  }
  for (const JsonValue& e : events.items) {
    LifecycleEvent ev;
    ev.kind = lifecycleEventKindFromString(e.stringAt("kind"));
    switch (ev.kind) {
      case LifecycleEventKind::AddGraph:
        ev.uid = static_cast<std::uint64_t>(e.intAt("uid"));
        ev.add.uid = ev.uid;
        ev.add.seed = u64At(e, "seed");
        ev.add.processCount = sizeAt(e, "process_count");
        ev.add.period = e.intAt("period");
        ev.add.deadline = e.intAt("deadline");
        ev.add.offset = e.intAt("offset");
        ev.add.wcetScalePercent = intFieldAt(e, "wcet_scale_percent");
        ev.add.msgScalePercent = intFieldAt(e, "msg_scale_percent");
        break;
      case LifecycleEventKind::RemoveGraph:
        ev.uid = static_cast<std::uint64_t>(e.intAt("uid"));
        break;
      case LifecycleEventKind::SpecChange:
        ev.uid = static_cast<std::uint64_t>(e.intAt("uid"));
        ev.wcetScalePercent = intFieldAt(e, "wcet_scale_percent");
        ev.msgScalePercent = intFieldAt(e, "msg_scale_percent");
        break;
      case LifecycleEventKind::DeadlineTighten:
        ev.uid = static_cast<std::uint64_t>(e.intAt("uid"));
        ev.deadline = e.intAt("deadline");
        break;
      case LifecycleEventKind::PlatformPerturb:
        ev.node = sizeAt(e, "node");
        ev.speedPercent = intFieldAt(e, "speed_percent");
        break;
    }
    scenario.events.push_back(ev);
  }

  // Replay through applyEvent so a hand-edited stream that violates the
  // living-design invariants is rejected at parse time, not mid-run.
  LivingDesign design = initialDesign(c);
  for (const LifecycleEvent& ev : scenario.events) applyEvent(design, ev);
  return scenario;
}

}  // namespace ides
