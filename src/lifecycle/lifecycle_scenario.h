// Lifecycle scenarios: long-horizon streams of design-lifecycle events.
//
// The paper's premise is that a product evolves for years — applications are
// added, removed and re-specified on a mostly-frozen platform — yet a sweep
// exercises exactly one design step. A LifecycleScenario is the missing
// workload: a seeded, deterministic stream of typed events (add graph,
// remove graph, spec change, deadline tightening, platform perturbation)
// over a "living design" of graph specs plus per-node speed percentages.
//
// Scenarios are durable, shareable artifacts like sweep manifests: fully
// JSON-serializable (scenarioJson / parseScenario round-trip byte-identical,
// doubles rendered %.17g) and regenerable — generateScenario(config) of a
// parsed scenario's config reproduces the parsed event stream exactly.
//
// The event stream is valid by construction: the generator simulates the
// living design as it emits events, so every target uid exists, the live
// graph count stays within [minLiveGraphs, maxLiveGraphs], deadlines never
// drop below the configured floor and perturbed node speeds stay within
// bounds. applyEvent re-validates on replay and throws on a corrupt stream.
//
// Determinism contract: each graph spec carries its own generation seed
// (derived from the scenario seed and the uid, not from the event-draw
// stream), so a graph's structure depends only on its spec — unchanged
// graphs rebuild identically no matter which siblings come and go, and a
// spec change that only scales WCET/message ranges preserves the topology
// (the generator's draw count per process/edge is range-independent).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tgen/graph_gen.h"
#include "util/time.h"

namespace ides {

/// One living graph: everything needed to regenerate it deterministically.
struct LifecycleGraphSpec {
  std::uint64_t uid = 0;   ///< stable identity across the stream (never 0)
  std::uint64_t seed = 0;  ///< generation seed (graph-local RNG)
  std::size_t processCount = 0;
  Time period = 0;
  Time deadline = 0;  ///< offset + deadline <= period
  Time offset = 0;
  /// Spec-change knobs: percentage scaling of the base WCET / message-size
  /// ranges (100 = the config's graphGen ranges unchanged). Scaling the
  /// ranges preserves the RNG draw pattern, so topology is invariant.
  int wcetScalePercent = 100;
  int msgScalePercent = 100;

  friend bool operator==(const LifecycleGraphSpec&,
                         const LifecycleGraphSpec&) = default;
};

enum class LifecycleEventKind : std::uint8_t {
  AddGraph,         ///< a new application graph ships
  RemoveGraph,      ///< a feature is retired
  SpecChange,       ///< process WCETs / message sizes re-measured
  DeadlineTighten,  ///< a graph's deadline contractually tightened
  PlatformPerturb,  ///< one node's speed class changes
};

[[nodiscard]] const char* toString(LifecycleEventKind kind);
/// Inverse of toString; throws std::invalid_argument on an unknown name.
[[nodiscard]] LifecycleEventKind lifecycleEventKindFromString(
    std::string_view name);

/// One typed lifecycle event. Only the fields of the event's kind are
/// meaningful (and serialized): AddGraph carries `add`; RemoveGraph /
/// SpecChange / DeadlineTighten target `uid` (with the new percents /
/// deadline); PlatformPerturb carries `node` + `speedPercent`.
struct LifecycleEvent {
  LifecycleEventKind kind = LifecycleEventKind::AddGraph;
  std::uint64_t uid = 0;
  LifecycleGraphSpec add;
  int wcetScalePercent = 100;  ///< SpecChange: new absolute percent
  int msgScalePercent = 100;   ///< SpecChange: new absolute percent
  Time deadline = 0;           ///< DeadlineTighten: new absolute deadline
  std::size_t node = 0;        ///< PlatformPerturb target
  int speedPercent = 100;      ///< PlatformPerturb: new absolute percent

  friend bool operator==(const LifecycleEvent&,
                         const LifecycleEvent&) = default;
};

/// Generator configuration — the whole scenario is a pure function of this.
struct ScenarioConfig {
  std::uint64_t seed = 1;
  int steps = 50;  ///< events emitted (= optimization steps when replayed)

  // Platform (lifecycle models a mostly-frozen architecture; only speed
  // classes drift, via PlatformPerturb).
  std::size_t nodeCount = 8;
  /// Initial per-node speed percents, cycled over the nodes (100 = 1.0x).
  std::vector<int> speedPercents = {100, 100, 80, 125};
  Time slotLength = 20;
  std::int64_t bytesPerTick = 1;

  // Timing universe. Graph periods are basePeriod / d for d drawn from
  // periodDivisors, which must form a divisibility chain (every divisor
  // divides the next) so the hyperperiod of ANY live set is a basePeriod /
  // d itself and one snapped TDMA round divides them all.
  Time basePeriod = 16000;
  std::vector<Time> periodDivisors = {1, 2};

  // Future profile of the objective (core/future_profile.h): the periodic
  // needs the design is optimized to leave room for.
  Time tmin = 4000;
  Time tneed = 800;
  std::int64_t bneedBytes = 64;

  // Design shape.
  std::size_t initialGraphs = 3;  ///< unconditional AddGraph prefix
  std::size_t minLiveGraphs = 2;  ///< >= 1; RemoveGraph keeps live > this-1
  std::size_t maxLiveGraphs = 7;
  std::size_t graphProcessesMin = 10;
  std::size_t graphProcessesMax = 24;

  // Event mix after the initial prefix (AddGraph takes the remainder).
  double probRemove = 0.15;
  double probSpecChange = 0.25;
  double probDeadlineTighten = 0.10;
  double probPlatformPerturb = 0.10;

  // Perturbation bounds (all percents, all > 0).
  int wcetScaleMinPercent = 85;
  int wcetScaleMaxPercent = 115;
  int msgScaleMinPercent = 75;
  int msgScaleMaxPercent = 150;
  int speedMinPercent = 80;
  int speedMaxPercent = 125;
  /// DeadlineTighten multiplies the current deadline by this percent...
  int deadlineTightenPercent = 95;
  /// ...floored at this fraction of the period (keeps scenarios feasible).
  int minDeadlinePercent = 75;

  /// Base graph shape; processCount is overridden per spec, wcet/msg ranges
  /// scaled by the spec's percents.
  GraphGenConfig graphGen;

  friend bool operator==(const ScenarioConfig&,
                         const ScenarioConfig&) = default;
};

/// Range-checks every knob (probabilities, bounds ordering, the divisor
/// chain, tmin divides every reachable hyperperiod); throws
/// std::invalid_argument naming the offending field.
void validateScenarioConfig(const ScenarioConfig& config);

struct LifecycleScenario {
  ScenarioConfig config;
  std::vector<LifecycleEvent> events;

  friend bool operator==(const LifecycleScenario&,
                         const LifecycleScenario&) = default;
};

/// The living design a scenario's events evolve: the ordered graph specs
/// (add order, which is also the deterministic scheduling order on replay)
/// and the current per-node speed percents.
struct LivingDesign {
  std::vector<LifecycleGraphSpec> graphs;
  std::vector<int> speedPercents;

  [[nodiscard]] const LifecycleGraphSpec* find(std::uint64_t uid) const;
  [[nodiscard]] std::size_t totalProcesses() const;
};

/// Pre-stream state: configured node speeds (cycled), no graphs.
[[nodiscard]] LivingDesign initialDesign(const ScenarioConfig& config);

/// Applies one event; throws std::invalid_argument when the event is
/// invalid against this state (unknown/duplicate uid, bad bounds).
void applyEvent(LivingDesign& design, const LifecycleEvent& event);

/// Generates the deterministic event stream for `config` (validated first).
[[nodiscard]] LifecycleScenario generateScenario(const ScenarioConfig& config);

/// Deterministic JSON rendering (doubles %.17g, round-trips exactly).
[[nodiscard]] std::string scenarioJson(const LifecycleScenario& scenario);

/// Strict parse + validation of scenarioJson output; throws
/// std::runtime_error / std::invalid_argument naming the problem. The
/// parsed event stream is replayed through applyEvent, so a hand-edited
/// scenario that breaks the living-design invariants is rejected here.
[[nodiscard]] LifecycleScenario parseScenario(std::string_view text);

}  // namespace ides
