// Lifecycle replay: apply each scenario event to the living design and
// re-optimize, measuring quality-vs-latency over the whole stream.
//
// The SystemModel is frozen after finalize() (dense global ids, derived
// structures), so the runner never mutates a model in place: it keeps the
// LivingDesign spec state and REBUILDS the model after every event. Each
// graph spec carries its own generation seed, so unchanged graphs rebuild
// bit-identically no matter which siblings were added or removed — the
// model-rebuild is semantically "remove graph / add graph" on the living
// design, at spec granularity.
//
// Warm vs cold start (the experiment the subsystem exists to run): under
// the warm policy the previous step's committed placements seed the new
// run — surviving graphs are pinned to their old nodes (schedule hints are
// deliberately re-derived, not restored: a hint tuned against last step's
// timing distorts the list scheduler after an event), removed graphs are
// simply unmapped (their placements dropped), and added graphs are placed
// by the initial-mapping heuristic (pinned-HCP) on top. The
// optimizer validates the seed and falls back to a cold Initial Mapping
// when it no longer schedules feasibly (e.g. after a hard platform
// perturbation). Under the cold policy every step restarts from IM.
//
// Determinism: with the per-step wall-clock deadline off, a LifecycleReport
// is a pure function of (scenario, strategy, policy, designer options) —
// lifecycleReportJson(report, timing=false) renders byte-identical across
// runs and worker counts, the same discipline as batchReportJson. The
// per-step deadline (StopToken timeout) is the one intentionally
// non-deterministic knob, for quality-at-deadline measurements; fixed
// per-step iteration budgets are the deterministic stand-in used by tests
// and CI.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/future_profile.h"
#include "core/optimizer.h"
#include "lifecycle/lifecycle_scenario.h"
#include "model/system_model.h"
#include "util/stop_token.h"

namespace ides {

/// A living design materialized as a schedulable model: every graph is one
/// AppKind::Current application (all movable), in living order — which is
/// therefore also the evaluator's deterministic scheduling order.
struct BuiltDesign {
  SystemModel system;
  FutureProfile profile;
  /// Graph id per living spec, parallel to LivingDesign::graphs.
  std::vector<GraphId> graphIds;
};

/// Rebuilds the model for the current living design (throws
/// std::invalid_argument when the design has no graphs). The TDMA round is
/// snapped against the smallest reachable hyperperiod (basePeriod /
/// max divisor), so it divides the hyperperiod of every possible live set.
[[nodiscard]] BuiltDesign buildDesignModel(const ScenarioConfig& config,
                                           const LivingDesign& design);

enum class StartPolicy : std::uint8_t { Warm, Cold };
[[nodiscard]] const char* toString(StartPolicy policy);
/// Parses "warm" / "cold"; throws std::invalid_argument otherwise.
[[nodiscard]] StartPolicy startPolicyFromString(std::string_view name);

struct LifecycleOptions {
  std::string strategy = "SA";
  StartPolicy policy = StartPolicy::Warm;
  /// Per-step budgets and weights. The per-step chain seed is derived
  /// deterministically from designer.sa.seed (and .tabu.seed) and the step
  /// index, so steps explore independent streams.
  DesignerOptions designer;
  /// Per-step wall-clock deadline in seconds (0 = off). Intentionally
  /// non-deterministic when it fires; leave off for byte-identity.
  double stepDeadlineSeconds = 0.0;
  /// Whole-run cancellation, polled between steps; a fired token truncates
  /// the report (LifecycleReport::stopped) without tainting finished steps.
  const StopToken* stop = nullptr;
  /// Step-boundary progress (also forwarded into each optimizer run).
  ProgressSink progress;
  /// Strategy resolution; null = StrategyRegistry::builtin().
  const StrategyRegistry* registry = nullptr;
};

/// One re-optimization step, after applying one event.
struct LifecycleStep {
  int step = 0;
  LifecycleEventKind event = LifecycleEventKind::AddGraph;
  std::uint64_t uid = 0;  ///< event target (0 for platform perturbations)
  std::size_t liveGraphs = 0;
  std::size_t liveProcesses = 0;
  /// Warm policy only: a warm seed was constructed AND accepted by the
  /// optimizer (false = cold fallback, e.g. the restored placements no
  /// longer schedule feasibly on the perturbed platform).
  bool warmStart = false;
  bool feasible = false;
  /// Final cost (objective C when feasible, penalty cost otherwise).
  double cost = 0.0;
  std::size_t evaluations = 0;
  std::size_t proposals = 0;
  std::size_t accepted = 0;
  std::size_t zeroDeltaSkips = 0;
  bool stopped = false;   ///< the per-step deadline fired mid-run
  double seconds = 0.0;   ///< wall clock (timing-only; excluded from
                          ///< deterministic rendering)
};

struct LifecycleReport {
  std::string strategy;
  StartPolicy policy = StartPolicy::Warm;
  std::uint64_t scenarioSeed = 0;
  std::vector<LifecycleStep> steps;
  std::size_t feasibleSteps = 0;
  std::size_t warmStarts = 0;  ///< steps the warm seed was accepted
  /// Median final cost over feasible steps (0 when none) — the
  /// quality-at-deadline summary the warm-vs-cold comparison reads.
  double medianCost = 0.0;
  double totalSeconds = 0.0;
  bool stopped = false;  ///< LifecycleOptions::stop truncated the stream
};

/// Replays the scenario, re-optimizing after every event.
[[nodiscard]] LifecycleReport runLifecycle(const LifecycleScenario& scenario,
                                           const LifecycleOptions& options);

/// Deterministic JSON rendering: with `timing` off the bytes are a pure
/// function of the report's deterministic fields (no seconds), identical
/// across runs and worker counts for the same (scenario, options).
[[nodiscard]] std::string lifecycleReportJson(const LifecycleReport& report,
                                              bool timing = false);

}  // namespace ides
