#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <vector>

namespace ides {

namespace {

struct TraceEvent {
  std::string name;
  const char* category;
  char phase;              // 'X' complete, 'i' instant
  std::uint64_t tsUs;
  std::uint64_t durUs;     // complete events only
  std::uint32_t tid;
};

struct TraceState {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::string path;
  std::atomic<bool> enabled{false};
  bool atexitRegistered = false;
};

TraceState& state() {
  // Leaked on purpose, same rationale as the telemetry registry: spans may
  // close during atexit handlers.
  static TraceState* s = new TraceState();
  return *s;
}

std::uint64_t nowUs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

std::uint32_t threadTraceId() {
  static std::atomic<std::uint32_t> next{1};
  const thread_local std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string jsonEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void ensureEnvChecked() {
  static const bool once = [] {
    const char* env = std::getenv("IDES_TRACE");
    if (env != nullptr && env[0] != '\0') {
      traceConfigure(env);
    }
    return true;
  }();
  (void)once;
}

void record(TraceEvent event) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.enabled.load(std::memory_order_relaxed)) return;  // raced a disable
  s.events.push_back(std::move(event));
}

}  // namespace

bool traceEnabled() {
  ensureEnvChecked();
  return state().enabled.load(std::memory_order_relaxed);
}

void traceConfigure(std::string path) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.path = std::move(path);
  s.enabled.store(true, std::memory_order_relaxed);
  if (!s.atexitRegistered) {
    s.atexitRegistered = true;
    std::atexit([] { traceFlush(); });
  }
}

void traceDisable() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.enabled.store(false, std::memory_order_relaxed);
  s.events.clear();
  s.path.clear();
}

std::string traceJson() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::string out = "{\"traceEvents\": [";
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    const TraceEvent& e = s.events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"name\": \"" + jsonEscape(e.name) + "\", \"cat\": \"" +
           e.category + "\", \"ph\": \"" + e.phase + "\", \"ts\": " +
           std::to_string(e.tsUs) + ", ";
    if (e.phase == 'X') {
      out += "\"dur\": " + std::to_string(e.durUs) + ", ";
    } else {
      out += "\"s\": \"t\", ";
    }
    out += "\"pid\": 1, \"tid\": " + std::to_string(e.tid) + "}";
  }
  out += "\n]}\n";
  return out;
}

void traceFlush() {
  TraceState& s = state();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.enabled.load(std::memory_order_relaxed) || s.path.empty()) return;
    path = s.path;
  }
  const std::string json = traceJson();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (out) out << json;
}

std::size_t traceEventCount() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.events.size();
}

void traceInstant(std::string_view name, const char* category) {
  if (!traceEnabled()) return;
  record({std::string(name), category, 'i', nowUs(), 0, threadTraceId()});
}

TraceSpan::TraceSpan(std::string name, const char* category) {
  if (!traceEnabled()) return;
  active_ = true;
  name_ = std::move(name);
  category_ = category;
  startUs_ = nowUs();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  record({std::move(name_), category_, 'X', startUs_, nowUs() - startUs_,
          threadTraceId()});
}

}  // namespace ides
