#pragma once

/// Lightweight span tracer: phase/step spans recorded in memory and written
/// as Chrome trace-event JSON (the `traceEvents` array format), viewable in
/// Perfetto or chrome://tracing.
///
/// Off by default; enabled by `IDES_TRACE=<path>` (checked once per
/// process) or explicitly via `traceConfigure`. When off, constructing a
/// TraceSpan is a load+branch — no clock read, no allocation, no lock.
/// Like the metrics registry, the tracer is strictly result-neutral:
/// nothing reads the recorded events back during a run.

#include <cstdint>
#include <string>
#include <string_view>

namespace ides {

/// Whether span recording is active.
bool traceEnabled();

/// Enable recording and set the output path ("" keeps events in memory
/// only — test hook). Safe to call at any time; events recorded so far are
/// kept.
void traceConfigure(std::string path);

/// Drop recorded events and disable recording. Test hook.
void traceDisable();

/// Write the recorded events as Chrome trace JSON to the configured path.
/// Called automatically at process exit when tracing was enabled with a
/// path; safe to call repeatedly (each call rewrites the file).
void traceFlush();

/// Events recorded so far (tests).
std::size_t traceEventCount();

/// Serialize the recorded events to a JSON string (what traceFlush writes).
std::string traceJson();

/// Record a zero-duration instant event (phase boundaries from
/// ProgressSink land here).
void traceInstant(std::string_view name, const char* category);

/// RAII span: records a complete ("X") event covering construction to
/// destruction on the current thread.
class TraceSpan {
 public:
  TraceSpan(std::string name, const char* category);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  const char* category_ = "";
  std::uint64_t startUs_ = 0;
  bool active_ = false;
};

}  // namespace ides
