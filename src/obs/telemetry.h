#pragma once

/// Process-wide, result-neutral telemetry: named counters, gauges and
/// fixed-bucket histograms behind a single registry, rendered on demand as
/// Prometheus text exposition or a deterministic JSON snapshot.
///
/// Design constraints, in order:
///   1. Result-neutral. Nothing in here is ever read back by optimization
///      code; the registry is write-only for the hot paths and read-only
///      for scrapes. Bit-identity suites must pass with telemetry on, off
///      or traced.
///   2. Cheap when on. Counters and histograms are sharded across
///      cache-line-aligned cells; a hot-path add is one relaxed fetch_add
///      on the calling thread's shard. Aggregation happens at scrape time.
///   3. Free when off. `IDES_TELEMETRY=off` (checked once per process,
///      cached in an atomic) turns every add/observe into a load+branch.
///
/// Call sites cache the returned reference in a function-local static so
/// the registry lookup (mutex + map) is paid once per site, not per event:
///
///   static Counter& hits = telemetry().counter(
///       "ides_store_sweep_cache_total", "Sweep cache lookups",
///       {{"result", "hit"}});
///   hits.add();

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ides {

/// Whether telemetry collection is active. Initialized once per process
/// from `IDES_TELEMETRY` (anything but "off"/"0"/"false" means on), then
/// cached; `setTelemetryEnabled` overrides it (tests, neutrality checks).
bool telemetryEnabled();
void setTelemetryEnabled(bool enabled);

/// Sorted at registration; order in the pair list does not matter.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

namespace obs_detail {

inline constexpr std::size_t kShards = 16;

/// Stable per-thread shard index in [0, kShards).
std::size_t threadShardIndex();

/// Relaxed CAS add — C++20 atomic<double>::fetch_add portability shim.
void addDouble(std::atomic<double>& target, double delta);

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace obs_detail

/// Monotonic event count. add() is the hot-path entry point.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!telemetryEnabled()) return;
    cells_[obs_detail::threadShardIndex()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;
  void reset();

 private:
  obs_detail::CounterCell cells_[obs_detail::kShards];
};

/// Point-in-time level (queue depths). Single cell: gauges move at
/// bookkeeping frequency, not inner-loop frequency.
class Gauge {
 public:
  void set(std::int64_t v) {
    if (!telemetryEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n = 1) {
    if (!telemetryEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n = 1) { add(-n); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: upper bounds chosen at registration, an
/// implicit +Inf bucket on top. Cumulative counts are computed at scrape.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) {
    if (!telemetryEnabled()) return;
    Shard& shard = shards_[obs_detail::threadShardIndex()];
    shard.buckets[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    obs_detail::addDouble(shard.sum, v);
  }

  struct Snapshot {
    std::vector<std::uint64_t> bucketCounts;  ///< per bound, +Inf last
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }
  void reset();

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::size_t bucketIndex(double v) const;

  std::vector<double> bounds_;  ///< ascending upper bounds, +Inf implicit
  Shard shards_[obs_detail::kShards];
};

/// The process-wide registry. Metric identity is (name, sorted labels);
/// the first registration of a name fixes its kind, help text and (for
/// histograms) bucket bounds — re-registering an existing series returns
/// the same instance, so references handed out stay valid forever.
class TelemetryRegistry {
 public:
  TelemetryRegistry();
  ~TelemetryRegistry();
  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  Counter& counter(std::string_view name, std::string_view help,
                   MetricLabels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               MetricLabels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds, MetricLabels labels = {});

  /// Prometheus text exposition format 0.0.4 (# HELP / # TYPE, cumulative
  /// `_bucket{le=...}` / `_sum` / `_count` for histograms). Families and
  /// series are emitted in lexicographic order — two scrapes of the same
  /// state render the same bytes.
  std::string prometheusText() const;

  /// The same state as a JSON object keyed by family name, deterministic
  /// ordering. This is what BENCH headers and --telemetry-dump embed.
  std::string jsonSnapshot() const;

  /// Distinct family names currently registered.
  std::size_t familyCount() const;

  /// Zero every cell, keeping registrations (and handed-out references)
  /// intact. Test hook.
  void resetAll();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The process-wide instance (never destroyed before exit handlers run).
TelemetryRegistry& telemetry();

}  // namespace ides
