#include "obs/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

namespace ides {

namespace {

bool envSaysOff() {
  const char* env = std::getenv("IDES_TELEMETRY");
  if (env == nullptr) return false;
  const std::string_view v(env);
  return v == "off" || v == "0" || v == "false";
}

std::atomic<bool>& enabledFlag() {
  static std::atomic<bool> flag{!envSaysOff()};
  return flag;
}

std::string formatDouble(double v) {
  char buf[64];
  // %.10g keeps sums exact for the integer-valued case and round-trips
  // typical latencies; exposition format has no precision mandate.
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Label value escaping per the exposition format: backslash, quote, \n.
std::string escapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// `{k="v",k2="v2"}` from sorted labels, or "" when unlabelled. Doubles as
/// the series key inside a family.
std::string renderLabels(const MetricLabels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + escapeLabelValue(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

/// Same, with an extra `le` label spliced in (histogram bucket lines).
std::string renderLabelsWithLe(const MetricLabels& labels,
                               const std::string& le) {
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    out += k + "=\"" + escapeLabelValue(v) + "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

std::string jsonEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

bool telemetryEnabled() {
  return enabledFlag().load(std::memory_order_relaxed);
}

void setTelemetryEnabled(bool enabled) {
  enabledFlag().store(enabled, std::memory_order_relaxed);
}

namespace obs_detail {

std::size_t threadShardIndex() {
  static std::atomic<std::size_t> next{0};
  const thread_local std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return shard;
}

void addDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace obs_detail

// ---- Counter --------------------------------------------------------------

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const obs_detail::CounterCell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (obs_detail::CounterCell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

// ---- Histogram ------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  const std::size_t buckets = bounds_.size() + 1;  // +Inf on top
  for (Shard& shard : shards_) {
    shard.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(buckets);
    for (std::size_t i = 0; i < buckets; ++i) shard.buckets[i] = 0;
  }
}

std::size_t Histogram::bucketIndex(double v) const {
  // Upper-bound buckets are inclusive (`le`), matching Prometheus.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::size_t>(it - bounds_.begin());
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bucketCounts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i < snap.bucketCounts.size(); ++i) {
      snap.bucketCounts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    for (std::size_t i = 0; i < bounds_.size() + 1; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

// ---- TelemetryRegistry ----------------------------------------------------

struct TelemetryRegistry::Impl {
  enum class Kind { Counter, Gauge, Histogram };

  struct Series {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind = Kind::Counter;
    std::string help;
    std::vector<double> bounds;              // histograms only
    std::map<std::string, Series> series;    // keyed by rendered labels
  };

  mutable std::mutex mutex;
  std::map<std::string, Family> families;

  Family& familyFor(std::string_view name, std::string_view help, Kind kind) {
    auto [it, inserted] = families.try_emplace(std::string(name));
    Family& family = it->second;
    if (inserted) {
      family.kind = kind;
      family.help = std::string(help);
    } else if (family.kind != kind) {
      throw std::logic_error("telemetry: metric \"" + std::string(name) +
                             "\" re-registered with a different kind");
    }
    return family;
  }
};

TelemetryRegistry::TelemetryRegistry() : impl_(std::make_unique<Impl>()) {}
TelemetryRegistry::~TelemetryRegistry() = default;

Counter& TelemetryRegistry::counter(std::string_view name,
                                    std::string_view help,
                                    MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Impl::Family& family = impl_->familyFor(name, help, Impl::Kind::Counter);
  auto [it, inserted] = family.series.try_emplace(renderLabels(labels));
  if (inserted) {
    it->second.labels = std::move(labels);
    it->second.counter = std::make_unique<Counter>();
  }
  return *it->second.counter;
}

Gauge& TelemetryRegistry::gauge(std::string_view name, std::string_view help,
                                MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Impl::Family& family = impl_->familyFor(name, help, Impl::Kind::Gauge);
  auto [it, inserted] = family.series.try_emplace(renderLabels(labels));
  if (inserted) {
    it->second.labels = std::move(labels);
    it->second.gauge = std::make_unique<Gauge>();
  }
  return *it->second.gauge;
}

Histogram& TelemetryRegistry::histogram(std::string_view name,
                                        std::string_view help,
                                        std::vector<double> bounds,
                                        MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Impl::Family& family = impl_->familyFor(name, help, Impl::Kind::Histogram);
  if (family.series.empty()) family.bounds = bounds;
  auto [it, inserted] = family.series.try_emplace(renderLabels(labels));
  if (inserted) {
    it->second.labels = std::move(labels);
    // The family's first bounds win: every series in a family shares one
    // bucket layout, as the exposition format requires.
    it->second.histogram = std::make_unique<Histogram>(family.bounds);
  }
  return *it->second.histogram;
}

std::string TelemetryRegistry::prometheusText() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string out;
  for (const auto& [name, family] : impl_->families) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Impl::Kind::Counter: out += "counter"; break;
      case Impl::Kind::Gauge: out += "gauge"; break;
      case Impl::Kind::Histogram: out += "histogram"; break;
    }
    out += "\n";
    for (const auto& [key, series] : family.series) {
      if (family.kind == Impl::Kind::Counter) {
        out += name + key + " " + std::to_string(series.counter->value()) +
               "\n";
      } else if (family.kind == Impl::Kind::Gauge) {
        out += name + key + " " + std::to_string(series.gauge->value()) +
               "\n";
      } else {
        const Histogram::Snapshot snap = series.histogram->snapshot();
        const std::vector<double>& bounds = series.histogram->bounds();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          cumulative += snap.bucketCounts[i];
          out += name + "_bucket" +
                 renderLabelsWithLe(series.labels, formatDouble(bounds[i])) +
                 " " + std::to_string(cumulative) + "\n";
        }
        cumulative += snap.bucketCounts[bounds.size()];
        out += name + "_bucket" + renderLabelsWithLe(series.labels, "+Inf") +
               " " + std::to_string(cumulative) + "\n";
        out += name + "_sum" + key + " " + formatDouble(snap.sum) + "\n";
        out += name + "_count" + key + " " + std::to_string(snap.count) +
               "\n";
      }
    }
  }
  return out;
}

std::string TelemetryRegistry::jsonSnapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string out = "{";
  bool firstFamily = true;
  for (const auto& [name, family] : impl_->families) {
    out += firstFamily ? "\n" : ",\n";
    firstFamily = false;
    out += "  \"" + jsonEscape(name) + "\": {\"type\": \"";
    switch (family.kind) {
      case Impl::Kind::Counter: out += "counter"; break;
      case Impl::Kind::Gauge: out += "gauge"; break;
      case Impl::Kind::Histogram: out += "histogram"; break;
    }
    out += "\", \"series\": [";
    bool firstSeries = true;
    for (const auto& [key, series] : family.series) {
      out += firstSeries ? "" : ", ";
      firstSeries = false;
      out += "{\"labels\": {";
      for (std::size_t i = 0; i < series.labels.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + jsonEscape(series.labels[i].first) + "\": \"" +
               jsonEscape(series.labels[i].second) + "\"";
      }
      out += "}";
      if (family.kind == Impl::Kind::Counter) {
        out += ", \"value\": " + std::to_string(series.counter->value());
      } else if (family.kind == Impl::Kind::Gauge) {
        out += ", \"value\": " + std::to_string(series.gauge->value());
      } else {
        const Histogram::Snapshot snap = series.histogram->snapshot();
        const std::vector<double>& bounds = series.histogram->bounds();
        out += ", \"count\": " + std::to_string(snap.count) +
               ", \"sum\": " + formatDouble(snap.sum) + ", \"buckets\": [";
        for (std::size_t i = 0; i < snap.bucketCounts.size(); ++i) {
          if (i > 0) out += ", ";
          const std::string le =
              i < bounds.size() ? formatDouble(bounds[i]) : "+Inf";
          out += "{\"le\": \"" + le +
                 "\", \"count\": " + std::to_string(snap.bucketCounts[i]) +
                 "}";
        }
        out += "]";
      }
      out += "}";
    }
    out += "]}";
  }
  out += "\n}";
  return out;
}

std::size_t TelemetryRegistry::familyCount() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->families.size();
}

void TelemetryRegistry::resetAll() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, family] : impl_->families) {
    for (auto& [key, series] : family.series) {
      if (series.counter) series.counter->reset();
      if (series.gauge) series.gauge->reset();
      if (series.histogram) series.histogram->reset();
    }
  }
}

TelemetryRegistry& telemetry() {
  // Leaked on purpose: instrumented code may run from atexit handlers and
  // detached threads; the registry must outlive every possible caller.
  static TelemetryRegistry* registry = new TelemetryRegistry();
  return *registry;
}

}  // namespace ides
