// Design criteria and metrics (paper slides 12-14).
//
// Criterion 1 — slack *size*: the slack left by the current design should be
// able to swallow the largest future application. We synthesize that
// application from the profile's histograms (the biggest one that would fit
// if all slack were contiguous) and best-fit pack it into the real slack
// fragments. C1P / C1m report the percentage (by demand) that does NOT fit:
// 0% for perfectly contiguous slack, large for fragmented slack.
//
// Criterion 2 — slack *distribution*: a future application with period Tmin
// needs tneed processor ticks and bneed bus bytes inside EVERY window of
// length Tmin. C2P is the sum over processors of the minimum in-window
// slack; C2m the same for the bus (in bytes).
//
// Objective (slide 14):
//   C = w1P*C1P + w1m*C1m
//     + w2P*max(0, tneed - C2P)/tneed*100
//     + w2m*max(0, bneed - C2m)/bneed*100
// The penalty terms are normalized to percent of the need so all four terms
// share a scale; the paper gives the un-normalized form and leaves weights
// unspecified (see DESIGN.md).
#pragma once

#include <cstdint>

#include "core/future_profile.h"
#include "sched/slack.h"

namespace ides {

struct MetricWeights {
  double w1p = 1.0;
  double w1m = 1.0;
  double w2p = 2.0;
  double w2m = 2.0;
};

struct DesignMetrics {
  double c1p = 0.0;          ///< % of future processor demand left unpacked
  double c1m = 0.0;          ///< % of future bus demand left unpacked
  Time c2p = 0;              ///< sum of per-node min slack in a Tmin window
  std::int64_t c2mBytes = 0; ///< min bus slack in a Tmin window (bytes)
};

/// Compute all four metrics from a slack snapshot.
DesignMetrics computeMetrics(const SlackInfo& slack,
                             const FutureProfile& profile);

/// The paper's objective function C.
double objectiveValue(const DesignMetrics& metrics,
                      const FutureProfile& profile,
                      const MetricWeights& weights);

/// C1 building block, exposed for tests and the ablation benches:
/// best-fit-decreasing packing of `items` into `containers`; returns the
/// total size of items that do not fit. Items must be sorted descending.
std::int64_t bestFitUnpacked(const std::vector<std::int64_t>& itemsDesc,
                             std::vector<std::int64_t> containers);

/// The deterministic "largest future application" demand stream for a given
/// amount of total slack: values drawn from `dist` whose sum does not exceed
/// `totalSlack` (descending). Exposed for tests.
std::vector<std::int64_t> largestFutureDemand(const DiscreteDistribution& dist,
                                              std::int64_t totalSlack);

}  // namespace ides
