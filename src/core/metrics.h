// Design criteria and metrics (paper slides 12-14).
//
// Criterion 1 — slack *size*: the slack left by the current design should be
// able to swallow the largest future application. We synthesize that
// application from the profile's histograms (the biggest one that would fit
// if all slack were contiguous) and best-fit pack it into the real slack
// fragments. C1P / C1m report the percentage (by demand) that does NOT fit:
// 0% for perfectly contiguous slack, large for fragmented slack.
//
// Criterion 2 — slack *distribution*: a future application with period Tmin
// needs tneed processor ticks and bneed bus bytes inside EVERY window of
// length Tmin. C2P is the sum over processors of the minimum in-window
// slack; C2m the same for the bus (in bytes).
//
// Objective (slide 14):
//   C = w1P*C1P + w1m*C1m
//     + w2P*max(0, tneed - C2P)/tneed*100
//     + w2m*max(0, bneed - C2m)/bneed*100
// The penalty terms are normalized to percent of the need so all four terms
// share a scale; the paper gives the un-normalized form and leaves weights
// unspecified (see DESIGN.md).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/future_profile.h"
#include "sched/slack.h"

namespace ides {

struct MetricWeights {
  double w1p = 1.0;
  double w1m = 1.0;
  double w2p = 2.0;
  double w2m = 2.0;
};

struct DesignMetrics {
  double c1p = 0.0;          ///< % of future processor demand left unpacked
  double c1m = 0.0;          ///< % of future bus demand left unpacked
  Time c2p = 0;              ///< sum of per-node min slack in a Tmin window
  std::int64_t c2mBytes = 0; ///< min bus slack in a Tmin window (bytes)
};

/// Compute all four metrics from a slack snapshot.
DesignMetrics computeMetrics(const SlackInfo& slack,
                             const FutureProfile& profile);

/// The paper's objective function C.
double objectiveValue(const DesignMetrics& metrics,
                      const FutureProfile& profile,
                      const MetricWeights& weights);

/// C1 building block, exposed for tests and the ablation benches:
/// best-fit-decreasing packing of `items` into `containers`; returns the
/// total size of items that do not fit. Items must be sorted descending.
std::int64_t bestFitUnpacked(const std::vector<std::int64_t>& itemsDesc,
                             std::vector<std::int64_t> containers);

/// The deterministic "largest future application" demand stream for a given
/// amount of total slack: values drawn from `dist` whose sum does not exceed
/// `totalSlack` (descending). Exposed for tests.
std::vector<std::int64_t> largestFutureDemand(const DiscreteDistribution& dist,
                                              std::int64_t totalSlack);

/// Ordered (value, count) multiset in run-length form — the compact
/// container/demand representation shared by the packing helpers and the
/// incremental metrics cache.
using ValueCounts = std::vector<std::pair<std::int64_t, std::int64_t>>;

/// Incrementally maintained DesignMetrics over a journaled PlatformState.
///
/// Keeps a snapshot of every occupancy-derived quantity the metrics read —
/// per-node free IntervalSets, the C1 capacity multisets with their totals,
/// per-node per-window free ticks with row minima, and per-window bus free
/// ticks — and re-derives only the nodes / slot occurrences named dirty (by
/// the platform journal, see PlatformState::journal) since the last
/// evaluation. Every maintained quantity is integral and order-independent
/// (a multiset or a sum), so metrics() is bit-identical to
/// computeMetrics(extractSlack(state), profile) by construction; the
/// property suites assert exactly that equality.
class IncrementalMetrics {
 public:
  [[nodiscard]] bool valid() const { return valid_; }
  void invalidate() { valid_ = false; }

  /// Full snapshot rebuild from `state` (first use, or whenever the dirty
  /// set since the last sync is unknown).
  void rebuild(const PlatformState& state, const FutureProfile& profile);

  /// Re-derive the named nodes and slot occurrences (occurrence key:
  /// slotIndex * roundCount + round) from `state`. Duplicates are fine; an
  /// entry whose occupancy is unchanged costs one comparison. Requires
  /// valid().
  void update(const PlatformState& state,
              const std::vector<std::uint32_t>& dirtyNodes,
              const std::vector<std::uint64_t>& dirtyOccurrences);

  /// Metrics of the snapshot occupancy. Requires valid(). Non-const: the
  /// C1 packing result is memoized per capacity multiset, so evaluations
  /// that left a class's multiset untouched (common for the bus under
  /// process-only moves) skip the packing entirely.
  [[nodiscard]] DesignMetrics metrics(const FutureProfile& profile);

 private:
  void refreshNode(const PlatformState& state, std::size_t n);
  void refreshOccurrence(const PlatformState& state, std::size_t slot,
                         std::int64_t round);

  bool valid_ = false;
  Time horizon_ = 0;
  Time tmin_ = 0;
  std::int64_t windows_ = 0;
  std::int64_t bytesPerTick_ = 1;
  std::int64_t roundCount_ = 0;

  std::vector<IntervalSet> nodeFree_;  ///< per node
  std::vector<Time> nodeMin_;          ///< per node: min in-window slack
  std::vector<Time> slotUsed_;         ///< [slot * roundCount_ + round]
  std::vector<Time> busWin_;           ///< per window: bus free ticks
  IntervalSet scratchSet_;             ///< unchanged-node early-out buffer

  ValueCounts c1pCounts_;  ///< node free interval lengths, ascending
  std::int64_t c1pTotal_ = 0;
  ValueCounts c1mCounts_;  ///< occurrence free bytes, ascending
  std::int64_t c1mTotal_ = 0;

  /// Packing memo per C1 class: the percent for the exact multiset last
  /// packed. The packing is a pure function of (multiset, distribution) and
  /// the distribution is fixed per run, so equality of the multiset gives
  /// the identical double without re-packing.
  bool memoValid_ = false;
  ValueCounts c1pMemoCounts_;
  double c1pMemoValue_ = 0.0;
  ValueCounts c1mMemoCounts_;
  double c1mMemoValue_ = 0.0;
};

}  // namespace ides
