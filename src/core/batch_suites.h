// The paper's experiment sweeps as InstanceSuites.
//
// Each figure/ablation/extension driver used to hand-roll its own nested
// loops over (sizes × seeds × strategies); these builders express the same
// experiments as canonical instance lists for the BatchRunner, shared
// between the bench drivers and `ides_cli sweep`. The generator seeds and
// per-instance SA seeds reproduce the legacy loops exactly (suiteSeed =
// figure base + seed index, sa.seed = seed index + 1), so the migrated
// drivers report bit-identical objectives.
//
// SweepScale is the effort knob previously private to bench_common.h:
// smoke (CI), default, full (paper-style patience), selected via the
// IDES_BENCH_SCALE environment variable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/batch_runner.h"
#include "tgen/benchmark_suite.h"

namespace ides {

struct SweepScale {
  std::string name = "default";
  int seeds = 3;
  int saIterations = 12000;
  std::vector<std::size_t> sizes{40, 80, 160, 240, 320};
  std::size_t futureAppsPerInstance = 5;
};

/// Scale selected by IDES_BENCH_SCALE (smoke | default | full; anything
/// else runs the default scale, matching the legacy env behavior).
SweepScale sweepScale();
/// Scale by explicit name; throws std::invalid_argument for an unknown
/// name, listing the valid set (the strict path for CLI flags).
SweepScale sweepScaleNamed(const std::string& name);

/// The paper-scale experiment instance (slides 15-17): 10 nodes, 400
/// existing processes, current application of `current` processes, tneed
/// pinned to 12000 ticks per Tmin window.
SuiteConfig paperSuiteConfig(std::size_t current, std::size_t futureApps = 0);

/// Designer options for one sweep instance (SA budget from the scale,
/// chain seed as given — the legacy benches used seedIndex + 1).
DesignerOptions sweepDesignerOptions(const SweepScale& scale,
                                     std::uint64_t saSeed = 1);

/// Figure F1 — quality: sizes × seeds × {AH, MH, SA}, suiteSeed 1000+s.
InstanceSuite qualitySweep(const SweepScale& scale);
/// Figure F2 — runtime: same shape on fresh instances, suiteSeed 2000+s.
InstanceSuite runtimeSweep(const SweepScale& scale);
/// Figure F3 — future-fit: sizes capped at 240, {AH, MH}, each instance
/// embedding future applications and probing how many still map (extras
/// future_fit / future_samples), suiteSeed 3000+s.
InstanceSuite futureSweep(const SweepScale& scale);
/// Ablation A2 — objective-weight sensitivity: four weight cases × seeds,
/// MH at 240 processes with the future-fit probe, suiteSeed 5000+s.
InstanceSuite weightsSweep(const SweepScale& scale);
/// Extension E-INC — platform lifetime: seeds × {AH, MH} custom jobs
/// playing the multi-increment queue (extras accepted / queue),
/// suiteSeed 7000+s.
InstanceSuite incrementsSweep(const SweepScale& scale);

/// Names accepted by namedSweep, in presentation order.
std::vector<std::string> sweepNames();
/// Builder lookup by name ("quality", "runtime", "future", "weights",
/// "increments"); throws std::invalid_argument listing the valid names.
InstanceSuite namedSweep(const std::string& name, const SweepScale& scale);

/// Bump when a change makes previously stored sweep results stale even
/// though the configuration fields hash the same — e.g. new generator
/// semantics, a different SA move kernel, or changed metric definitions.
/// The epoch is part of every instance fingerprint, so bumping it makes
/// the sweep store treat all old records as different content.
/// History: 2 — DesignerOptions grew the tabu field set (every fingerprint
/// hashes more fields, so epoch-1 records describe a narrower key).
inline constexpr std::uint64_t kSweepFingerprintEpoch = 2;

/// Stable 128-bit content fingerprint (32 hex chars) of one sweep
/// instance: suite name, instance identity, the full generator config and
/// every result-relevant option, plus kSweepFingerprintEpoch. This is the
/// sweep store's record key. Deliberately EXCLUDED are the knobs whose
/// result-neutrality the test suite defends — thread/shard counts,
/// speculation shape, incremental-eval toggles, trace recording — so a
/// record computed at any parallelism serves every other (the stored
/// wall-clock seconds refer to the recording run). Custom probes/jobs are
/// code and cannot be hashed; their presence is fingerprinted and their
/// identity is covered by the suite name + epoch.
std::string instanceFingerprint(const std::string& suiteName,
                                const BatchInstance& instance);

}  // namespace ides
