#include "core/simulated_annealing.h"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/speculative_eval.h"
#include "model/system_model.h"
#include "util/log.h"

namespace ides {

namespace {

[[noreturn]] void invalidOption(const char* field, const std::string& detail) {
  throw std::invalid_argument(std::string("SaOptions: ") + field + " " +
                              detail);
}

}  // namespace

void validateOptions(const SaOptions& options) {
  if (options.iterations < 0) {
    invalidOption("iterations",
                  "must be >= 0 (got " + std::to_string(options.iterations) +
                      ")");
  }
  if (!(options.initialTempFactor >= 0.0) ||
      !std::isfinite(options.initialTempFactor)) {
    invalidOption("initialTempFactor", "must be finite and >= 0");
  }
  if (!(options.finalTemp > 0.0) || !std::isfinite(options.finalTemp)) {
    invalidOption("finalTemp", "must be finite and > 0");
  }
  const auto isProbability = [](double p) {
    return std::isfinite(p) && p >= 0.0 && p <= 1.0;
  };
  if (!isProbability(options.probRemap) ||
      !isProbability(options.probProcessHint) ||
      options.probRemap + options.probProcessHint > 1.0) {
    invalidOption("move mix",
                  "probRemap and probProcessHint must each lie in [0, 1] "
                  "and sum to at most 1");
  }
  const SpeculationOptions& spec = options.speculation;
  if (spec.workers < 0) {
    invalidOption("speculation.workers",
                  "must be >= 0 (got " + std::to_string(spec.workers) + ")");
  }
  if (spec.maxDepth < 0) {
    invalidOption("speculation.maxDepth",
                  "must be >= 0 (got " + std::to_string(spec.maxDepth) + ")");
  }
  if (!(spec.acceptanceThreshold >= 0.0) ||
      !std::isfinite(spec.acceptanceThreshold)) {
    invalidOption("speculation.acceptanceThreshold",
                  "must be finite and >= 0 (0 disables speculation, values "
                  "above 1 force it)");
  }
  if (spec.window < 1) {
    invalidOption("speculation.window",
                  "must be >= 1 (got " + std::to_string(spec.window) + ")");
  }
}

SaMoveProposer::SaMoveProposer(const SolutionEvaluator& evaluator,
                               const SaOptions& options)
    : sys_(&evaluator.system()),
      probRemap_(options.probRemap),
      probProcessHint_(options.probProcessHint) {
  for (GraphId g : evaluator.currentGraphs()) {
    const ProcessGraph& graph = sys_->graph(g);
    procs_.insert(procs_.end(), graph.processes.begin(),
                  graph.processes.end());
    msgs_.insert(msgs_.end(), graph.messages.begin(), graph.messages.end());
  }
  if (procs_.empty()) {
    throw std::invalid_argument("runSimulatedAnnealing: empty application");
  }
  allowedSpan_.assign(sys_->processes().size(), {0, 0});
  for (const ProcessId p : procs_) {
    const std::vector<NodeId> nodes = sys_->process(p).allowedNodes();
    allowedSpan_[p.index()] = {static_cast<std::uint32_t>(allowed_.size()),
                               static_cast<std::uint32_t>(nodes.size())};
    allowed_.insert(allowed_.end(), nodes.begin(), nodes.end());
  }
}

SaMove SaMoveProposer::propose(const MappingSolution& current,
                               Rng& proposalRng) const {
  SaMove move;
  const double dice = proposalRng.uniform01();
  if (dice < probRemap_) {
    // Re-map a process to a random allowed node, ASAP.
    const ProcessId p = proposalRng.pick(procs_);
    const auto [begin, count] = allowedSpan_[p.index()];
    move.kind = SaMove::Kind::Remap;
    move.process = p;
    move.node = allowed_[begin + proposalRng.index(count)];
    move.evalHint.graph = sys_->process(p).graph;
    move.evalHint.process = p;
  } else if (dice < probRemap_ + probProcessHint_) {
    // Move a process into a random slack of its node: a random
    // period-relative start hint that still leaves room for the WCET.
    const ProcessId p = proposalRng.pick(procs_);
    const Process& proc = sys_->process(p);
    const ProcessGraph& graph = sys_->graph(proc.graph);
    const Time maxHint = std::max<Time>(
        0, graph.deadline - proc.wcetOn(current.nodeOf(p)));
    move.kind = SaMove::Kind::ProcessHint;
    move.process = p;
    move.hint = maxHint > 0 ? proposalRng.uniformInt(0, maxHint) : 0;
    move.evalHint.graph = proc.graph;
    move.evalHint.process = p;
  } else if (!msgs_.empty()) {
    // Move a message into a random bus slack.
    const MessageId m = proposalRng.pick(msgs_);
    const ProcessGraph& graph = sys_->graph(sys_->message(m).graph);
    move.kind = SaMove::Kind::MessageHint;
    move.message = m;
    move.hint = proposalRng.uniformInt(0, graph.deadline - 1);
    move.evalHint.graph = graph.id;
    move.evalHint.message = m;
  }
  return move;  // Kind::None when the message branch found nothing to move
}

void SaMoveProposer::apply(const SaMove& move, MappingSolution& solution) {
  switch (move.kind) {
    case SaMove::Kind::None:
      break;
    case SaMove::Kind::Remap:
      solution.setNode(move.process, move.node);
      solution.setStartHint(move.process, 0);
      break;
    case SaMove::Kind::ProcessHint:
      solution.setStartHint(move.process, move.hint);
      break;
    case SaMove::Kind::MessageHint:
      solution.setMessageHint(move.message, move.hint);
      break;
  }
}

// ---- ZeroDeltaFilter ------------------------------------------------------

ZeroDeltaFilter::ZeroDeltaFilter(const SolutionEvaluator& evaluator)
    : ev_(&evaluator), sys_(&evaluator.system()) {
  const SystemModel& sys = *sys_;
  period_.assign(sys.processes().size(), 0);
  instances_.assign(sys.processes().size(), 0);
  for (const GraphId g : evaluator.currentGraphs()) {
    const ProcessGraph& graph = sys.graph(g);
    const auto instances = static_cast<std::int32_t>(sys.instanceCount(g));
    for (const ProcessId p : graph.processes) {
      const auto pi = static_cast<std::size_t>(p.index());
      period_[pi] = graph.period;
      instances_[pi] = instances;
    }
  }
}

void ZeroDeltaFilter::captureAccepted(const EvalContext& ctx,
                                      const EvalResult& result) {
  if (!result.feasible) {
    valid_ = false;
    return;
  }
  arrivals_ = ctx.arrivalBounds();
  const std::vector<ScheduledProcess>& procs = ctx.processes();
  ends_.resize(procs.size());
  for (std::size_t i = 0; i < procs.size(); ++i) ends_[i] = procs[i].end;
  valid_ = true;
}

void ZeroDeltaFilter::capture(const std::vector<Time>& arrivals,
                              const std::vector<Time>& ends) {
  arrivals_ = arrivals;
  ends_ = ends;
  valid_ = true;
}

bool ZeroDeltaFilter::zeroDelta(const SaMove& move,
                                const MappingSolution& current) const {
  if (!valid_) return false;
  switch (move.kind) {
    case SaMove::Kind::ProcessHint: {
      const ProcessId p = move.process;
      const Time bound =
          std::max(current.startHint(p), move.hint);  // covers old and new
      const auto pi = static_cast<std::size_t>(p.index());
      const Time period = period_[pi];
      for (std::int32_t k = 0; k < instances_[pi]; ++k) {
        if (static_cast<Time>(k) * period + bound >
            arrivals_[ev_->jobIndexOf(p, k)]) {
          return false;
        }
      }
      return true;
    }
    case SaMove::Kind::MessageHint: {
      const Message& msg = sys_->message(move.message);
      if (current.nodeOf(msg.src) == current.nodeOf(msg.dst)) {
        return true;  // hand-off never reads the hint
      }
      const Time bound = std::max(current.messageHint(move.message), move.hint);
      const auto pi = static_cast<std::size_t>(msg.src.index());
      const Time period = period_[pi];
      for (std::int32_t k = 0; k < instances_[pi]; ++k) {
        if (static_cast<Time>(k) * period + bound >
            ends_[ev_->jobIndexOf(msg.src, k)]) {
          return false;
        }
      }
      return true;
    }
    case SaMove::Kind::Remap:
    case SaMove::Kind::None:
      return false;
  }
  return false;
}

SaSchedule saSchedule(const SaOptions& options, double initialCost) {
  SaSchedule s;
  // Proportional to the starting cost, floored at finalTemp (never a
  // heating schedule). An absolute floor of 1.0 here used to make the
  // start infinitely hot for sub-unit objectives — small instances and
  // lifecycle steps — where it erased any good starting solution before
  // the chain cooled into the exploitation regime.
  s.t0 = std::max(options.finalTemp,
                  options.initialTempFactor * initialCost);
  s.alpha = options.iterations > 1
                ? std::pow(options.finalTemp / s.t0,
                           1.0 / static_cast<double>(options.iterations - 1))
                : 1.0;
  return s;
}

SaResult runSimulatedAnnealing(const SolutionEvaluator& evaluator,
                               const MappingSolution& initial,
                               const SaOptions& options,
                               EvalContext* scratch) {
  validateOptions(options);
  if (options.speculation.workers > 1) {
    // The speculative engine replays the exact same two-stream chain with
    // batches of moves pre-evaluated on parallel workers.
    return runSpeculativeAnnealing(evaluator, initial, options);
  }
  if (scratch != nullptr && &scratch->evaluator() != &evaluator) {
    throw std::invalid_argument(
        "runSimulatedAnnealing: scratch context bound to another evaluator");
  }

  const SaMoveProposer proposer(evaluator, options);
  Rng proposalRng(rngStreamSeed(options.seed, kSaProposalStream));
  Rng acceptanceRng(rngStreamSeed(options.seed, kSaAcceptanceStream));

  // One journaled scratch state for the whole chain: each move re-schedules
  // only the graphs it touches (full pass when incrementalEval is off). A
  // caller-provided context (the RunContext pool lease) is reused verbatim —
  // its checkpoints are verified, never trusted, so results are identical.
  EvalContext* ctx = scratch;
  std::unique_ptr<EvalContext> owned;
  if (ctx == nullptr && options.incrementalEval) {
    owned = std::make_unique<EvalContext>(evaluator);
    ctx = owned.get();
  }
  auto evaluateMove = [&](const MappingSolution& s,
                          const MoveHint& hint) -> EvalResult {
    return options.incrementalEval ? ctx->evaluate(s, hint)
                                   : evaluator.evaluate(s);
  };

  SaResult result;
  result.solution = initial;
  result.eval =
      options.incrementalEval ? ctx->evaluate(initial)
                              : evaluator.evaluate(initial);
  result.evaluations = 1;
  if (!result.eval.feasible) {
    throw std::invalid_argument("runSimulatedAnnealing: initial not feasible");
  }
  // Gap-fingerprint filter: replay provably schedule-identical hint moves
  // without evaluating them (incremental mode only — the fingerprint comes
  // from the context's committed schedule).
  const bool useFilter = options.incrementalEval;
  ZeroDeltaFilter filter(evaluator);
  if (useFilter) filter.captureAccepted(*ctx, result.eval);
  if (options.recordCostTrace) {
    result.costTrace.reserve(static_cast<std::size_t>(options.iterations));
  }

  MappingSolution current = initial;
  double currentCost = result.eval.cost;

  const SaSchedule schedule = saSchedule(options, result.eval.cost);
  double temp = schedule.t0;

  MappingSolution trial;
  for (int it = 0; it < options.iterations; ++it, temp *= schedule.alpha) {
    if (options.stop != nullptr && options.stop->stopRequested()) {
      result.stopped = true;
      break;
    }
    const SaMove move = proposer.propose(current, proposalRng);
    ++result.proposals;
    if (move.kind != SaMove::Kind::None) {
      if (useFilter && filter.zeroDelta(move, current)) {
        // The evaluation would return exactly currentCost: delta == 0
        // accepts without an acceptance draw, and the incumbent cannot
        // improve. Replay the certain acceptance without evaluating; the
        // fingerprint stays valid (the schedule is unchanged).
        SaMoveProposer::apply(move, current);
        ++result.evaluations;
        ++result.zeroDeltaSkips;
        ++result.accepted;
      } else {
        trial = current;
        SaMoveProposer::apply(move, trial);
        const EvalResult r = evaluateMove(trial, move.evalHint);
        ++result.evaluations;
        const double delta = r.cost - currentCost;
        if (metropolisAccept(delta, temp, acceptanceRng)) {
          current = std::move(trial);
          currentCost = r.cost;
          ++result.accepted;
          if (r.feasible && r.cost < result.eval.cost) {
            result.solution = current;
            result.eval = r;
            IDES_LOG_AT(LogLevel::Debug)
                << "SA iter " << it << ": best C=" << r.cost << " T=" << temp;
          }
          if (useFilter) filter.captureAccepted(*ctx, r);
        }
      }
    }
    if (options.recordCostTrace) result.costTrace.push_back(currentCost);
  }
  return result;
}

}  // namespace ides
