#include "core/simulated_annealing.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "model/system_model.h"
#include "util/log.h"
#include "util/rng.h"

namespace ides {

SaResult runSimulatedAnnealing(const SolutionEvaluator& evaluator,
                               const MappingSolution& initial,
                               const SaOptions& options) {
  const SystemModel& sys = evaluator.system();
  Rng rng(options.seed);

  // Movable entities: the current application's processes and messages.
  std::vector<ProcessId> procs;
  std::vector<MessageId> msgs;
  for (GraphId g : evaluator.currentGraphs()) {
    const ProcessGraph& graph = sys.graph(g);
    procs.insert(procs.end(), graph.processes.begin(), graph.processes.end());
    msgs.insert(msgs.end(), graph.messages.begin(), graph.messages.end());
  }
  if (procs.empty()) {
    throw std::invalid_argument("runSimulatedAnnealing: empty application");
  }

  // One journaled scratch state for the whole chain: each move re-schedules
  // only the graphs it touches (full pass when incrementalEval is off).
  EvalContext ctx(evaluator);
  auto evaluateMove = [&](const MappingSolution& s,
                          const MoveHint& hint) -> EvalResult {
    return options.incrementalEval ? ctx.evaluate(s, hint)
                                   : evaluator.evaluate(s);
  };

  SaResult result;
  result.solution = initial;
  result.eval =
      options.incrementalEval ? ctx.evaluate(initial)
                              : evaluator.evaluate(initial);
  result.evaluations = 1;
  if (!result.eval.feasible) {
    throw std::invalid_argument("runSimulatedAnnealing: initial not feasible");
  }

  MappingSolution current = initial;
  double currentCost = result.eval.cost;

  const double t0 =
      std::max(1.0, options.initialTempFactor * result.eval.cost);
  const double alpha =
      options.iterations > 1
          ? std::pow(options.finalTemp / t0,
                     1.0 / static_cast<double>(options.iterations - 1))
          : 1.0;
  double temp = t0;

  for (int it = 0; it < options.iterations; ++it, temp *= alpha) {
    MappingSolution trial = current;
    MoveHint hint;
    const double dice = rng.uniform01();
    if (dice < options.probRemap) {
      // Re-map a process to a random allowed node, ASAP.
      const ProcessId p = rng.pick(procs);
      const auto allowed = sys.process(p).allowedNodes();
      trial.setNode(p, allowed[rng.index(allowed.size())]);
      trial.setStartHint(p, 0);
      hint.graph = sys.process(p).graph;
      hint.process = p;
    } else if (dice < options.probRemap + options.probProcessHint) {
      // Move a process into a random slack of its node: a random
      // period-relative start hint that still leaves room for the WCET.
      const ProcessId p = rng.pick(procs);
      const Process& proc = sys.process(p);
      const ProcessGraph& graph = sys.graph(proc.graph);
      const Time maxHint = std::max<Time>(
          0, graph.deadline - proc.wcetOn(trial.nodeOf(p)));
      trial.setStartHint(p, maxHint > 0 ? rng.uniformInt(0, maxHint) : 0);
      hint.graph = proc.graph;
      hint.process = p;
    } else if (!msgs.empty()) {
      // Move a message into a random bus slack.
      const MessageId m = rng.pick(msgs);
      const ProcessGraph& graph = sys.graph(sys.message(m).graph);
      trial.setMessageHint(m, rng.uniformInt(0, graph.deadline - 1));
      hint.graph = graph.id;
      hint.message = m;
    } else {
      continue;
    }

    const EvalResult r = evaluateMove(trial, hint);
    ++result.evaluations;
    const double delta = r.cost - currentCost;
    if (delta <= 0.0 ||
        rng.uniform01() < std::exp(-delta / std::max(temp, 1e-12))) {
      current = std::move(trial);
      currentCost = r.cost;
      ++result.accepted;
      if (r.feasible && r.cost < result.eval.cost) {
        result.solution = current;
        result.eval = r;
        IDES_LOG_AT(LogLevel::Debug)
            << "SA iter " << it << ": best C=" << r.cost << " T=" << temp;
      }
    }
  }
  return result;
}

}  // namespace ides
