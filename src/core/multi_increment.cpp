#include "core/multi_increment.h"

#include "core/initial_mapping.h"
#include "core/mapping_heuristic.h"
#include "core/simulated_annealing.h"
#include "model/system_model.h"
#include "util/log.h"

namespace ides {

MultiIncrementResult runIncrementSequence(
    const SystemModel& sys, const FutureProfile& profile,
    const std::vector<ApplicationId>& increments,
    const MultiIncrementOptions& options) {
  const FrozenBase base = freezeExistingApplications(sys);
  if (!base.feasible) {
    throw std::runtime_error(
        "runIncrementSequence: existing base not schedulable");
  }

  MultiIncrementResult result{{}, 0, base.state};

  for (const ApplicationId appId : increments) {
    if (options.stop != nullptr && options.stop->stopRequested()) {
      result.stopped = true;
      break;
    }
    const Application& app = sys.application(appId);
    IncrementStep step;
    step.application = appId;

    // IM for this increment on the platform as it stands.
    PlatformState trial = result.finalState;
    ScheduleRequest req;
    req.graphs = app.graphs;
    req.chooseNodes = true;
    const ScheduleOutcome im = scheduleGraphs(sys, req, trial);

    if (im.feasible) {
      // Optimize the increment with the chosen policy, then commit.
      MappingSolution solution = im.mapping;
      if (options.strategy != Strategy::AdHoc) {
        const SolutionEvaluator evaluator(sys, result.finalState, profile,
                                          options.weights, app.graphs);
        if (options.strategy == Strategy::MappingHeuristic) {
          MhOptions mh = options.mh;
          if (mh.stop == nullptr) mh.stop = options.stop;
          solution = runMappingHeuristic(evaluator, solution, mh).solution;
        } else {
          SaOptions sa = options.sa;
          if (sa.stop == nullptr) sa.stop = options.stop;
          solution = runSimulatedAnnealing(evaluator, solution, sa).solution;
        }
        // A token that fired mid-optimization left `solution` at whatever
        // quality the cut-short search reached; committing it would
        // silently bias the lifetime result, so discard the increment.
        if (options.stop != nullptr && options.stop->stopRequested()) {
          result.stopped = true;
          break;
        }
      }
      // Commit the optimized mapping.
      PlatformState committed = result.finalState;
      ScheduleRequest commitReq;
      commitReq.graphs = app.graphs;
      commitReq.mapping = &solution;
      const ScheduleOutcome outcome =
          scheduleGraphs(sys, commitReq, committed);
      if (outcome.feasible) {
        step.accepted = true;
        result.finalState = std::move(committed);
        result.accepted += 1;
        const SlackInfo slack = extractSlack(result.finalState);
        step.metrics = computeMetrics(slack, profile);
        step.objective =
            objectiveValue(step.metrics, profile, options.weights);
        IDES_LOG_AT(LogLevel::Debug)
            << "increment " << app.name << " accepted, C=" << step.objective;
      }
    }

    result.steps.push_back(step);
    if (!step.accepted && options.stopAtFirstReject) break;
  }
  return result;
}

}  // namespace ides
