// Multi-increment simulation: the incremental design process played
// forward over several product versions.
//
// The paper evaluates one step of the process (map the current application,
// check one future application). The real claim is about the *process*: a
// platform designed future-aware should absorb MORE successive increments
// before running out of room. This module simulates that: a queue of
// candidate applications is implemented one per version; at each version
// the increment is mapped with the chosen strategy and frozen; the run
// ends when an increment no longer fits. The number of absorbed increments
// is the lifetime of the platform under that design policy.
#pragma once

#include <vector>

#include "core/future_profile.h"
#include "core/incremental_designer.h"
#include "core/metrics.h"
#include "sched/platform_state.h"
#include "util/ids.h"
#include "util/stop_token.h"

namespace ides {

class SystemModel;

struct IncrementStep {
  ApplicationId application;
  bool accepted = false;
  /// Objective C after committing this increment (if accepted).
  double objective = 0.0;
  DesignMetrics metrics;
};

struct MultiIncrementResult {
  /// Steps in queue order; acceptance stops at the first rejection only if
  /// stopAtFirstReject, otherwise later increments are still tried.
  std::vector<IncrementStep> steps;
  std::size_t accepted = 0;
  /// Platform occupancy after the last accepted increment.
  PlatformState finalState;
  /// True when MultiIncrementOptions::stop cut the simulation short; the
  /// committed prefix is complete and untainted (no increment optimized
  /// under a fired token is ever committed).
  bool stopped = false;
};

struct MultiIncrementOptions {
  Strategy strategy = Strategy::MappingHeuristic;
  MetricWeights weights;
  MhOptions mh;
  SaOptions sa;
  /// If false, a rejected increment is skipped and the next one is tried
  /// (product management picks another feature); if true the simulation
  /// stops at the first rejection.
  bool stopAtFirstReject = false;
  /// Cooperative cancellation, polled between increments and re-checked
  /// after each increment's optimization: an increment whose improvement
  /// was cut short by the token is discarded, not frozen, so a deadline
  /// never silently commits degraded mappings. Null = run the full queue.
  const StopToken* stop = nullptr;
};

/// Implement the applications in `increments` (any kind; they are treated
/// as successive current applications) on top of the frozen
/// AppKind::Existing base of `sys`, one version at a time, re-optimizing
/// each increment with the chosen strategy before freezing it.
MultiIncrementResult runIncrementSequence(
    const SystemModel& sys, const FutureProfile& profile,
    const std::vector<ApplicationId>& increments,
    const MultiIncrementOptions& options = {});

}  // namespace ides
