#include "core/parallel_annealing.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace ides {

namespace {

// Initial-temperature multipliers for chains 1..K-1 (chain 0 keeps the base
// schedule verbatim). Colder starts behave like iterated descent — the
// right regime when the per-chain budget is short — while hotter starts
// keep one escape hatch across infeasible ridges.
constexpr double kTempLadder[] = {0.25, 0.5, 2.0, 0.1, 1.5, 0.75, 4.0};

SaOptions chainOptionsFor(const SaOptions& base, int index) {
  SaOptions opts = base;
  opts.seed = parallelSaChainSeed(base.seed, index);
  if (index > 0) {
    constexpr int ladder =
        static_cast<int>(sizeof(kTempLadder) / sizeof(kTempLadder[0]));
    opts.initialTempFactor *= kTempLadder[(index - 1) % ladder];
  }
  return opts;
}

}  // namespace

void validateOptions(const ParallelSaOptions& options) {
  const auto check = [](const char* field, int value, int min) {
    if (value < min) {
      throw std::invalid_argument(
          std::string("ParallelSaOptions: ") + field + " must be >= " +
          std::to_string(min) + " (got " + std::to_string(value) + ")");
    }
  };
  check("restarts", options.restarts, 1);
  check("threads", options.threads, 0);  // 0 = hardware concurrency
  check("perChainIterations", options.perChainIterations, 0);
  check("speculativeWorkers", options.speculativeWorkers, 0);
  validateOptions(options.base);
}

std::uint64_t parallelSaChainSeed(std::uint64_t baseSeed, int index) {
  // The splitmix64 finalizer decorrelates consecutive chain indices so
  // adjacent chains do not start mt19937_64 from near-identical states.
  if (index == 0) return baseSeed;
  return splitmix64(baseSeed + static_cast<std::uint64_t>(index));
}

ParallelSaResult runParallelAnnealing(const SolutionEvaluator& evaluator,
                                      const MappingSolution& initial,
                                      const ParallelSaOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  validateOptions(options);
  const int chains = options.restarts;

  SaOptions chainOptions = options.base;
  if (options.perChainIterations > 0) {
    chainOptions.iterations = options.perChainIterations;
  }

  unsigned threadBudget =
      options.threads > 0 ? static_cast<unsigned>(options.threads)
                          : std::thread::hardware_concurrency();
  if (threadBudget == 0) threadBudget = 1;
  const unsigned workers =
      std::min<unsigned>(threadBudget, static_cast<unsigned>(chains));

  // Two-level split of the thread budget: `workers` chain threads, and the
  // leftover capacity as per-chain speculative evaluation workers (worker 0
  // of each chain is the chain thread itself, so a chain with S workers
  // costs S threads total). Speculation does not change any chain's
  // trajectory, so this split affects wall-clock only.
  if (options.speculativeWorkers > 0) {
    chainOptions.speculation.workers = options.speculativeWorkers;
  } else {
    chainOptions.speculation.workers =
        static_cast<int>(std::max(1u, threadBudget / std::max(1u, workers)));
  }

  // Fail fast (and on the caller's thread) on an infeasible start instead
  // of throwing inside every worker.
  if (!evaluator.evaluate(initial).feasible) {
    throw std::invalid_argument("runParallelAnnealing: initial not feasible");
  }

  // Chain i writes only results[i] / errors[i]; the atomic counter hands
  // out chain indices, so no two workers touch the same slot.
  std::vector<SaResult> results(static_cast<std::size_t>(chains));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(chains));
  std::atomic<int> next{0};

  auto worker = [&]() {
    for (int i = next.fetch_add(1, std::memory_order_relaxed); i < chains;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      const SaOptions opts = chainOptionsFor(chainOptions, i);
      try {
        results[static_cast<std::size_t>(i)] =
            runSimulatedAnnealing(evaluator, initial, opts);
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = std::current_exception();
      }
    }
  };

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  ParallelSaResult out;
  out.chainCosts.reserve(static_cast<std::size_t>(chains));
  for (int i = 0; i < chains; ++i) {
    const SaResult& r = results[static_cast<std::size_t>(i)];
    out.evaluations += r.evaluations;
    out.accepted += r.accepted;
    out.proposals += r.proposals;
    out.zeroDeltaSkips += r.zeroDeltaSkips;
    out.stopped = out.stopped || r.stopped;
    out.chainCosts.push_back(r.eval.cost);
    // Every chain's incumbent is feasible (SA only promotes feasible
    // states); strict < keeps ties on the lowest chain index.
    if (out.bestChain < 0 || r.eval.cost < out.eval.cost) {
      out.bestChain = i;
      out.eval = r.eval;
    }
  }
  out.solution = results[static_cast<std::size_t>(out.bestChain)].solution;
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

}  // namespace ides
