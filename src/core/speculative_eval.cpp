#include "core/speculative_eval.h"

#include <stdexcept>
#include <utility>

#include "obs/telemetry.h"
#include "util/log.h"

namespace ides {

namespace {

/// Ring buffer over the last N Metropolis decisions. rate() is 1.0 until
/// the first decision lands — the chain starts hot, so defaulting to "high
/// acceptance" keeps the warm-up sequential. Deterministic by construction:
/// the content is a pure function of the decision sequence.
class AcceptanceWindow {
 public:
  explicit AcceptanceWindow(int capacity)
      : ring_(static_cast<std::size_t>(std::max(1, capacity)), 0) {}

  void push(bool accepted) {
    const char value = accepted ? 1 : 0;
    if (size_ == ring_.size()) {
      accepted_ += value - ring_[head_];
      ring_[head_] = value;
      head_ = (head_ + 1) % ring_.size();
    } else {
      ring_[(head_ + size_) % ring_.size()] = value;
      accepted_ += value;
      ++size_;
    }
  }

  [[nodiscard]] double rate() const {
    return size_ == 0 ? 1.0
                      : static_cast<double>(accepted_) /
                            static_cast<double>(size_);
  }

 private:
  std::vector<char> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  int accepted_ = 0;
};

}  // namespace

// ---- SpeculativeEvalPool --------------------------------------------------

SpeculativeEvalPool::SpeculativeEvalPool(const SolutionEvaluator& evaluator,
                                         int workers, bool incremental)
    : ev_(&evaluator),
      workers_(std::max(1, workers)),
      incremental_(incremental),
      contexts_(evaluator,
                incremental ? static_cast<std::size_t>(workers_) : 0),
      errors_(static_cast<std::size_t>(workers_)) {
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { workerLoop(w); });
  }
}

SpeculativeEvalPool::~SpeculativeEvalPool() {
  if (!threads_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job_ = Job::Stop;
      ++epoch_;
    }
    start_.notify_all();
    for (std::thread& t : threads_) t.join();
  }
}

void SpeculativeEvalPool::workerLoop(int w) {
  std::uint64_t seen = 0;
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_.wait(lock, [&] { return epoch_ != seen; });
      seen = epoch_;
      job = job_;
    }
    if (job == Job::Stop) return;
    runShare(w);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --running_;
    }
    done_.notify_one();
  }
}

void SpeculativeEvalPool::runShare(int w) {
  try {
    for (std::size_t i = static_cast<std::size_t>(w); i < itemCount_;
         i += static_cast<std::size_t>(workers_)) {
      Item& item = items_[i];
      if (item.trial == nullptr) continue;
      if (incremental_) {
        EvalContext& ctx = contexts_[static_cast<std::size_t>(w)];
        item.result = ctx.evaluate(*item.trial, item.hint);
        if (item.result.feasible) {
          // Fingerprint for the zero-delta filter, taken now: this context
          // moves on to the worker's next item before the replay decides
          // which item the chain accepts.
          item.arrivals = ctx.arrivalBounds();
          const std::vector<ScheduledProcess>& procs = ctx.processes();
          item.ends.resize(procs.size());
          for (std::size_t p = 0; p < procs.size(); ++p) {
            item.ends[p] = procs[p].end;
          }
        }
      } else {
        item.result = ev_->evaluate(*item.trial);
      }
    }
  } catch (...) {
    errors_[static_cast<std::size_t>(w)] = std::current_exception();
  }
}

void SpeculativeEvalPool::dispatch(Job job) {
  if (threads_.empty()) {
    job_ = job;
    runShare(0);
  } else {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job_ = job;
      running_ = workers_ - 1;
      ++epoch_;
    }
    start_.notify_all();
    runShare(0);
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return running_ == 0; });
  }
  for (std::exception_ptr& e : errors_) {
    if (e) {
      const std::exception_ptr err = std::exchange(e, nullptr);
      std::rethrow_exception(err);
    }
  }
}

void SpeculativeEvalPool::evaluate(Item* items, std::size_t count) {
  items_ = items;
  itemCount_ = count;
  dispatch(Job::Evaluate);
}

EvalResult SpeculativeEvalPool::evaluateOne(const MappingSolution& solution,
                                            const MoveHint& hint) {
  return incremental_ ? contexts_[0].evaluate(solution, hint)
                      : ev_->evaluate(solution);
}

// ---- the speculative chain ------------------------------------------------

SaResult runSpeculativeAnnealing(const SolutionEvaluator& evaluator,
                                 const MappingSolution& initial,
                                 const SaOptions& options) {
  validateOptions(options);
  const SpeculationOptions& spec = options.speculation;
  const int workers = std::max(1, spec.workers);
  const int maxDepth =
      std::max(workers, spec.maxDepth > 0 ? spec.maxDepth : 4 * workers);

  const SaMoveProposer proposer(evaluator, options);
  SpeculativeEvalPool pool(evaluator, workers, options.incrementalEval);
  Rng proposalRng(rngStreamSeed(options.seed, kSaProposalStream));
  Rng acceptanceRng(rngStreamSeed(options.seed, kSaAcceptanceStream));

  SaResult result;
  result.solution = initial;
  result.eval = pool.evaluateOne(initial, MoveHint{});
  result.evaluations = 1;
  if (!result.eval.feasible) {
    throw std::invalid_argument("runSimulatedAnnealing: initial not feasible");
  }
  if (options.recordCostTrace) {
    result.costTrace.reserve(static_cast<std::size_t>(options.iterations));
  }

  MappingSolution current = initial;
  double currentCost = result.eval.cost;

  // Gap-fingerprint filter (incremental mode only): provably
  // schedule-identical hint moves are replayed without evaluation. Their
  // acceptance is certain, so a batch stops generating at the first one —
  // everything after it would be discarded anyway — which is what pushes
  // the within-chain speedup toward workers-x on hint-heavy phases.
  const bool useFilter = options.incrementalEval;
  ZeroDeltaFilter filter(evaluator);
  if (useFilter) {
    filter.captureAccepted(pool.sequentialContext(), result.eval);
  }

  const SaSchedule schedule = saSchedule(options, result.eval.cost);
  double temp = schedule.t0;

  AcceptanceWindow window(spec.window);
  int depth = workers;

  // Per-batch scratch, reused across batches.
  std::vector<SaMove> moves;
  std::vector<Rng> proposalAfter;  // stream state after each proposal
  std::vector<MappingSolution> trials;
  std::vector<SpeculativeEvalPool::Item> items;
  MappingSolution trialScratch;

  int it = 0;
  while (it < options.iterations) {
    // Cooperative stop, polled once per sequential step / speculation
    // batch. The poll never touches the RNG streams, so an unfired token
    // leaves the trajectory bit-identical.
    if (options.stop != nullptr && options.stop->stopRequested()) {
      result.stopped = true;
      break;
    }
    const bool speculate =
        workers > 1 && window.rate() < spec.acceptanceThreshold;

    if (!speculate) {
      // Sequential stepping on worker 0's context — draw for draw the
      // plain chain of runSimulatedAnnealing.
      const SaMove move = proposer.propose(current, proposalRng);
      ++result.proposals;
      if (move.kind != SaMove::Kind::None) {
        if (useFilter && filter.zeroDelta(move, current)) {
          // Certain acceptance at delta == 0: no evaluation, no acceptance
          // draw, no incumbent change. The window is not pushed either —
          // these auto-accepts say nothing about the real acceptance rate,
          // and counting them would disengage speculation exactly on the
          // hint-heavy phases it speeds up.
          SaMoveProposer::apply(move, current);
          ++result.evaluations;
          ++result.zeroDeltaSkips;
          ++result.accepted;
        } else {
          trialScratch = current;
          SaMoveProposer::apply(move, trialScratch);
          const EvalResult r = pool.evaluateOne(trialScratch, move.evalHint);
          ++result.evaluations;
          const double delta = r.cost - currentCost;
          const bool accepted = metropolisAccept(delta, temp, acceptanceRng);
          window.push(accepted);
          if (accepted) {
            current = std::move(trialScratch);
            currentCost = r.cost;
            ++result.accepted;
            if (r.feasible && r.cost < result.eval.cost) {
              result.solution = current;
              result.eval = r;
              IDES_LOG_AT(LogLevel::Debug)
                  << "SA iter " << it << ": best C=" << r.cost
                  << " T=" << temp;
            }
            if (useFilter) {
              filter.captureAccepted(pool.sequentialContext(), r);
            }
          }
        }
      }
      if (options.recordCostTrace) result.costTrace.push_back(currentCost);
      ++it;
      temp *= schedule.alpha;
      continue;
    }

    // Speculation batch: K moves, each proposed as if every earlier one in
    // the batch gets rejected (they perturb the same `current`).
    const int batchSize =
        std::min(depth, options.iterations - it);
    moves.clear();
    proposalAfter.clear();
    trials.resize(static_cast<std::size_t>(batchSize));
    if (items.size() < static_cast<std::size_t>(batchSize)) {
      items.resize(static_cast<std::size_t>(batchSize));
    }
    int generated = 0;
    int skipIndex = -1;  // first zero-delta proposal; never dispatched
    for (int j = 0; j < batchSize; ++j) {
      const SaMove move = proposer.propose(current, proposalRng);
      moves.push_back(move);
      proposalAfter.push_back(proposalRng);
      ++generated;
      const auto idx = static_cast<std::size_t>(j);
      items[idx].trial = nullptr;
      if (move.kind == SaMove::Kind::None) continue;
      trials[idx] = current;
      SaMoveProposer::apply(move, trials[idx]);
      if (useFilter && filter.zeroDelta(move, current)) {
        // Certain acceptance: every later speculation would be discarded,
        // so stop the batch here and leave this item undispatched.
        skipIndex = j;
        break;
      }
      items[idx].trial = &trials[idx];
      items[idx].hint = move.evalHint;
    }
    pool.evaluate(items.data(), static_cast<std::size_t>(generated));
    ++result.speculativeBatches;
    // Batch shape telemetry (write-only; the adaptive depth below never
    // reads it): how deep the speculation window actually ran.
    static Histogram& batchDepth = telemetry().histogram(
        "ides_sa_speculation_batch_depth",
        "Moves dispatched per speculative evaluation batch",
        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
    batchDepth.observe(static_cast<double>(generated));

    // Replay the Metropolis decisions in chain order. Identical draw
    // consumption and floating-point sequence as the sequential path.
    bool acceptedInBatch = false;
    for (int j = 0; j < generated; ++j) {
      const SaMove& move = moves[static_cast<std::size_t>(j)];
      // Counted at replay, not at generation: proposals rewound after an
      // acceptance are re-drawn by the next batch, so counting consumed
      // iterations keeps the counter identical to the sequential chain.
      ++result.proposals;
      bool accepted = false;
      if (j == skipIndex) {
        // Zero-delta replay: certain acceptance at exactly currentCost,
        // no acceptance draw, no incumbent change, window untouched.
        ++result.evaluations;
        ++result.zeroDeltaSkips;
        accepted = true;
        current = std::move(trials[static_cast<std::size_t>(j)]);
        ++result.accepted;
      } else if (move.kind != SaMove::Kind::None) {
        const EvalResult& r = items[static_cast<std::size_t>(j)].result;
        ++result.evaluations;
        const double delta = r.cost - currentCost;
        accepted = metropolisAccept(delta, temp, acceptanceRng);
        window.push(accepted);
        if (accepted) {
          current = std::move(trials[static_cast<std::size_t>(j)]);
          currentCost = r.cost;
          ++result.accepted;
          if (r.feasible && r.cost < result.eval.cost) {
            result.solution = current;
            result.eval = r;
            IDES_LOG_AT(LogLevel::Debug)
                << "SA iter " << it << ": best C=" << r.cost << " T=" << temp
                << " (speculative batch of " << batchSize << ")";
          }
          if (useFilter) {
            const SpeculativeEvalPool::Item& item =
                items[static_cast<std::size_t>(j)];
            if (r.feasible) {
              filter.capture(item.arrivals, item.ends);
            } else {
              filter.invalidate();
            }
          }
        }
      }
      if (options.recordCostTrace) result.costTrace.push_back(currentCost);
      ++it;
      temp *= schedule.alpha;
      if (accepted) {
        // The first acceptance invalidates the later speculations: discard
        // them and rewind the proposal stream to its state right after the
        // winning proposal. The worker contexts re-align with `current`
        // lazily, on their next evaluation (checkpoint rewind + committed
        // move), so the catch-up overlaps the next batch instead of
        // costing a dedicated round.
        for (int k = j + 1; k < generated; ++k) {
          if (k != skipIndex && moves[static_cast<std::size_t>(k)].kind !=
                                    SaMove::Kind::None) {
            ++result.discardedEvaluations;
          }
        }
        proposalRng = proposalAfter[static_cast<std::size_t>(j)];
        depth = std::max(workers, depth / 2);
        acceptedInBatch = true;
        break;
      }
    }
    if (!acceptedInBatch) depth = std::min(depth * 2, maxDepth);
  }
  return result;
}

}  // namespace ides
