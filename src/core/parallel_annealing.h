// Parallel multi-start simulated annealing.
//
// Runs K independent SA chains with distinct, deterministically derived
// seeds on a fixed-size std::thread pool and keeps the best feasible
// incumbent across chains. Chains 1..K-1 additionally diversify the
// cooling schedule (colder and hotter starts around the base temperature),
// hedging against a mistuned schedule on short per-chain budgets.
// The shared SolutionEvaluator is const; every chain owns its private
// EvalContext (the delta-aware per-thread evaluation scratch), so the
// chains re-schedule only what their moves touch without any sharing.
//
// Determinism: chain i's seed depends only on (options.base.seed, i), and
// chains never exchange state, so the result is bit-identical for any
// thread count. Chain 0 reuses base.seed verbatim, which makes the K-chain
// result provably no worse than a single chain run with the same options.
//
// Two-level parallelism: when the chain count cannot saturate the thread
// budget, the leftover threads become per-chain speculative evaluation
// workers (core/speculative_eval.h) — chains across the pool, speculative
// move evaluations within each chain. Speculation is bit-identical to the
// sequential chain for any worker count, so the PSA result stays
// independent of the thread budget and of how it is split.
#pragma once

#include <cstdint>
#include <vector>

#include "core/simulated_annealing.h"

namespace ides {

struct ParallelSaOptions {
  /// Per-chain SA configuration; `base.seed` seeds the whole ensemble and
  /// `base.iterations` is the per-chain default.
  SaOptions base;
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  int threads = 0;
  /// Number of independent chains (K). Must be >= 1.
  int restarts = 4;
  /// Iterations per chain; 0 means base.iterations.
  int perChainIterations = 0;
  /// Speculative evaluation workers per chain
  /// (SpeculationOptions::workers for every chain). 0 = auto: divide the
  /// thread budget evenly over the chains that run concurrently, so e.g. 2
  /// chains on 8 threads each get 4 workers. 1 = speculation off. Results
  /// are identical for every value — this splits the thread budget, not
  /// the search.
  int speculativeWorkers = 0;
};

/// Range-checks every knob (restarts >= 1, non-negative thread/iteration
/// budgets) including the embedded base SaOptions; throws
/// std::invalid_argument naming the offending field. Called on entry of
/// runParallelAnnealing.
void validateOptions(const ParallelSaOptions& options);

/// Seed of chain `index` for a given ensemble seed: chain 0 keeps the base
/// seed, later chains get splitmix64-scrambled derivatives.
std::uint64_t parallelSaChainSeed(std::uint64_t baseSeed, int index);

struct ParallelSaResult {
  /// Best feasible incumbent across all chains (ties break toward the
  /// lowest chain index, keeping selection deterministic).
  MappingSolution solution;
  EvalResult eval;
  /// Index of the winning chain.
  int bestChain = -1;
  /// Final incumbent cost of every chain, in chain order.
  std::vector<double> chainCosts;
  /// Evaluation / move-generation counters summed over all chains (see
  /// SaResult for the per-chain semantics).
  std::size_t evaluations = 0;
  std::size_t accepted = 0;
  std::size_t proposals = 0;
  std::size_t zeroDeltaSkips = 0;
  /// Wall-clock time of the whole ensemble, in seconds.
  double seconds = 0.0;
  /// True when base.stop cancelled at least one chain before its budget
  /// (the incumbent is still the best feasible solution seen so far).
  bool stopped = false;
};

/// Requires `initial` to be feasible (same contract as
/// runSimulatedAnnealing); throws std::invalid_argument otherwise or when
/// options.restarts < 1.
ParallelSaResult runParallelAnnealing(const SolutionEvaluator& evaluator,
                                      const MappingSolution& initial,
                                      const ParallelSaOptions& options = {});

}  // namespace ides
