// The pluggable optimizer API.
//
// Every mapping strategy — the paper's AH / MH / SA and this repo's PSA —
// is an Optimizer: `name()` plus `run(evaluator, context) -> RunReport`.
// All optimizers share the same contract: start from the Initial Mapping on
// the evaluator's frozen baseline, improve it, and report the final
// solution with its metrics. Construction takes the strategy's typed
// options struct, so configuration stays statically checked; resolution by
// name goes through the StrategyRegistry, which is what the CLI, the batch
// runner and the IncrementalDesigner facade use. Adding a strategy is one
// subclass plus one registry entry — no switch statements to extend.
//
// RunContext carries the run's cross-cutting services:
//   * an EvalContextPool lease — per-thread delta-aware evaluation scratch,
//     shared across successive runs on the same evaluator (the AH/MH/SA
//     comparison on one instance re-uses one pool instead of re-copying the
//     baseline per strategy);
//   * a cooperative StopToken (deadline + cancellation) threaded into the
//     strategy inner loops, so a fired token yields a well-formed partial
//     result with RunReport::stopped set;
//   * a ProgressSink notified at the run's phase boundaries.
//
// Determinism: an optimizer's RunReport is a pure function of (evaluator,
// typed options); the context services never perturb results — pool
// contexts are verified-never-trusted, and an unfired stop token leaves
// trajectories bit-identical (asserted by the optimizer test suite against
// direct runSimulatedAnnealing / runParallelAnnealing calls).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/evaluator.h"
#include "core/mapping_heuristic.h"
#include "core/metrics.h"
#include "core/parallel_annealing.h"
#include "core/simulated_annealing.h"
#include "core/tabu_search.h"
#include "obs/trace.h"
#include "sched/schedule.h"
#include "util/stop_token.h"

namespace ides {

/// One bag of options for every built-in strategy: the registry factories
/// pick the fields their optimizer needs, so a single instance configures a
/// whole AH/MH/SA/PSA comparison consistently.
struct DesignerOptions {
  MetricWeights weights;
  MhOptions mh;
  /// Chain parameters for both SA and PSA (PSA overrides `psa.base` with
  /// this, so one knob set configures the single chain and the ensemble).
  SaOptions sa;
  /// PSA ensemble shape (threads/restarts/perChainIterations); `psa.base`
  /// is ignored here — see `sa`.
  ParallelSaOptions psa;
  /// Tabu-search budget and memory shape (the "tabu" registry entry).
  TabuOptions tabu;
};

/// Range-checks the weights and every embedded strategy option set; throws
/// std::invalid_argument naming the offending field. Called by the
/// IncrementalDesigner constructor and the registry factories, so invalid
/// configurations fail loudly at setup instead of misbehaving silently.
void validateOptions(const DesignerOptions& options);

/// One phase-boundary notification of an optimizer or batch run.
struct ProgressEvent {
  std::string_view optimizer;  ///< Optimizer::name() (or batch instance id)
  std::string_view phase;      ///< "initial-mapping", "improve", "final", …
  std::size_t step = 0;        ///< phase-dependent counter (e.g. instance #)
  std::size_t total = 0;       ///< counter bound when known, else 0
  double cost = 0.0;           ///< current objective/cost when known
};
using ProgressSink = std::function<void(const ProgressEvent&)>;

/// Cross-cutting services of one or more optimizer runs. Reusable: running
/// several strategies on the same evaluator through one context shares the
/// leased evaluation pool.
class RunContext {
 public:
  RunContext() = default;

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Cooperative cancellation; null = never stops.
  const StopToken* stop = nullptr;
  /// Phase-boundary progress notifications; empty = silent.
  ProgressSink progress;

  [[nodiscard]] bool stopRequested() const {
    return stop != nullptr && stop->stopRequested();
  }
  void report(const ProgressEvent& event) const {
    if (traceEnabled()) {
      traceInstant(
          std::string(event.optimizer) + ":" + std::string(event.phase),
          "progress");
    }
    if (progress) progress(event);
  }

  /// Lease of a per-run EvalContextPool bound to `evaluator`, created on
  /// first use and reused by later calls with the same evaluator (grown if
  /// a later caller asks for more contexts). Asking for a different
  /// evaluator drops the old pool — a lease never outlives its evaluator
  /// as long as the context is not reused across evaluator lifetimes
  /// (the batch runner builds one RunContext per instance for exactly this
  /// reason).
  EvalContextPool& leasePool(const SolutionEvaluator& evaluator,
                             std::size_t size);

 private:
  std::unique_ptr<EvalContextPool> pool_;
  const SolutionEvaluator* poolEvaluator_ = nullptr;
};

/// What every strategy reports: the paper's comparison row for one run.
struct RunReport {
  std::string strategy;  ///< Optimizer::name()
  bool feasible = false;
  MappingSolution mapping;
  /// Schedule of the current application only (frozen part excluded).
  Schedule schedule;
  DesignMetrics metrics;
  /// Objective C of the final solution.
  double objective = 0.0;
  /// Wall-clock runtime in seconds (includes the Initial Mapping).
  double seconds = 0.0;
  std::size_t evaluations = 0;
  /// Move-generation telemetry of the improvement phase, summed over every
  /// annealing chain the strategy ran (all zero for AH and MH, which do not
  /// draw from a proposal stream): proposals drawn, moves accepted, and the
  /// subset of proposals the gap-fingerprint zero-delta filter replayed
  /// without any evaluation (always 0 when incrementalEval is off).
  std::size_t proposals = 0;
  std::size_t accepted = 0;
  std::size_t zeroDeltaSkips = 0;
  /// True when a StopToken ended the run before its configured budget.
  bool stopped = false;
};

/// A mapping strategy. Implementations are immutable after construction
/// (options are taken by value), so one instance can serve concurrent runs
/// on different evaluators.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Full strategy run: Initial Mapping on the evaluator's baseline,
  /// improvement, final evaluation. Never returns an infeasible mapping as
  /// feasible; a fired stop token yields the best solution found so far.
  [[nodiscard]] RunReport run(const SolutionEvaluator& evaluator,
                              RunContext& context) const;

  /// Warm-started run: when `warmStart` is non-null and evaluates feasibly
  /// on this evaluator, improvement starts from it instead of the Initial
  /// Mapping (progress phase "warm-start" instead of "initial-mapping").
  /// An infeasible seed — e.g. lifecycle placements gone stale after a
  /// platform perturbation — falls back to the cold run above; the seed's
  /// one validation evaluation is still accounted in the report. A null
  /// seed is exactly the cold run, so callers can thread an optional seed
  /// through unconditionally.
  [[nodiscard]] RunReport run(const SolutionEvaluator& evaluator,
                              RunContext& context,
                              const MappingSolution* warmStart) const;

 protected:
  /// Strategy hook: improve `solution` (feasible on entry) in place and
  /// return the number of schedule evaluations consumed. Sets
  /// `report.stopped` when a stop token cut the improvement short and fills
  /// the report's move-generation telemetry (proposals / accepted /
  /// zeroDeltaSkips) where the strategy tracks it.
  virtual std::size_t improve(const SolutionEvaluator& evaluator,
                              MappingSolution& solution, RunContext& context,
                              RunReport& report) const = 0;
};

/// AH — stop at the first valid solution (the Initial Mapping).
class AdHocOptimizer final : public Optimizer {
 public:
  AdHocOptimizer() = default;
  [[nodiscard]] std::string name() const override { return "AH"; }

 protected:
  std::size_t improve(const SolutionEvaluator&, MappingSolution&,
                      RunContext&, RunReport&) const override {
    return 0;
  }
};

/// MH — the paper's iterative improvement heuristic.
class MappingHeuristicOptimizer final : public Optimizer {
 public:
  explicit MappingHeuristicOptimizer(MhOptions options = {});
  [[nodiscard]] std::string name() const override { return "MH"; }
  [[nodiscard]] const MhOptions& options() const { return options_; }

 protected:
  std::size_t improve(const SolutionEvaluator& evaluator,
                      MappingSolution& solution, RunContext& context,
                      RunReport& report) const override;

 private:
  MhOptions options_;
};

/// SA — the near-optimal simulated-annealing reference (speculative
/// parallel evaluation included, per options.speculation).
class SimulatedAnnealingOptimizer final : public Optimizer {
 public:
  explicit SimulatedAnnealingOptimizer(SaOptions options = {});
  [[nodiscard]] std::string name() const override { return "SA"; }
  [[nodiscard]] const SaOptions& options() const { return options_; }

 protected:
  std::size_t improve(const SolutionEvaluator& evaluator,
                      MappingSolution& solution, RunContext& context,
                      RunReport& report) const override;

 private:
  SaOptions options_;
};

/// PSA — best-of-K multi-start SA on a thread pool, composing SA's
/// speculative workers unchanged (two-level parallelism).
class ParallelAnnealingOptimizer final : public Optimizer {
 public:
  explicit ParallelAnnealingOptimizer(ParallelSaOptions options = {});
  [[nodiscard]] std::string name() const override { return "PSA"; }
  [[nodiscard]] const ParallelSaOptions& options() const { return options_; }

 protected:
  std::size_t improve(const SolutionEvaluator& evaluator,
                      MappingSolution& solution, RunContext& context,
                      RunReport& report) const override;

 private:
  ParallelSaOptions options_;
};

/// tabu — best-admissible local search with recency memory over the SA move
/// kernel (core/tabu_search.h); the registry's proof that a strategy is one
/// subclass plus one entry.
class TabuSearchOptimizer final : public Optimizer {
 public:
  explicit TabuSearchOptimizer(TabuOptions options = {});
  [[nodiscard]] std::string name() const override { return "tabu"; }
  [[nodiscard]] const TabuOptions& options() const { return options_; }

 protected:
  std::size_t improve(const SolutionEvaluator& evaluator,
                      MappingSolution& solution, RunContext& context,
                      RunReport& report) const override;

 private:
  TabuOptions options_;
};

/// Name -> optimizer factory. The built-in registry (AH, MH, SA, PSA, tabu)
/// is
/// what the CLI, the batch runner and the designer facade resolve against;
/// extensions register additional factories on their own instance or on a
/// copy of the built-in one.
class StrategyRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Optimizer>(const DesignerOptions&)>;

  StrategyRegistry() = default;

  /// Registers a factory; throws std::invalid_argument on a duplicate name.
  void add(std::string name, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Registered names in registration order (stable listing for the CLI).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Instantiates the named optimizer after validating `options`. Throws
  /// std::invalid_argument for an unknown name, listing the valid set.
  [[nodiscard]] std::unique_ptr<Optimizer> create(
      const std::string& name, const DesignerOptions& options = {}) const;

  /// The built-in registry with AH, MH, SA, PSA and tabu registered. The
  /// returned reference is to a process-wide constant; copy it to extend.
  static const StrategyRegistry& builtin();

 private:
  std::vector<std::pair<std::string, Factory>> factories_;
};

}  // namespace ides
