#include "core/modification.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "core/initial_mapping.h"
#include "model/system_model.h"
#include "util/log.h"

namespace ides {

namespace {

struct SubsetEval {
  bool feasible = false;
  double objective = 0.0;
  DesignMetrics metrics;
  MappingSolution solution;
  Schedule schedule;
  std::size_t evaluations = 0;
};

/// Design with the given subset of existing applications unfrozen: freeze
/// the remainder (in id order, as they were delivered), then IM + MH over
/// current + subset graphs.
SubsetEval evaluateSubset(const SystemModel& sys, const FutureProfile& profile,
                          const std::unordered_set<ApplicationId>& subset,
                          const ModificationOptions& options) {
  SubsetEval out;

  // Frozen base: existing applications not in the subset.
  PlatformState state(sys.architecture(), sys.hyperperiod());
  for (ApplicationId appId : sys.applicationsOfKind(AppKind::Existing)) {
    if (subset.contains(appId)) continue;
    ScheduleRequest req;
    req.graphs = sys.application(appId).graphs;
    req.chooseNodes = true;
    const ScheduleOutcome frozen = scheduleGraphs(sys, req, state);
    out.evaluations += 1;
    if (!frozen.feasible) return out;  // this freeze order fails: infeasible
  }

  // Movable set: the unfrozen existing graphs first (they were there
  // before), then the current application.
  std::vector<GraphId> movable;
  for (ApplicationId appId : sys.applicationsOfKind(AppKind::Existing)) {
    if (!subset.contains(appId)) continue;
    const auto& graphs = sys.application(appId).graphs;
    movable.insert(movable.end(), graphs.begin(), graphs.end());
  }
  const auto current = sys.graphsOfKind(AppKind::Current);
  movable.insert(movable.end(), current.begin(), current.end());

  // Initial mapping over the whole movable set.
  PlatformState imState = state;
  ScheduleRequest imReq;
  imReq.graphs = movable;
  imReq.chooseNodes = true;
  const ScheduleOutcome im = scheduleGraphs(sys, imReq, imState);
  out.evaluations += 1;
  if (!im.feasible) return out;

  const SolutionEvaluator evaluator(sys, state, profile, options.weights,
                                    movable);
  const MhResult mh = runMappingHeuristic(evaluator, im.mapping, options.mh);
  out.evaluations += mh.evaluations;

  ScheduleOutcome outcome;
  const EvalResult eval =
      evaluator.evaluate(mh.solution, &outcome, nullptr);
  out.evaluations += 1;
  if (!eval.feasible) return out;
  out.feasible = true;
  out.objective = eval.cost;
  out.metrics = eval.metrics;
  out.solution = mh.solution;
  out.schedule = std::move(outcome.schedule);
  return out;
}

}  // namespace

ModificationResult designWithModifications(
    const SystemModel& sys, const FutureProfile& profile,
    const std::vector<std::int64_t>& modificationCost,
    const ModificationOptions& options) {
  if (modificationCost.size() != sys.applications().size()) {
    throw std::invalid_argument(
        "designWithModifications: one cost entry per application required");
  }

  ModificationResult result;
  std::unordered_set<ApplicationId> omega;

  SubsetEval best = evaluateSubset(sys, profile, omega, options);
  result.evaluations += best.evaluations;
  double bestTotal =
      best.feasible ? best.objective : SolutionEvaluator::kUnplacedPenalty;
  std::int64_t bestCost = 0;

  const std::vector<ApplicationId> existing =
      sys.applicationsOfKind(AppKind::Existing);

  while (omega.size() < options.maxModifiedApps) {
    bool improved = false;
    ApplicationId bestApp;
    SubsetEval bestCandidate;
    std::int64_t bestCandidateCost = 0;

    for (ApplicationId app : existing) {
      if (omega.contains(app)) continue;
      const std::int64_t cost = modificationCost[app.index()];
      if (cost == kCannotModify) continue;

      std::unordered_set<ApplicationId> trial = omega;
      trial.insert(app);
      SubsetEval candidate = evaluateSubset(sys, profile, trial, options);
      result.evaluations += candidate.evaluations;
      if (!candidate.feasible) continue;
      const std::int64_t trialCost = bestCost + cost;
      const double total =
          candidate.objective +
          options.costWeight * static_cast<double>(trialCost);
      if (total < bestTotal - 1e-9) {
        bestTotal = total;
        bestApp = app;
        bestCandidate = std::move(candidate);
        bestCandidateCost = trialCost;
        improved = true;
      }
    }

    if (!improved) break;
    omega.insert(bestApp);
    result.modifiedApps.push_back(bestApp);
    best = std::move(bestCandidate);
    bestCost = bestCandidateCost;
    IDES_LOG_AT(LogLevel::Debug)
        << "modification: unfreeze app " << bestApp.value << ", total now "
        << bestTotal;
  }

  result.feasible = best.feasible;
  result.modificationCost = bestCost;
  result.objective = best.feasible ? best.objective : 0.0;
  result.totalCost = bestTotal;
  result.metrics = best.metrics;
  result.solution = std::move(best.solution);
  result.schedule = std::move(best.schedule);
  return result;
}

}  // namespace ides
