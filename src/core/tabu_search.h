// Tabu search over the same design transformations as SA.
//
// A best-improvement local search with short-term memory: every iteration
// draws a batch of candidate moves from the shared SaMoveProposer kernel,
// evaluates each against the current state, and commits the best admissible
// one — admissible meaning not tabu, or tabu but better than the incumbent
// (aspiration). The tabu list is recency-keyed on the reversed attribute:
// re-mapping a process back to a node it recently left, or re-touching a
// recently moved start/message hint, is forbidden for `tenure` iterations.
// Unlike SA there is no acceptance stream — the walk always moves, relying
// on the memory to escape local minima — so one proposal RNG stream fully
// determines the trajectory.
//
// Determinism: the result is a pure function of (evaluator, initial,
// options); incrementalEval only switches the evaluation engine
// (bit-identical by EvalContext's verified-hint contract), and an unfired
// stop token leaves the trajectory untouched.
#pragma once

#include <cstdint>

#include "core/evaluator.h"
#include "sched/mapping.h"
#include "util/stop_token.h"

namespace ides {

struct TabuOptions {
  std::uint64_t seed = 1;
  int iterations = 5000;
  /// Candidate moves drawn per iteration (None draws are skipped, not
  /// re-drawn, so the proposal stream stays aligned with the draw count).
  int candidates = 8;
  /// Iterations a reversed move attribute stays tabu.
  int tenure = 32;
  /// Move mix, as in SaOptions (remainder: message-hint moves).
  double probRemap = 0.5;
  double probProcessHint = 0.35;
  /// Evaluate candidates through the delta-aware EvalContext; results are
  /// bit-identical either way (pure performance switch, like SA's).
  bool incrementalEval = true;
  /// Polled once per iteration; a fired token keeps the incumbent and sets
  /// TabuResult::stopped.
  const StopToken* stop = nullptr;
};

/// Range-checks every knob; throws std::invalid_argument naming the
/// offending field.
void validateOptions(const TabuOptions& options);

struct TabuResult {
  MappingSolution solution;  ///< best feasible solution seen
  EvalResult eval;
  /// Initial evaluation plus one per evaluated candidate.
  std::size_t evaluations = 0;
  /// Iterations that committed a move (== iterations run: tabu search
  /// always moves).
  std::size_t accepted = 0;
  /// Proposals drawn from the kernel, None draws included.
  std::size_t proposals = 0;
  /// True when TabuOptions::stop ended the search before its budget.
  bool stopped = false;
};

/// Requires `initial` to be feasible; throws std::invalid_argument
/// otherwise. `scratch`, when given, is a caller-owned EvalContext bound to
/// the same evaluator used instead of constructing one (pure reuse, same
/// contract as runSimulatedAnnealing).
TabuResult runTabuSearch(const SolutionEvaluator& evaluator,
                         const MappingSolution& initial,
                         const TabuOptions& options = {},
                         EvalContext* scratch = nullptr);

}  // namespace ides
