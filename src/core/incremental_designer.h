// IncrementalDesigner: the library facade.
//
// Wires the whole flow of the paper together: freeze the existing
// applications, construct the initial mapping, then improve it with the
// chosen strategy and report the design metrics, the objective C, and the
// wall-clock runtime. One designer instance can run several strategies on
// the same frozen baseline, which is how the benchmark harness compares
// AH / MH / SA on identical instances.
#pragma once

#include <memory>
#include <optional>

#include "core/evaluator.h"
#include "core/future_profile.h"
#include "core/initial_mapping.h"
#include "core/mapping_heuristic.h"
#include "core/metrics.h"
#include "core/parallel_annealing.h"
#include "core/simulated_annealing.h"
#include "sched/schedule.h"

namespace ides {

class SystemModel;

enum class Strategy {
  AdHoc,               ///< AH: stop at the first valid solution (IM)
  MappingHeuristic,    ///< MH: the paper's iterative improvement
  SimulatedAnnealing,  ///< SA: near-optimal reference
  ParallelAnnealing,   ///< PSA: best-of-K multi-start SA on a thread pool
};

const char* toString(Strategy s);

struct DesignerOptions {
  MetricWeights weights;
  MhOptions mh;
  /// Chain parameters for both SA and PSA (PSA overrides `psa.base` with
  /// this, so one knob set configures the single chain and the ensemble).
  SaOptions sa;
  /// PSA ensemble shape (threads/restarts/perChainIterations); `psa.base`
  /// is ignored here — see `sa`.
  ParallelSaOptions psa;
};

struct DesignResult {
  Strategy strategy = Strategy::AdHoc;
  bool feasible = false;
  MappingSolution mapping;
  /// Schedule of the current application only (frozen part excluded).
  Schedule schedule;
  DesignMetrics metrics;
  /// Objective C of the final solution.
  double objective = 0.0;
  /// Wall-clock strategy runtime in seconds (includes IM).
  double seconds = 0.0;
  std::size_t evaluations = 0;
};

class IncrementalDesigner {
 public:
  /// Freezes the existing applications immediately; throws
  /// std::runtime_error if they cannot be feasibly scheduled.
  IncrementalDesigner(const SystemModel& sys, FutureProfile profile,
                      DesignerOptions options = {});

  /// Run one strategy from a fresh IM start.
  DesignResult run(Strategy strategy);

  [[nodiscard]] const SolutionEvaluator& evaluator() const {
    return *evaluator_;
  }
  /// Frozen schedule of the existing applications.
  [[nodiscard]] const Schedule& frozenSchedule() const {
    return frozen_.schedule;
  }
  [[nodiscard]] const FrozenBase& frozenBase() const { return frozen_; }

  /// Platform state with a result committed; input for future-fit checks.
  [[nodiscard]] PlatformState stateWith(const DesignResult& result) const {
    return evaluator_->stateWith(result.mapping);
  }

 private:
  const SystemModel* sys_;
  DesignerOptions options_;
  FrozenBase frozen_;
  std::unique_ptr<SolutionEvaluator> evaluator_;
};

}  // namespace ides
