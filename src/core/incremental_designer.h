// IncrementalDesigner: the library facade.
//
// Wires the whole flow of the paper together: freeze the existing
// applications, construct the initial mapping, then improve it with the
// chosen strategy and report the design metrics, the objective C, and the
// wall-clock runtime. One designer instance can run several strategies on
// the same frozen baseline, which is how the benchmark harness compares
// AH / MH / SA on identical instances.
//
// Strategies resolve through the pluggable optimizer API (core/optimizer.h):
// run("SA") looks the name up in StrategyRegistry::builtin() and executes
// the optimizer with this designer's options and a shared RunContext (one
// EvalContextPool lease across successive runs). The Strategy enum overload
// is a deprecated shim kept for source compatibility — it forwards to the
// name-based path and produces bit-identical results; new code should use
// the registry names (see README "Optimizer API").
#pragma once

#include <memory>
#include <string>

#include "core/evaluator.h"
#include "core/future_profile.h"
#include "core/initial_mapping.h"
#include "core/metrics.h"
#include "core/optimizer.h"
#include "sched/schedule.h"

namespace ides {

class SystemModel;

/// Deprecated shim: the closed strategy set predating the registry. Kept
/// so existing callers (and the multi-increment simulation) compile
/// unchanged; internally every value maps onto its registry name.
enum class Strategy {
  AdHoc,               ///< AH: stop at the first valid solution (IM)
  MappingHeuristic,    ///< MH: the paper's iterative improvement
  SimulatedAnnealing,  ///< SA: near-optimal reference
  ParallelAnnealing,   ///< PSA: best-of-K multi-start SA on a thread pool
};

/// Registry name of a legacy enum value ("AH", "MH", "SA", "PSA").
const char* toString(Strategy s);

struct DesignResult {
  /// Registry name of the strategy that produced this result.
  std::string strategyName = "AH";
  /// Deprecated shim: enum value when the strategy is one of the four
  /// built-ins (left at AdHoc for custom registry strategies —
  /// `strategyName` is authoritative).
  Strategy strategy = Strategy::AdHoc;
  bool feasible = false;
  MappingSolution mapping;
  /// Schedule of the current application only (frozen part excluded).
  Schedule schedule;
  DesignMetrics metrics;
  /// Objective C of the final solution.
  double objective = 0.0;
  /// Wall-clock strategy runtime in seconds (includes IM).
  double seconds = 0.0;
  std::size_t evaluations = 0;
  /// True when a StopToken ended the run before its configured budget.
  bool stopped = false;
};

/// Not thread-safe: the designer's runs share one RunContext (and its
/// EvalContextPool lease), so concurrent run() calls on one instance race
/// on the pooled evaluation scratch. Run strategies sequentially — results
/// are identical either way — or give each thread its own designer; for
/// shared-evaluator concurrency use Optimizer::run directly with one
/// RunContext per thread (the evaluator itself is const-safe).
class IncrementalDesigner {
 public:
  /// Freezes the existing applications immediately; throws
  /// std::runtime_error if they cannot be feasibly scheduled and
  /// std::invalid_argument if `options` fail validation.
  IncrementalDesigner(const SystemModel& sys, FutureProfile profile,
                      DesignerOptions options = {});

  /// Run a registered strategy by name from a fresh IM start; throws
  /// std::invalid_argument for an unknown name (listing the valid set).
  DesignResult run(const std::string& strategyName);
  /// Same, with caller-provided cross-cutting services (stop token,
  /// progress sink, pool lease).
  DesignResult run(const std::string& strategyName, RunContext& context);
  /// Run a caller-constructed optimizer (e.g. one with bespoke typed
  /// options that differ from this designer's DesignerOptions).
  DesignResult run(const Optimizer& optimizer, RunContext& context);
  /// Warm-started runs (lifecycle replay): improvement starts from
  /// `warmStart` when it is non-null and still evaluates feasibly; an
  /// infeasible or null seed falls back to the fresh-IM path, so the same
  /// call site serves both policies. See Optimizer::run's warm overload.
  DesignResult run(const std::string& strategyName, RunContext& context,
                   const MappingSolution* warmStart);
  DesignResult run(const Optimizer& optimizer, RunContext& context,
                   const MappingSolution* warmStart);
  /// Deprecated shim: enum-based dispatch, forwards to run(toString(s)).
  DesignResult run(Strategy strategy);

  [[nodiscard]] const SystemModel& system() const { return *sys_; }
  [[nodiscard]] const DesignerOptions& options() const { return options_; }
  [[nodiscard]] const SolutionEvaluator& evaluator() const {
    return *evaluator_;
  }
  /// Frozen schedule of the existing applications.
  [[nodiscard]] const Schedule& frozenSchedule() const {
    return frozen_.schedule;
  }
  [[nodiscard]] const FrozenBase& frozenBase() const { return frozen_; }

  /// Platform state with a result committed; input for future-fit checks.
  [[nodiscard]] PlatformState stateWith(const DesignResult& result) const {
    return evaluator_->stateWith(result.mapping);
  }

 private:
  const SystemModel* sys_;
  DesignerOptions options_;
  FrozenBase frozen_;
  std::unique_ptr<SolutionEvaluator> evaluator_;
  /// Shared services across this designer's runs: one EvalContextPool
  /// lease serves the whole AH/MH/SA comparison on this instance.
  RunContext context_;
};

}  // namespace ides
