#include "core/initial_mapping.h"

#include "model/system_model.h"

namespace ides {

FrozenBase freezeExistingApplications(const SystemModel& sys) {
  FrozenBase base{PlatformState(sys.architecture(), sys.hyperperiod()),
                  Schedule{}, MappingSolution(sys), true};
  for (ApplicationId appId : sys.applicationsOfKind(AppKind::Existing)) {
    const Application& app = sys.application(appId);
    ScheduleRequest req;
    req.graphs = app.graphs;
    req.chooseNodes = true;
    ScheduleOutcome outcome = scheduleGraphs(sys, req, base.state);
    if (!outcome.feasible) {
      base.feasible = false;
      return base;
    }
    base.schedule.merge(outcome.schedule);
    // Record the nodes so later message scheduling (and analyses) can see
    // where existing processes live.
    for (const ScheduledProcess& sp : outcome.schedule.processes()) {
      base.mapping.setNode(sp.pid, sp.node);
    }
  }
  return base;
}

ScheduleOutcome initialMapping(const SystemModel& sys, PlatformState& state) {
  ScheduleRequest req;
  req.graphs = sys.graphsOfKind(AppKind::Current);
  req.chooseNodes = true;
  return scheduleGraphs(sys, req, state);
}

}  // namespace ides
