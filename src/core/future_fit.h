// Future-fit check: can a concrete future application be implemented on the
// system after the current application has been committed?
//
// This is the paper's third experiment (slide 17): generate future
// applications, then try to map and schedule them — with the existing AND
// current applications frozen — using the same Initial Mapping construction.
// A future application "fits" iff IM finds a valid schedule.
#pragma once

#include "sched/list_scheduler.h"
#include "sched/platform_state.h"
#include "util/ids.h"

namespace ides {

class SystemModel;

struct FutureFitResult {
  bool fits = false;
  ScheduleOutcome outcome;
};

/// Try to map + schedule one AppKind::Future application on top of `base`
/// (typically SolutionEvaluator::stateWith(committed solution)). The base is
/// copied; nothing is mutated.
FutureFitResult tryMapFutureApplication(const SystemModel& sys,
                                        ApplicationId futureApp,
                                        const PlatformState& base);

}  // namespace ides
