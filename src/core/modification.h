// Modification-aware incremental design — the paper's announced follow-up
// (CODES 2001: "Allow modifications to the existing applications: capture
// the modification cost, decide which applications should be modified,
// minimize the modification cost").
//
// The DAC'01 formulation forbids touching the existing applications
// (requirement a). In practice some of them *may* be re-mapped — at a
// price: re-validation, re-certification, re-testing of that application.
// This module models that price as a per-application modification cost R_i
// and searches for the subset Ω of existing applications to modify that
// minimizes
//
//     total = C(design with Ω movable) + costWeight * Σ_{i in Ω} R_i
//
// Subset selection is greedy (the CODES paper's iterative flavour): start
// from Ω = ∅; repeatedly try unfreezing each remaining existing
// application, re-run IM + MH with the enlarged movable set, and keep the
// best single addition while it lowers the total; stop at a local minimum
// or after maxModifiedApps additions. Applications whose modification is
// forbidden get cost kCannotModify and are never unfrozen.
#pragma once

#include <cstdint>
#include <vector>

#include "core/evaluator.h"
#include "core/mapping_heuristic.h"
#include "core/metrics.h"
#include "sched/mapping.h"
#include "sched/schedule.h"

namespace ides {

class SystemModel;

/// Sentinel cost for applications that must never be modified.
inline constexpr std::int64_t kCannotModify = -1;

struct ModificationOptions {
  /// Objective units per modification-cost unit (lambda in the total).
  double costWeight = 1.0;
  /// Upper bound on |Omega|.
  std::size_t maxModifiedApps = 3;
  MetricWeights weights;
  MhOptions mh;
};

struct ModificationResult {
  bool feasible = false;
  /// The chosen Omega, in the order the greedy search added them.
  std::vector<ApplicationId> modifiedApps;
  std::int64_t modificationCost = 0;
  /// Objective C of the final design (movable = current + Omega).
  double objective = 0.0;
  /// objective + costWeight * modificationCost — what the search minimized.
  double totalCost = 0.0;
  DesignMetrics metrics;
  /// Mapping/hints of every movable process, and their schedule.
  MappingSolution solution;
  Schedule schedule;
  std::size_t evaluations = 0;
};

/// Run modification-aware design. `modificationCost[a]` is R_a for
/// application id a (one entry per application in the model; entries for
/// non-existing applications are ignored; kCannotModify pins an
/// application). Throws std::invalid_argument on arity mismatch.
ModificationResult designWithModifications(
    const SystemModel& sys, const FutureProfile& profile,
    const std::vector<std::int64_t>& modificationCost,
    const ModificationOptions& options = {});

}  // namespace ides
