// MH — the paper's iterative-improvement mapping heuristic (slide 14).
//
// Starting from a valid solution (IM), MH repeatedly applies the design
// transformation with the best effect on the objective C, examining only
// the transformations with the highest potential to improve the design:
//
//   * moving a process into a different slack, on the same or on a
//     different processor (node re-assignment and/or start-hint change);
//   * moving a message into a different slack on the bus (hint change).
//
// Potential analysis: the processes bordering the smallest slack fragments
// (they cause C1 fragmentation) and the processes executing inside the
// worst Tmin window of the most loaded node (they depress C2) are the move
// candidates; target slacks are the largest free gaps per node and the
// emptiest bus rounds. The iteration stops at a local minimum of C or after
// `maxIterations` rounds.
#pragma once

#include <cstddef>

#include "core/evaluator.h"
#include "sched/mapping.h"
#include "util/stop_token.h"

namespace ides {

struct MhOptions {
  /// Upper bound on improvement rounds (one applied move per round, with
  /// first-improvement acceptance). MH normally stops earlier, at a local
  /// minimum of C.
  int maxIterations = 2048;
  /// How many highest-potential processes to examine per iteration.
  int candidateProcesses = 5;
  /// How many target nodes to consider per candidate (ranked by per-node
  /// minimum-window slack, i.e. where periodic capacity is most plentiful);
  /// the process's current node is always included.
  int targetNodes = 3;
  /// How many target gaps per target node to try for each candidate.
  int gapsPerNode = 2;
  /// How many messages to examine per iteration.
  int candidateMessages = 3;
  /// How many target bus windows to try per candidate message.
  int busWindows = 2;
  /// Hard cap on schedule evaluations (0 = unlimited). Used by budgeted
  /// comparisons; normal runs stop at the local minimum instead.
  std::size_t maxEvaluations = 0;
  /// Evaluate candidate moves through the delta-aware EvalContext
  /// (re-schedule only the graphs a move touches). Off = full pass per
  /// evaluation; results are bit-identical either way (asserted by the
  /// property tests).
  bool incrementalEval = true;
  /// Cooperative cancellation, polled once per improvement round. When it
  /// fires MH stops at the current (always valid) incumbent and sets
  /// MhResult::stopped. Null = run to the local minimum.
  const StopToken* stop = nullptr;
};

/// Range-checks every knob; throws std::invalid_argument naming the
/// offending field (negative iteration/candidate budgets). Called on entry
/// of runMappingHeuristic.
void validateOptions(const MhOptions& options);

struct MhResult {
  MappingSolution solution;
  EvalResult eval;
  std::size_t evaluations = 0;  ///< schedule evaluations performed
  int iterations = 0;           ///< improvement rounds executed
  /// True when MhOptions::stop ended the search before a local minimum.
  bool stopped = false;
};

/// Requires `initial` to be feasible (as produced by IM); throws otherwise.
/// `scratch`, when given, is a caller-owned EvalContext bound to the same
/// evaluator that MH uses instead of constructing its own (pure reuse;
/// results are bit-identical either way).
MhResult runMappingHeuristic(const SolutionEvaluator& evaluator,
                             const MappingSolution& initial,
                             const MhOptions& options = {},
                             EvalContext* scratch = nullptr);

}  // namespace ides
