// Initial Mapping (IM) and the frozen baseline.
//
// IM constructs a first valid mapping + schedule using the Heterogeneous
// Critical Path list scheduler (Jorgensen & Madsen, CODES'97): processes are
// taken in partial-critical-path priority order and each is placed on the
// allowed node that finishes it earliest, inserting into slack. The same
// construction, applied to the existing applications on an empty platform,
// produces the frozen baseline that requirement (a) protects.
//
// The paper's Ad-Hoc strategy (AH) is exactly IM: a valid solution that
// optimizes schedule length only and ignores the future (slide 14).
#pragma once

#include "sched/list_scheduler.h"
#include "sched/mapping.h"
#include "sched/platform_state.h"
#include "sched/schedule.h"

namespace ides {

class SystemModel;

struct FrozenBase {
  /// Platform occupancy with every existing application committed.
  PlatformState state;
  /// Their (frozen) schedule, for display and analysis.
  Schedule schedule;
  /// Node chosen for every existing process.
  MappingSolution mapping;
  /// False if some existing application could not be feasibly scheduled
  /// (the model instance is then unusable).
  bool feasible = false;
};

/// Map and schedule all AppKind::Existing applications, one application at a
/// time in id order — mirroring the incremental history: each was added to
/// the system without touching its predecessors.
FrozenBase freezeExistingApplications(const SystemModel& sys);

/// IM for the current application: HCP over `AppKind::Current` graphs on a
/// copy of the baseline. Returns the outcome; `state` is advanced.
ScheduleOutcome initialMapping(const SystemModel& sys, PlatformState& state);

}  // namespace ides
