// The evaluation pipeline shared by AH, MH, SA and PSA.
//
// SolutionEvaluator holds the frozen baseline (existing applications already
// committed to the platform) and, for a candidate MappingSolution of the
// current application:
//   1. starts from the baseline platform state,
//   2. list-schedules the current application under the candidate mapping,
//   3. extracts the remaining slack,
//   4. computes the design metrics and the objective C.
//
// Infeasible candidates get a penalty cost far above any feasible objective,
// graded by lateness so simulated annealing can still climb out.
//
// SolutionEvaluator::evaluate is the stateless full pass: it copies the
// baseline and re-schedules every graph. EvalContext is the delta-aware
// engine the optimization inner loops use instead: one journaled platform
// state per context (per thread), a checkpoint after every scheduled graph,
// and evaluate(solution, MoveHint) rewinds to the checkpoint before the
// first graph the move affects and re-schedules only from there. Results
// are bit-identical to the full pass by construction — the context verifies
// (never trusts) the hint by diffing the prefix graphs against the last
// evaluated solution, so a stale hint costs performance, not correctness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/future_profile.h"
#include "core/metrics.h"
#include "sched/list_scheduler.h"
#include "sched/mapping.h"
#include "sched/platform_state.h"
#include "sched/slack.h"

namespace ides {

class SystemModel;

struct EvalResult {
  bool placed = false;
  bool feasible = false;
  int deadlineMisses = 0;
  Time lateness = 0;
  DesignMetrics metrics;
  /// Objective C (valid when feasible).
  double objective = 0.0;
  /// What the strategies minimize: objective if feasible, penalty otherwise.
  double cost = 0.0;
};

/// What a design transformation touched: the graph whose mapping entries
/// (node, start hint, message hint) may differ from the previously
/// evaluated solution. Everything outside `graph` must be unchanged — the
/// context re-checks the graphs scheduled before it and restarts earlier if
/// the claim turns out wrong (e.g. after a rejected SA move).
struct MoveHint {
  GraphId graph;
  /// Informational: the process / message the move re-mapped, when any.
  ProcessId process;
  MessageId message;
};

class SolutionEvaluator {
 public:
  /// Cost assigned when the schedule misses deadlines (plus lateness).
  static constexpr double kMissPenalty = 1e6;
  /// Cost when the application cannot even be placed inside the horizon.
  static constexpr double kUnplacedPenalty = 1e7;

  /// `baseline` must already contain the frozen existing applications.
  /// `movableGraphs` is the set of graphs (re)scheduled per evaluation; the
  /// default — empty — means the AppKind::Current graphs. The modification
  /// extension passes current + unfrozen existing graphs instead.
  SolutionEvaluator(const SystemModel& sys, PlatformState baseline,
                    FutureProfile profile, MetricWeights weights,
                    std::vector<GraphId> movableGraphs = {});

  /// Stateless full-pass evaluation (copies the baseline every call). The
  /// inner loops use EvalContext instead; this stays as the one-shot API
  /// and as the independent reference the property tests compare against.
  [[nodiscard]] EvalResult evaluate(const MappingSolution& solution) const;

  /// Full evaluation, optionally exposing the schedule and slack snapshot
  /// (used for final results and MH's potential analysis).
  [[nodiscard]] EvalResult evaluate(const MappingSolution& solution,
                                    ScheduleOutcome* outcomeOut,
                                    SlackInfo* slackOut) const;

  /// Baseline copy with the given solution committed on top; the starting
  /// point for future-fit experiments.
  [[nodiscard]] PlatformState stateWith(const MappingSolution& solution) const;

  [[nodiscard]] const SystemModel& system() const { return *sys_; }
  [[nodiscard]] const PlatformState& baseline() const { return baseline_; }
  [[nodiscard]] const std::vector<GraphId>& currentGraphs() const {
    return currentGraphs_;
  }
  [[nodiscard]] const FutureProfile& profile() const { return profile_; }
  [[nodiscard]] const MetricWeights& weights() const { return weights_; }
  [[nodiscard]] const std::vector<std::vector<double>>& priorities() const {
    return priorities_;
  }

  /// Static per-graph commit orders, parallel to currentGraphs(). A pure
  /// function of (topology, priorities) — see GraphJobOrder — computed once
  /// here so every EvalContext can restart a graph mid-order.
  [[nodiscard]] const std::vector<GraphJobOrder>& jobOrders() const {
    return orders_;
  }
  /// Index of `g` in currentGraphs(), or currentGraphs().size() if absent.
  [[nodiscard]] std::size_t graphIndexOf(GraphId g) const;
  /// First slot of graph `gi`'s segment in a fully placed commit-order
  /// schedule log (sum of the earlier graphs' job counts). jobBase(n) is
  /// the total job count.
  [[nodiscard]] std::size_t jobBase(std::size_t gi) const {
    return jobBase_[gi];
  }
  /// Position of (p, instance) in a fully placed commit-order schedule log:
  /// segment base plus static order position. Only valid for processes of
  /// current graphs.
  [[nodiscard]] std::size_t jobIndexOf(ProcessId p,
                                       std::int32_t instance) const;
  /// Index of `p` within its graph's process list.
  [[nodiscard]] std::int32_t localProcessIndex(ProcessId p) const {
    return procLocal_[static_cast<std::size_t>(p.index())];
  }

 private:
  const SystemModel* sys_;
  PlatformState baseline_;
  FutureProfile profile_;
  MetricWeights weights_;
  std::vector<GraphId> currentGraphs_;
  std::vector<std::vector<double>> priorities_;  // per current graph
  std::vector<GraphJobOrder> orders_;            // per current graph
  std::vector<std::size_t> jobBase_;             // per current graph, + total
  std::vector<std::size_t> graphIdx_;            // by GraphId::index()
  std::vector<std::size_t> procGraph_;           // by ProcessId::index()
  std::vector<std::int32_t> procLocal_;          // by ProcessId::index()
};

/// Reusable per-thread evaluation scratch: one journaled platform state, a
/// scheduler session bound to it, the accumulated schedule of the current
/// graphs, and checkpoints at two granularities — one (journal mark +
/// schedule prefix + running tallies) before every graph, and one
/// JobCheckpoint before every commit-order position inside a graph.
///
/// evaluate(solution) is a full pass; evaluate(solution, hint) diffs the
/// solution against the last evaluated one, rewinds to the fine checkpoint
/// before the first commit-order position whose placement can differ, and
/// re-schedules only the suffix from there (the graphs after the restart
/// graph re-schedule whole, from their own checkpoints). Two accelerations
/// sit on top:
///  * zero-delta serve — when the re-scheduled suffix of the restart graph
///    comes out entry-identical and the downstream graphs' mapping entries
///    are unchanged, the platform state is provably byte-identical to the
///    reference, and the cached EvalResult is returned without scheduling
///    or metrics work;
///  * incremental metrics — an IncrementalMetrics snapshot is kept in sync
///    from the platform journal's dirty entries, so C1 containers and C2
///    window minima are recomputed only where occupancy changed.
/// Results stay bit-identical to the full pass by construction — the
/// context verifies (never trusts) the hint, so a stale hint costs
/// performance, not correctness. Not thread-safe: each optimization thread
/// owns its own context (the underlying SolutionEvaluator is shared and
/// const).
class EvalContext {
 public:
  explicit EvalContext(const SolutionEvaluator& evaluator);

  EvalContext(const EvalContext&) = delete;
  EvalContext& operator=(const EvalContext&) = delete;

  /// Full pass: re-schedules every graph (and refreshes all checkpoints).
  EvalResult evaluate(const MappingSolution& solution);

  /// Delta pass: re-schedules from the first graph affected by the move.
  EvalResult evaluate(const MappingSolution& solution, const MoveHint& hint);

  /// Full pass exposing the schedule and slack snapshot, like
  /// SolutionEvaluator::evaluate(solution, outcomeOut, slackOut). When the
  /// solution is exactly the one last evaluated (MH re-reading the state
  /// after an applied move), nothing is re-scheduled.
  EvalResult evaluate(const MappingSolution& solution,
                      ScheduleOutcome* outcomeOut, SlackInfo* slackOut);

  [[nodiscard]] const SolutionEvaluator& evaluator() const { return *ev_; }

  /// Telemetry: graphs actually (re)scheduled vs. graphs served from a
  /// checkpoint, over the lifetime of the context.
  [[nodiscard]] std::size_t evaluations() const { return evaluations_; }
  [[nodiscard]] std::size_t graphsScheduled() const {
    return graphsScheduled_;
  }
  [[nodiscard]] std::size_t graphsReused() const { return graphsReused_; }
  /// Evaluations answered from the cached result because the re-scheduled
  /// suffix came out entry-identical (zero-delta serve).
  [[nodiscard]] std::size_t zeroDeltaServes() const {
    return zeroDeltaServes_;
  }
  /// Restart point of the last evaluate(): graph index (== graph count when
  /// the cached result was served without touching the state) and the
  /// commit-order position within that graph. Bench telemetry for the
  /// rewind-depth breakdown.
  [[nodiscard]] std::size_t lastRestartGraph() const {
    return lastRestartGraph_;
  }
  [[nodiscard]] std::size_t lastRestartPosition() const {
    return lastRestartPos_;
  }

  /// Commit-order schedule log of the reference solution (complete when
  /// resultValid()), and the hint-independent arrival bound of every entry:
  /// the earliest start permitted by release time and input-message
  /// arrivals, before the start hint joins. Indexable via
  /// SolutionEvaluator::jobIndexOf. The zero-delta proposal filter
  /// (core/simulated_annealing.h) snapshots these to prove hint moves
  /// schedule-identical without evaluating them.
  [[nodiscard]] const std::vector<ScheduledProcess>& processes() const {
    return processes_;
  }
  [[nodiscard]] const std::vector<Time>& arrivalBounds() const {
    return arrivals_;
  }
  /// Last evaluation placed every graph; its result is cached and the log
  /// above is complete.
  [[nodiscard]] bool resultValid() const { return resultValid_; }

 private:
  struct Checkpoint {
    PlatformState::Mark mark = 0;
    std::size_t processCount = 0;
    std::size_t messageCount = 0;
    int deadlineMisses = 0;  ///< cumulative, before this graph
    Time lateness = 0;       ///< cumulative, before this graph
  };

  /// Index of `g` in currentGraphs(), or currentGraphs().size() if absent.
  [[nodiscard]] std::size_t indexOfGraph(GraphId g) const;
  /// True if `a` and `b` agree on every entry of graph `gi`'s processes and
  /// messages.
  [[nodiscard]] bool graphEntriesEqual(const MappingSolution& a,
                                       const MappingSolution& b,
                                       std::size_t gi) const;
  /// First graph index that must be re-scheduled for `solution`, given the
  /// hinted graph index (verified against the reference solution).
  [[nodiscard]] std::size_t restartIndex(const MappingSolution& solution,
                                         std::size_t hintIndex) const;
  /// First commit-order position of graph `gi` whose placement can differ
  /// between the reference and `solution` (jobCount if the graph is
  /// unchanged): the min over changed processes' instances — and changed
  /// messages' destination instances — of the static order position. Every
  /// reader of a changed entry commits at or after it, so the prefix
  /// before it commits identically.
  [[nodiscard]] std::size_t restartPosition(const MappingSolution& solution,
                                            std::size_t gi) const;

  /// Dirty tracking for the metrics cache: reset the per-evaluation stamp,
  /// then collect the journal records in [from, state mark) — called once
  /// before the rollback and once after re-scheduling, so the dirty set
  /// covers both the undone and the newly committed occupancy.
  void beginDirty();
  void collectDirty(PlatformState::Mark from);

  void fillOutcome(ScheduleOutcome& outcome, const MappingSolution& solution,
                   const EvalResult& result) const;

  EvalResult run(const MappingSolution& solution, std::size_t firstGraph,
                 std::size_t firstPos, ScheduleOutcome* outcomeOut,
                 SlackInfo* slackOut);

  const SolutionEvaluator* ev_;
  const SystemModel* sys_;
  PlatformState state_;       // baseline copy, journaling enabled
  SchedulerSession session_;  // bound to state_
  /// Current graphs' entries for `reference_`, in commit order. A plain
  /// prefix-truncatable log — rewinding to a checkpoint is two resizes.
  std::vector<ScheduledProcess> processes_;
  std::vector<ScheduledMessage> messages_;
  SlackInfo slack_;  // reusable snapshot buffer

  /// The solution the checkpoints describe (last evaluated).
  MappingSolution reference_;
  bool hasReference_ = false;
  /// checkpoints_[i] = state before graph i; [graphCount] = final state.
  std::vector<Checkpoint> checkpoints_;
  /// Graphs of `reference_` currently committed in `state_` (a failed
  /// placement leaves only the prefix before the failed graph).
  std::size_t validGraphs_ = 0;
  std::vector<std::size_t> graphIndex_;  // by GraphId::index()

  /// Fine checkpoints: one JobCheckpoint per commit-order position, per
  /// graph; fineCount_[gi] positions are valid (jobCount once the graph is
  /// committed, 0 after a failure there).
  std::vector<std::vector<SchedulerSession::JobCheckpoint>> fineMarks_;
  std::vector<std::size_t> fineCount_;
  /// Hint-independent arrival bound per committed entry (see
  /// arrivalBounds()), parallel to processes_.
  std::vector<Time> arrivals_;

  /// Cached result of the last fully placed evaluation; served verbatim by
  /// the zero-delta paths (the schedule is provably identical there).
  EvalResult result_;
  bool resultValid_ = false;

  /// Metrics snapshot kept in sync from the journal's dirty entries.
  IncrementalMetrics metricsCache_;
  std::vector<std::uint32_t> dirtyNodes_;
  std::vector<std::uint64_t> dirtyOccs_;
  std::vector<std::uint32_t> nodeStamp_;  // per node, == stamp_ if dirty
  std::vector<std::uint32_t> occStamp_;   // per slot occurrence
  std::uint32_t stamp_ = 0;

  /// Zero-delta suffix comparison scratch (the re-scheduled entries of the
  /// restart graph before the rewind).
  std::vector<ScheduledProcess> oldProcs_;
  std::vector<ScheduledMessage> oldMsgs_;
  /// Saved downstream tail (graphs after the restart graph) for the
  /// zero-delta serve: entries, arrival bounds and journal records captured
  /// before the rewind and restored verbatim — via PlatformState::replay —
  /// when the restart graph's suffix comes back entry-identical, instead of
  /// re-running the downstream schedulers.
  std::vector<ScheduledProcess> tailProcs_;
  std::vector<ScheduledMessage> tailMsgs_;
  std::vector<Time> tailArrivals_;
  std::vector<PlatformState::JournalEntry> tailJournal_;

  std::size_t evaluations_ = 0;
  std::size_t graphsScheduled_ = 0;
  std::size_t graphsReused_ = 0;
  std::size_t zeroDeltaServes_ = 0;
  std::size_t lastRestartGraph_ = 0;
  std::size_t lastRestartPos_ = 0;
};

/// Fixed-size pool of per-worker EvalContexts over one shared evaluator —
/// the substrate of speculative execution (core/speculative_eval.h). Each
/// parallel evaluation worker owns context [w] exclusively; after a move
/// commits, resync() re-aligns every context with the committed solution,
/// each rewinding to its checkpoint before the first graph its own
/// reference disagrees on and re-scheduling only from there.
///
/// resync() runs the contexts sequentially on the calling thread. The
/// speculative engine does not even need the explicit call: a context
/// re-aligns on its next evaluate (the verified hint triggers the same
/// checkpoint rewind), overlapping the catch-up with useful work.
class EvalContextPool {
 public:
  EvalContextPool(const SolutionEvaluator& evaluator, std::size_t size);

  EvalContextPool(const EvalContextPool&) = delete;
  EvalContextPool& operator=(const EvalContextPool&) = delete;

  [[nodiscard]] std::size_t size() const { return contexts_.size(); }
  [[nodiscard]] EvalContext& operator[](std::size_t w) {
    return contexts_[w];
  }

  /// Bring every context's checkpoints in line with `solution`. The hint
  /// names the graph of the committing move; each context verifies it
  /// against its own reference, so a context that had evaluated a different
  /// speculation restarts earlier automatically.
  void resync(const MappingSolution& solution, const MoveHint& hint);

 private:
  std::deque<EvalContext> contexts_;  // deque: EvalContext is pinned
};

}  // namespace ides
