// SolutionEvaluator: the single evaluation pipeline shared by AH, MH and SA.
//
// Holds the frozen baseline (existing applications already committed to the
// platform) and, for a candidate MappingSolution of the current application:
//   1. copies the baseline platform state,
//   2. list-schedules the current application under the candidate mapping,
//   3. extracts the remaining slack,
//   4. computes the design metrics and the objective C.
//
// Infeasible candidates get a penalty cost far above any feasible objective,
// graded by lateness so simulated annealing can still climb out.
#pragma once

#include <cstddef>
#include <vector>

#include "core/future_profile.h"
#include "core/metrics.h"
#include "sched/list_scheduler.h"
#include "sched/mapping.h"
#include "sched/platform_state.h"
#include "sched/slack.h"

namespace ides {

class SystemModel;

struct EvalResult {
  bool placed = false;
  bool feasible = false;
  int deadlineMisses = 0;
  Time lateness = 0;
  DesignMetrics metrics;
  /// Objective C (valid when feasible).
  double objective = 0.0;
  /// What the strategies minimize: objective if feasible, penalty otherwise.
  double cost = 0.0;
};

class SolutionEvaluator {
 public:
  /// Cost assigned when the schedule misses deadlines (plus lateness).
  static constexpr double kMissPenalty = 1e6;
  /// Cost when the application cannot even be placed inside the horizon.
  static constexpr double kUnplacedPenalty = 1e7;

  /// `baseline` must already contain the frozen existing applications.
  /// `movableGraphs` is the set of graphs (re)scheduled per evaluation; the
  /// default — empty — means the AppKind::Current graphs. The modification
  /// extension passes current + unfrozen existing graphs instead.
  SolutionEvaluator(const SystemModel& sys, PlatformState baseline,
                    FutureProfile profile, MetricWeights weights,
                    std::vector<GraphId> movableGraphs = {});

  /// Cheap evaluation used in optimization inner loops.
  [[nodiscard]] EvalResult evaluate(const MappingSolution& solution) const;

  /// Full evaluation, optionally exposing the schedule and slack snapshot
  /// (used for final results and MH's potential analysis).
  [[nodiscard]] EvalResult evaluate(const MappingSolution& solution,
                                    ScheduleOutcome* outcomeOut,
                                    SlackInfo* slackOut) const;

  /// Baseline copy with the given solution committed on top; the starting
  /// point for future-fit experiments.
  [[nodiscard]] PlatformState stateWith(const MappingSolution& solution) const;

  [[nodiscard]] const SystemModel& system() const { return *sys_; }
  [[nodiscard]] const PlatformState& baseline() const { return baseline_; }
  [[nodiscard]] const std::vector<GraphId>& currentGraphs() const {
    return currentGraphs_;
  }
  [[nodiscard]] const FutureProfile& profile() const { return profile_; }
  [[nodiscard]] const MetricWeights& weights() const { return weights_; }
  [[nodiscard]] const std::vector<std::vector<double>>& priorities() const {
    return priorities_;
  }

 private:
  const SystemModel* sys_;
  PlatformState baseline_;
  FutureProfile profile_;
  MetricWeights weights_;
  std::vector<GraphId> currentGraphs_;
  std::vector<std::vector<double>> priorities_;  // per current graph
};

}  // namespace ides
