#include "core/mapping_heuristic.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "model/system_model.h"
#include "util/log.h"

namespace ides {

namespace {

constexpr double kEps = 1e-9;

struct Move {
  enum class Kind { Process, Message } kind = Kind::Process;
  ProcessId process;
  NodeId node;
  MessageId message;
  Time hint = 0;
};

/// Highest-potential processes: those bordering the smallest slack
/// fragments (C1 pressure) and those inside the worst Tmin window of the
/// most starved node (C2 pressure).
std::vector<ProcessId> selectProcessCandidates(const SystemModel& sys,
                                               const SolutionEvaluator& ev,
                                               const ScheduleOutcome& outcome,
                                               const SlackInfo& slack,
                                               int limit) {
  std::unordered_map<ProcessId, double> score;

  // Index current-application entries by node and boundary times.
  struct Boundary {
    std::unordered_map<Time, ProcessId> byStart;
    std::unordered_map<Time, ProcessId> byEnd;
  };
  std::vector<Boundary> perNode(sys.architecture().nodeCount());
  for (const ScheduledProcess& sp : outcome.schedule.processes()) {
    perNode[sp.node.index()].byStart.emplace(sp.start, sp.pid);
    perNode[sp.node.index()].byEnd.emplace(sp.end, sp.pid);
  }

  // C1 pressure: adjacency to small fragments scores inversely to the
  // fragment length.
  for (std::size_t n = 0; n < slack.nodeFree.size(); ++n) {
    for (const Interval& gap : slack.nodeFree[n].intervals()) {
      const double s = 1.0 / (1.0 + static_cast<double>(gap.length()));
      auto creditTo = [&](auto& map, Time t) {
        auto it = map.find(t);
        if (it != map.end()) {
          score[it->second] = std::max(score[it->second], s);
        }
      };
      creditTo(perNode[n].byEnd, gap.start);   // entry ending at the gap
      creditTo(perNode[n].byStart, gap.end);   // entry starting after it
    }
  }

  // C2 pressure: every node's *worst* window is what the C2P sum is made
  // of, so every current-application process executing inside one is a
  // high-potential move candidate — evacuating it directly raises that
  // node's minimum. The starved the window, the higher the score.
  const Time tmin = ev.profile().tmin;
  const std::int64_t windows = slack.horizon / tmin;
  if (windows > 0) {
    for (std::size_t n = 0; n < slack.nodeFree.size(); ++n) {
      std::int64_t worstWindow = 0;
      Time worstSlack = kTimeMax;
      for (std::int64_t w = 0; w < windows; ++w) {
        const Time s = slack.nodeSlackInWindow(n, w * tmin, (w + 1) * tmin);
        if (s < worstSlack) {
          worstSlack = s;
          worstWindow = w;
        }
      }
      const Interval window{worstWindow * tmin, (worstWindow + 1) * tmin};
      const double pressure =
          2.0 * static_cast<double>(tmin - worstSlack) /
          static_cast<double>(tmin);
      for (const ScheduledProcess& sp : outcome.schedule.processes()) {
        if (sp.node.index() == n &&
            Interval{sp.start, sp.end}.overlaps(window)) {
          score[sp.pid] += pressure;
        }
      }
    }
  }

  std::vector<std::pair<double, ProcessId>> ranked;
  ranked.reserve(score.size());
  for (const auto& [pid, s] : score) ranked.emplace_back(s, pid);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second.value < b.second.value;
  });

  std::vector<ProcessId> out;
  std::unordered_set<ProcessId> seen;
  for (const auto& [s, pid] : ranked) {
    if (static_cast<int>(out.size()) >= limit) break;
    out.push_back(pid);
    seen.insert(pid);
  }
  // Top up deterministically so early iterations (little adjacency yet)
  // still explore.
  if (static_cast<int>(out.size()) < limit) {
    for (GraphId g : ev.currentGraphs()) {
      for (ProcessId p : sys.graph(g).processes) {
        if (static_cast<int>(out.size()) >= limit) break;
        if (seen.insert(p).second) out.push_back(p);
      }
    }
  }
  return out;
}

/// Messages with the longest transmissions fragment the bus the most.
std::vector<MessageId> selectMessageCandidates(const ScheduleOutcome& outcome,
                                               int limit) {
  std::vector<const ScheduledMessage*> onBus;
  for (const ScheduledMessage& sm : outcome.schedule.messages()) {
    onBus.push_back(&sm);
  }
  std::sort(onBus.begin(), onBus.end(),
            [](const ScheduledMessage* a, const ScheduledMessage* b) {
              const Time la = a->end - a->start, lb = b->end - b->start;
              if (la != lb) return la > lb;
              return a->mid.value < b->mid.value;
            });
  std::vector<MessageId> out;
  std::unordered_set<MessageId> seen;
  for (const ScheduledMessage* sm : onBus) {
    if (static_cast<int>(out.size()) >= limit) break;
    if (seen.insert(sm->mid).second) out.push_back(sm->mid);
  }
  return out;
}

/// Per-node minimum window slack: the target-node ranking key. Moving work
/// onto the node with the most periodic headroom is the transformation with
/// the highest potential to raise C2P.
std::vector<Time> minWindowSlackPerNode(const SlackInfo& slack, Time tmin) {
  const std::int64_t windows = slack.horizon / tmin;
  std::vector<Time> result(slack.nodeFree.size(), 0);
  for (std::size_t n = 0; n < slack.nodeFree.size(); ++n) {
    Time best = windows > 0 ? kTimeMax : 0;
    for (std::int64_t w = 0; w < windows; ++w) {
      best = std::min(best,
                      slack.nodeSlackInWindow(n, w * tmin, (w + 1) * tmin));
    }
    result[n] = best;
  }
  return result;
}

/// Starts of the largest `count` gaps, as period-relative hints.
std::vector<Time> gapHints(const IntervalSet& free, Time period, int count) {
  std::vector<Interval> gaps(free.intervals());
  std::sort(gaps.begin(), gaps.end(), [](const Interval& a, const Interval& b) {
    if (a.length() != b.length()) return a.length() > b.length();
    return a.start < b.start;
  });
  std::vector<Time> hints{0};
  auto addHint = [&hints](Time h) {
    if (std::find(hints.begin(), hints.end(), h) == hints.end()) {
      hints.push_back(h);
    }
  };
  for (const Interval& gap : gaps) {
    if (static_cast<int>(hints.size()) > 2 * count) break;
    // Both the front and the middle of a large gap are useful targets: the
    // front merges the moved process with the preceding busy block, the
    // middle spreads load across the gap's windows.
    addHint(gap.start % period);
    addHint((gap.start + gap.length() / 2) % period);
  }
  return hints;
}

}  // namespace

void validateOptions(const MhOptions& options) {
  const auto check = [](const char* field, int value) {
    if (value < 0) {
      throw std::invalid_argument(std::string("MhOptions: ") + field +
                                  " must be >= 0 (got " +
                                  std::to_string(value) + ")");
    }
  };
  check("maxIterations", options.maxIterations);
  check("candidateProcesses", options.candidateProcesses);
  check("targetNodes", options.targetNodes);
  check("gapsPerNode", options.gapsPerNode);
  check("candidateMessages", options.candidateMessages);
  check("busWindows", options.busWindows);
}

MhResult runMappingHeuristic(const SolutionEvaluator& evaluator,
                             const MappingSolution& initial,
                             const MhOptions& options,
                             EvalContext* scratch) {
  validateOptions(options);
  if (scratch != nullptr && &scratch->evaluator() != &evaluator) {
    throw std::invalid_argument(
        "runMappingHeuristic: scratch context bound to another evaluator");
  }
  const SystemModel& sys = evaluator.system();
  MhResult result;
  result.solution = initial;

  // One journaled scratch state for the whole run; the refresh after an
  // applied move re-reads the cached state instead of re-scheduling. A
  // caller-provided context (the RunContext pool lease) is reused verbatim.
  EvalContext* ctx = scratch;
  std::unique_ptr<EvalContext> owned;
  if (ctx == nullptr && options.incrementalEval) {
    owned = std::make_unique<EvalContext>(evaluator);
    ctx = owned.get();
  }
  auto evaluateTrial = [&](const MappingSolution& s,
                           const MoveHint& hint) -> EvalResult {
    return options.incrementalEval ? ctx->evaluate(s, hint)
                                   : evaluator.evaluate(s);
  };
  auto evaluateWithOutputs = [&](const MappingSolution& s,
                                 ScheduleOutcome* o,
                                 SlackInfo* sl) -> EvalResult {
    return options.incrementalEval ? ctx->evaluate(s, o, sl)
                                   : evaluator.evaluate(s, o, sl);
  };

  ScheduleOutcome outcome;
  SlackInfo slack;
  result.eval = evaluateWithOutputs(result.solution, &outcome, &slack);
  result.evaluations = 1;
  if (!result.eval.feasible) {
    throw std::invalid_argument("runMappingHeuristic: initial not feasible");
  }

  // Iterative improvement with first-improvement acceptance: the candidate
  // moves are generated highest-potential-first, and the first one that
  // improves C is applied immediately. This is what makes MH cheap — most
  // iterations commit a move after a handful of evaluations, because the
  // potential analysis looked at the right processes first.
  for (int iter = 0; iter < options.maxIterations; ++iter) {
    if (options.stop != nullptr && options.stop->stopRequested()) {
      result.stopped = true;
      break;
    }
    const std::vector<ProcessId> procs = selectProcessCandidates(
        sys, evaluator, outcome, slack, options.candidateProcesses);
    const std::vector<MessageId> msgs =
        selectMessageCandidates(outcome, options.candidateMessages);

    // Rank nodes by periodic headroom once per iteration.
    const std::vector<Time> headroom =
        minWindowSlackPerNode(slack, evaluator.profile().tmin);
    std::vector<std::size_t> nodeRank(headroom.size());
    for (std::size_t i = 0; i < nodeRank.size(); ++i) nodeRank[i] = i;
    std::sort(nodeRank.begin(), nodeRank.end(),
              [&](std::size_t a, std::size_t b) {
                if (headroom[a] != headroom[b]) {
                  return headroom[a] > headroom[b];
                }
                return a < b;
              });

    bool applied = false;
    bool budgetExhausted = false;
    // Try a move; apply it if improving and report success.
    auto tryMove = [&](const Move& move) {
      if (options.maxEvaluations != 0 &&
          result.evaluations >= options.maxEvaluations) {
        budgetExhausted = true;
        return true;  // stop scanning; nothing was applied
      }
      MappingSolution trial = result.solution;
      MoveHint hint;
      if (move.kind == Move::Kind::Process) {
        trial.setNode(move.process, move.node);
        trial.setStartHint(move.process, move.hint);
        hint.graph = sys.process(move.process).graph;
        hint.process = move.process;
      } else {
        trial.setMessageHint(move.message, move.hint);
        hint.graph = sys.message(move.message).graph;
        hint.message = move.message;
      }
      const EvalResult r = evaluateTrial(trial, hint);
      ++result.evaluations;
      if (r.cost < result.eval.cost - kEps) {
        result.solution = std::move(trial);
        applied = true;
        return true;
      }
      return false;
    };

    for (const ProcessId p : procs) {
      if (applied) break;
      const Process& proc = sys.process(p);
      const ProcessGraph& graph = sys.graph(proc.graph);
      // Target nodes: the allowed nodes with the most headroom, plus the
      // process's current node (for hint-only moves within it).
      std::vector<NodeId> targets;
      for (std::size_t idx : nodeRank) {
        if (static_cast<int>(targets.size()) >= options.targetNodes) break;
        const NodeId n{static_cast<std::int32_t>(idx)};
        if (proc.allowedOn(n)) targets.push_back(n);
      }
      const NodeId home = result.solution.nodeOf(p);
      if (std::find(targets.begin(), targets.end(), home) == targets.end()) {
        targets.push_back(home);
      }
      for (const NodeId n : targets) {
        if (applied) break;
        const Time maxHint =
            std::max<Time>(0, graph.deadline - proc.wcetOn(n));
        for (Time h : gapHints(slack.nodeFree[n.index()], graph.period,
                               options.gapsPerNode)) {
          h = std::min(h, maxHint);
          if (n == result.solution.nodeOf(p) &&
              h == result.solution.startHint(p)) {
            continue;
          }
          if (tryMove({Move::Kind::Process, p, n, {}, h})) break;
        }
      }
    }

    if (!applied) {
      // Bus windows: hints at the starts of the emptiest rounds.
      std::vector<SlackInfo::BusChunk> chunks = slack.busChunks;
      std::sort(chunks.begin(), chunks.end(),
                [](const SlackInfo::BusChunk& a,
                   const SlackInfo::BusChunk& b) {
                  if (a.freeTicks != b.freeTicks) {
                    return a.freeTicks > b.freeTicks;
                  }
                  return a.start < b.start;
                });
      for (const MessageId m : msgs) {
        if (applied) break;
        const Message& msg = sys.message(m);
        const ProcessGraph& graph = sys.graph(msg.graph);
        int tried = 0;
        for (const SlackInfo::BusChunk& chunk : chunks) {
          if (tried >= options.busWindows) break;
          const Time h =
              std::min(chunk.start % graph.period, graph.deadline - 1);
          ++tried;
          if (h == result.solution.messageHint(m)) continue;
          if (tryMove({Move::Kind::Message, {}, {}, m, h})) break;
        }
      }
    }

    if (budgetExhausted || !applied) break;  // minimum or out of budget

    result.eval = evaluateWithOutputs(result.solution, &outcome, &slack);
    ++result.evaluations;
    result.iterations = iter + 1;
    IDES_LOG_AT(LogLevel::Debug)
        << "MH iter " << iter << ": C=" << result.eval.cost;
  }
  return result;
}

}  // namespace ides
