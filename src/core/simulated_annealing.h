// SA — simulated annealing over the same design transformations as MH.
//
// The paper uses SA, tuned long, as the near-optimal reference point for the
// objective C; its cost is the denominator of the "average percentage
// deviation" series in the evaluation. Moves: re-map a process to a random
// allowed node, push a process into a random slack (start-hint change), or
// push a message into a random bus slack (message-hint change). Standard
// Metropolis acceptance with a geometric cooling schedule; infeasible
// states are admitted at high penalty cost so the walk can cross narrow
// infeasible ridges, but only feasible states can become the incumbent.
//
// RNG stream-splitting contract: one chain consumes TWO deterministic
// streams derived from the seed (rngStreamSeed) —
//   * kSaProposalStream  — every draw that shapes a candidate move,
//   * kSaAcceptanceStream — the Metropolis draw for uphill moves.
// Splitting them makes the proposal sequence independent of the accept /
// reject outcomes, which is what lets the speculative engine
// (core/speculative_eval.h) pre-generate a batch of K moves, evaluate them
// on parallel workers, and replay the acceptance decisions sequentially —
// bit-identical to this sequential chain by construction. The chain
// trajectory is a function of (options, evaluator, initial) only; the
// speculation knobs (workers, depth, threshold) change the wall-clock, not
// the result.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/evaluator.h"
#include "sched/mapping.h"
#include "util/rng.h"
#include "util/stop_token.h"

namespace ides {

/// Stream ids of one SA chain (see rngStreamSeed).
inline constexpr std::uint64_t kSaProposalStream = 0;
inline constexpr std::uint64_t kSaAcceptanceStream = 1;

/// Speculative execution inside one chain (core/speculative_eval.h). All
/// knobs are performance-only: the chain result is bit-identical for every
/// configuration, including workers = 1.
struct SpeculationOptions {
  /// Parallel evaluation workers for one chain; worker 0 is the calling
  /// thread, so `workers` is the total thread count. <= 1 disables
  /// speculation and runs the plain sequential chain.
  int workers = 1;
  /// Upper bound on the adaptive speculation depth (pre-generated moves per
  /// batch). 0 = 4 * workers.
  int maxDepth = 0;
  /// Speculate only while the windowed acceptance rate is below this; above
  /// it most batches would commit their first move and the pre-evaluated
  /// tail would be thrown away. Note the floor of the observed rate is the
  /// zero-delta rate (hint moves that leave the schedule untouched are
  /// always accepted — and still invalidate later speculations), ~0.4 on
  /// loaded instances; a batch of K still replays sum (1-p)^i > 1
  /// iterations per parallel round below ~0.55, hence the default.
  double acceptanceThreshold = 0.55;
  /// Number of recent Metropolis decisions in the acceptance-rate window.
  int window = 48;
};

struct SaOptions {
  std::uint64_t seed = 1;
  int iterations = 20000;
  /// Initial temperature as a fraction of the initial cost.
  double initialTempFactor = 0.3;
  /// Final temperature (cooling is geometric from T0 to this).
  double finalTemp = 0.05;
  /// Move mix.
  double probRemap = 0.5;        ///< move process to another node
  double probProcessHint = 0.35; ///< move process to another slack
  // remaining probability: move message to another bus slack

  /// Evaluate moves through the delta-aware EvalContext (re-schedule only
  /// the graphs a move touches). Off = full pass per evaluation; results
  /// are bit-identical either way (asserted by the property tests), so this
  /// is a pure performance switch kept for comparison and testing.
  bool incrementalEval = true;

  /// Record the cost of the walk's current state after every iteration into
  /// SaResult::costTrace (the determinism suite diffs the trace of the
  /// speculative engine against the sequential chain).
  bool recordCostTrace = false;

  /// Speculative parallel move evaluation inside this chain.
  SpeculationOptions speculation;

  /// Cooperative cancellation: polled once per iteration (per batch in the
  /// speculative engine). When it fires the chain stops, keeps its best
  /// incumbent so far and sets SaResult::stopped. Null = never stops early.
  /// The token does not perturb the trajectory while unfired, so two runs
  /// that both finish their budget are bit-identical with or without it.
  const StopToken* stop = nullptr;
};

/// Range-checks every knob; throws std::invalid_argument with a message
/// naming the offending field (e.g. negative iterations, probabilities
/// outside [0, 1] or summing past 1). Called on entry of both SA engines.
void validateOptions(const SaOptions& options);

struct SaResult {
  MappingSolution solution;  ///< best feasible solution seen
  EvalResult eval;
  /// Evaluations consumed by the chain (initial + one per non-None
  /// iteration) — identical for the sequential and speculative engines.
  /// Proposals the zero-delta filter replayed without computing are still
  /// counted here (their result is known exactly), so the counter stays
  /// invariant across incrementalEval on/off and across engines.
  std::size_t evaluations = 0;
  std::size_t accepted = 0;
  /// Move-generation telemetry: proposals consumed by the chain (None
  /// moves included; speculative proposals rewound after an acceptance are
  /// not — they are re-drawn by the next batch) and the subset the
  /// gap-fingerprint filter proved schedule-identical and replayed without
  /// any evaluation (always 0 when incrementalEval is off). Both are pure
  /// functions of the trajectory: identical across engines, and
  /// zeroDeltaSkips is 0 when incrementalEval is off while proposals is
  /// invariant to it.
  std::size_t proposals = 0;
  std::size_t zeroDeltaSkips = 0;
  /// Speculative telemetry: evaluations computed ahead of an acceptance and
  /// then thrown away, and the number of speculation batches dispatched.
  /// Always 0 for the sequential chain.
  std::size_t discardedEvaluations = 0;
  std::size_t speculativeBatches = 0;
  /// True when SaOptions::stop ended the chain before its iteration budget.
  bool stopped = false;
  /// Current-state cost after every iteration (only when
  /// SaOptions::recordCostTrace).
  std::vector<double> costTrace;
};

/// One candidate design transformation, pre-drawn from the proposal stream
/// and applied to a solution later (the speculative engine materializes a
/// whole batch before any evaluation runs).
struct SaMove {
  enum class Kind : std::uint8_t {
    None,         ///< skipped iteration (message move with no messages)
    Remap,        ///< process -> another allowed node, hint reset to ASAP
    ProcessHint,  ///< process -> another slack (new start hint)
    MessageHint,  ///< message -> another bus slack (new message hint)
  };
  Kind kind = Kind::None;
  ProcessId process;
  MessageId message;
  NodeId node;    ///< Remap target
  Time hint = 0;  ///< ProcessHint / MessageHint value
  MoveHint evalHint;
};

/// The move kernel shared by the sequential chain and the speculative
/// engine: given the walk's current solution and the proposal stream,
/// draws the next candidate move. Both engines go through this one
/// implementation, so their proposal sequences agree draw for draw.
class SaMoveProposer {
 public:
  /// Collects the movable processes / messages of the evaluator's current
  /// graphs. Throws std::invalid_argument when there is nothing to move.
  SaMoveProposer(const SolutionEvaluator& evaluator, const SaOptions& options);

  /// Draws the next move. Consumption of `proposalRng` depends only on the
  /// move mix and `current` — never on evaluation results.
  [[nodiscard]] SaMove propose(const MappingSolution& current,
                               Rng& proposalRng) const;

  /// Applies a drawn move to a solution.
  static void apply(const SaMove& move, MappingSolution& solution);

 private:
  const SystemModel* sys_;
  double probRemap_;
  double probProcessHint_;
  std::vector<ProcessId> procs_;
  std::vector<MessageId> msgs_;
  /// Flat per-process allowed-node lists (same draws as
  /// Process::allowedNodes, no per-proposal allocation).
  std::vector<NodeId> allowed_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>>
      allowedSpan_;  // by ProcessId::index(): [begin, count)
};

/// Gap-fingerprint zero-delta filter — detects hint moves that provably
/// reproduce the current schedule and lets both engines replay them
/// without any evaluation (performance only; the trajectory is untouched).
///
/// The fingerprint is a snapshot of two hint-independent quantities of the
/// chain's current schedule, indexed by SolutionEvaluator::jobIndexOf:
/// the arrival bound of every job (earliest start permitted by release
/// time and input-message arrivals alone) and its committed end. Captured
/// from whichever EvalContext just evaluated an accepted feasible
/// solution; rejections leave the current schedule — and the snapshot —
/// untouched, and a skipped move keeps it valid by construction.
///
/// A proposal is zero-delta when the scheduler provably never reads the
/// changed hint:
///  * ProcessHint h -> h': start = earliestFit(max(arrival, k*P + hint));
///    if k*P + max(h, h') <= arrival(p, k) for every instance k, the hint
///    stays shadowed by the arrival bound and every start is unchanged.
///  * MessageHint: read only for cross-node transmissions, as
///    ready = max(srcEnd, k*P + hint); same-node messages are always
///    zero-delta, cross-node ones when k*P + max(old, new) <= srcEnd(k)
///    for every instance.
/// Remaps are never skipped. A zero-delta proposal evaluates to exactly
/// the current cost, so delta == 0, Metropolis accepts without touching
/// the acceptance stream, and the incumbent cannot improve — the replay
/// is draw-for-draw and bit-for-bit the evaluated path.
class ZeroDeltaFilter {
 public:
  explicit ZeroDeltaFilter(const SolutionEvaluator& evaluator);

  [[nodiscard]] bool valid() const { return valid_; }
  void invalidate() { valid_ = false; }

  /// Re-arm from the context that just evaluated the accepted solution:
  /// snapshots when the result is feasible, invalidates otherwise.
  void captureAccepted(const EvalContext& ctx, const EvalResult& result);

  /// Re-arm from a pre-copied fingerprint (the speculative pool snapshots
  /// each feasible item on its worker, since a worker's context may have
  /// moved past the accepted item by replay time).
  void capture(const std::vector<Time>& arrivals,
               const std::vector<Time>& ends);

  /// True when applying `move` to `current` provably leaves the schedule
  /// bit-identical. Requires nothing when invalid (returns false).
  [[nodiscard]] bool zeroDelta(const SaMove& move,
                               const MappingSolution& current) const;

 private:
  const SolutionEvaluator* ev_;
  const SystemModel* sys_;
  bool valid_ = false;
  std::vector<Time> arrivals_;  ///< by global job index
  std::vector<Time> ends_;      ///< by global job index
  std::vector<Time> period_;    ///< by ProcessId::index(); movable only
  std::vector<std::int32_t> instances_;  ///< by ProcessId::index()
};

/// Geometric cooling schedule of one chain, shared verbatim by both
/// engines so their temperature sequences are bit-identical.
struct SaSchedule {
  double t0 = 1.0;
  double alpha = 1.0;
};
[[nodiscard]] SaSchedule saSchedule(const SaOptions& options,
                                    double initialCost);

/// The Metropolis criterion, shared verbatim by both engines. The
/// acceptance stream is consumed only for uphill moves (delta > 0), so the
/// draw pattern is a pure function of the decision sequence.
[[nodiscard]] inline bool metropolisAccept(double delta, double temp,
                                           Rng& acceptanceRng) {
  return delta <= 0.0 ||
         acceptanceRng.uniform01() < std::exp(-delta / std::max(temp, 1e-12));
}

/// Requires `initial` to be feasible; throws otherwise. Routes through the
/// speculative engine when options.speculation.workers > 1 (bit-identical
/// result, K moves evaluated in parallel).
///
/// `scratch`, when given, is a caller-owned EvalContext bound to the same
/// evaluator (e.g. one leased from a RunContext pool) that the sequential
/// chain uses instead of constructing its own — a pure reuse optimization;
/// results are bit-identical either way. Ignored by the speculative engine
/// (its workers own a pool of contexts already).
SaResult runSimulatedAnnealing(const SolutionEvaluator& evaluator,
                               const MappingSolution& initial,
                               const SaOptions& options = {},
                               EvalContext* scratch = nullptr);

}  // namespace ides
