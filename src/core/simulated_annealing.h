// SA — simulated annealing over the same design transformations as MH.
//
// The paper uses SA, tuned long, as the near-optimal reference point for the
// objective C; its cost is the denominator of the "average percentage
// deviation" series in the evaluation. Moves: re-map a process to a random
// allowed node, push a process into a random slack (start-hint change), or
// push a message into a random bus slack (message-hint change). Standard
// Metropolis acceptance with a geometric cooling schedule; infeasible
// states are admitted at high penalty cost so the walk can cross narrow
// infeasible ridges, but only feasible states can become the incumbent.
#pragma once

#include <cstdint>

#include "core/evaluator.h"
#include "sched/mapping.h"

namespace ides {

struct SaOptions {
  std::uint64_t seed = 1;
  int iterations = 20000;
  /// Initial temperature as a fraction of the initial cost.
  double initialTempFactor = 0.3;
  /// Final temperature (cooling is geometric from T0 to this).
  double finalTemp = 0.05;
  /// Move mix.
  double probRemap = 0.5;        ///< move process to another node
  double probProcessHint = 0.35; ///< move process to another slack
  // remaining probability: move message to another bus slack

  /// Evaluate moves through the delta-aware EvalContext (re-schedule only
  /// the graphs a move touches). Off = full pass per evaluation; results
  /// are bit-identical either way (asserted by the property tests), so this
  /// is a pure performance switch kept for comparison and testing.
  bool incrementalEval = true;
};

struct SaResult {
  MappingSolution solution;  ///< best feasible solution seen
  EvalResult eval;
  std::size_t evaluations = 0;
  std::size_t accepted = 0;
};

/// Requires `initial` to be feasible; throws otherwise.
SaResult runSimulatedAnnealing(const SolutionEvaluator& evaluator,
                               const MappingSolution& initial,
                               const SaOptions& options = {});

}  // namespace ides
