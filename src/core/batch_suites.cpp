#include "core/batch_suites.h"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "core/future_fit.h"
#include "core/incremental_designer.h"
#include "core/multi_increment.h"
#include "model/system_model.h"
#include "util/hashing.h"

namespace ides {

namespace {

std::string sizeGroup(std::size_t size) {
  // += instead of chained + : avoids GCC's bogus -Wrestrict (PR105651).
  std::string group = "n";
  group += std::to_string(size);
  return group;
}

std::string instanceId(const std::string& group, int seed,
                       const std::string& strategy) {
  return group + "/s" + std::to_string(seed) + "/" + strategy;
}

/// The future-fit probe of figures F3/A2: commit the reported mapping on
/// the baseline and count the embedded future applications that still map.
void futureFitProbe(const Suite& suite, const SolutionEvaluator& evaluator,
                    const RunReport& report, BatchExtras& extras) {
  double fits = 0.0, samples = 0.0;
  if (report.feasible) {
    const PlatformState after = evaluator.stateWith(report.mapping);
    for (const ApplicationId app :
         suite.system.applicationsOfKind(AppKind::Future)) {
      fits += tryMapFutureApplication(suite.system, app, after).fits ? 1 : 0;
      samples += 1;
    }
  }
  extras.add("future_fit", fits);
  extras.add("future_samples", samples);
}

/// One figure-style sweep: sizes × seeds × strategies on paperSuiteConfig.
InstanceSuite figureSweep(std::string name, const SweepScale& scale,
                          const std::vector<std::size_t>& sizes,
                          const std::vector<std::string>& strategies,
                          std::uint64_t suiteSeedBase,
                          std::size_t futureApps, BatchProbe probe) {
  InstanceSuite suite(std::move(name));
  for (const std::size_t size : sizes) {
    for (int s = 0; s < scale.seeds; ++s) {
      for (const std::string& strategy : strategies) {
        BatchInstance instance;
        instance.group = sizeGroup(size);
        instance.id = instanceId(instance.group, s, strategy);
        instance.axis = static_cast<double>(size);
        instance.seedIndex = s;
        instance.suiteSeed = suiteSeedBase + static_cast<std::uint64_t>(s);
        instance.config = paperSuiteConfig(size, futureApps);
        instance.strategy = strategy;
        instance.options = sweepDesignerOptions(
            scale, static_cast<std::uint64_t>(s) + 1);
        instance.probe = probe;
        suite.add(std::move(instance));
      }
    }
  }
  return suite;
}

}  // namespace

SweepScale sweepScaleNamed(const std::string& name) {
  if (name == "default") return {};
  if (name == "smoke") return {"smoke", 1, 4000, {40, 160, 320}, 3};
  if (name == "full") return {"full", 5, 30000, {40, 80, 160, 240, 320}, 10};
  throw std::invalid_argument("unknown scale \"" + name +
                              "\" (available: smoke, default, full)");
}

SweepScale sweepScale() {
  // The env knob stays lenient (legacy benchScale behavior): anything not
  // recognized runs the default scale. Explicit --scale goes through the
  // strict sweepScaleNamed instead.
  const char* env = std::getenv("IDES_BENCH_SCALE");
  const std::string name = env == nullptr ? "default" : env;
  if (name == "smoke" || name == "full") return sweepScaleNamed(name);
  return {};
}

SuiteConfig paperSuiteConfig(std::size_t current, std::size_t futureApps) {
  SuiteConfig cfg;
  cfg.nodeCount = 10;
  cfg.existingProcesses = 400;
  cfg.currentProcesses = current;
  cfg.futureAppCount = futureApps;
  cfg.futureProcesses = 80;
  cfg.tneedOverride = 12000;
  return cfg;
}

DesignerOptions sweepDesignerOptions(const SweepScale& scale,
                                     std::uint64_t saSeed) {
  DesignerOptions opts;
  opts.sa.iterations = scale.saIterations;
  opts.sa.seed = saSeed;
  return opts;
}

InstanceSuite qualitySweep(const SweepScale& scale) {
  return figureSweep("fig-quality", scale, scale.sizes, {"AH", "MH", "SA"},
                     1000, 0, nullptr);
}

InstanceSuite runtimeSweep(const SweepScale& scale) {
  return figureSweep("fig-runtime", scale, scale.sizes, {"AH", "MH", "SA"},
                     2000, 0, nullptr);
}

InstanceSuite futureSweep(const SweepScale& scale) {
  // The paper's third figure sweeps 40..240; 240 (where naive mapping
  // starts to destroy extensibility) is always included.
  std::vector<std::size_t> sizes;
  for (const std::size_t n : scale.sizes) {
    if (n < 240) sizes.push_back(n);
  }
  sizes.push_back(240);
  return figureSweep("fig-future", scale, sizes, {"AH", "MH"}, 3000,
                     scale.futureAppsPerInstance, futureFitProbe);
}

InstanceSuite weightsSweep(const SweepScale& scale) {
  struct WeightCase {
    const char* name;
    MetricWeights weights;
  };
  // DESIGN.md's defaults are w1 = 1, w2 = 2; the ablation spans dropping
  // C2 entirely up to weighting it 8x.
  const std::vector<WeightCase> cases = {
      {"C1-only (w2=0)", {1.0, 1.0, 0.0, 0.0}},
      {"balanced (w2=1)", {1.0, 1.0, 1.0, 1.0}},
      {"default (w2=2)", {1.0, 1.0, 2.0, 2.0}},
      {"C2-heavy (w2=8)", {1.0, 1.0, 8.0, 8.0}},
  };

  const std::size_t size = 240;
  InstanceSuite suite("ablation-weights");
  for (std::size_t c = 0; c < cases.size(); ++c) {
    for (int s = 0; s < scale.seeds; ++s) {
      BatchInstance instance;
      instance.group = cases[c].name;
      std::string caseKey = "w";  // += avoids GCC -Wrestrict (PR105651)
      caseKey += std::to_string(c);
      instance.id = instanceId(caseKey, s, "MH");
      instance.axis = static_cast<double>(c);
      instance.seedIndex = s;
      instance.suiteSeed = 5000 + static_cast<std::uint64_t>(s);
      instance.config = paperSuiteConfig(size, scale.futureAppsPerInstance);
      instance.strategy = "MH";
      instance.options = sweepDesignerOptions(scale);
      instance.options.weights = cases[c].weights;
      instance.probe = futureFitProbe;
      suite.add(std::move(instance));
    }
  }
  return suite;
}

InstanceSuite incrementsSweep(const SweepScale& scale) {
  // The E-INC platform: small and saturable, so the lifetime differences
  // show within a few increments (see bench_ext_increments for the
  // experimental rationale).
  SuiteConfig cfg;
  cfg.nodeCount = 4;
  cfg.basePeriod = 6000;
  cfg.tmin = 3000;
  cfg.existingProcesses = 40;
  cfg.currentProcesses = 16;
  cfg.futureAppCount = 8;  // the queue of version N+1, N+2, ...
  cfg.futureProcesses = 16;
  cfg.futureGraphSize = 16;
  cfg.tneedOverride = 2 * 16 * 69;

  InstanceSuite suite("ext-increments");
  for (int s = 0; s < scale.seeds; ++s) {
    for (const std::string& policy : {std::string("AH"), std::string("MH")}) {
      BatchInstance instance;
      instance.group = policy;
      instance.id = instanceId("inc", s, policy);
      instance.axis = static_cast<double>(s);
      instance.seedIndex = s;
      instance.suiteSeed = 7000 + static_cast<std::uint64_t>(s);
      instance.config = cfg;
      instance.strategy = policy;
      instance.job = [](const BatchInstance& inst,
                        const StopToken* stop) -> InstanceOutcome {
        const Suite generated = buildSuite(inst.config, inst.suiteSeed);
        std::vector<ApplicationId> queue =
            generated.system.applicationsOfKind(AppKind::Current);
        const auto futures =
            generated.system.applicationsOfKind(AppKind::Future);
        queue.insert(queue.end(), futures.begin(), futures.end());

        MultiIncrementOptions options;
        options.strategy = inst.strategy == "MH"
                               ? Strategy::MappingHeuristic
                               : Strategy::AdHoc;
        options.stop = stop;
        const MultiIncrementResult result = runIncrementSequence(
            generated.system, generated.profile, queue, options);

        InstanceOutcome outcome;
        outcome.hasReport = false;
        outcome.extras.add("accepted",
                           static_cast<double>(result.accepted));
        outcome.extras.add("queue", static_cast<double>(queue.size()));
        // Cancelled lifetimes are shorter, not degraded (the sequence
        // never commits a cut-short increment); mark them so the record
        // is not mistaken for a full run.
        outcome.extras.add("run_stopped", result.stopped ? 1.0 : 0.0);
        return outcome;
      };
      suite.add(std::move(instance));
    }
  }
  return suite;
}

namespace {

void hashSuiteConfig(Fnv1aHasher& h, const SuiteConfig& cfg) {
  h.u64(cfg.nodeCount);
  h.u64(cfg.speedFactors.size());
  for (const double f : cfg.speedFactors) h.f64(f);
  h.i64(cfg.slotLength);
  h.i64(cfg.bytesPerTick);
  h.i64(cfg.basePeriod);
  h.u64(cfg.periodDivisors.size());
  for (const Time d : cfg.periodDivisors) h.i64(d);
  h.i64(cfg.tmin);
  h.u64(cfg.existingProcesses);
  h.u64(cfg.existingGraphSize);
  h.u64(cfg.offsetPhases);
  h.u64(cfg.currentProcesses);
  h.u64(cfg.currentGraphSize);
  h.u64(cfg.futureAppCount);
  h.u64(cfg.futureProcesses);
  h.u64(cfg.futureGraphSize);
  const GraphGenConfig& gen = cfg.graphGen;
  h.u64(gen.processCount);
  h.f64(gen.edgeDensity);
  h.u64(gen.layerWidth);
  h.i64(gen.wcetMin);
  h.i64(gen.wcetMax);
  h.f64(gen.wcetNodeVariation);
  h.f64(gen.restrictedMappingProb);
  h.f64(gen.restrictedFraction);
  h.i64(gen.msgMin);
  h.i64(gen.msgMax);
  h.i64(cfg.tneedOverride);
  h.i64(cfg.bneedOverride);
  // maxBuildAttempts IS result-relevant: a config that needs retries lands
  // on a different derived seed when the cap moves the retry sequence.
  h.i64(cfg.maxBuildAttempts);
}

void hashDesignerOptions(Fnv1aHasher& h, const DesignerOptions& opts) {
  h.f64(opts.weights.w1p);
  h.f64(opts.weights.w1m);
  h.f64(opts.weights.w2p);
  h.f64(opts.weights.w2m);
  h.i64(opts.mh.maxIterations);
  h.i64(opts.mh.candidateProcesses);
  h.i64(opts.mh.targetNodes);
  h.i64(opts.mh.gapsPerNode);
  h.i64(opts.mh.candidateMessages);
  h.i64(opts.mh.busWindows);
  h.u64(opts.mh.maxEvaluations);
  h.u64(opts.sa.seed);
  h.i64(opts.sa.iterations);
  h.f64(opts.sa.initialTempFactor);
  h.f64(opts.sa.finalTemp);
  h.f64(opts.sa.probRemap);
  h.f64(opts.sa.probProcessHint);
  h.i64(opts.psa.restarts);
  h.i64(opts.psa.perChainIterations);
  h.u64(opts.tabu.seed);
  h.i64(opts.tabu.iterations);
  h.i64(opts.tabu.candidates);
  h.i64(opts.tabu.tenure);
  h.f64(opts.tabu.probRemap);
  h.f64(opts.tabu.probProcessHint);
  // Excluded by design (bit-identical results across all values, asserted
  // by the optimizer/speculation test suites): sa.incrementalEval,
  // sa.recordCostTrace, sa.speculation.*, psa.threads,
  // psa.speculativeWorkers, tabu.incrementalEval, and the stop tokens.
}

}  // namespace

std::string instanceFingerprint(const std::string& suiteName,
                                const BatchInstance& instance) {
  // Two independently-seeded FNV lanes over the same field stream give the
  // 128-bit content address; see util/hashing.h.
  Fnv1aHasher lanes[2] = {Fnv1aHasher(Fnv1aHasher::kDefaultBasis),
                          Fnv1aHasher(0x9e3779b97f4a7c15ULL)};
  for (Fnv1aHasher& h : lanes) {
    h.u64(kSweepFingerprintEpoch);
    h.str(suiteName);
    h.str(instance.id);
    h.str(instance.group);
    h.f64(instance.axis);
    h.i64(instance.seedIndex);
    h.u64(instance.suiteSeed);
    hashSuiteConfig(h, instance.config);
    h.str(instance.strategy);
    hashDesignerOptions(h, instance.options);
    h.boolean(static_cast<bool>(instance.probe));
    h.boolean(static_cast<bool>(instance.job));
  }
  return hashHex(lanes[0].value(), lanes[1].value());
}

std::vector<std::string> sweepNames() {
  return {"quality", "runtime", "future", "weights", "increments"};
}

InstanceSuite namedSweep(const std::string& name, const SweepScale& scale) {
  if (name == "quality") return qualitySweep(scale);
  if (name == "runtime") return runtimeSweep(scale);
  if (name == "future") return futureSweep(scale);
  if (name == "weights") return weightsSweep(scale);
  if (name == "increments") return incrementsSweep(scale);
  std::string known;
  for (const std::string& n : sweepNames()) {
    known += known.empty() ? n : ", " + n;
  }
  throw std::invalid_argument("unknown sweep \"" + name +
                              "\" (available: " + known + ")");
}

}  // namespace ides
