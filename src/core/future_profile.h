// Characterization of the family of future applications (paper slide 10).
//
// Future applications do not exist yet at design time; the designer only
// knows, from experience with the product line:
//   * Tmin   — the smallest expected period of any future process graph;
//   * tneed  — the processor time the most demanding future application is
//              expected to need inside every Tmin window (ticks);
//   * bneed  — the bus bandwidth it is expected to need inside every Tmin
//              window (bytes);
//   * histograms of typical future process WCETs and message sizes.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/time.h"

namespace ides {

struct FutureProfile {
  Time tmin = 0;
  Time tneed = 0;
  std::int64_t bneedBytes = 0;
  DiscreteDistribution wcetDistribution;
  DiscreteDistribution messageSizeDistribution;

  /// Throws std::invalid_argument if any field is non-positive/empty.
  void validate() const;
};

}  // namespace ides
