#include "core/batch_runner.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/incremental_designer.h"
#include "util/json_reader.h"
#include "util/provenance.h"

namespace ides {

InstanceOutcome runBatchInstance(const BatchInstance& instance,
                                 const StopToken* stop) {
  if (instance.job) return instance.job(instance, stop);

  // The standard instance job: generate the suite, resolve the strategy by
  // name, run it through the optimizer API, append probe extras.
  const Suite suite = buildSuite(instance.config, instance.suiteSeed);
  IncrementalDesigner designer(suite.system, suite.profile, instance.options);
  const std::unique_ptr<Optimizer> optimizer =
      StrategyRegistry::builtin().create(instance.strategy, instance.options);

  // A fresh context per instance: the pool lease must not outlive this
  // instance's evaluator.
  RunContext context;
  context.stop = stop;

  InstanceOutcome outcome;
  outcome.report = optimizer->run(designer.evaluator(), context);
  if (instance.probe) {
    instance.probe(suite, designer.evaluator(), outcome.report,
                   outcome.extras);
  }
  return outcome;
}

BatchReport runBatch(const InstanceSuite& suite, const BatchOptions& options) {
  if (options.shards < 0) {
    throw std::invalid_argument("BatchOptions: shards must be >= 0 (got " +
                                std::to_string(options.shards) + ")");
  }
  unsigned shards = options.shards > 0
                        ? static_cast<unsigned>(options.shards)
                        : std::thread::hardware_concurrency();
  if (shards == 0) shards = 1;
  const std::size_t count = suite.size();
  if (count > 0 && static_cast<std::size_t>(shards) > count) {
    shards = static_cast<unsigned>(count);
  }

  BatchReport report;
  report.suiteName = suite.name();
  report.results.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    InstanceResult& slot = report.results[i];
    const BatchInstance& instance = suite.instances()[i];
    slot.index = i;
    slot.id = instance.id;
    slot.group = instance.group;
    slot.axis = instance.axis;
    slot.seedIndex = instance.seedIndex;
    slot.suiteSeed = instance.suiteSeed;
  }

  // Shard workers claim instances through the atomic counter; slot i of
  // `results` is written only by the worker that claimed instance i, so the
  // aggregate is in canonical order no matter which shard ran what.
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> cacheHits{0};
  std::mutex doneMutex;  // serializes onInstanceDone across shards
  std::vector<std::exception_ptr> errors(shards);

  auto worker = [&](unsigned shard) {
    try {
      while (true) {
        if (options.stop != nullptr && options.stop->stopRequested()) break;
        const std::size_t i =
            next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        const BatchInstance& instance = suite.instances()[i];
        InstanceResult& slot = report.results[i];
        if (options.cache != nullptr &&
            options.cache->lookup(instance, slot.outcome)) {
          slot.cached = true;
          cacheHits.fetch_add(1, std::memory_order_relaxed);
        } else {
          slot.outcome = runBatchInstance(instance, options.stop);
          if (options.cache != nullptr) {
            options.cache->store(instance, slot.outcome);
          }
        }
        slot.ran = true;
        completed.fetch_add(1, std::memory_order_relaxed);
        if (options.onInstanceDone) {
          const std::lock_guard<std::mutex> lock(doneMutex);
          options.onInstanceDone(slot);
        }
      }
    } catch (...) {
      errors[shard] = std::current_exception();
    }
  };

  if (shards <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) pool.emplace_back(worker, s);
    for (std::thread& t : pool) t.join();
  }

  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  report.completed = completed.load(std::memory_order_relaxed);
  report.cacheHits = cacheHits.load(std::memory_order_relaxed);
  report.stopped = options.stop != nullptr && options.stop->stopRequested();
  return report;
}

namespace {

void appendField(std::string& out, bool& first, const std::string& key,
                 const std::string& rendered) {
  if (!first) out += ", ";
  first = false;
  out += '"';
  out += key;
  out += "\": ";
  out += rendered;
}

std::string num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string num(long long value) { return std::to_string(value); }

}  // namespace

std::string batchReportJson(const std::string& benchName,
                            const BatchReport& report,
                            const BatchJsonOptions& options) {
  // Header provenance (git SHA, host, compiler) is deliberately NOT keyed
  // on run shape: two runs of the same build on the same machine render the
  // same header regardless of shard count, worker count or cache hits, so
  // the deterministic (timing=false) rendering still diffs byte-clean.
  const Provenance& prov = buildProvenance();
  std::string out = "{\n  \"bench\": " + jsonQuote(benchName) +
                    ",\n  \"scale\": " + jsonQuote(options.scale) +
                    ",\n  \"suite\": " + jsonQuote(report.suiteName) +
                    ",\n  \"git_sha\": " + jsonQuote(prov.gitSha) +
                    ",\n  \"hostname\": " + jsonQuote(prov.hostname) +
                    ",\n  \"hardware_concurrency\": " +
                    num(static_cast<long long>(prov.hardwareConcurrency)) +
                    ",\n  \"compiler\": " + jsonQuote(prov.compiler) +
                    ",\n  \"instances\": " +
                    num(static_cast<long long>(report.results.size())) +
                    ",\n  \"completed\": " +
                    num(static_cast<long long>(report.completed)) +
                    ",\n  \"stopped\": " +
                    (report.stopped ? "true" : "false") +
                    ",\n  \"results\": [";
  bool firstRecord = true;
  for (const InstanceResult& r : report.results) {
    if (!r.ran) continue;
    out += firstRecord ? "\n    {" : ",\n    {";
    firstRecord = false;
    bool first = true;
    // Record layout mirrors BenchJson: flat key/value pairs, %.6g doubles,
    // identity fields first, then the report, extras, and timing last (so
    // the deterministic prefix is stable with timing on or off).
    const InstanceOutcome& o = r.outcome;
    appendField(out, first, "id", jsonQuote(r.id));
    appendField(out, first, "group", jsonQuote(r.group));
    appendField(out, first, "axis", num(r.axis));
    appendField(out, first, "seed",
                num(static_cast<long long>(r.seedIndex)));
    appendField(out, first, "suite_seed",
                num(static_cast<long long>(r.suiteSeed)));
    if (o.hasReport) {
      const RunReport& rep = o.report;
      appendField(out, first, "strategy", jsonQuote(rep.strategy));
      appendField(out, first, "feasible",
                  num(static_cast<long long>(rep.feasible ? 1 : 0)));
      appendField(out, first, "objective", num(rep.objective));
      appendField(out, first, "C1P_pct", num(rep.metrics.c1p));
      appendField(out, first, "C1m_pct", num(rep.metrics.c1m));
      appendField(out, first, "C2P_ticks",
                  num(static_cast<long long>(rep.metrics.c2p)));
      appendField(out, first, "C2m_bytes",
                  num(static_cast<long long>(rep.metrics.c2mBytes)));
      appendField(out, first, "evaluations",
                  num(static_cast<long long>(rep.evaluations)));
      appendField(out, first, "run_stopped",
                  num(static_cast<long long>(rep.stopped ? 1 : 0)));
    }
    for (const auto& [key, value] : o.extras.fields) {
      appendField(out, first, key, num(value));
    }
    if (options.timing && o.hasReport) {
      appendField(out, first, "seconds", num(o.report.seconds));
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string benchJsonPath(const std::string& name) {
  const char* dir = std::getenv("IDES_BENCH_JSON_DIR");
  std::string path;
  if (dir != nullptr && *dir != '\0') {
    path = dir;
    path += '/';
  }
  path += "BENCH_";
  path += name;
  path += ".json";
  return path;
}

bool writeBenchJsonFile(const std::string& name, const std::string& payload) {
  std::ofstream out(benchJsonPath(name));
  if (!out) return false;
  out << payload;
  return true;
}

namespace {

/// Lookup key of (group, seed, strategy); '\n' never appears in the parts.
std::string indexKey(const std::string& group, int seed,
                     const std::string& strategy) {
  std::string key = group;
  key += '\n';
  key += std::to_string(seed);
  key += '\n';
  key += strategy;
  return key;
}

}  // namespace

BatchIndex::BatchIndex(const BatchReport& report) {
  for (const InstanceResult& r : report.results) {
    if (!r.ran) continue;
    // emplace keeps the first entry per key — canonical order wins, exactly
    // like the linear scan this index replaces.
    if (r.outcome.hasReport) {
      byKey_.emplace(indexKey(r.group, r.seedIndex, r.outcome.report.strategy),
                     &r);
    }
    byKey_.emplace(indexKey(r.group, r.seedIndex, ""), &r);
  }
}

const InstanceResult* BatchIndex::find(const std::string& group, int seed,
                                       const std::string& strategy) const {
  const auto it = byKey_.find(indexKey(group, seed, strategy));
  return it == byKey_.end() ? nullptr : it->second;
}

}  // namespace ides
