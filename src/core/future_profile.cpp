#include "core/future_profile.h"

#include <stdexcept>

namespace ides {

void FutureProfile::validate() const {
  if (tmin <= 0) throw std::invalid_argument("FutureProfile: tmin <= 0");
  if (tneed <= 0) throw std::invalid_argument("FutureProfile: tneed <= 0");
  if (bneedBytes <= 0) {
    throw std::invalid_argument("FutureProfile: bneed <= 0");
  }
  if (wcetDistribution.empty()) {
    throw std::invalid_argument("FutureProfile: empty WCET distribution");
  }
  if (messageSizeDistribution.empty()) {
    throw std::invalid_argument("FutureProfile: empty message distribution");
  }
  if (wcetDistribution.minValue() <= 0 ||
      messageSizeDistribution.minValue() <= 0) {
    throw std::invalid_argument("FutureProfile: non-positive sample values");
  }
}

}  // namespace ides
