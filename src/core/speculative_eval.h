// Speculative parallel move evaluation inside ONE simulated-annealing chain.
//
// PSA (core/parallel_annealing.h) parallelizes across chains; this engine
// parallelizes within a chain. The observation: at low temperatures most
// proposals are rejected, so consecutive iterations perturb the same
// current solution and their evaluations are independent. Because the chain
// draws moves and Metropolis decisions from two split RNG streams
// (core/simulated_annealing.h), a batch of K candidate moves can be
// pre-generated — each speculating that every earlier move in the batch is
// rejected — evaluated concurrently on a pool of per-worker EvalContexts,
// and then replayed through the acceptance decisions sequentially. The
// first accepted move invalidates the later speculations: they are
// discarded, the proposal stream rewinds to its state right after the
// winning proposal, and every worker context resyncs on its next
// evaluation — rewinding to its per-graph checkpoints and applying the
// committed move (the EvalContext verifies hints against its own
// reference, so the catch-up is demand-driven and overlaps the next
// batch's useful work instead of costing a dedicated barrier round). The
// replay consumes exactly the draws the sequential chain would, in the
// same order, so the result is bit-identical by construction — for every
// worker count, speculation depth, and threshold (the determinism suite
// asserts this).
//
// Speculation depth adapts to the observed acceptance rate: the engine
// speculates only while the windowed rate is below
// SpeculationOptions::acceptanceThreshold (sequential stepping above it,
// where batches would mostly be thrown away), starts at `workers` moves per
// batch, doubles after a fully-rejected batch and halves after an
// acceptance, bounded by [workers, maxDepth]. The depth trajectory is a
// pure function of the decision history, never of timing — another
// determinism invariant.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/evaluator.h"
#include "core/simulated_annealing.h"
#include "sched/mapping.h"

namespace ides {

/// Persistent fork-join pool of evaluation workers for one chain. Worker 0
/// is the calling thread (workers == 1 spawns nothing and degenerates to
/// plain sequential evaluation); workers 1..W-1 are std::threads parked on
/// a condition variable between batches. Each worker owns one EvalContext
/// of an EvalContextPool; in full-pass mode (incremental == false) the
/// workers run the stateless SolutionEvaluator instead.
class SpeculativeEvalPool {
 public:
  struct Item {
    const MappingSolution* trial = nullptr;  ///< null = skip (no evaluation)
    MoveHint hint;
    EvalResult result;
    /// Gap-fingerprint of the evaluated schedule (filled for feasible
    /// results in incremental mode): hint-independent arrival bound and
    /// committed end per job, in global job-index order. The chain's
    /// ZeroDeltaFilter re-arms from the accepted item — a worker's context
    /// may already hold a later speculation by replay time, so the
    /// snapshot is taken on the worker, right after the evaluation.
    std::vector<Time> arrivals;
    std::vector<Time> ends;
  };

  SpeculativeEvalPool(const SolutionEvaluator& evaluator, int workers,
                      bool incremental);
  ~SpeculativeEvalPool();

  SpeculativeEvalPool(const SpeculativeEvalPool&) = delete;
  SpeculativeEvalPool& operator=(const SpeculativeEvalPool&) = delete;

  [[nodiscard]] int workers() const { return workers_; }

  /// Evaluates every non-null item, item i on worker i % workers. Results
  /// are bit-identical to a full pass no matter which worker ran them (the
  /// EvalContext property), so the static assignment is load balancing
  /// only. Blocks until the whole batch is done; rethrows the first worker
  /// exception.
  void evaluate(Item* items, std::size_t count);

  /// One evaluation on the calling thread (worker 0's context): the
  /// sequential stepping path of the chain, and the initial evaluation.
  EvalResult evaluateOne(const MappingSolution& solution,
                         const MoveHint& hint);

  /// Worker 0's context — the one evaluateOne just ran on (incremental
  /// mode only; the chain's zero-delta filter re-arms from it).
  [[nodiscard]] const EvalContext& sequentialContext() {
    return contexts_[0];
  }

 private:
  enum class Job : std::uint8_t { None, Evaluate, Stop };

  void workerLoop(int w);
  void runShare(int w);
  void dispatch(Job job);

  const SolutionEvaluator* ev_;
  int workers_;
  bool incremental_;
  EvalContextPool contexts_;
  std::vector<std::thread> threads_;
  std::vector<std::exception_ptr> errors_;  // by worker

  std::mutex mutex_;
  std::condition_variable start_;
  std::condition_variable done_;
  std::uint64_t epoch_ = 0;  // bumped per dispatch; workers wait on it
  int running_ = 0;
  Job job_ = Job::None;
  // Current job payload (stable for the whole epoch).
  Item* items_ = nullptr;
  std::size_t itemCount_ = 0;
};

/// The speculative chain. Public entry point is runSimulatedAnnealing,
/// which routes here when options.speculation.workers > 1; calling this
/// directly with workers <= 1 runs the same loop with sequential stepping
/// only (used by the determinism suite as a second reference).
SaResult runSpeculativeAnnealing(const SolutionEvaluator& evaluator,
                                 const MappingSolution& initial,
                                 const SaOptions& options);

}  // namespace ides
