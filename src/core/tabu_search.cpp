#include "core/tabu_search.h"

#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/simulated_annealing.h"
#include "model/system_model.h"
#include "util/rng.h"

namespace ides {

void validateOptions(const TabuOptions& options) {
  if (options.iterations < 0) {
    throw std::invalid_argument("TabuOptions: iterations must be >= 0");
  }
  if (options.candidates < 1) {
    throw std::invalid_argument("TabuOptions: candidates must be >= 1");
  }
  if (options.tenure < 0) {
    throw std::invalid_argument("TabuOptions: tenure must be >= 0");
  }
  const auto probOk = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!probOk(options.probRemap) || !probOk(options.probProcessHint) ||
      options.probRemap + options.probProcessHint > 1.0) {
    throw std::invalid_argument(
        "TabuOptions: move probabilities must be in [0, 1] and sum to <= 1");
  }
}

TabuResult runTabuSearch(const SolutionEvaluator& evaluator,
                         const MappingSolution& initial,
                         const TabuOptions& options, EvalContext* scratch) {
  validateOptions(options);
  const SystemModel& sys = evaluator.system();

  // Reuse the SA move kernel; only the mix knobs carry over.
  SaOptions kernel;
  kernel.probRemap = options.probRemap;
  kernel.probProcessHint = options.probProcessHint;
  const SaMoveProposer proposer(evaluator, kernel);

  std::optional<EvalContext> owned;
  EvalContext* ctx = nullptr;
  if (options.incrementalEval) {
    ctx = scratch != nullptr ? scratch : &owned.emplace(evaluator);
  }

  TabuResult result;
  MappingSolution current = initial;
  EvalResult curEval =
      ctx != nullptr ? ctx->evaluate(current) : evaluator.evaluate(current);
  result.evaluations = 1;
  if (!curEval.feasible) {
    throw std::invalid_argument(
        "runTabuSearch: initial solution must be feasible");
  }
  result.solution = current;
  result.eval = curEval;
  double bestCost = curEval.cost;

  // Recency memory, expiry-stamped: an attribute is tabu while its stamp is
  // > the current iteration. Keys are the REVERSED attributes — the node a
  // process just left, the hint that was just set — so the walk cannot
  // immediately undo itself.
  const std::size_t nodeCount = sys.architecture().nodeCount();
  std::vector<int> remapExpiry(sys.processes().size() * nodeCount, 0);
  std::vector<int> hintExpiry(sys.processes().size(), 0);
  std::vector<int> msgExpiry(sys.messages().size(), 0);

  const auto isTabu = [&](const SaMove& move, int iter) {
    switch (move.kind) {
      case SaMove::Kind::Remap:
        return remapExpiry[static_cast<std::size_t>(move.process.index()) *
                               nodeCount +
                           static_cast<std::size_t>(move.node.index())] > iter;
      case SaMove::Kind::ProcessHint:
        return hintExpiry[move.process.index()] > iter;
      case SaMove::Kind::MessageHint:
        return msgExpiry[move.message.index()] > iter;
      case SaMove::Kind::None:
        break;
    }
    return false;
  };

  Rng proposalRng(rngStreamSeed(options.seed, kSaProposalStream));
  MappingSolution candidate;

  for (int iter = 0; iter < options.iterations; ++iter) {
    if (options.stop != nullptr && options.stop->stopRequested()) {
      result.stopped = true;
      break;
    }

    // Draw and evaluate the candidate batch against the current state. The
    // batch selection is deterministic: lowest cost wins, first-drawn on
    // ties, admissible (non-tabu or aspiring) candidates strictly before
    // inadmissible ones.
    bool haveChoice = false;
    bool choiceAdmissible = false;
    double choiceCost = 0.0;
    SaMove choiceMove;
    EvalResult choiceEval;
    for (int c = 0; c < options.candidates; ++c) {
      const SaMove move = proposer.propose(current, proposalRng);
      ++result.proposals;
      if (move.kind == SaMove::Kind::None) continue;
      candidate = current;
      SaMoveProposer::apply(move, candidate);
      const EvalResult eval = ctx != nullptr
                                  ? ctx->evaluate(candidate, move.evalHint)
                                  : evaluator.evaluate(candidate);
      ++result.evaluations;
      // Aspiration: a tabu move that beats the incumbent is admissible.
      const bool admissible = !isTabu(move, iter) ||
                              (eval.feasible && eval.cost < bestCost);
      const bool better =
          !haveChoice || (admissible && !choiceAdmissible) ||
          (admissible == choiceAdmissible && eval.cost < choiceCost);
      if (better) {
        haveChoice = true;
        choiceAdmissible = admissible;
        choiceCost = eval.cost;
        choiceMove = move;
        choiceEval = eval;
      }
    }
    if (!haveChoice) continue;  // every draw was a None move

    // Stamp the reversed attribute tabu, then always take the move (the
    // memory, not the acceptance rule, provides the diversification).
    switch (choiceMove.kind) {
      case SaMove::Kind::Remap:
        remapExpiry[static_cast<std::size_t>(choiceMove.process.index()) *
                        nodeCount +
                    static_cast<std::size_t>(
                        current.nodeOf(choiceMove.process).index())] =
            iter + 1 + options.tenure;
        break;
      case SaMove::Kind::ProcessHint:
        hintExpiry[choiceMove.process.index()] = iter + 1 + options.tenure;
        break;
      case SaMove::Kind::MessageHint:
        msgExpiry[choiceMove.message.index()] = iter + 1 + options.tenure;
        break;
      case SaMove::Kind::None:
        break;
    }
    SaMoveProposer::apply(choiceMove, current);
    curEval = choiceEval;
    ++result.accepted;

    if (curEval.feasible && curEval.cost < bestCost) {
      bestCost = curEval.cost;
      result.solution = current;
      result.eval = curEval;
    }
  }
  return result;
}

}  // namespace ides
