#include "core/evaluator.h"

#include <algorithm>

#include "model/graph_algos.h"
#include "model/system_model.h"

namespace ides {

namespace {

/// Shared result assembly: the penalty ladder of the paper's objective.
EvalResult makeResult(bool placed, int deadlineMisses, Time lateness) {
  EvalResult result;
  result.placed = placed;
  result.feasible = placed && deadlineMisses == 0;
  result.deadlineMisses = deadlineMisses;
  result.lateness = lateness;
  if (!placed) {
    result.cost = SolutionEvaluator::kUnplacedPenalty;
  } else if (!result.feasible) {
    result.cost =
        SolutionEvaluator::kMissPenalty + static_cast<double>(lateness);
  }
  return result;
}

}  // namespace

SolutionEvaluator::SolutionEvaluator(const SystemModel& sys,
                                     PlatformState baseline,
                                     FutureProfile profile,
                                     MetricWeights weights,
                                     std::vector<GraphId> movableGraphs)
    : sys_(&sys),
      baseline_(std::move(baseline)),
      profile_(std::move(profile)),
      weights_(weights),
      currentGraphs_(movableGraphs.empty()
                         ? sys.graphsOfKind(AppKind::Current)
                         : std::move(movableGraphs)) {
  profile_.validate();
  // Canonical evaluation order: heaviest graph (most jobs per pass) first,
  // stable on the input order. Any fixed order is a valid full pass; this
  // one puts the expensive graphs into the checkpointed prefix, so a
  // delta evaluation restarting at a uniformly random graph re-schedules
  // the cheap tail far more often than the expensive head.
  std::stable_sort(currentGraphs_.begin(), currentGraphs_.end(),
                   [&sys](GraphId a, GraphId b) {
                     const auto jobs = [&sys](GraphId g) {
                       return sys.instanceCount(g) *
                              static_cast<std::int64_t>(
                                  sys.graph(g).processes.size());
                     };
                     return jobs(a) > jobs(b);
                   });
  priorities_.reserve(currentGraphs_.size());
  for (GraphId g : currentGraphs_) {
    priorities_.push_back(criticalPathPriorities(sys, g));
  }
}

EvalResult SolutionEvaluator::evaluate(const MappingSolution& solution) const {
  return evaluate(solution, nullptr, nullptr);
}

EvalResult SolutionEvaluator::evaluate(const MappingSolution& solution,
                                       ScheduleOutcome* outcomeOut,
                                       SlackInfo* slackOut) const {
  PlatformState state = baseline_;
  ScheduleRequest req;
  req.graphs = currentGraphs_;
  req.mapping = &solution;
  req.priorities = &priorities_;
  ScheduleOutcome outcome = scheduleGraphs(*sys_, req, state);

  EvalResult result =
      makeResult(outcome.placed, outcome.deadlineMisses, outcome.totalLateness);
  if (result.feasible) {
    const SlackInfo slack = extractSlack(state);
    result.metrics = computeMetrics(slack, profile_);
    result.objective = objectiveValue(result.metrics, profile_, weights_);
    result.cost = result.objective;
    if (slackOut != nullptr) *slackOut = slack;
  }
  if (outcomeOut != nullptr) *outcomeOut = std::move(outcome);
  return result;
}

PlatformState SolutionEvaluator::stateWith(
    const MappingSolution& solution) const {
  PlatformState state = baseline_;
  ScheduleRequest req;
  req.graphs = currentGraphs_;
  req.mapping = &solution;
  req.priorities = &priorities_;
  scheduleGraphs(*sys_, req, state);
  return state;
}

// ---- EvalContext ----------------------------------------------------------

EvalContext::EvalContext(const SolutionEvaluator& evaluator)
    : ev_(&evaluator),
      sys_(&evaluator.system()),
      state_(evaluator.baseline()),
      session_(evaluator.system(), state_) {
  // The baseline is the floor: mark 0 is "no current graph scheduled".
  state_.setJournaling(true);
  const std::size_t n = ev_->currentGraphs().size();
  checkpoints_.resize(n + 1);
  graphIndex_.assign(sys_->graphs().size(), n);
  for (std::size_t gi = 0; gi < n; ++gi) {
    graphIndex_[ev_->currentGraphs()[gi].index()] = gi;
  }
}

std::size_t EvalContext::indexOfGraph(GraphId g) const {
  // An invalid or foreign graph degrades to a full pass, never to UB.
  if (!g.valid() || g.index() >= graphIndex_.size()) return 0;
  return graphIndex_[g.index()];
}

bool EvalContext::graphEntriesEqual(const MappingSolution& a,
                                    const MappingSolution& b,
                                    std::size_t gi) const {
  const ProcessGraph& graph = sys_->graph(ev_->currentGraphs()[gi]);
  for (const ProcessId p : graph.processes) {
    if (a.nodeOf(p) != b.nodeOf(p) || a.startHint(p) != b.startHint(p)) {
      return false;
    }
  }
  for (const MessageId m : graph.messages) {
    if (a.messageHint(m) != b.messageHint(m)) return false;
  }
  return true;
}

std::size_t EvalContext::restartIndex(const MappingSolution& solution,
                                      std::size_t hintIndex) const {
  if (!hasReference_) return 0;
  // Never restart past what is actually committed in the state.
  std::size_t idx = std::min(hintIndex, validGraphs_);
  // Verify the claim: every graph scheduled before the restart point must
  // be identical to the reference, or the checkpoint there describes a
  // different solution. A rejected SA move is the common case — the next
  // trial also reverts the rejected graph, which the scan catches here.
  for (std::size_t gi = 0; gi < idx; ++gi) {
    if (!graphEntriesEqual(reference_, solution, gi)) return gi;
  }
  return idx;
}

EvalResult EvalContext::evaluate(const MappingSolution& solution) {
  return run(solution, 0, nullptr, nullptr);
}

EvalResult EvalContext::evaluate(const MappingSolution& solution,
                                 const MoveHint& hint) {
  return run(solution, restartIndex(solution, indexOfGraph(hint.graph)),
             nullptr, nullptr);
}

EvalResult EvalContext::evaluate(const MappingSolution& solution,
                                 ScheduleOutcome* outcomeOut,
                                 SlackInfo* slackOut) {
  const std::size_t n = ev_->currentGraphs().size();
  // Serve the cached state when re-reading the solution just evaluated.
  const std::size_t first =
      restartIndex(solution, n) == n && validGraphs_ == n ? n : 0;
  return run(solution, first, outcomeOut, slackOut);
}

EvalResult EvalContext::run(const MappingSolution& solution,
                            std::size_t firstGraph,
                            ScheduleOutcome* outcomeOut, SlackInfo* slackOut) {
  const std::vector<GraphId>& graphs = ev_->currentGraphs();
  const std::size_t n = graphs.size();
  ++evaluations_;

  firstGraph = std::min(firstGraph, validGraphs_);
  graphsReused_ += firstGraph;

  // Rewind to the checkpoint before the first affected graph.
  const Checkpoint& restart = checkpoints_[firstGraph];
  state_.rollbackTo(restart.mark);
  processes_.resize(restart.processCount);
  messages_.resize(restart.messageCount);
  int misses = restart.deadlineMisses;
  Time lateness = restart.lateness;

  bool placed = true;
  for (std::size_t gi = firstGraph; gi < n; ++gi) {
    checkpoints_[gi] = {state_.mark(), processes_.size(), messages_.size(),
                        misses, lateness};
    const SchedulerSession::GraphResult r = session_.scheduleGraph(
        graphs[gi], solution, &ev_->priorities()[gi], processes_, messages_);
    ++graphsScheduled_;
    misses += r.deadlineMisses;
    lateness += r.totalLateness;
    if (!r.placed) {
      // Drop the failed graph's partial placement so the checkpoints for
      // the prefix stay valid; the result still reports the partial
      // tallies, exactly like the full pass does.
      state_.rollbackTo(checkpoints_[gi].mark);
      processes_.resize(checkpoints_[gi].processCount);
      messages_.resize(checkpoints_[gi].messageCount);
      validGraphs_ = gi;
      placed = false;
      break;
    }
    validGraphs_ = gi + 1;
  }
  if (placed) {
    checkpoints_[n] = {state_.mark(), processes_.size(), messages_.size(),
                       misses, lateness};
  }
  reference_ = solution;
  hasReference_ = true;

  EvalResult result = makeResult(placed, misses, lateness);
  if (result.feasible) {
    extractSlackInto(state_, slack_);
    result.metrics = computeMetrics(slack_, ev_->profile());
    result.objective =
        objectiveValue(result.metrics, ev_->profile(), ev_->weights());
    result.cost = result.objective;
    if (slackOut != nullptr) *slackOut = slack_;
  }
  if (outcomeOut != nullptr) {
    outcomeOut->placed = placed;
    outcomeOut->feasible = result.feasible;
    outcomeOut->deadlineMisses = misses;
    outcomeOut->totalLateness = lateness;
    outcomeOut->schedule = Schedule{};
    for (const ScheduledProcess& sp : processes_) {
      outcomeOut->schedule.addProcess(sp);
    }
    for (const ScheduledMessage& sm : messages_) {
      outcomeOut->schedule.addMessage(sm);
    }
    outcomeOut->mapping = solution;
  }
  return result;
}

// ---- EvalContextPool ------------------------------------------------------

EvalContextPool::EvalContextPool(const SolutionEvaluator& evaluator,
                                 std::size_t size) {
  for (std::size_t w = 0; w < size; ++w) {
    contexts_.emplace_back(evaluator);
  }
}

void EvalContextPool::resync(const MappingSolution& solution,
                             const MoveHint& hint) {
  for (EvalContext& ctx : contexts_) {
    ctx.evaluate(solution, hint);
  }
}

}  // namespace ides
