#include "core/evaluator.h"

#include <algorithm>

#include "model/graph_algos.h"
#include "model/system_model.h"
#include "obs/telemetry.h"

namespace ides {

namespace {

/// Handles cached once per process: EvalContext::run is the hottest path
/// in the system, so each evaluation pays exactly one classification add
/// (plus the evaluation counter) — a relaxed fetch_add on a sharded cell.
/// Strictly write-only: no decision ever reads these back.
struct EvalTelemetry {
  Counter& evaluations;
  Counter& zeroDelta;
  Counter& midGraph;
  Counter& graphStart;
  Counter& journalReplays;
};

EvalTelemetry& evalTelemetry() {
  static EvalTelemetry handles{
      telemetry().counter("ides_eval_evaluations_total",
                          "Delta-aware schedule evaluations"),
      telemetry().counter(
          "ides_eval_rewind_depth_total",
          "Evaluations by rewind depth: zero_delta served from the "
          "journal, mid_graph resumed at a fine checkpoint, graph_start "
          "re-scheduled from a whole-graph checkpoint",
          {{"depth", "zero_delta"}}),
      telemetry().counter("ides_eval_rewind_depth_total", "",
                          {{"depth", "mid_graph"}}),
      telemetry().counter("ides_eval_rewind_depth_total", "",
                          {{"depth", "graph_start"}}),
      telemetry().counter(
          "ides_eval_journal_replays_total",
          "Downstream-tail journal replays during zero-delta serves"),
  };
  return handles;
}

/// Shared result assembly: the penalty ladder of the paper's objective.
EvalResult makeResult(bool placed, int deadlineMisses, Time lateness) {
  EvalResult result;
  result.placed = placed;
  result.feasible = placed && deadlineMisses == 0;
  result.deadlineMisses = deadlineMisses;
  result.lateness = lateness;
  if (!placed) {
    result.cost = SolutionEvaluator::kUnplacedPenalty;
  } else if (!result.feasible) {
    result.cost =
        SolutionEvaluator::kMissPenalty + static_cast<double>(lateness);
  }
  return result;
}

}  // namespace

SolutionEvaluator::SolutionEvaluator(const SystemModel& sys,
                                     PlatformState baseline,
                                     FutureProfile profile,
                                     MetricWeights weights,
                                     std::vector<GraphId> movableGraphs)
    : sys_(&sys),
      baseline_(std::move(baseline)),
      profile_(std::move(profile)),
      weights_(weights),
      currentGraphs_(movableGraphs.empty()
                         ? sys.graphsOfKind(AppKind::Current)
                         : std::move(movableGraphs)) {
  profile_.validate();
  // Canonical evaluation order: heaviest graph (most jobs per pass) first,
  // stable on the input order. Any fixed order is a valid full pass; this
  // one puts the expensive graphs into the checkpointed prefix, so a
  // delta evaluation restarting at a uniformly random graph re-schedules
  // the cheap tail far more often than the expensive head.
  std::stable_sort(currentGraphs_.begin(), currentGraphs_.end(),
                   [&sys](GraphId a, GraphId b) {
                     const auto jobs = [&sys](GraphId g) {
                       return sys.instanceCount(g) *
                              static_cast<std::int64_t>(
                                  sys.graph(g).processes.size());
                     };
                     return jobs(a) > jobs(b);
                   });
  priorities_.reserve(currentGraphs_.size());
  for (GraphId g : currentGraphs_) {
    priorities_.push_back(criticalPathPriorities(sys, g));
  }
  // Static commit orders and the flat job-index layout derived from them.
  const std::size_t n = currentGraphs_.size();
  orders_.reserve(n);
  jobBase_.assign(n + 1, 0);
  graphIdx_.assign(sys.graphs().size(), n);
  procGraph_.assign(sys.processes().size(), n);
  procLocal_.assign(sys.processes().size(), -1);
  for (std::size_t gi = 0; gi < n; ++gi) {
    const GraphId g = currentGraphs_[gi];
    orders_.push_back(computeJobOrder(sys, g, priorities_[gi]));
    jobBase_[gi + 1] = jobBase_[gi] + orders_[gi].jobCount();
    graphIdx_[static_cast<std::size_t>(g.index())] = gi;
    const std::vector<ProcessId>& procs = sys.graph(g).processes;
    for (std::size_t i = 0; i < procs.size(); ++i) {
      const auto pi = static_cast<std::size_t>(procs[i].index());
      procGraph_[pi] = gi;
      procLocal_[pi] = static_cast<std::int32_t>(i);
    }
  }
}

std::size_t SolutionEvaluator::graphIndexOf(GraphId g) const {
  if (!g.valid() || static_cast<std::size_t>(g.index()) >= graphIdx_.size()) {
    return currentGraphs_.size();
  }
  return graphIdx_[static_cast<std::size_t>(g.index())];
}

std::size_t SolutionEvaluator::jobIndexOf(ProcessId p,
                                          std::int32_t instance) const {
  const auto pi = static_cast<std::size_t>(p.index());
  const std::size_t gi = procGraph_[pi];
  const GraphJobOrder& order = orders_[gi];
  const std::size_t flat =
      static_cast<std::size_t>(instance) * order.processCount +
      static_cast<std::size_t>(procLocal_[pi]);
  return jobBase_[gi] + static_cast<std::size_t>(order.positionOf[flat]);
}

EvalResult SolutionEvaluator::evaluate(const MappingSolution& solution) const {
  return evaluate(solution, nullptr, nullptr);
}

EvalResult SolutionEvaluator::evaluate(const MappingSolution& solution,
                                       ScheduleOutcome* outcomeOut,
                                       SlackInfo* slackOut) const {
  PlatformState state = baseline_;
  ScheduleRequest req;
  req.graphs = currentGraphs_;
  req.mapping = &solution;
  req.priorities = &priorities_;
  ScheduleOutcome outcome = scheduleGraphs(*sys_, req, state);

  EvalResult result =
      makeResult(outcome.placed, outcome.deadlineMisses, outcome.totalLateness);
  if (result.feasible) {
    const SlackInfo slack = extractSlack(state);
    result.metrics = computeMetrics(slack, profile_);
    result.objective = objectiveValue(result.metrics, profile_, weights_);
    result.cost = result.objective;
    if (slackOut != nullptr) *slackOut = slack;
  }
  if (outcomeOut != nullptr) *outcomeOut = std::move(outcome);
  return result;
}

PlatformState SolutionEvaluator::stateWith(
    const MappingSolution& solution) const {
  PlatformState state = baseline_;
  ScheduleRequest req;
  req.graphs = currentGraphs_;
  req.mapping = &solution;
  req.priorities = &priorities_;
  scheduleGraphs(*sys_, req, state);
  return state;
}

// ---- EvalContext ----------------------------------------------------------

EvalContext::EvalContext(const SolutionEvaluator& evaluator)
    : ev_(&evaluator),
      sys_(&evaluator.system()),
      state_(evaluator.baseline()),
      session_(evaluator.system(), state_) {
  // The baseline is the floor: mark 0 is "no current graph scheduled".
  state_.setJournaling(true);
  const std::size_t n = ev_->currentGraphs().size();
  checkpoints_.resize(n + 1);
  graphIndex_.assign(sys_->graphs().size(), n);
  for (std::size_t gi = 0; gi < n; ++gi) {
    graphIndex_[ev_->currentGraphs()[gi].index()] = gi;
  }
  fineMarks_.resize(n);
  fineCount_.assign(n, 0);
  nodeStamp_.assign(state_.nodeCount(), 0);
  occStamp_.assign(state_.bus().slotCount() *
                       static_cast<std::size_t>(state_.roundCount()),
                   0);
}

std::size_t EvalContext::indexOfGraph(GraphId g) const {
  // An invalid or foreign graph degrades to a full pass, never to UB.
  if (!g.valid() || g.index() >= graphIndex_.size()) return 0;
  return graphIndex_[g.index()];
}

bool EvalContext::graphEntriesEqual(const MappingSolution& a,
                                    const MappingSolution& b,
                                    std::size_t gi) const {
  const ProcessGraph& graph = sys_->graph(ev_->currentGraphs()[gi]);
  for (const ProcessId p : graph.processes) {
    if (a.nodeOf(p) != b.nodeOf(p) || a.startHint(p) != b.startHint(p)) {
      return false;
    }
  }
  for (const MessageId m : graph.messages) {
    if (a.messageHint(m) != b.messageHint(m)) return false;
  }
  return true;
}

std::size_t EvalContext::restartIndex(const MappingSolution& solution,
                                      std::size_t hintIndex) const {
  if (!hasReference_) return 0;
  // Never restart past what is actually committed in the state.
  std::size_t idx = std::min(hintIndex, validGraphs_);
  // Verify the claim: every graph scheduled before the restart point must
  // be identical to the reference, or the checkpoint there describes a
  // different solution. A rejected SA move is the common case — the next
  // trial also reverts the rejected graph, which the scan catches here.
  for (std::size_t gi = 0; gi < idx; ++gi) {
    if (!graphEntriesEqual(reference_, solution, gi)) return gi;
  }
  return idx;
}

std::size_t EvalContext::restartPosition(const MappingSolution& solution,
                                         std::size_t gi) const {
  const GraphJobOrder& order = ev_->jobOrders()[gi];
  const ProcessGraph& graph = sys_->graph(ev_->currentGraphs()[gi]);
  const std::int64_t instances = sys_->instanceCount(graph.id);
  std::size_t pos = order.jobCount();
  const auto coverProcess = [&](ProcessId p) {
    const auto local = static_cast<std::size_t>(ev_->localProcessIndex(p));
    for (std::int64_t k = 0; k < instances; ++k) {
      const std::size_t flat =
          static_cast<std::size_t>(k) * order.processCount + local;
      pos = std::min(pos, static_cast<std::size_t>(order.positionOf[flat]));
    }
  };
  for (const ProcessId p : graph.processes) {
    if (reference_.nodeOf(p) != solution.nodeOf(p) ||
        reference_.startHint(p) != solution.startHint(p)) {
      coverProcess(p);
    }
  }
  for (const MessageId m : graph.messages) {
    if (reference_.messageHint(m) != solution.messageHint(m)) {
      // The hint is only read when scheduling the destination; the
      // destination of instance k commits after the source of instance k,
      // so its positions bound every reader.
      coverProcess(sys_->message(m).dst);
    }
  }
  return pos;
}

void EvalContext::beginDirty() {
  if (++stamp_ == 0) {  // wrapped: reset the lazily-aged stamps
    std::fill(nodeStamp_.begin(), nodeStamp_.end(), 0u);
    std::fill(occStamp_.begin(), occStamp_.end(), 0u);
    stamp_ = 1;
  }
  dirtyNodes_.clear();
  dirtyOccs_.clear();
}

void EvalContext::collectDirty(PlatformState::Mark from) {
  const std::vector<PlatformState::JournalEntry>& journal = state_.journal();
  const auto rounds = static_cast<std::uint64_t>(state_.roundCount());
  for (std::size_t i = from; i < journal.size(); ++i) {
    const PlatformState::JournalEntry& e = journal[i];
    if (e.kind == PlatformState::JournalEntry::Kind::Node) {
      if (nodeStamp_[e.index] != stamp_) {
        nodeStamp_[e.index] = stamp_;
        dirtyNodes_.push_back(e.index);
      }
    } else {
      const std::uint64_t key =
          static_cast<std::uint64_t>(e.index) * rounds +
          static_cast<std::uint64_t>(e.round);
      if (occStamp_[static_cast<std::size_t>(key)] != stamp_) {
        occStamp_[static_cast<std::size_t>(key)] = stamp_;
        dirtyOccs_.push_back(key);
      }
    }
  }
}

void EvalContext::fillOutcome(ScheduleOutcome& outcome,
                              const MappingSolution& solution,
                              const EvalResult& result) const {
  outcome.placed = result.placed;
  outcome.feasible = result.feasible;
  outcome.deadlineMisses = result.deadlineMisses;
  outcome.totalLateness = result.lateness;
  outcome.schedule = Schedule{};
  for (const ScheduledProcess& sp : processes_) {
    outcome.schedule.addProcess(sp);
  }
  for (const ScheduledMessage& sm : messages_) {
    outcome.schedule.addMessage(sm);
  }
  outcome.mapping = solution;
}

EvalResult EvalContext::evaluate(const MappingSolution& solution) {
  return run(solution, 0, 0, nullptr, nullptr);
}

EvalResult EvalContext::evaluate(const MappingSolution& solution,
                                 const MoveHint& hint) {
  std::size_t gi = restartIndex(solution, indexOfGraph(hint.graph));
  std::size_t pos = 0;
  while (gi < validGraphs_) {
    pos = restartPosition(solution, gi);
    if (pos < ev_->jobOrders()[gi].jobCount()) break;
    // Graph unchanged (stale or too-coarse hint): the verified-equal prefix
    // extends over it; look at the next committed graph.
    pos = 0;
    ++gi;
  }
  return run(solution, gi, pos, nullptr, nullptr);
}

EvalResult EvalContext::evaluate(const MappingSolution& solution,
                                 ScheduleOutcome* outcomeOut,
                                 SlackInfo* slackOut) {
  const std::size_t n = ev_->currentGraphs().size();
  // Serve the cached state when re-reading the solution just evaluated.
  const std::size_t first =
      restartIndex(solution, n) == n && validGraphs_ == n ? n : 0;
  return run(solution, first, 0, outcomeOut, slackOut);
}

EvalResult EvalContext::run(const MappingSolution& solution,
                            std::size_t firstGraph, std::size_t firstPos,
                            ScheduleOutcome* outcomeOut, SlackInfo* slackOut) {
  const std::vector<GraphId>& graphs = ev_->currentGraphs();
  const std::size_t n = graphs.size();
  ++evaluations_;
  evalTelemetry().evaluations.add();

  firstGraph = std::min(firstGraph, validGraphs_);

  if (firstGraph == n && resultValid_) {
    // Re-reading the solution already committed: the state, the log and the
    // cached result all describe it verbatim.
    evalTelemetry().zeroDelta.add();
    graphsReused_ += n;
    lastRestartGraph_ = n;
    lastRestartPos_ = 0;
    reference_ = solution;
    if (slackOut != nullptr && result_.feasible) {
      extractSlackInto(state_, slack_);
      *slackOut = slack_;
    }
    if (outcomeOut != nullptr) fillOutcome(*outcomeOut, solution, result_);
    return result_;
  }

  firstPos = firstGraph < n ? std::min(firstPos, fineCount_[firstGraph]) : 0;
  graphsReused_ += firstGraph;
  lastRestartGraph_ = firstGraph;
  lastRestartPos_ = firstPos;

  // The checkpoint to rewind to: a fine (mid-graph) one when resuming
  // inside the restart graph, the whole-graph one otherwise.
  PlatformState::Mark restartMark;
  std::size_t pc0;
  std::size_t mc0;
  if (firstGraph < n && firstPos > 0) {
    const SchedulerSession::JobCheckpoint& cp = fineMarks_[firstGraph][firstPos];
    restartMark = cp.mark;
    pc0 = cp.processCount;
    mc0 = cp.messageCount;
  } else {
    const Checkpoint& cp = checkpoints_[firstGraph];
    restartMark = cp.mark;
    pc0 = cp.processCount;
    mc0 = cp.messageCount;
  }

  // Zero-delta candidate: every graph is committed for the reference and
  // the caller wants the plain result. Save the suffix being re-scheduled;
  // if it comes back entry-identical and the downstream graphs' mapping
  // entries are untouched, the whole evaluation is the cached one.
  const bool trySkip = resultValid_ && validGraphs_ == n && firstGraph < n &&
                       outcomeOut == nullptr && slackOut == nullptr;
  if (trySkip) {
    oldProcs_.assign(
        processes_.begin() + static_cast<std::ptrdiff_t>(pc0),
        processes_.begin() +
            static_cast<std::ptrdiff_t>(checkpoints_[firstGraph + 1].processCount));
    oldMsgs_.assign(
        messages_.begin() + static_cast<std::ptrdiff_t>(mc0),
        messages_.begin() +
            static_cast<std::ptrdiff_t>(checkpoints_[firstGraph + 1].messageCount));
    if (firstGraph + 1 < n) {
      // Also save the downstream graphs' tail (entries, arrival bounds and
      // journal records) so a confirmed zero-delta restores it verbatim
      // instead of re-scheduling every graph behind the restart graph.
      const Checkpoint& cpNext = checkpoints_[firstGraph + 1];
      tailProcs_.assign(
          processes_.begin() + static_cast<std::ptrdiff_t>(cpNext.processCount),
          processes_.end());
      tailMsgs_.assign(
          messages_.begin() + static_cast<std::ptrdiff_t>(cpNext.messageCount),
          messages_.end());
      tailArrivals_.assign(
          arrivals_.begin() + static_cast<std::ptrdiff_t>(cpNext.processCount),
          arrivals_.end());
      const std::vector<PlatformState::JournalEntry>& j = state_.journal();
      tailJournal_.assign(j.begin() + static_cast<std::ptrdiff_t>(cpNext.mark),
                          j.end());
    }
  }

  // Dirty tracking for the metrics cache: the records about to be undone
  // plus (after scheduling) the records newly committed.
  const bool trackDirty = metricsCache_.valid();
  if (trackDirty) {
    beginDirty();
    collectDirty(restartMark);
  }

  // Rewind: two resizes plus the journal rollback, for any granularity.
  state_.rollbackTo(restartMark);
  processes_.resize(pc0);
  messages_.resize(mc0);
  arrivals_.resize(pc0);
  int misses = checkpoints_[firstGraph].deadlineMisses;
  Time lateness = checkpoints_[firstGraph].lateness;

  bool placed = true;
  for (std::size_t gi = firstGraph; gi < n; ++gi) {
    const std::size_t resumeAt = gi == firstGraph ? firstPos : 0;
    if (resumeAt == 0) {
      checkpoints_[gi] = {state_.mark(), processes_.size(), messages_.size(),
                          misses, lateness};
    }
    const SchedulerSession::GraphResult r = session_.scheduleGraphResume(
        graphs[gi], solution, &ev_->priorities()[gi], ev_->jobOrders()[gi],
        resumeAt, checkpoints_[gi].processCount, processes_, messages_,
        fineMarks_[gi], &arrivals_);
    ++graphsScheduled_;
    if (!r.placed) {
      // Drop the failed graph's partial placement so the checkpoints for
      // the prefix stay valid; the result still reports the partial
      // tallies, exactly like the full pass does.
      if (trackDirty && checkpoints_[gi].mark < restartMark) {
        // A failing mid-graph restart rewinds below the restart mark: the
        // prefix records it undoes were not in the pre-rollback scan, so
        // collect them before they leave the journal.
        collectDirty(checkpoints_[gi].mark);
      }
      state_.rollbackTo(checkpoints_[gi].mark);
      processes_.resize(checkpoints_[gi].processCount);
      messages_.resize(checkpoints_[gi].messageCount);
      arrivals_.resize(checkpoints_[gi].processCount);
      fineCount_[gi] = 0;
      validGraphs_ = gi;
      misses = checkpoints_[gi].deadlineMisses + r.deadlineMisses;
      lateness = checkpoints_[gi].lateness + r.totalLateness;
      placed = false;
      break;
    }
    fineCount_[gi] = ev_->jobOrders()[gi].jobCount();
    misses = checkpoints_[gi].deadlineMisses + r.deadlineMisses;
    lateness = checkpoints_[gi].lateness + r.totalLateness;
    validGraphs_ = gi + 1;

    if (gi == firstGraph && trySkip) {
      // Entry-identical suffix: the journal grew back identically, so the
      // platform state after this graph is byte for byte the one the cached
      // result was computed from. If the remaining graphs' mapping entries
      // are also unchanged they would re-commit identically too (each
      // graph's placement is a pure function of its entries and the state
      // before it) — so instead of re-running their schedulers, their saved
      // occupancy and entries are restored verbatim and the cached result
      // is served.
      bool identical =
          processes_.size() - pc0 == oldProcs_.size() &&
          messages_.size() - mc0 == oldMsgs_.size() &&
          std::equal(oldProcs_.begin(), oldProcs_.end(),
                     processes_.begin() + static_cast<std::ptrdiff_t>(pc0)) &&
          std::equal(oldMsgs_.begin(), oldMsgs_.end(),
                     messages_.begin() + static_cast<std::ptrdiff_t>(mc0));
      for (std::size_t gj = gi + 1; identical && gj < n; ++gj) {
        identical = graphEntriesEqual(reference_, solution, gj);
      }
      if (identical) {
        if (gi + 1 < n) {
          // Restore the downstream tail saved before the rewind. The replay
          // goes through the normal occupy paths, so the journal regrows by
          // byte-identical records: every downstream checkpoint, fine mark
          // and the final tally checkpoint stay valid as-is.
          evalTelemetry().journalReplays.add();
          state_.replay(tailJournal_.data(),
                        tailJournal_.data() + tailJournal_.size());
          processes_.insert(processes_.end(), tailProcs_.begin(),
                            tailProcs_.end());
          messages_.insert(messages_.end(), tailMsgs_.begin(),
                           tailMsgs_.end());
          arrivals_.insert(arrivals_.end(), tailArrivals_.begin(),
                           tailArrivals_.end());
          graphsReused_ += n - gi - 1;
          validGraphs_ = n;
        }
        ++zeroDeltaServes_;
        evalTelemetry().zeroDelta.add();
        reference_ = solution;
        hasReference_ = true;
        return result_;
      }
    }
  }
  if (placed) {
    checkpoints_[n] = {state_.mark(), processes_.size(), messages_.size(),
                       misses, lateness};
  }
  reference_ = solution;
  hasReference_ = true;
  if (lastRestartPos_ > 0) {
    evalTelemetry().midGraph.add();
  } else {
    evalTelemetry().graphStart.add();
  }

  EvalResult result = makeResult(placed, misses, lateness);
  // Keep the metrics snapshot aligned on every evaluation once it exists —
  // including infeasible ones (cheap: only the dirty entries are touched).
  if (trackDirty) {
    collectDirty(restartMark);
    metricsCache_.update(state_, dirtyNodes_, dirtyOccs_);
  }
  if (result.feasible) {
    if (!metricsCache_.valid()) {
      metricsCache_.rebuild(state_, ev_->profile());
    }
    result.metrics = metricsCache_.metrics(ev_->profile());
    result.objective =
        objectiveValue(result.metrics, ev_->profile(), ev_->weights());
    result.cost = result.objective;
    if (slackOut != nullptr) {
      extractSlackInto(state_, slack_);
      *slackOut = slack_;
    }
  }
  result_ = result;
  resultValid_ = placed;
  if (outcomeOut != nullptr) fillOutcome(*outcomeOut, solution, result);
  return result;
}

// ---- EvalContextPool ------------------------------------------------------

EvalContextPool::EvalContextPool(const SolutionEvaluator& evaluator,
                                 std::size_t size) {
  for (std::size_t w = 0; w < size; ++w) {
    contexts_.emplace_back(evaluator);
  }
}

void EvalContextPool::resync(const MappingSolution& solution,
                             const MoveHint& hint) {
  for (EvalContext& ctx : contexts_) {
    ctx.evaluate(solution, hint);
  }
}

}  // namespace ides
