#include "core/evaluator.h"

#include "model/graph_algos.h"
#include "model/system_model.h"

namespace ides {

SolutionEvaluator::SolutionEvaluator(const SystemModel& sys,
                                     PlatformState baseline,
                                     FutureProfile profile,
                                     MetricWeights weights,
                                     std::vector<GraphId> movableGraphs)
    : sys_(&sys),
      baseline_(std::move(baseline)),
      profile_(std::move(profile)),
      weights_(weights),
      currentGraphs_(movableGraphs.empty()
                         ? sys.graphsOfKind(AppKind::Current)
                         : std::move(movableGraphs)) {
  profile_.validate();
  priorities_.reserve(currentGraphs_.size());
  for (GraphId g : currentGraphs_) {
    priorities_.push_back(criticalPathPriorities(sys, g));
  }
}

EvalResult SolutionEvaluator::evaluate(const MappingSolution& solution) const {
  return evaluate(solution, nullptr, nullptr);
}

EvalResult SolutionEvaluator::evaluate(const MappingSolution& solution,
                                       ScheduleOutcome* outcomeOut,
                                       SlackInfo* slackOut) const {
  PlatformState state = baseline_;
  ScheduleRequest req;
  req.graphs = currentGraphs_;
  req.mapping = &solution;
  req.priorities = &priorities_;
  ScheduleOutcome outcome = scheduleGraphs(*sys_, req, state);

  EvalResult result;
  result.placed = outcome.placed;
  result.feasible = outcome.feasible;
  result.deadlineMisses = outcome.deadlineMisses;
  result.lateness = outcome.totalLateness;

  if (!outcome.placed) {
    result.cost = kUnplacedPenalty;
  } else if (!outcome.feasible) {
    result.cost = kMissPenalty + static_cast<double>(outcome.totalLateness);
  } else {
    const SlackInfo slack = extractSlack(state);
    result.metrics = computeMetrics(slack, profile_);
    result.objective = objectiveValue(result.metrics, profile_, weights_);
    result.cost = result.objective;
    if (slackOut != nullptr) *slackOut = slack;
  }
  if (outcomeOut != nullptr) *outcomeOut = std::move(outcome);
  return result;
}

PlatformState SolutionEvaluator::stateWith(
    const MappingSolution& solution) const {
  PlatformState state = baseline_;
  ScheduleRequest req;
  req.graphs = currentGraphs_;
  req.mapping = &solution;
  req.priorities = &priorities_;
  scheduleGraphs(*sys_, req, state);
  return state;
}

}  // namespace ides
