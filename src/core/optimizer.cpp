#include "core/optimizer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/initial_mapping.h"
#include "model/system_model.h"
#include "obs/telemetry.h"

namespace ides {

namespace {

/// Per-strategy run telemetry, recorded once per completed run from the
/// report's own counters — the sums the strategy engines already track, so
/// the inner loops pay nothing extra. Write-only by design: nothing here
/// is ever read back into a decision (result neutrality).
void recordRunTelemetry(const RunReport& report) {
  if (!telemetryEnabled()) return;
  TelemetryRegistry& reg = telemetry();
  const MetricLabels labels = {{"strategy", report.strategy}};
  reg.counter("ides_opt_runs_total", "Completed optimizer runs", labels)
      .add();
  reg.counter("ides_opt_evaluations_total",
              "Schedule evaluations consumed by optimizer runs", labels)
      .add(report.evaluations);
  reg.counter("ides_opt_proposals_total",
              "Moves proposed by annealing/tabu inner loops", labels)
      .add(report.proposals);
  reg.counter("ides_opt_accepted_total",
              "Proposed moves accepted by the strategy", labels)
      .add(report.accepted);
  reg.counter("ides_opt_zero_delta_skips_total",
              "Proposals replayed by the zero-delta filter without "
              "evaluation",
              labels)
      .add(report.zeroDeltaSkips);
  reg.histogram("ides_opt_run_seconds",
                "Wall-clock seconds per optimizer run",
                {0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0}, labels)
      .observe(report.seconds);
}

}  // namespace

void validateOptions(const DesignerOptions& options) {
  const auto weightOk = [](double w) { return std::isfinite(w) && w >= 0.0; };
  if (!weightOk(options.weights.w1p) || !weightOk(options.weights.w1m) ||
      !weightOk(options.weights.w2p) || !weightOk(options.weights.w2m)) {
    throw std::invalid_argument(
        "DesignerOptions: metric weights must be finite and >= 0");
  }
  validateOptions(options.mh);
  validateOptions(options.sa);
  validateOptions(options.tabu);
  // PSA runs with psa.base replaced by `sa`, so validate that combination
  // (psa.base itself is documented as ignored).
  ParallelSaOptions psa = options.psa;
  psa.base = options.sa;
  validateOptions(psa);
}

EvalContextPool& RunContext::leasePool(const SolutionEvaluator& evaluator,
                                       std::size_t size) {
  if (pool_ == nullptr || poolEvaluator_ != &evaluator ||
      pool_->size() < size) {
    pool_ = std::make_unique<EvalContextPool>(evaluator, std::max<std::size_t>(
                                                             size, 1));
    poolEvaluator_ = &evaluator;
  }
  return *pool_;
}

RunReport Optimizer::run(const SolutionEvaluator& evaluator,
                         RunContext& context) const {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  RunReport report;
  report.strategy = name();
  const TraceSpan span("optimizer:" + report.strategy, "core");

  // Every strategy starts from the same Initial Mapping on the frozen
  // baseline — exactly the legacy IncrementalDesigner::run flow, so
  // reports through this interface are bit-identical to the old enum path.
  PlatformState state = evaluator.baseline();
  const ScheduleOutcome im = initialMapping(evaluator.system(), state);
  report.evaluations = 1;
  context.report({report.strategy, "initial-mapping", 0, 0, 0.0});
  if (!im.feasible) {
    report.seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    recordRunTelemetry(report);
    return report;
  }

  MappingSolution solution = im.mapping;
  if (context.stopRequested()) {
    report.stopped = true;
  } else {
    report.evaluations += improve(evaluator, solution, context, report);
  }

  // Final full evaluation through the leased context (bit-identical to the
  // stateless pass; re-uses whatever checkpoints the improvement left).
  EvalContext& final = context.leasePool(evaluator, 1)[0];
  ScheduleOutcome outcome;
  const EvalResult eval = final.evaluate(solution, &outcome, nullptr);
  ++report.evaluations;
  context.report(
      {report.strategy, "final", report.evaluations, 0, eval.cost});

  report.feasible = eval.feasible;
  report.mapping = std::move(solution);
  report.schedule = std::move(outcome.schedule);
  report.metrics = eval.metrics;
  report.objective = eval.cost;
  report.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  recordRunTelemetry(report);
  return report;
}

RunReport Optimizer::run(const SolutionEvaluator& evaluator,
                         RunContext& context,
                         const MappingSolution* warmStart) const {
  if (warmStart == nullptr) return run(evaluator, context);

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const TraceSpan span("optimizer:" + name() + ":warm", "core");

  // Validate the seed before committing to it: warm starts can be stale
  // (the platform or the application set changed since the placements were
  // committed), and improve() requires a feasible entry solution.
  EvalContext& probe = context.leasePool(evaluator, 1)[0];
  const EvalResult seed = probe.evaluate(*warmStart);
  if (!seed.feasible) {
    RunReport cold = run(evaluator, context);
    ++cold.evaluations;  // the rejected seed's validation pass
    cold.seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return cold;
  }

  RunReport report;
  report.strategy = name();
  report.evaluations = 1;
  context.report({report.strategy, "warm-start", 0, 0, seed.cost});

  MappingSolution solution = *warmStart;
  if (context.stopRequested()) {
    report.stopped = true;
  } else {
    report.evaluations += improve(evaluator, solution, context, report);
  }

  EvalContext& final = context.leasePool(evaluator, 1)[0];
  ScheduleOutcome outcome;
  const EvalResult eval = final.evaluate(solution, &outcome, nullptr);
  ++report.evaluations;
  context.report(
      {report.strategy, "final", report.evaluations, 0, eval.cost});

  report.feasible = eval.feasible;
  report.mapping = std::move(solution);
  report.schedule = std::move(outcome.schedule);
  report.metrics = eval.metrics;
  report.objective = eval.cost;
  report.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  recordRunTelemetry(report);
  return report;
}

// ---- built-in optimizers --------------------------------------------------

MappingHeuristicOptimizer::MappingHeuristicOptimizer(MhOptions options)
    : options_(options) {
  validateOptions(options_);
}

std::size_t MappingHeuristicOptimizer::improve(
    const SolutionEvaluator& evaluator, MappingSolution& solution,
    RunContext& context, RunReport& report) const {
  MhOptions options = options_;
  if (options.stop == nullptr) options.stop = context.stop;
  EvalContext* scratch = options.incrementalEval
                             ? &context.leasePool(evaluator, 1)[0]
                             : nullptr;
  MhResult mh = runMappingHeuristic(evaluator, solution, options, scratch);
  solution = std::move(mh.solution);
  report.stopped = mh.stopped;
  context.report({"MH", "improve", mh.evaluations, 0, mh.eval.cost});
  return mh.evaluations;
}

SimulatedAnnealingOptimizer::SimulatedAnnealingOptimizer(SaOptions options)
    : options_(options) {
  validateOptions(options_);
}

std::size_t SimulatedAnnealingOptimizer::improve(
    const SolutionEvaluator& evaluator, MappingSolution& solution,
    RunContext& context, RunReport& report) const {
  SaOptions options = options_;
  if (options.stop == nullptr) options.stop = context.stop;
  // The speculative engine owns its worker contexts; only the sequential
  // chain borrows the leased scratch.
  EvalContext* scratch =
      options.incrementalEval && options.speculation.workers <= 1
          ? &context.leasePool(evaluator, 1)[0]
          : nullptr;
  SaResult sa = runSimulatedAnnealing(evaluator, solution, options, scratch);
  solution = std::move(sa.solution);
  report.stopped = sa.stopped;
  report.proposals = sa.proposals;
  report.accepted = sa.accepted;
  report.zeroDeltaSkips = sa.zeroDeltaSkips;
  context.report({"SA", "improve", sa.evaluations, 0, sa.eval.cost});
  return sa.evaluations;
}

ParallelAnnealingOptimizer::ParallelAnnealingOptimizer(
    ParallelSaOptions options)
    : options_(options) {
  validateOptions(options_);
}

std::size_t ParallelAnnealingOptimizer::improve(
    const SolutionEvaluator& evaluator, MappingSolution& solution,
    RunContext& context, RunReport& report) const {
  ParallelSaOptions options = options_;
  if (options.base.stop == nullptr) options.base.stop = context.stop;
  ParallelSaResult psa = runParallelAnnealing(evaluator, solution, options);
  solution = std::move(psa.solution);
  report.stopped = psa.stopped;
  report.proposals = psa.proposals;
  report.accepted = psa.accepted;
  report.zeroDeltaSkips = psa.zeroDeltaSkips;
  context.report({"PSA", "improve", psa.evaluations, 0, psa.eval.cost});
  return psa.evaluations;
}

TabuSearchOptimizer::TabuSearchOptimizer(TabuOptions options)
    : options_(options) {
  validateOptions(options_);
}

std::size_t TabuSearchOptimizer::improve(const SolutionEvaluator& evaluator,
                                         MappingSolution& solution,
                                         RunContext& context,
                                         RunReport& report) const {
  TabuOptions options = options_;
  if (options.stop == nullptr) options.stop = context.stop;
  EvalContext* scratch = options.incrementalEval
                             ? &context.leasePool(evaluator, 1)[0]
                             : nullptr;
  TabuResult tabu = runTabuSearch(evaluator, solution, options, scratch);
  solution = std::move(tabu.solution);
  report.stopped = tabu.stopped;
  report.proposals = tabu.proposals;
  report.accepted = tabu.accepted;
  context.report({"tabu", "improve", tabu.evaluations, 0, tabu.eval.cost});
  return tabu.evaluations;
}

// ---- registry -------------------------------------------------------------

void StrategyRegistry::add(std::string name, Factory factory) {
  if (contains(name)) {
    throw std::invalid_argument("StrategyRegistry: duplicate strategy \"" +
                                name + "\"");
  }
  factories_.emplace_back(std::move(name), std::move(factory));
}

bool StrategyRegistry::contains(const std::string& name) const {
  for (const auto& [n, f] : factories_) {
    if (n == name) return true;
  }
  return false;
}

std::vector<std::string> StrategyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [n, f] : factories_) out.push_back(n);
  return out;
}

std::unique_ptr<Optimizer> StrategyRegistry::create(
    const std::string& name, const DesignerOptions& options) const {
  for (const auto& [n, factory] : factories_) {
    if (n == name) {
      validateOptions(options);
      return factory(options);
    }
  }
  std::string known;
  for (const auto& [n, f] : factories_) {
    known += known.empty() ? n : ", " + n;
  }
  throw std::invalid_argument("unknown strategy \"" + name +
                              "\" (registered: " + known + ")");
}

const StrategyRegistry& StrategyRegistry::builtin() {
  static const StrategyRegistry registry = [] {
    StrategyRegistry r;
    r.add("AH", [](const DesignerOptions&) {
      return std::make_unique<AdHocOptimizer>();
    });
    r.add("MH", [](const DesignerOptions& o) {
      return std::make_unique<MappingHeuristicOptimizer>(o.mh);
    });
    r.add("SA", [](const DesignerOptions& o) {
      return std::make_unique<SimulatedAnnealingOptimizer>(o.sa);
    });
    r.add("PSA", [](const DesignerOptions& o) {
      // One knob set for chain parameters: PSA takes its per-chain options
      // from `sa`, exactly like the legacy designer switch did.
      ParallelSaOptions psa = o.psa;
      psa.base = o.sa;
      return std::make_unique<ParallelAnnealingOptimizer>(psa);
    });
    r.add("tabu", [](const DesignerOptions& o) {
      return std::make_unique<TabuSearchOptimizer>(o.tabu);
    });
    return r;
  }();
  return registry;
}

}  // namespace ides
