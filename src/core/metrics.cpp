#include "core/metrics.h"

#include <algorithm>
#include <map>

namespace ides {

std::vector<std::int64_t> largestFutureDemand(const DiscreteDistribution& dist,
                                              std::int64_t totalSlack) {
  if (totalSlack <= 0) return {};
  // Upper bound on how many items could possibly fit, then trim the
  // deterministic stream greedily (it is emitted largest-value-first).
  const double expected = dist.expectedValue();
  const auto bound = static_cast<std::size_t>(
      static_cast<double>(totalSlack) / std::max(1.0, expected) +
      static_cast<double>(dist.entries().size()) + 8);
  std::vector<std::int64_t> stream = dist.deterministicStream(bound);
  std::vector<std::int64_t> out;
  std::int64_t sum = 0;
  for (std::int64_t v : stream) {
    if (sum + v > totalSlack) continue;  // skip items too big, keep filling
    sum += v;
    out.push_back(v);
  }
  return out;  // still descending: skipped items only remove elements
}

std::int64_t bestFitUnpacked(const std::vector<std::int64_t>& itemsDesc,
                             std::vector<std::int64_t> containers) {
  // Best-fit: place each item into the fullest container that still takes
  // it. A multiset over remaining capacities gives O(n log n).
  std::multimap<std::int64_t, std::size_t> byRemaining;
  for (std::size_t i = 0; i < containers.size(); ++i) {
    if (containers[i] > 0) byRemaining.emplace(containers[i], i);
  }
  std::int64_t unpacked = 0;
  for (std::int64_t item : itemsDesc) {
    auto it = byRemaining.lower_bound(item);
    if (it == byRemaining.end()) {
      unpacked += item;
      continue;
    }
    const std::size_t ci = it->second;
    byRemaining.erase(it);
    containers[ci] -= item;
    if (containers[ci] > 0) byRemaining.emplace(containers[ci], ci);
  }
  return unpacked;
}

namespace {

/// C1 for one resource class: slack containers vs. the deterministic
/// largest-future-application demand. Returns percent unpacked.
double c1Percent(const std::vector<std::int64_t>& containers,
                 const DiscreteDistribution& dist) {
  std::int64_t total = 0;
  for (std::int64_t c : containers) total += c;
  const std::vector<std::int64_t> items = largestFutureDemand(dist, total);
  std::int64_t demand = 0;
  for (std::int64_t v : items) demand += v;
  if (demand == 0) {
    // No future item fits even in contiguous slack: the design alternative
    // leaves no usable slack at all.
    return total > 0 ? 0.0 : 100.0;
  }
  const std::int64_t unpacked = bestFitUnpacked(items, containers);
  return 100.0 * static_cast<double>(unpacked) / static_cast<double>(demand);
}

}  // namespace

DesignMetrics computeMetrics(const SlackInfo& slack,
                             const FutureProfile& profile) {
  profile.validate();
  DesignMetrics m;

  // ---- C1P: processor slack intervals as containers ----------------------
  std::vector<std::int64_t> procContainers;
  for (const IntervalSet& free : slack.nodeFree) {
    for (const Interval& iv : free.intervals()) {
      procContainers.push_back(iv.length());
    }
  }
  m.c1p = c1Percent(procContainers, profile.wcetDistribution);

  // ---- C1m: per-slot-occurrence free bytes as containers -----------------
  std::vector<std::int64_t> busContainers;
  busContainers.reserve(slack.busChunks.size());
  for (const SlackInfo::BusChunk& c : slack.busChunks) {
    busContainers.push_back(c.freeTicks * slack.busBytesPerTick);
  }
  m.c1m = c1Percent(busContainers, profile.messageSizeDistribution);

  // ---- C2: minimum slack inside any Tmin window ---------------------------
  const std::int64_t windows = slack.horizon / profile.tmin;
  if (windows > 0) {
    Time sumOfMins = 0;
    for (std::size_t n = 0; n < slack.nodeFree.size(); ++n) {
      Time nodeMin = kTimeMax;
      for (std::int64_t w = 0; w < windows; ++w) {
        nodeMin = std::min(
            nodeMin, slack.nodeSlackInWindow(n, w * profile.tmin,
                                             (w + 1) * profile.tmin));
      }
      sumOfMins += nodeMin;
    }
    m.c2p = sumOfMins;

    Time busMin = kTimeMax;
    for (std::int64_t w = 0; w < windows; ++w) {
      busMin = std::min(busMin, slack.busSlackInWindow(
                                    w * profile.tmin, (w + 1) * profile.tmin));
    }
    m.c2mBytes = busMin * slack.busBytesPerTick;
  }
  return m;
}

double objectiveValue(const DesignMetrics& metrics,
                      const FutureProfile& profile,
                      const MetricWeights& weights) {
  const double p2p =
      100.0 *
      static_cast<double>(std::max<Time>(0, profile.tneed - metrics.c2p)) /
      static_cast<double>(profile.tneed);
  const double p2m =
      100.0 *
      static_cast<double>(
          std::max<std::int64_t>(0, profile.bneedBytes - metrics.c2mBytes)) /
      static_cast<double>(profile.bneedBytes);
  return weights.w1p * metrics.c1p + weights.w1m * metrics.c1m +
         weights.w2p * p2p + weights.w2m * p2m;
}

}  // namespace ides
