#include "core/metrics.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace ides {

namespace {

/// (value, count) runs of the trimmed largest-future-demand stream,
/// descending by value — the compact form of largestFutureDemand that the
/// hot path consumes without materializing one element per item.
using DemandRuns = ValueCounts;

/// Fills `runs` with the demand stream for `totalSlack`. The deterministic
/// stream is runs of identical values in descending order (largest-
/// remainder quotas per entry), and the greedy trim keeps a prefix of every
/// run: once sum + v overflows, every later item of the same value
/// overflows too. This runs once per evaluation — thousands of times per
/// optimization — on streams of ~10^3 items.
void demandRunsInto(const DiscreteDistribution& dist, std::int64_t totalSlack,
                    DemandRuns& runs) {
  runs.clear();
  if (totalSlack <= 0) return;
  const double expected = dist.expectedValue();
  const auto bound = static_cast<std::size_t>(
      static_cast<double>(totalSlack) / std::max(1.0, expected) +
      static_cast<double>(dist.entries().size()) + 8);
  const std::vector<std::size_t> quotas = dist.deterministicQuotas(bound);
  const auto& entries = dist.entries();
  std::int64_t sum = 0;
  for (std::size_t i = entries.size(); i > 0; --i) {
    const std::int64_t v = entries[i - 1].value;
    if (v <= 0) continue;
    const auto room = static_cast<std::int64_t>((totalSlack - sum) / v);
    const std::int64_t take =
        std::min(static_cast<std::int64_t>(quotas[i - 1]), room);
    if (take > 0) {
      runs.emplace_back(v, take);
      sum += take * v;
    }
  }
}

/// Flat ordered multiset of container capacities: (capacity, count) pairs,
/// ascending, reusing the caller's scratch. Only the multiset matters for
/// the unpacked total, never container identity.
using CapacityCounts = ValueCounts;

void capacityCountsInto(std::vector<std::int64_t>& capacities,
                        CapacityCounts& counts) {
  std::sort(capacities.begin(), capacities.end());
  counts.clear();
  for (const std::int64_t c : capacities) {
    if (c <= 0) continue;
    if (!counts.empty() && counts.back().first == c) {
      counts.back().second += 1;
    } else {
      counts.emplace_back(c, 1);
    }
  }
}

/// Best-fit-decreasing over run-length-encoded items and capacity counts.
/// Equivalent to placing the items one by one into the fullest container
/// that still takes them: after placing v into the smallest capacity
/// c >= v, the remainder c - v is strictly smaller than every other
/// candidate, so the same container keeps absorbing items of the run until
/// it drops below v. The C1 histograms have ~4 distinct values over ~10^3
/// items, which makes this effectively linear where a per-item multiset
/// was the hottest spot of the whole evaluation pipeline.
std::int64_t bestFitUnpackedRuns(const DemandRuns& runs,
                                 CapacityCounts& counts) {
  std::int64_t unpacked = 0;
  for (const auto& [item, runLength] : runs) {
    if (item <= 0) continue;
    std::int64_t remaining = runLength;
    while (remaining > 0) {
      const auto it = std::lower_bound(
          counts.begin(), counts.end(), item,
          [](const auto& entry, std::int64_t v) { return entry.first < v; });
      if (it == counts.end()) {
        unpacked += item * remaining;
        break;
      }
      const std::int64_t capacity = it->first;
      const std::int64_t absorbed = std::min(remaining, capacity / item);
      const std::int64_t rest = capacity - absorbed * item;
      if (--(it->second) == 0) counts.erase(it);
      if (rest > 0) {
        const auto pos = std::lower_bound(
            counts.begin(), counts.end(), rest,
            [](const auto& entry, std::int64_t v) { return entry.first < v; });
        if (pos != counts.end() && pos->first == rest) {
          pos->second += 1;
        } else {
          counts.insert(pos, {rest, 1});
        }
      }
      remaining -= absorbed;
    }
  }
  return unpacked;
}

}  // namespace

std::vector<std::int64_t> largestFutureDemand(const DiscreteDistribution& dist,
                                              std::int64_t totalSlack) {
  DemandRuns runs;
  demandRunsInto(dist, totalSlack, runs);
  std::vector<std::int64_t> out;
  for (const auto& [value, count] : runs) {
    out.insert(out.end(), static_cast<std::size_t>(count), value);
  }
  return out;  // descending, exactly the trimmed deterministic stream
}

std::int64_t bestFitUnpacked(const std::vector<std::int64_t>& itemsDesc,
                             std::vector<std::int64_t> containers) {
  DemandRuns runs;
  for (const std::int64_t item : itemsDesc) {
    if (!runs.empty() && runs.back().first == item) {
      runs.back().second += 1;
    } else {
      runs.emplace_back(item, 1);
    }
  }
  CapacityCounts counts;
  capacityCountsInto(containers, counts);
  return bestFitUnpackedRuns(runs, counts);
}

namespace {

/// Per-thread scratch for the C1 computation: evaluated once per candidate
/// solution, the container/demand buffers would otherwise be re-allocated
/// thousands of times per optimization run.
struct C1Scratch {
  std::vector<std::int64_t> containers;
  DemandRuns runs;
  CapacityCounts counts;
};

C1Scratch& c1Scratch() {
  static thread_local C1Scratch scratch;
  return scratch;
}

/// C1 for one resource class from the capacity multiset and its total.
/// Consumes `counts`. Only the multiset enters the packing, so any producer
/// that maintains the same multiset (notably IncrementalMetrics) gets the
/// exact same doubles as a fresh extraction.
double c1PercentFromCounts(CapacityCounts& counts, std::int64_t total,
                           const DiscreteDistribution& dist,
                           DemandRuns& runs) {
  demandRunsInto(dist, total, runs);
  std::int64_t demand = 0;
  for (const auto& [value, count] : runs) demand += value * count;
  if (demand == 0) {
    // No future item fits even in contiguous slack: the design alternative
    // leaves no usable slack at all.
    return total > 0 ? 0.0 : 100.0;
  }
  const std::int64_t unpacked = bestFitUnpackedRuns(runs, counts);
  return 100.0 * static_cast<double>(unpacked) / static_cast<double>(demand);
}

/// C1 for one resource class: slack containers vs. the deterministic
/// largest-future-application demand. Returns percent unpacked. Consumes
/// scratch.containers.
double c1Percent(C1Scratch& scratch, const DiscreteDistribution& dist) {
  std::int64_t total = 0;
  for (std::int64_t c : scratch.containers) total += c;
  capacityCountsInto(scratch.containers, scratch.counts);
  return c1PercentFromCounts(scratch.counts, total, dist, scratch.runs);
}

}  // namespace

DesignMetrics computeMetrics(const SlackInfo& slack,
                             const FutureProfile& profile) {
  profile.validate();
  DesignMetrics m;
  C1Scratch& scratch = c1Scratch();

  // ---- C1P: processor slack intervals as containers ----------------------
  scratch.containers.clear();
  for (const IntervalSet& free : slack.nodeFree) {
    for (const Interval& iv : free.intervals()) {
      scratch.containers.push_back(iv.length());
    }
  }
  m.c1p = c1Percent(scratch, profile.wcetDistribution);

  // ---- C1m: per-slot-occurrence free bytes as containers -----------------
  scratch.containers.clear();
  for (const SlackInfo::BusChunk& c : slack.busChunks) {
    scratch.containers.push_back(c.freeTicks * slack.busBytesPerTick);
  }
  m.c1m = c1Percent(scratch, profile.messageSizeDistribution);

  // ---- C2: minimum slack inside any Tmin window ---------------------------
  const std::int64_t windows = slack.horizon / profile.tmin;
  if (windows > 0) {
    Time sumOfMins = 0;
    for (std::size_t n = 0; n < slack.nodeFree.size(); ++n) {
      Time nodeMin = kTimeMax;
      for (std::int64_t w = 0; w < windows; ++w) {
        nodeMin = std::min(
            nodeMin, slack.nodeSlackInWindow(n, w * profile.tmin,
                                             (w + 1) * profile.tmin));
      }
      sumOfMins += nodeMin;
    }
    m.c2p = sumOfMins;

    Time busMin = kTimeMax;
    for (std::int64_t w = 0; w < windows; ++w) {
      busMin = std::min(busMin, slack.busSlackInWindow(
                                    w * profile.tmin, (w + 1) * profile.tmin));
    }
    m.c2mBytes = busMin * slack.busBytesPerTick;
  }
  return m;
}

// ---- IncrementalMetrics ---------------------------------------------------

namespace {

/// Insert one value into the ordered (value, count) multiset.
void countsAdd(ValueCounts& counts, std::int64_t value) {
  if (value <= 0) return;
  const auto it = std::lower_bound(
      counts.begin(), counts.end(), value,
      [](const auto& entry, std::int64_t v) { return entry.first < v; });
  if (it != counts.end() && it->first == value) {
    it->second += 1;
  } else {
    counts.insert(it, {value, 1});
  }
}

/// Remove one value. The cache only ever removes what it added, so the
/// value is always present.
void countsRemove(ValueCounts& counts, std::int64_t value) {
  if (value <= 0) return;
  const auto it = std::lower_bound(
      counts.begin(), counts.end(), value,
      [](const auto& entry, std::int64_t v) { return entry.first < v; });
  if (--(it->second) == 0) counts.erase(it);
}

}  // namespace

void IncrementalMetrics::refreshNode(const PlatformState& state,
                                     std::size_t n) {
  const NodeId id{static_cast<std::int32_t>(n)};
  // Rollback + replay commonly restores the exact occupancy (a rejected
  // move, or the untouched part of a partial rewind); recompute the free
  // set first and bail before touching the multiset when nothing changed.
  state.nodeBusy(id).complementWithinInto({0, horizon_}, scratchSet_);
  IntervalSet& free = nodeFree_[n];
  if (scratchSet_ == free) return;
  for (const Interval& iv : free.intervals()) {
    countsRemove(c1pCounts_, iv.length());
    c1pTotal_ -= iv.length();
  }
  std::swap(free, scratchSet_);
  for (const Interval& iv : free.intervals()) {
    countsAdd(c1pCounts_, iv.length());
    c1pTotal_ += iv.length();
  }
  if (windows_ > 0) {
    Time rowMin = kTimeMax;
    for (std::int64_t w = 0; w < windows_; ++w) {
      rowMin =
          std::min(rowMin, free.lengthWithin({w * tmin_, (w + 1) * tmin_}));
    }
    nodeMin_[n] = rowMin;
  }
}

void IncrementalMetrics::refreshOccurrence(const PlatformState& state,
                                           std::size_t slot,
                                           std::int64_t round) {
  const std::size_t key =
      slot * static_cast<std::size_t>(roundCount_) +
      static_cast<std::size_t>(round);
  const Time oldUsed = slotUsed_[key];
  const Time newUsed = state.slotUsedTicks(slot, round);
  if (oldUsed == newUsed) return;
  const TdmaBus& bus = state.bus();
  const Time len = bus.slot(slot).length;
  countsRemove(c1mCounts_, (len - oldUsed) * bytesPerTick_);
  c1mTotal_ -= (len - oldUsed) * bytesPerTick_;
  countsAdd(c1mCounts_, (len - newUsed) * bytesPerTick_);
  c1mTotal_ += (len - newUsed) * bytesPerTick_;
  if (windows_ > 0) {
    // The occurrence's free chunk is [slotStart + used, slotStart + len);
    // only the span between the two used marks flips state.
    const Time slotStart = bus.slotStart(round, slot);
    const Time lo = slotStart + std::min(oldUsed, newUsed);
    const Time hi = std::min<Time>(slotStart + std::max(oldUsed, newUsed),
                                   windows_ * tmin_);
    const Time delta = newUsed > oldUsed ? -1 : 1;  // grew => free lost
    for (std::int64_t w = lo / tmin_; w < windows_ && w * tmin_ < hi; ++w) {
      const Time s = std::max(lo, w * tmin_);
      const Time e = std::min(hi, (w + 1) * tmin_);
      if (e > s) busWin_[static_cast<std::size_t>(w)] += delta * (e - s);
    }
  }
  slotUsed_[key] = newUsed;
}

void IncrementalMetrics::rebuild(const PlatformState& state,
                                 const FutureProfile& profile) {
  const TdmaBus& bus = state.bus();
  horizon_ = state.horizon();
  tmin_ = profile.tmin;
  windows_ = horizon_ / tmin_;
  bytesPerTick_ = bus.bytesPerTick();
  roundCount_ = state.roundCount();

  const std::size_t nodes = state.nodeCount();
  nodeFree_.resize(nodes);
  nodeMin_.assign(nodes, 0);
  C1Scratch& scratch = c1Scratch();
  scratch.containers.clear();
  c1pTotal_ = 0;
  for (std::size_t n = 0; n < nodes; ++n) {
    const NodeId id{static_cast<std::int32_t>(n)};
    state.nodeBusy(id).complementWithinInto({0, horizon_}, nodeFree_[n]);
    for (const Interval& iv : nodeFree_[n].intervals()) {
      scratch.containers.push_back(iv.length());
      c1pTotal_ += iv.length();
    }
    if (windows_ > 0) {
      Time rowMin = kTimeMax;
      for (std::int64_t w = 0; w < windows_; ++w) {
        rowMin = std::min(rowMin, nodeFree_[n].lengthWithin(
                                      {w * tmin_, (w + 1) * tmin_}));
      }
      nodeMin_[n] = rowMin;
    }
  }
  capacityCountsInto(scratch.containers, c1pCounts_);

  slotUsed_.assign(bus.slotCount() * static_cast<std::size_t>(roundCount_),
                   0);
  busWin_.assign(static_cast<std::size_t>(windows_), 0);
  scratch.containers.clear();
  c1mTotal_ = 0;
  for (std::size_t s = 0; s < bus.slotCount(); ++s) {
    const Time len = bus.slot(s).length;
    for (std::int64_t r = 0; r < roundCount_; ++r) {
      const Time used = state.slotUsedTicks(s, r);
      slotUsed_[s * static_cast<std::size_t>(roundCount_) +
                static_cast<std::size_t>(r)] = used;
      const Time freeTicks = len - used;
      if (freeTicks <= 0) continue;
      scratch.containers.push_back(freeTicks * bytesPerTick_);
      c1mTotal_ += freeTicks * bytesPerTick_;
      if (windows_ > 0) {
        const Time lo = bus.slotStart(r, s) + used;
        const Time hi =
            std::min<Time>(bus.slotStart(r, s) + len, windows_ * tmin_);
        for (std::int64_t w = lo / tmin_; w < windows_ && w * tmin_ < hi;
             ++w) {
          const Time ws = std::max(lo, w * tmin_);
          const Time we = std::min(hi, (w + 1) * tmin_);
          if (we > ws) busWin_[static_cast<std::size_t>(w)] += we - ws;
        }
      }
    }
  }
  capacityCountsInto(scratch.containers, c1mCounts_);
  memoValid_ = false;  // a rebuild may come with a different profile
  valid_ = true;
}

void IncrementalMetrics::update(
    const PlatformState& state, const std::vector<std::uint32_t>& dirtyNodes,
    const std::vector<std::uint64_t>& dirtyOccurrences) {
  for (const std::uint32_t n : dirtyNodes) refreshNode(state, n);
  for (const std::uint64_t key : dirtyOccurrences) {
    refreshOccurrence(state,
                      static_cast<std::size_t>(
                          key / static_cast<std::uint64_t>(roundCount_)),
                      static_cast<std::int64_t>(
                          key % static_cast<std::uint64_t>(roundCount_)));
  }
}

DesignMetrics IncrementalMetrics::metrics(const FutureProfile& profile) {
  profile.validate();
  DesignMetrics m;
  C1Scratch& scratch = c1Scratch();
  if (memoValid_ && c1pCounts_ == c1pMemoCounts_) {
    m.c1p = c1pMemoValue_;
  } else {
    scratch.counts = c1pCounts_;
    m.c1p = c1PercentFromCounts(scratch.counts, c1pTotal_,
                                profile.wcetDistribution, scratch.runs);
    c1pMemoCounts_ = c1pCounts_;
    c1pMemoValue_ = m.c1p;
  }
  if (memoValid_ && c1mCounts_ == c1mMemoCounts_) {
    m.c1m = c1mMemoValue_;
  } else {
    scratch.counts = c1mCounts_;
    m.c1m = c1PercentFromCounts(scratch.counts, c1mTotal_,
                                profile.messageSizeDistribution, scratch.runs);
    c1mMemoCounts_ = c1mCounts_;
    c1mMemoValue_ = m.c1m;
  }
  memoValid_ = true;
  if (windows_ > 0) {
    Time sumOfMins = 0;
    for (const Time v : nodeMin_) sumOfMins += v;
    m.c2p = sumOfMins;
    Time busMin = kTimeMax;
    for (const Time v : busWin_) busMin = std::min(busMin, v);
    m.c2mBytes = busMin * bytesPerTick_;
  }
  return m;
}

double objectiveValue(const DesignMetrics& metrics,
                      const FutureProfile& profile,
                      const MetricWeights& weights) {
  const double p2p =
      100.0 *
      static_cast<double>(std::max<Time>(0, profile.tneed - metrics.c2p)) /
      static_cast<double>(profile.tneed);
  const double p2m =
      100.0 *
      static_cast<double>(
          std::max<std::int64_t>(0, profile.bneedBytes - metrics.c2mBytes)) /
      static_cast<double>(profile.bneedBytes);
  return weights.w1p * metrics.c1p + weights.w1m * metrics.c1m +
         weights.w2p * p2p + weights.w2m * p2m;
}

}  // namespace ides
