// BatchRunner: deterministic sharded execution of instance suites.
//
// The paper's figures are strategy comparisons over suites of generated
// instances (tgen presets × seeds × strategies). An InstanceSuite is the
// flat, canonically ordered list of those instances; the runner shards it
// across a thread pool and collects one result per instance back into
// canonical order. Every instance is self-contained — its own generated
// system, evaluator, optimizer resolved by name from the built-in registry,
// and deterministically derived seeds — so the aggregated report (and the
// BENCH_*.json rendering) is bit-identical for ANY shard count; only the
// wall-clock fields differ between runs (the JSON renderer can omit them,
// which is what the determinism tests compare).
//
// Cancellation: a StopToken checked before each instance claim and threaded
// into the running optimizer. A fired token yields a well-formed partial
// report — completed instances keep their full results, unstarted ones are
// marked not-run, and the JSON rendering stays parseable with accurate
// completed/total counts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/optimizer.h"
#include "tgen/benchmark_suite.h"
#include "util/stop_token.h"

namespace ides {

struct BatchInstance;

/// Ordered numeric side-channel of one instance's result (e.g. future-fit
/// counts from a probe, lifetime counters from a custom job). Rendered
/// after the standard report fields, in insertion order.
struct BatchExtras {
  std::vector<std::pair<std::string, double>> fields;
  void add(std::string name, double value) {
    fields.emplace_back(std::move(name), value);
  }
};

/// What one executed instance produced.
struct InstanceOutcome {
  /// Standard optimizer report (default job). Custom jobs that do not run
  /// a single optimizer leave `hasReport` false and publish via `extras`.
  RunReport report;
  bool hasReport = true;
  BatchExtras extras;
};

/// Per-instance hook of the default job, run after the optimizer on the
/// instance's own suite/evaluator (e.g. the future-fit probe of figure F3).
/// Must be deterministic — its extras are part of the canonical aggregate.
using BatchProbe = std::function<void(const Suite& suite,
                                      const SolutionEvaluator& evaluator,
                                      const RunReport& report,
                                      BatchExtras& extras)>;

/// Full replacement job for instances that are not "one optimizer on one
/// generated suite" (e.g. the multi-increment lifetime experiment).
using BatchJob =
    std::function<InstanceOutcome(const BatchInstance& instance,
                                  const StopToken* stop)>;

/// One unit of work: a generated instance plus the strategy to run on it.
struct BatchInstance {
  /// Unique canonical id, e.g. "n160/s0/SA" (the JSON record key).
  std::string id;
  /// Aggregation group (figure x-axis bucket), e.g. "n160" or a weight-case
  /// name.
  std::string group;
  /// Numeric axis value of the group (e.g. current-application processes).
  double axis = 0.0;
  /// Seed index within the group (the paper's "seeds per point").
  int seedIndex = 0;
  /// tgen generator seed for buildSuite.
  std::uint64_t suiteSeed = 1;
  SuiteConfig config;
  /// Registry name resolved against StrategyRegistry::builtin().
  std::string strategy = "MH";
  /// Fully specified options (sa.seed already derived per instance).
  DesignerOptions options;
  /// Optional extras hook on the default job.
  BatchProbe probe;
  /// Optional full replacement job (ignores config/strategy/options unless
  /// it chooses to read them).
  BatchJob job;
};

/// A named, canonically ordered list of instances. The order instances are
/// added IS the canonical aggregation order.
class InstanceSuite {
 public:
  explicit InstanceSuite(std::string name) : name_(std::move(name)) {}

  void add(BatchInstance instance) {
    instances_.push_back(std::move(instance));
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<BatchInstance>& instances() const {
    return instances_;
  }
  [[nodiscard]] std::size_t size() const { return instances_.size(); }

 private:
  std::string name_;
  std::vector<BatchInstance> instances_;
};

struct InstanceResult {
  std::size_t index = 0;  ///< canonical position in the suite
  bool ran = false;       ///< false when cancellation skipped the instance
  /// True when the outcome came out of a ResultCache instead of a fresh
  /// run. Cached outcomes carry the full deterministic record (report
  /// fields + extras + original wall-clock seconds) but not the mapping or
  /// schedule — aggregation never reads those, re-runs do.
  bool cached = false;
  /// Identity copied from the instance, so the report (and its JSON
  /// rendering) stays self-contained after the suite is gone.
  std::string id;
  std::string group;
  double axis = 0.0;
  int seedIndex = 0;
  std::uint64_t suiteSeed = 0;
  InstanceOutcome outcome;
};

struct BatchReport {
  std::string suiteName;
  /// One entry per suite instance, in canonical order (ran or not).
  std::vector<InstanceResult> results;
  std::size_t completed = 0;
  /// How many of `completed` were served from the ResultCache. Not part of
  /// the JSON rendering — a resumed run and a from-scratch run must render
  /// byte-identically.
  std::size_t cacheHits = 0;
  bool stopped = false;
};

/// Persistent result reuse hook of the batch runner (implemented by the
/// sweep store, src/store/sweep_store.h). Both calls may come from any
/// shard thread concurrently; implementations synchronize internally.
class ResultCache {
 public:
  virtual ~ResultCache() = default;

  /// Fill `outcome` with a previously stored result for `instance` and
  /// return true, or return false to make the runner execute it. Hits must
  /// reproduce the deterministic record fields exactly — the runner trusts
  /// them into the canonical aggregate.
  virtual bool lookup(const BatchInstance& instance,
                      InstanceOutcome& outcome) = 0;

  /// Offer a freshly completed outcome for persistence. Implementations
  /// decide what is cacheable (the sweep store refuses outcomes cut short
  /// by a stop token — a partial result must never shadow the full one).
  virtual void store(const BatchInstance& instance,
                     const InstanceOutcome& outcome) = 0;
};

struct BatchOptions {
  /// Shard worker threads; 0 = std::thread::hardware_concurrency().
  /// Aggregates are bit-identical for every value (asserted in tests).
  int shards = 1;
  const StopToken* stop = nullptr;
  /// Optional persistent result reuse (resume / figure regeneration);
  /// null = every instance runs fresh.
  ResultCache* cache = nullptr;
  /// Per-completed-instance notification, serialized across shards (safe
  /// to print / request stop from).
  std::function<void(const InstanceResult&)> onInstanceDone;
};

/// Executes one instance exactly as the shard workers do: the custom job
/// when set, otherwise generate + resolve strategy + optimize + probe.
/// Exposed for the cross-process work-queue path, which runs claimed
/// instances outside a runBatch call but must produce identical records.
InstanceOutcome runBatchInstance(const BatchInstance& instance,
                                 const StopToken* stop);

/// Runs every instance and aggregates in canonical order. Throws
/// std::invalid_argument for negative shards; rethrows the first instance
/// exception after the pool drains.
BatchReport runBatch(const InstanceSuite& suite,
                     const BatchOptions& options = {});

struct BatchJsonOptions {
  /// Scale tag recorded in the header (BENCH_*.json convention).
  std::string scale = "default";
  /// Include wall-clock fields. Off = fully deterministic rendering:
  /// byte-identical across runs and shard counts.
  bool timing = true;
};

/// Renders a report in the BENCH_*.json layout of bench_common.h (flat
/// records, %.6g numbers, stable key order); `benchName` fills the "bench"
/// header field. Records appear in canonical order; instances skipped by
/// cancellation are omitted from "results" but counted in the header.
std::string batchReportJson(const std::string& benchName,
                            const BatchReport& report,
                            const BatchJsonOptions& options = {});

/// BENCH_<name>.json destination under IDES_BENCH_JSON_DIR (default: the
/// working directory) — the one publishing convention shared by the bench
/// drivers and the CLI.
std::string benchJsonPath(const std::string& name);

/// Writes a pre-rendered payload to benchJsonPath(name); returns false
/// (without throwing) when the file cannot be opened.
bool writeBenchJsonFile(const std::string& name, const std::string& payload);

/// Hash index over a report's completed instances for figure aggregation.
/// Built once per report, it answers the drivers' (group, seed[, strategy])
/// lookups in O(1) instead of the old per-lookup linear scan over the whole
/// result vector (quadratic per figure at full scale). Holds pointers into
/// the report: the report must outlive the index.
class BatchIndex {
 public:
  explicit BatchIndex(const BatchReport& report);

  /// Completed instance of (group, seed[, strategy]), or null. Strategy ""
  /// matches any — the first in canonical order, exactly like the old
  /// linear scan (custom-job instances have no report/strategy).
  [[nodiscard]] const InstanceResult* find(
      const std::string& group, int seed,
      const std::string& strategy = "") const;

 private:
  std::unordered_map<std::string, const InstanceResult*> byKey_;
};

}  // namespace ides
