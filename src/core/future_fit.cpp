#include "core/future_fit.h"

#include <stdexcept>

#include "model/system_model.h"

namespace ides {

FutureFitResult tryMapFutureApplication(const SystemModel& sys,
                                        ApplicationId futureApp,
                                        const PlatformState& base) {
  const Application& app = sys.application(futureApp);
  if (app.kind != AppKind::Future) {
    throw std::invalid_argument(
        "tryMapFutureApplication: application is not AppKind::Future");
  }
  PlatformState state = base;
  ScheduleRequest req;
  req.graphs = app.graphs;
  req.chooseNodes = true;
  FutureFitResult result;
  result.outcome = scheduleGraphs(sys, req, state);
  result.fits = result.outcome.feasible;
  return result;
}

}  // namespace ides
