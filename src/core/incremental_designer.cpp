#include "core/incremental_designer.h"

#include <chrono>
#include <stdexcept>

#include "model/system_model.h"

namespace ides {

const char* toString(Strategy s) {
  switch (s) {
    case Strategy::AdHoc: return "AH";
    case Strategy::MappingHeuristic: return "MH";
    case Strategy::SimulatedAnnealing: return "SA";
    case Strategy::ParallelAnnealing: return "PSA";
  }
  return "?";
}

IncrementalDesigner::IncrementalDesigner(const SystemModel& sys,
                                         FutureProfile profile,
                                         DesignerOptions options)
    : sys_(&sys),
      options_(options),
      frozen_(freezeExistingApplications(sys)) {
  if (!frozen_.feasible) {
    throw std::runtime_error(
        "IncrementalDesigner: existing applications are not schedulable");
  }
  evaluator_ = std::make_unique<SolutionEvaluator>(
      sys, frozen_.state, std::move(profile), options_.weights);
}

DesignResult IncrementalDesigner::run(Strategy strategy) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  DesignResult result;
  result.strategy = strategy;

  // All strategies start from the same Initial Mapping.
  PlatformState state = frozen_.state;
  const ScheduleOutcome im = initialMapping(*sys_, state);
  result.evaluations = 1;
  if (!im.feasible) {
    result.feasible = false;
    result.seconds = std::chrono::duration<double>(Clock::now() - start)
                         .count();
    return result;
  }

  MappingSolution solution = im.mapping;
  switch (strategy) {
    case Strategy::AdHoc:
      // AH stops at the first valid solution.
      break;
    case Strategy::MappingHeuristic: {
      MhResult mh = runMappingHeuristic(*evaluator_, solution, options_.mh);
      solution = std::move(mh.solution);
      result.evaluations += mh.evaluations;
      break;
    }
    case Strategy::SimulatedAnnealing: {
      SaResult sa = runSimulatedAnnealing(*evaluator_, solution, options_.sa);
      solution = std::move(sa.solution);
      result.evaluations += sa.evaluations;
      break;
    }
    case Strategy::ParallelAnnealing: {
      ParallelSaOptions opts = options_.psa;
      opts.base = options_.sa;  // single source of truth for chain knobs
      ParallelSaResult psa =
          runParallelAnnealing(*evaluator_, solution, opts);
      solution = std::move(psa.solution);
      result.evaluations += psa.evaluations;
      break;
    }
  }

  ScheduleOutcome outcome;
  const EvalResult eval = evaluator_->evaluate(solution, &outcome, nullptr);
  ++result.evaluations;
  result.feasible = eval.feasible;
  result.mapping = std::move(solution);
  result.schedule = std::move(outcome.schedule);
  result.metrics = eval.metrics;
  result.objective = eval.cost;
  result.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace ides
