#include "core/incremental_designer.h"

#include <stdexcept>
#include <utility>

#include "model/system_model.h"

namespace ides {

const char* toString(Strategy s) {
  switch (s) {
    case Strategy::AdHoc: return "AH";
    case Strategy::MappingHeuristic: return "MH";
    case Strategy::SimulatedAnnealing: return "SA";
    case Strategy::ParallelAnnealing: return "PSA";
  }
  return "?";
}

namespace {

/// Enum value for a registry name, for DesignResult's deprecated shim
/// field. Custom strategies fall back to AdHoc (strategyName is
/// authoritative).
Strategy strategyEnumFor(const std::string& name) {
  if (name == "MH") return Strategy::MappingHeuristic;
  if (name == "SA") return Strategy::SimulatedAnnealing;
  if (name == "PSA") return Strategy::ParallelAnnealing;
  return Strategy::AdHoc;
}

DesignResult toDesignResult(RunReport&& report) {
  DesignResult result;
  result.strategyName = report.strategy;
  result.strategy = strategyEnumFor(report.strategy);
  result.feasible = report.feasible;
  result.mapping = std::move(report.mapping);
  result.schedule = std::move(report.schedule);
  result.metrics = report.metrics;
  result.objective = report.objective;
  result.seconds = report.seconds;
  result.evaluations = report.evaluations;
  result.stopped = report.stopped;
  return result;
}

}  // namespace

IncrementalDesigner::IncrementalDesigner(const SystemModel& sys,
                                         FutureProfile profile,
                                         DesignerOptions options)
    : sys_(&sys),
      options_(options),
      frozen_(freezeExistingApplications(sys)) {
  validateOptions(options_);
  if (!frozen_.feasible) {
    throw std::runtime_error(
        "IncrementalDesigner: existing applications are not schedulable");
  }
  evaluator_ = std::make_unique<SolutionEvaluator>(
      sys, frozen_.state, std::move(profile), options_.weights);
}

DesignResult IncrementalDesigner::run(const std::string& strategyName) {
  return run(strategyName, context_);
}

DesignResult IncrementalDesigner::run(const std::string& strategyName,
                                      RunContext& context) {
  const std::unique_ptr<Optimizer> optimizer =
      StrategyRegistry::builtin().create(strategyName, options_);
  return run(*optimizer, context);
}

DesignResult IncrementalDesigner::run(const Optimizer& optimizer,
                                      RunContext& context) {
  return toDesignResult(optimizer.run(*evaluator_, context));
}

DesignResult IncrementalDesigner::run(const std::string& strategyName,
                                      RunContext& context,
                                      const MappingSolution* warmStart) {
  const std::unique_ptr<Optimizer> optimizer =
      StrategyRegistry::builtin().create(strategyName, options_);
  return run(*optimizer, context, warmStart);
}

DesignResult IncrementalDesigner::run(const Optimizer& optimizer,
                                      RunContext& context,
                                      const MappingSolution* warmStart) {
  return toDesignResult(optimizer.run(*evaluator_, context, warmStart));
}

DesignResult IncrementalDesigner::run(Strategy strategy) {
  return run(std::string(toString(strategy)));
}

}  // namespace ides
