// HTTP-transported sweep coordination state for ides_serve.
//
// The file transport (store/work_queue.h) needs every participant on one
// shared directory and settles claim races through the filesystem. This
// coordinator is the network alternative: it owns the sweep store locally
// and arbitrates claims in memory, so workers need a TCP route to the
// daemon, not a mount. Being the single arbiter also removes the clock
// problem — lease expiry is measured on ONE steady clock (the daemon's),
// no probe files, no cross-machine skew.
//
// The result invariant is unchanged: records are rendered by the worker
// that ran the instance (keeping its provenance), validated and persisted
// verbatim by the coordinator into the same content-addressed SweepStore,
// first writer wins. A sweep's merged BENCH json (timing off) is
// byte-identical to a single-process run for any worker fleet, crash
// pattern, or transport mix — HTTP workers and shared-dir workers can even
// fill the same store.
//
// Thread-safety: every method takes one internal mutex. The store's
// filesystem protocol would be safe without it; the mutex protects the
// in-memory lease table and makes claim-check-store sequences atomic.
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "store/sweep_store.h"
#include "store/work_queue.h"

namespace ides {

/// Outcome of one claim request.
struct CoordinatorClaim {
  enum class Kind {
    Claimed,  ///< `item` is yours; heartbeat it
    Wait,     ///< nothing claimable now (live leases outstanding)
    Done      ///< every instance has a record
  };
  Kind kind = Kind::Wait;
  WorkItem item;  ///< valid when kind == Claimed
};

struct CoordinatorSweepStatus {
  std::size_t total = 0;
  std::size_t recorded = 0;
  std::size_t leased = 0;  ///< live (unexpired) leases
  bool done = false;
};

class SweepCoordinator {
 public:
  /// Opens (creating if needed) the backing store at `storeDir`.
  explicit SweepCoordinator(std::string storeDir);

  /// Registers a sweep under `key`. Idempotent when the same sweep+scale
  /// is already registered; throws std::invalid_argument on a spec
  /// conflict, an invalid key, or an unknown sweep/scale name.
  void create(const std::string& key, const std::string& sweepName,
              const std::string& scaleName);

  [[nodiscard]] bool exists(const std::string& key) const;
  [[nodiscard]] std::vector<std::string> keys() const;

  /// The sweep's manifest document — the same bytes writeManifest would
  /// publish, so file and HTTP workers parse one format. Throws
  /// std::invalid_argument on an unknown key.
  [[nodiscard]] std::string manifestText(const std::string& key) const;

  /// Hands out the first instance with no record and no live lease.
  /// Expired leases are dropped here (the single-arbiter equivalent of
  /// stale-lease reclaim). Throws std::invalid_argument on an unknown key.
  CoordinatorClaim claim(const std::string& key, const std::string& worker,
                         double leaseSeconds);

  /// Heartbeat: extends `worker`'s lease on `fingerprint` by its original
  /// duration. false — losing cleanly — when the lease is gone, expired,
  /// or held by someone else.
  bool renew(const std::string& key, const std::string& worker,
             const std::string& fingerprint);

  /// Drops `worker`'s lease without a record. No-op when not the holder.
  void release(const std::string& key, const std::string& worker,
               const std::string& fingerprint);

  /// Validates and persists a worker-rendered record document; drops any
  /// lease on the instance. Returns false for an idempotent duplicate.
  /// Throws std::invalid_argument on unknown key/fingerprint and
  /// std::runtime_error on an invalid document.
  bool complete(const std::string& key, const std::string& worker,
                const std::string& fingerprint, const std::string& recordText);

  [[nodiscard]] CoordinatorSweepStatus status(const std::string& key) const;

  /// The merged BENCH json (timing off, byte-identical to a
  /// single-process run) once every record is present; nullopt until then.
  std::optional<std::string> resultJson(const std::string& key);

 private:
  struct Lease {
    std::string worker;
    double seconds = 0.0;
    std::chrono::steady_clock::time_point expiry;
  };
  struct Sweep {
    std::string sweepName;
    std::string scaleName;
    SweepManifest manifest;
    std::string manifestText;
    std::map<std::string, Lease> leases;  ///< fingerprint -> live lease
  };

  /// Locked lookup; throws std::invalid_argument on an unknown key.
  Sweep& sweepAt(const std::string& key);
  const Sweep& sweepAt(const std::string& key) const;
  /// Drops expired leases of one sweep (called with the mutex held).
  void expireLeasesLocked(Sweep& sweep) const;

  mutable std::mutex mutex_;
  SweepStore store_;
  std::map<std::string, Sweep> sweeps_;
};

}  // namespace ides
