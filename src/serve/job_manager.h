// JobManager — the daemon's bounded job queue and worker pool.
//
// Jobs arrive as parsed JobSpecs (design: one strategy on one generated
// instance; sweep: a named paper sweep through the BatchRunner), queue
// FIFO behind an admission limit, and run on a fixed pool of worker
// threads — one RunContext and one StopToken per job, so every job has
// cooperative cancellation (DELETE /jobs/<id>) and an optional per-job
// deadline armed when the run starts. Progress flows from the optimizer's
// ProgressSink (design) or the per-instance completion hook (sweep) into
// the job's status fields under the manager mutex.
//
// Sweep jobs route through the persistent SweepStore as a content-
// addressed result cache: lookups are keyed by instanceFingerprint, so a
// resubmitted identical sweep is answered from records with no
// re-optimization (the job status reports cache_hits vs executed), and
// completed instances always write through — the daemon doubles as the
// network-facing front of the sweep fabric. Design jobs get the same
// treatment through a flat per-fingerprint cache under <storeDir>/design:
// an identical resubmit is served the stored result bytes verbatim and its
// status reports cached:true. Runs a StopToken ended early (deadline or
// cancel) are never cached — a partial result must not shadow the full one.
//
// Results are rendered deterministically (timing off): a design job's
// result JSON is byte-identical to `ides_cli design --json` for the same
// spec, and a sweep job's to the CLI's BENCH_sweep_<name>.json with
// --no-timing. Wall-clock lives in the job status, not the result.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/design_job.h"
#include "store/sweep_store.h"
#include "util/stop_token.h"

namespace ides {

struct SweepJobSpec {
  std::string sweep;              ///< namedSweep key, e.g. "quality"
  std::string scaleName = "smoke";
  int shards = 1;                 ///< 0 = all cores
};

struct JobSpec {
  enum class Kind { Design, Sweep };
  Kind kind = Kind::Design;
  /// Run budget armed on the job's StopToken when execution starts
  /// (0 = none). A fired deadline ends the job with its best-so-far
  /// result and stopped=true — same semantics as `ides_cli --deadline`.
  double deadlineSeconds = 0.0;
  DesignJobSpec design;
  SweepJobSpec sweep;
};

/// Parses and validates a POST /jobs body. Strict: unknown type, unknown
/// field, unregistered strategy, unknown sweep/scale name or a wrong field
/// type all throw std::invalid_argument with a client-facing message.
JobSpec parseJobSpec(std::string_view body);

enum class JobState { Queued, Running, Done, Failed, Cancelled };
const char* toString(JobState state);

struct JobManagerOptions {
  int workers = 2;
  /// Admission limit on WAITING jobs (running jobs do not count): a full
  /// queue rejects the submit (the daemon answers 503).
  std::size_t maxQueued = 32;
  /// Store directory for the result caches; empty = every job runs
  /// uncached. Sweep jobs share the SweepStore records; design jobs keep
  /// their own flat cache under <storeDir>/design, keyed by
  /// designJobFingerprint (status reports cached:true on a hit, and the
  /// result bytes are the stored run's, verbatim).
  std::string storeDir;
  /// Retention cap on TERMINAL jobs (done/failed/cancelled): whenever a
  /// job reaches a terminal state and the cap is exceeded, the oldest
  /// terminal jobs are evicted from the registry (status/result answer
  /// 404 afterwards). Queued and running jobs are never evicted. 0 keeps
  /// every job forever — the pre-cap behavior, for a short-lived daemon.
  std::size_t retainFinished = 256;
};

/// The numeric part of a "job-<n>" id; nullopt for anything else. Job ids
/// are assigned monotonically and never reused, so these numbers order
/// jobs by submission even across evictions — which is what makes an
/// evicted id still usable as an `after` pagination cursor.
std::optional<std::uint64_t> parseJobIdNumber(std::string_view id);

class JobManager {
 public:
  explicit JobManager(JobManagerOptions options);
  /// Drains (cancels queued, stops running, joins workers).
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  struct Submission {
    bool accepted = false;
    std::string id;     ///< "job-<n>" when accepted
    std::string error;  ///< reason when rejected (queue full / draining)
  };
  Submission submit(JobSpec spec);

  [[nodiscard]] std::optional<JobState> state(const std::string& id) const;

  /// Status JSON of one job; nullopt for an unknown id.
  [[nodiscard]] std::optional<std::string> statusJson(
      const std::string& id) const;

  /// Terminal result payload (design result JSON / sweep BENCH JSON);
  /// nullopt while the job is queued/running/failed or the id is unknown.
  [[nodiscard]] std::optional<std::string> resultJson(
      const std::string& id) const;

  /// Retained jobs (submission order) as {"jobs": [status...], "count":
  /// k, "retained": r, "evicted": e} — a window of up to `limit` jobs
  /// (0 = no limit) strictly after the id `after` (empty = from the
  /// start). When the window is truncated, "next_after" carries the last
  /// id included, so `?after=<next_after>` fetches the next page; an
  /// evicted or unknown `after` id still works because ids are compared
  /// numerically, never looked up.
  [[nodiscard]] std::string listJson(std::size_t limit = 0,
                                     std::string_view after = {}) const;

  /// Queued job: removed and marked cancelled. Running job: its StopToken
  /// fires and the job finishes as cancelled with a partial result. False
  /// for unknown ids and jobs already in a terminal state.
  bool cancel(const std::string& id);

  /// Graceful drain: reject further submits, cancel everything queued,
  /// fire the StopTokens of running jobs, join the workers. Idempotent.
  void drain();

  [[nodiscard]] std::size_t queuedCount() const;
  [[nodiscard]] std::size_t runningCount() const;
  /// Terminal jobs still retained (evicted ones no longer count).
  [[nodiscard]] std::size_t finishedCount() const;
  /// Terminal jobs evicted by the retention cap over the daemon's life.
  [[nodiscard]] std::size_t evictedCount() const;

 private:
  struct Job;

  void workerLoop();
  /// Executes `job` outside the mutex; returns the result payload.
  std::string execute(Job& job);
  [[nodiscard]] std::string statusJsonLocked(const Job& job) const;
  /// Evicts the oldest terminal jobs until the retention cap holds.
  /// Called under the mutex at every terminal transition.
  void gcLocked();

  JobManagerOptions options_;
  std::unique_ptr<SweepStore> store_;  ///< null when storeDir is empty
  std::string designCacheDir_;         ///< empty when storeDir is empty

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool draining_ = false;
  std::uint64_t nextId_ = 1;
  std::size_t evicted_ = 0;
  std::deque<std::shared_ptr<Job>> queue_;
  /// Submission-ordered registry of every retained job: every job ever
  /// accepted, minus terminal jobs evicted by the retention cap.
  std::vector<std::shared_ptr<Job>> jobs_;
  std::map<std::string, std::shared_ptr<Job>, std::less<>> byId_;
  std::vector<std::thread> workers_;
};

}  // namespace ides
