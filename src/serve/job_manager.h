// JobManager — the daemon's bounded job queue and worker pool.
//
// Jobs arrive as parsed JobSpecs (design: one strategy on one generated
// instance; sweep: a named paper sweep through the BatchRunner), queue
// FIFO behind an admission limit, and run on a fixed pool of worker
// threads — one RunContext and one StopToken per job, so every job has
// cooperative cancellation (DELETE /jobs/<id>) and an optional per-job
// deadline armed when the run starts. Progress flows from the optimizer's
// ProgressSink (design) or the per-instance completion hook (sweep) into
// the job's status fields under the manager mutex.
//
// Sweep jobs route through the persistent SweepStore as a content-
// addressed result cache: lookups are keyed by instanceFingerprint, so a
// resubmitted identical sweep is answered from records with no
// re-optimization (the job status reports cache_hits vs executed), and
// completed instances always write through — the daemon doubles as the
// network-facing front of the sweep fabric.
//
// Results are rendered deterministically (timing off): a design job's
// result JSON is byte-identical to `ides_cli design --json` for the same
// spec, and a sweep job's to the CLI's BENCH_sweep_<name>.json with
// --no-timing. Wall-clock lives in the job status, not the result.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/design_job.h"
#include "store/sweep_store.h"
#include "util/stop_token.h"

namespace ides {

struct SweepJobSpec {
  std::string sweep;              ///< namedSweep key, e.g. "quality"
  std::string scaleName = "smoke";
  int shards = 1;                 ///< 0 = all cores
};

struct JobSpec {
  enum class Kind { Design, Sweep };
  Kind kind = Kind::Design;
  /// Run budget armed on the job's StopToken when execution starts
  /// (0 = none). A fired deadline ends the job with its best-so-far
  /// result and stopped=true — same semantics as `ides_cli --deadline`.
  double deadlineSeconds = 0.0;
  DesignJobSpec design;
  SweepJobSpec sweep;
};

/// Parses and validates a POST /jobs body. Strict: unknown type, unknown
/// field, unregistered strategy, unknown sweep/scale name or a wrong field
/// type all throw std::invalid_argument with a client-facing message.
JobSpec parseJobSpec(std::string_view body);

enum class JobState { Queued, Running, Done, Failed, Cancelled };
const char* toString(JobState state);

struct JobManagerOptions {
  int workers = 2;
  /// Admission limit on WAITING jobs (running jobs do not count): a full
  /// queue rejects the submit (the daemon answers 503).
  std::size_t maxQueued = 32;
  /// Sweep-store directory for the result cache; empty = sweep jobs run
  /// uncached (design jobs never touch the store).
  std::string storeDir;
};

class JobManager {
 public:
  explicit JobManager(JobManagerOptions options);
  /// Drains (cancels queued, stops running, joins workers).
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  struct Submission {
    bool accepted = false;
    std::string id;     ///< "job-<n>" when accepted
    std::string error;  ///< reason when rejected (queue full / draining)
  };
  Submission submit(JobSpec spec);

  [[nodiscard]] std::optional<JobState> state(const std::string& id) const;

  /// Status JSON of one job; nullopt for an unknown id.
  [[nodiscard]] std::optional<std::string> statusJson(
      const std::string& id) const;

  /// Terminal result payload (design result JSON / sweep BENCH JSON);
  /// nullopt while the job is queued/running/failed or the id is unknown.
  [[nodiscard]] std::optional<std::string> resultJson(
      const std::string& id) const;

  /// All jobs (submission order) as {"jobs": [status...]}.
  [[nodiscard]] std::string listJson() const;

  /// Queued job: removed and marked cancelled. Running job: its StopToken
  /// fires and the job finishes as cancelled with a partial result. False
  /// for unknown ids and jobs already in a terminal state.
  bool cancel(const std::string& id);

  /// Graceful drain: reject further submits, cancel everything queued,
  /// fire the StopTokens of running jobs, join the workers. Idempotent.
  void drain();

  [[nodiscard]] std::size_t queuedCount() const;
  [[nodiscard]] std::size_t runningCount() const;
  [[nodiscard]] std::size_t finishedCount() const;

 private:
  struct Job;

  void workerLoop();
  /// Executes `job` outside the mutex; returns the result payload.
  std::string execute(Job& job);
  [[nodiscard]] std::string statusJsonLocked(const Job& job) const;

  JobManagerOptions options_;
  std::unique_ptr<SweepStore> store_;  ///< null when storeDir is empty

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool draining_ = false;
  std::uint64_t nextId_ = 1;
  std::deque<std::shared_ptr<Job>> queue_;
  /// Submission-ordered registry of every job ever accepted.
  std::vector<std::shared_ptr<Job>> jobs_;
  std::map<std::string, std::shared_ptr<Job>, std::less<>> byId_;
  std::vector<std::thread> workers_;
};

}  // namespace ides
