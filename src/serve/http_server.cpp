#include "serve/http_server.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ides {

namespace {

bool equalsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trimSpaces(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

HttpParseResult bad(int status, std::string message) {
  HttpParseResult result;
  result.status = HttpParseStatus::Bad;
  result.errorStatus = status;
  result.error = std::move(message);
  return result;
}

/// Strict non-negative decimal within `max`; nullopt on anything else
/// (signs, spaces, hex, overflow — a daemon should not guess here).
std::optional<std::size_t> parseContentLength(std::string_view value,
                                              std::size_t max) {
  if (value.empty() || value.size() > 12) return std::nullopt;
  std::size_t length = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') return std::nullopt;
    length = length * 10 + static_cast<std::size_t>(c - '0');
  }
  if (length > max) return std::nullopt;
  return length;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (equalsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

HttpParseResult parseHttpRequest(std::string_view buffer, HttpRequest& out,
                                 const HttpLimits& limits) {
  out = HttpRequest{};

  // Header block first: everything up to the blank line.
  const std::size_t headerEnd = buffer.find("\r\n\r\n");
  if (headerEnd == std::string_view::npos) {
    if (buffer.size() > limits.maxHeaderBytes) {
      return bad(431, "header block exceeds " +
                          std::to_string(limits.maxHeaderBytes) + " bytes");
    }
    // A lone LF-terminated request is a client speaking the wrong dialect,
    // not an incomplete CRLF one — reject instead of waiting forever.
    if (buffer.find("\n\n") != std::string_view::npos) {
      return bad(400, "header lines must be CRLF-terminated");
    }
    return HttpParseResult{};  // NeedMore
  }
  if (headerEnd + 4 > limits.maxHeaderBytes) {
    return bad(431, "header block exceeds " +
                        std::to_string(limits.maxHeaderBytes) + " bytes");
  }

  // Request line: METHOD SP target SP HTTP/1.x
  std::size_t lineEnd = buffer.find("\r\n");
  if (lineEnd > limits.maxRequestLine) {
    return bad(414, "request line exceeds " +
                        std::to_string(limits.maxRequestLine) + " bytes");
  }
  const std::string_view requestLine = buffer.substr(0, lineEnd);
  const std::size_t sp1 = requestLine.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : requestLine.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      requestLine.find(' ', sp2 + 1) != std::string_view::npos) {
    return bad(400, "malformed request line");
  }
  const std::string_view method = requestLine.substr(0, sp1);
  const std::string_view target =
      requestLine.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = requestLine.substr(sp2 + 1);
  if (method.empty() || target.empty() || target.front() != '/') {
    return bad(400, "malformed request line");
  }
  for (const char c : method) {
    if (c < 'A' || c > 'Z') return bad(400, "malformed method");
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return bad(505, "unsupported protocol version");
  }

  // Header lines.
  std::optional<std::size_t> contentLength;
  std::size_t pos = lineEnd + 2;
  while (pos < headerEnd + 2) {
    const std::size_t next = buffer.find("\r\n", pos);
    const std::string_view line = buffer.substr(pos, next - pos);
    pos = next + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return bad(400, "malformed header line");
    }
    const std::string_view name = line.substr(0, colon);
    if (name.find(' ') != std::string_view::npos ||
        name.find('\t') != std::string_view::npos) {
      return bad(400, "whitespace in header name");
    }
    const std::string_view value = trimSpaces(line.substr(colon + 1));
    if (out.headers.size() >= limits.maxHeaderCount) {
      return bad(431, "more than " +
                          std::to_string(limits.maxHeaderCount) +
                          " headers");
    }
    out.headers.emplace_back(std::string(name), std::string(value));
    if (equalsIgnoreCase(name, "Transfer-Encoding")) {
      return bad(501, "Transfer-Encoding is not supported");
    }
    if (equalsIgnoreCase(name, "Content-Length")) {
      const std::optional<std::size_t> parsed =
          parseContentLength(value, limits.maxBodyBytes);
      if (!parsed.has_value()) {
        return bad(parseContentLength(value,
                                      std::numeric_limits<std::size_t>::max())
                           .has_value()
                       ? 413
                       : 400,
                   "bad Content-Length");
      }
      if (contentLength.has_value() && *contentLength != *parsed) {
        return bad(400, "conflicting Content-Length headers");
      }
      contentLength = parsed;
    }
  }

  const std::size_t bodyStart = headerEnd + 4;
  const std::size_t bodyLength = contentLength.value_or(0);
  if (buffer.size() < bodyStart + bodyLength) {
    return HttpParseResult{};  // NeedMore — body still in flight
  }

  out.method = std::string(method);
  out.target = std::string(target);
  const std::size_t qmark = target.find('?');
  out.path = std::string(target.substr(0, qmark));
  out.query = qmark == std::string_view::npos
                  ? std::string()
                  : std::string(target.substr(qmark + 1));
  out.body = std::string(buffer.substr(bodyStart, bodyLength));

  HttpParseResult result;
  result.status = HttpParseStatus::Done;
  result.consumed = bodyStart + bodyLength;
  return result;
}

const char* httpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string renderHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += httpStatusReason(response.status);
  out += "\r\nContent-Type: ";
  out += response.contentType;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpServer::HttpServer(const std::string& bindAddress, int port,
                       HttpLimits limits)
    : limits_(limits) {
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    throw std::runtime_error("HttpServer: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, bindAddress.c_str(), &addr.sin_addr) != 1) {
    ::close(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("HttpServer: bad bind address " + bindAddress);
  }
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listenFd_, 16) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("HttpServer: cannot listen on " + bindAddress +
                             ":" + std::to_string(port) + ": " + reason);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));
}

HttpServer::~HttpServer() {
  if (listenFd_ >= 0) ::close(listenFd_);
}

void HttpServer::serve(const Handler& handler, const StopToken* stop,
                       const LogSink& log) {
  while (stop == nullptr || !stop->stopRequested()) {
    pollfd pfd{listenFd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;

    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd =
        ::accept(listenFd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) continue;

    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
    std::string peerName = ip;
    peerName += ':';
    peerName += std::to_string(ntohs(peer.sin_port));

    handleConnection(fd, peerName, handler, log);
    ::close(fd);
    ++served_;
  }
}

void HttpServer::handleConnection(int fd, const std::string& peer,
                                  const Handler& handler,
                                  const LogSink& log) {
  const auto start = std::chrono::steady_clock::now();

  // Slow-client guard: a connection may not hold the accept loop hostage.
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string buffer;
  HttpRequest request;
  HttpResponse response;
  bool parsed = false;
  const std::size_t maxRequestBytes =
      limits_.maxHeaderBytes + limits_.maxBodyBytes;
  while (true) {
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (buffer.empty()) {
        // Probe connection (e.g. a health checker testing the port).
        if (log) {
          log(RequestLogEntry{peer, "-", "-", 0, 0, 0,
                              std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - start)
                                  .count()});
        }
        return;
      }
      response = HttpResponse{400, "application/json",
                              "{\"error\": \"incomplete request\"}\n"};
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    const HttpParseResult result =
        parseHttpRequest(buffer, request, limits_);
    if (result.status == HttpParseStatus::NeedMore) {
      if (buffer.size() > maxRequestBytes) {
        response = HttpResponse{413, "application/json",
                                "{\"error\": \"request too large\"}\n"};
        break;
      }
      continue;
    }
    if (result.status == HttpParseStatus::Bad) {
      response = HttpResponse{result.errorStatus, "application/json",
                              "{\"error\": \"" + result.error + "\"}\n"};
      break;
    }
    if (result.consumed < buffer.size()) {
      response =
          HttpResponse{400, "application/json",
                       "{\"error\": \"pipelined requests are not "
                       "supported\"}\n"};
      break;
    }
    parsed = true;
    try {
      response = handler(request);
    } catch (const std::exception& e) {
      response = HttpResponse{500, "application/json",
                              "{\"error\": \"internal error\"}\n"};
      (void)e;
    }
    break;
  }

  const std::string wire = renderHttpResponse(response);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the daemon.
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }

  if (log) {
    RequestLogEntry entry;
    entry.peer = peer;
    entry.method = parsed ? request.method : "-";
    entry.target = parsed ? request.target : "-";
    entry.status = response.status;
    entry.bytesIn = buffer.size();
    entry.bytesOut = sent;
    entry.milliseconds = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    log(entry);
  }
}

}  // namespace ides
