// One design request as data, shared by `ides_cli design` and the daemon.
//
// The serve-e2e guarantee is that a design job submitted over HTTP and the
// same job run through the CLI produce byte-identical result JSON. That
// only holds if both paths build the generated suite and the designer
// options from the spec through ONE piece of code — this one. The JSON
// rendering is deterministic by default (wall-clock excluded; the daemon
// reports runtime in the job status instead), so two runs of the same spec
// diff clean.
#pragma once

#include <cstdint>
#include <string>

#include "core/incremental_designer.h"

namespace ides {

/// The `ides_cli design` knobs as a value type (generated suites only —
/// the daemon does not accept model files).
struct DesignJobSpec {
  std::size_t nodes = 10;
  std::size_t existing = 400;
  std::size_t current = 160;
  std::uint64_t seed = 1;
  std::string strategy = "MH";
  int saIterations = 0;  ///< 0 = SaOptions default
  int restarts = 4;      ///< PSA chains
  int threads = 0;       ///< PSA threads, 0 = all cores
  int specWorkers = 0;   ///< speculative eval workers (0 = off / PSA auto)
  int specDepth = 0;     ///< max speculation depth (0 = 4 * workers)
};

/// DesignerOptions derivation, identical to the CLI's flag mapping.
DesignerOptions designJobOptions(const DesignJobSpec& spec);

/// Bump when a change makes previously cached design results stale even
/// though the spec fields hash the same (generator semantics, strategy
/// kernels, metric definitions). Independent of kSweepFingerprintEpoch:
/// the two caches key different payloads.
inline constexpr std::uint64_t kDesignFingerprintEpoch = 1;

/// Stable 128-bit content fingerprint (32 hex chars) of one design job:
/// every result-relevant spec field plus kDesignFingerprintEpoch, hashed
/// the same two-lane FNV way as sweep instances. Deliberately EXCLUDED are
/// the result-neutral knobs the test suite defends — threads, specWorkers,
/// specDepth — so a result computed at any parallelism serves every other.
std::string designJobFingerprint(const DesignJobSpec& spec);

struct DesignJobResult {
  DesignResult result;
  /// validateSchedule over frozen + current schedules, like `cli design`.
  bool validationOk = false;
};

/// Generates the suite (paper tneed override, like the CLI), resolves the
/// strategy by registry name and runs it under `context` (stop token /
/// progress of the caller). Throws std::invalid_argument for an unknown
/// strategy or invalid options.
DesignJobResult runDesignJob(const DesignJobSpec& spec, RunContext& context);

/// Flat JSON rendering (%.6g doubles, BENCH field names). `timing` adds
/// the wall-clock "seconds" field; off is the deterministic form the CLI
/// and the daemon diff against each other.
std::string designResultJson(const DesignJobResult& r, bool timing = false);

}  // namespace ides
