// ides_serve process discipline: options, config file, pidfile, router.
//
// The daemon's process model follows the classic unix daemon shape
// (peapod-style): flags OR a `--config FILE` of `key value` lines (flags
// win), a pidfile that refuses to clobber a live instance, a structured
// request log, and graceful SIGINT/SIGTERM drain wired through a
// StopToken in the binary. Everything here is socket-free and pure over
// (JobManager, HttpRequest) — the endpoint surface is unit-tested without
// ever opening a port; the binary only adds sockets and signals.
//
// Endpoints (all JSON unless noted):
//   GET    /healthz           liveness, uptime, queue counters, store
//                             reachability + probe latency (503 when the
//                             store is sick, so load balancers drain the
//                             instance)
//   GET    /metrics           process telemetry registry in Prometheus
//                             text exposition format (text/plain)
//   POST   /jobs              submit a design/sweep job spec -> 202 {id}
//   GET    /jobs              job list; ?limit=N and ?after=job-<n>
//                             paginate over the retained registry
//   GET    /jobs/<id>         one job's status + progress
//   GET    /jobs/<id>/result  terminal result payload (409 until done)
//   DELETE /jobs/<id>         cooperative cancel
//
// Sweep-fabric endpoints (require --store-dir; 503 without one). The
// daemon is the HTTP coordinator of serve/sweep_coordinator.h — workers
// join with `ides_cli sweep --worker http://host:port/<key>`:
//   POST   /sweeps/<key>          register {"sweep","scale"} under <key>
//   GET    /sweeps                registered sweeps + status
//   GET    /sweeps/<key>          one sweep's progress
//   GET    /sweeps/<key>/manifest the work manifest (same bytes as the
//                                 file transport's manifest.json)
//   POST   /sweeps/<key>/claim    {"worker","lease_seconds"} ->
//                                 {"claimed":{...}} | {"wait"} | {"done"}
//   POST   /sweeps/<key>/renew    {"worker","fingerprint"} -> {"renewed"}
//   POST   /sweeps/<key>/release  {"worker","fingerprint"}
//   POST   /sweeps/<key>/complete {"worker","fingerprint","record"}
//   GET    /sweeps/<key>/result   merged BENCH json (409 until done)
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "serve/http_server.h"
#include "serve/job_manager.h"
#include "serve/sweep_coordinator.h"

namespace ides {

struct ServeOptions {
  std::string bindAddress = "127.0.0.1";
  int port = 8080;          ///< 0 = ephemeral (printed at startup)
  int workers = 2;          ///< job worker threads
  int maxQueued = 32;       ///< admission limit on waiting jobs
  int retainFinished = 256; ///< terminal jobs kept; 0 = keep forever
  std::string storeDir;     ///< sweep result cache; empty = uncached
  std::string pidFile;      ///< empty = no pidfile
  std::string logFile;      ///< request/event log; empty = stderr
  /// Log threshold (debug|info|warn|error|off); empty = inherit IDES_LOG.
  /// Validated at parse time, applied by the binary — the flag wins over
  /// the environment.
  std::string logLevel;
};

/// Parses one config file body: `key value` (or `key=value`) per line,
/// '#' comments and blank lines skipped; keys are the flag names without
/// the leading "--". False + `error` on unknown keys or bad values.
bool parseServeConfig(std::string_view text, ServeOptions& options,
                      std::string& error);

/// Parses argv in the CLI's flag style (--port N, --config FILE, ...).
/// A --config file is applied first, then the remaining flags override
/// it. False + `error` on any unknown flag, bad value or unreadable
/// config file; `--help` sets `helpRequested` instead.
bool parseServeOptions(int argc, char** argv, ServeOptions& options,
                       std::string& error, bool& helpRequested);

/// Usage text for --help / bad invocations.
const char* serveUsage();

/// Creates `path` with this process's pid. Refuses (false + error) when
/// the file already exists — either another instance is live or a crashed
/// one left it behind; the operator decides, the daemon never steals.
bool writePidFile(const std::string& path, std::string& error);
void removePidFile(const std::string& path);

/// Everything the router dispatches over. `sweeps` is null without a
/// --store-dir (the /sweeps surface then answers 503); `storeDir` backs
/// the healthz reachability probe.
struct ServeRuntime {
  JobManager& jobs;
  SweepCoordinator* sweeps = nullptr;
  std::string storeDir;
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
};

/// The daemon's endpoint dispatch. Pure over (runtime, request): no
/// sockets, no global state — unit-testable by constructing HttpRequests
/// directly.
HttpResponse routeRequest(ServeRuntime& runtime, const HttpRequest& request);

/// Back-compat convenience: jobs-only runtime (no sweep coordinator, no
/// store probe).
HttpResponse routeRequest(JobManager& jobs, const HttpRequest& request);

/// One structured request-log line: space-separated key=value fields
/// (peer, method, target, status, bytes in/out, duration).
std::string requestLogLine(const RequestLogEntry& entry);

/// Feeds one served request into the telemetry registry: a request counter
/// labelled by normalized endpoint ("/jobs/{id}", "/sweeps/{key}/claim",
/// ...), method and status, plus a per-endpoint latency histogram. Called
/// by the binary's request-log sink alongside requestLogLine, and directly
/// by tests.
void recordRequestTelemetry(const RequestLogEntry& entry);

}  // namespace ides
