#include "serve/job_manager.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/batch_runner.h"
#include "core/batch_suites.h"
#include "core/optimizer.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/json_reader.h"

namespace ides {

namespace {

// Job lifecycle telemetry. The gauge tracks the live queue depth; the
// counter counts state transitions (queued at submit, running at pickup,
// done/failed/cancelled at the terminal edge), so rates and in-flight
// levels are both scrapeable.
Gauge& queueDepthGauge() {
  static Gauge& gauge = telemetry().gauge(
      "ides_serve_queue_depth", "Jobs currently waiting in the submit queue");
  return gauge;
}

void countJobState(const char* state) {
  telemetry()
      .counter("ides_serve_jobs_total", "Job state transitions",
               {{"state", state}})
      .add();
}

std::string num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

// ---- design result cache ---------------------------------------------------
//
// A flat file per fingerprint under <storeDir>/design, holding exactly the
// deterministic result JSON a fresh run would return — so a cache hit is
// byte-identical to the run it replaces, which is the whole contract.

/// Stored result if the file exists and still parses as a design result;
/// a corrupt file is removed (best effort) so the rerun can replace it.
std::optional<std::string> loadDesignCache(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  try {
    const JsonValue root = parseJson(text);
    if (!root.isObject() || root.find("strategy") == nullptr ||
        root.find("objective") == nullptr) {
      throw std::invalid_argument("not a design result");
    }
  } catch (const std::exception&) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return std::nullopt;
  }
  return text;
}

/// tmp+rename publish, first writer wins (a concurrent worker finishing
/// the same fingerprint wrote equivalent bytes). Cache trouble must never
/// fail the job that just computed a perfectly good result, so IO errors
/// are swallowed here.
void publishDesignCache(const std::string& path, const std::string& text) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::exists(path, ec)) return;
  const std::string tmpPath =
      path + ".tmp." +
      std::to_string(
          std::chrono::steady_clock::now().time_since_epoch().count());
  {
    std::ofstream out(tmpPath, std::ios::binary);
    if (!out) return;
    out << text;
    out.flush();
    if (!out) {
      fs::remove(tmpPath, ec);
      return;
    }
  }
  if (fs::exists(path, ec)) {
    fs::remove(tmpPath, ec);
    return;
  }
  fs::rename(tmpPath, path, ec);
  if (ec) fs::remove(tmpPath, ec);
}

/// Typed field extraction with "which key, what went wrong" messages —
/// submit-time errors are the API's main feedback channel.
const JsonValue* fieldOrNull(const JsonValue& root, std::string_view key) {
  return root.find(key);
}

std::string requireString(const JsonValue& root, std::string_view key) {
  const JsonValue* v = root.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::String) {
    throw std::invalid_argument("field \"" + std::string(key) +
                                "\" must be a string");
  }
  return v->stringValue;
}

std::string optionalString(const JsonValue& root, std::string_view key,
                           std::string fallback) {
  const JsonValue* v = fieldOrNull(root, key);
  if (v == nullptr) return fallback;
  if (v->kind != JsonValue::Kind::String) {
    throw std::invalid_argument("field \"" + std::string(key) +
                                "\" must be a string");
  }
  return v->stringValue;
}

double optionalNumber(const JsonValue& root, std::string_view key,
                      double fallback) {
  const JsonValue* v = fieldOrNull(root, key);
  if (v == nullptr) return fallback;
  if (v->kind != JsonValue::Kind::Number) {
    throw std::invalid_argument("field \"" + std::string(key) +
                                "\" must be a number");
  }
  return v->numberValue;
}

long long optionalInt(const JsonValue& root, std::string_view key,
                      long long fallback) {
  const double value = optionalNumber(
      root, key, static_cast<double>(fallback));
  const long long asInt = static_cast<long long>(value);
  if (static_cast<double>(asInt) != value) {
    throw std::invalid_argument("field \"" + std::string(key) +
                                "\" must be an integer");
  }
  return asInt;
}

void rejectUnknownKeys(const JsonValue& root,
                       const std::vector<std::string_view>& known) {
  for (const auto& [key, value] : root.members) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      throw std::invalid_argument("unknown field \"" + key + "\"");
    }
  }
}

}  // namespace

JobSpec parseJobSpec(std::string_view body) {
  JsonValue root;
  try {
    root = parseJson(body);
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("malformed JSON: ") + e.what());
  }
  if (!root.isObject()) {
    throw std::invalid_argument("job spec must be a JSON object");
  }

  JobSpec spec;
  const std::string type = requireString(root, "type");
  spec.deadlineSeconds = optionalNumber(root, "deadline_seconds", 0.0);
  if (spec.deadlineSeconds < 0.0) {
    throw std::invalid_argument("deadline_seconds must be >= 0");
  }

  if (type == "design") {
    spec.kind = JobSpec::Kind::Design;
    rejectUnknownKeys(root,
                      {"type", "deadline_seconds", "nodes", "existing",
                       "current", "seed", "strategy", "sa_iters", "restarts",
                       "threads", "spec_workers", "spec_depth"});
    DesignJobSpec& d = spec.design;
    d.nodes = static_cast<std::size_t>(optionalInt(root, "nodes", 10));
    d.existing =
        static_cast<std::size_t>(optionalInt(root, "existing", 400));
    d.current = static_cast<std::size_t>(optionalInt(root, "current", 160));
    d.seed = static_cast<std::uint64_t>(optionalInt(root, "seed", 1));
    d.strategy = optionalString(root, "strategy", "MH");
    d.saIterations = static_cast<int>(optionalInt(root, "sa_iters", 0));
    d.restarts = static_cast<int>(optionalInt(root, "restarts", 4));
    d.threads = static_cast<int>(optionalInt(root, "threads", 0));
    d.specWorkers = static_cast<int>(optionalInt(root, "spec_workers", 0));
    d.specDepth = static_cast<int>(optionalInt(root, "spec_depth", 0));
    if (d.nodes < 2) throw std::invalid_argument("nodes must be >= 2");
    if (!StrategyRegistry::builtin().contains(d.strategy)) {
      std::string known;
      for (const std::string& n : StrategyRegistry::builtin().names()) {
        known += known.empty() ? n : ", " + n;
      }
      throw std::invalid_argument("unknown strategy \"" + d.strategy +
                                  "\" (available: " + known + ")");
    }
    // Fail configuration errors at submit time, not when a worker picks
    // the job up hours later.
    validateOptions(designJobOptions(d));
    return spec;
  }

  if (type == "sweep") {
    spec.kind = JobSpec::Kind::Sweep;
    rejectUnknownKeys(
        root, {"type", "deadline_seconds", "sweep", "scale", "shards"});
    SweepJobSpec& s = spec.sweep;
    s.sweep = requireString(root, "sweep");
    s.scaleName = optionalString(root, "scale", "smoke");
    s.shards = static_cast<int>(optionalInt(root, "shards", 1));
    if (s.shards < 0) throw std::invalid_argument("shards must be >= 0");
    const std::vector<std::string> names = sweepNames();
    if (std::find(names.begin(), names.end(), s.sweep) == names.end()) {
      std::string known;
      for (const std::string& n : names) {
        known += known.empty() ? n : ", " + n;
      }
      throw std::invalid_argument("unknown sweep \"" + s.sweep +
                                  "\" (available: " + known + ")");
    }
    (void)sweepScaleNamed(s.scaleName);  // throws listing the valid names
    return spec;
  }

  throw std::invalid_argument("unknown job type \"" + type +
                              "\" (available: design, sweep)");
}

std::optional<std::uint64_t> parseJobIdNumber(std::string_view id) {
  if (id.rfind("job-", 0) != 0) return std::nullopt;
  id.remove_prefix(4);
  if (id.empty() || id.size() > 18) return std::nullopt;
  std::uint64_t number = 0;
  for (const char c : id) {
    if (c < '0' || c > '9') return std::nullopt;
    number = number * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return number;
}

namespace {

bool isTerminal(JobState state) {
  return state == JobState::Done || state == JobState::Failed ||
         state == JobState::Cancelled;
}

}  // namespace

const char* toString(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "unknown";
}

struct JobManager::Job {
  std::string id;
  JobSpec spec;
  JobState state = JobState::Queued;
  StopToken stop;
  bool cancelRequested = false;

  // Progress, updated by the executing worker under the manager mutex.
  std::string phase;
  std::size_t step = 0;
  std::size_t total = 0;
  double cost = 0.0;

  std::chrono::steady_clock::time_point startedAt{};
  double runtimeSeconds = 0.0;
  bool stopped = false;              ///< a StopToken ended the run early
  bool cached = false;               ///< design: result served from store
  std::size_t cacheHits = 0;         ///< sweep: instances from the store
  std::size_t executed = 0;          ///< sweep: instances optimized fresh
  std::string result;                ///< terminal payload (Done/Cancelled)
  std::string error;                 ///< Failed only
};

JobManager::JobManager(JobManagerOptions options)
    : options_(std::move(options)) {
  if (options_.workers < 1) {
    throw std::invalid_argument("JobManager: workers must be >= 1");
  }
  if (!options_.storeDir.empty()) {
    store_ = std::make_unique<SweepStore>(options_.storeDir);
    designCacheDir_ =
        (std::filesystem::path(options_.storeDir) / "design").string();
    std::error_code ec;
    std::filesystem::create_directories(designCacheDir_, ec);
    if (ec) designCacheDir_.clear();  // degrade to uncached design jobs
  }
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

JobManager::~JobManager() { drain(); }

JobManager::Submission JobManager::submit(JobSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  Submission submission;
  if (draining_) {
    submission.error = "daemon is draining";
    return submission;
  }
  if (queue_.size() >= options_.maxQueued) {
    submission.error = "job queue is full (" +
                       std::to_string(options_.maxQueued) +
                       " jobs waiting)";
    return submission;
  }
  auto job = std::make_shared<Job>();
  job->id = "job-" + std::to_string(nextId_++);
  job->spec = std::move(spec);
  queue_.push_back(job);
  jobs_.push_back(job);
  byId_.emplace(job->id, job);
  submission.accepted = true;
  submission.id = job->id;
  countJobState("queued");
  queueDepthGauge().set(static_cast<std::int64_t>(queue_.size()));
  wake_.notify_one();
  return submission;
}

std::optional<JobState> JobManager::state(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = byId_.find(id);
  if (it == byId_.end()) return std::nullopt;
  return it->second->state;
}

std::string JobManager::statusJsonLocked(const Job& job) const {
  std::string out = "{\n";
  out += "  \"id\": " + jsonQuote(job.id) + ",\n";
  out += "  \"type\": ";
  out += job.spec.kind == JobSpec::Kind::Design ? "\"design\"" : "\"sweep\"";
  out += ",\n";
  out += "  \"state\": " + jsonQuote(toString(job.state)) + ",\n";
  out += "  \"phase\": " + jsonQuote(job.phase) + ",\n";
  out += "  \"step\": " + std::to_string(job.step) + ",\n";
  out += "  \"total\": " + std::to_string(job.total) + ",\n";
  out += "  \"cost\": " + num(job.cost) + ",\n";
  if (job.spec.kind == JobSpec::Kind::Sweep) {
    out += "  \"cache_hits\": " + std::to_string(job.cacheHits) + ",\n";
    out += "  \"executed\": " + std::to_string(job.executed) + ",\n";
  } else {
    out += std::string("  \"cached\": ") + (job.cached ? "true" : "false") +
           ",\n";
  }
  out += std::string("  \"stopped\": ") + (job.stopped ? "true" : "false");
  if (job.state != JobState::Queued) {
    const double seconds =
        job.state == JobState::Running
            ? std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - job.startedAt)
                  .count()
            : job.runtimeSeconds;
    out += ",\n  \"runtime_seconds\": " + num(seconds);
  }
  if (!job.error.empty()) {
    out += ",\n  \"error\": " + jsonQuote(job.error);
  }
  out += "\n}\n";
  return out;
}

std::optional<std::string> JobManager::statusJson(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = byId_.find(id);
  if (it == byId_.end()) return std::nullopt;
  return statusJsonLocked(*it->second);
}

std::optional<std::string> JobManager::resultJson(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = byId_.find(id);
  if (it == byId_.end() || it->second->result.empty()) return std::nullopt;
  return it->second->result;
}

std::string JobManager::listJson(std::size_t limit,
                                 std::string_view after) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // The cursor is a number comparison, not a registry lookup, so a page
  // boundary that has since been evicted still resumes correctly.
  const std::uint64_t afterNumber =
      after.empty() ? 0 : parseJobIdNumber(after).value_or(0);
  std::size_t begin = 0;
  while (begin < jobs_.size() &&
         parseJobIdNumber(jobs_[begin]->id).value_or(0) <= afterNumber) {
    ++begin;
  }
  const std::size_t available = jobs_.size() - begin;
  const std::size_t count =
      limit == 0 ? available : std::min(limit, available);

  std::string out = "{\"jobs\": [";
  for (std::size_t i = 0; i < count; ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += statusJsonLocked(*jobs_[begin + i]);
  }
  out += "], \"count\": " + std::to_string(count) +
         ", \"retained\": " + std::to_string(jobs_.size()) +
         ", \"evicted\": " + std::to_string(evicted_);
  if (count < available) {
    out += ", \"next_after\": " + jsonQuote(jobs_[begin + count - 1]->id);
  }
  out += "}\n";
  return out;
}

bool JobManager::cancel(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = byId_.find(id);
  if (it == byId_.end()) return false;
  Job& job = *it->second;
  if (job.state == JobState::Queued) {
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [&](const std::shared_ptr<Job>& j) {
                                  return j->id == id;
                                }),
                 queue_.end());
    job.state = JobState::Cancelled;
    job.cancelRequested = true;
    countJobState("cancelled");
    queueDepthGauge().set(static_cast<std::int64_t>(queue_.size()));
    gcLocked();
    return true;
  }
  if (job.state == JobState::Running) {
    job.cancelRequested = true;
    job.stop.requestStop();
    return true;
  }
  return false;  // already terminal
}

void JobManager::drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      // Second caller (destructor after an explicit drain): workers are
      // already winding down; fall through to join below.
    }
    draining_ = true;
    for (const auto& job : queue_) {
      job->state = JobState::Cancelled;
      job->cancelRequested = true;
      countJobState("cancelled");
    }
    queue_.clear();
    queueDepthGauge().set(0);
    gcLocked();
    for (const auto& job : jobs_) {
      if (job->state == JobState::Running) job->stop.requestStop();
    }
    wake_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t JobManager::queuedCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t JobManager::runningCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& job : jobs_) {
    if (job->state == JobState::Running) ++count;
  }
  return count;
}

std::size_t JobManager::finishedCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& job : jobs_) {
    if (isTerminal(job->state)) ++count;
  }
  return count;
}

std::size_t JobManager::evictedCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_;
}

void JobManager::gcLocked() {
  if (options_.retainFinished == 0) return;  // retention disabled
  std::size_t terminal = 0;
  for (const auto& job : jobs_) {
    if (isTerminal(job->state)) ++terminal;
  }
  auto it = jobs_.begin();
  while (terminal > options_.retainFinished && it != jobs_.end()) {
    if (!isTerminal((*it)->state)) {
      ++it;  // queued/running jobs are immune regardless of age
      continue;
    }
    byId_.erase((*it)->id);
    it = jobs_.erase(it);
    --terminal;
    ++evicted_;
  }
}

void JobManager::workerLoop() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining and nothing left
      job = queue_.front();
      queue_.pop_front();
      job->state = JobState::Running;
      countJobState("running");
      queueDepthGauge().set(static_cast<std::int64_t>(queue_.size()));
      job->startedAt = std::chrono::steady_clock::now();
      // The deadline is a RUN budget: armed when execution starts, not at
      // submission — a job must not burn its budget waiting in the queue.
      if (job->spec.deadlineSeconds > 0.0) {
        job->stop.setTimeout(job->spec.deadlineSeconds);
      }
    }

    std::string result;
    std::string error;
    {
      const TraceSpan span(
          "job:" + job->id +
              (job->spec.kind == JobSpec::Kind::Design ? ":design"
                                                       : ":sweep"),
          "serve");
      try {
        result = execute(*job);
      } catch (const std::exception& e) {
        error = e.what();
      }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    job->runtimeSeconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              job->startedAt)
                              .count();
    if (!error.empty()) {
      job->state = JobState::Failed;
      job->error = error;
    } else {
      job->state =
          job->cancelRequested ? JobState::Cancelled : JobState::Done;
      job->result = std::move(result);
    }
    countJobState(toString(job->state));
    telemetry()
        .histogram("ides_serve_job_seconds",
                   "Job wall-time from pickup to terminal state",
                   {0.01, 0.05, 0.2, 1.0, 5.0, 30.0, 120.0, 600.0})
        .observe(job->runtimeSeconds);
    gcLocked();
  }
}

std::string JobManager::execute(Job& job) {
  if (job.spec.kind == JobSpec::Kind::Design) {
    std::string cachePath;
    if (!designCacheDir_.empty()) {
      cachePath = designCacheDir_ + "/" +
                  designJobFingerprint(job.spec.design) + ".json";
      if (std::optional<std::string> hit = loadDesignCache(cachePath)) {
        telemetry()
            .counter("ides_serve_design_cache_total",
                     "Design-job result cache lookups", {{"result", "hit"}})
            .add();
        std::lock_guard<std::mutex> lock(mutex_);
        job.cached = true;
        job.phase = "cached";
        job.cost = parseJson(*hit).numberAt("objective");
        return *std::move(hit);
      }
      telemetry()
          .counter("ides_serve_design_cache_total",
                   "Design-job result cache lookups", {{"result", "miss"}})
          .add();
    }

    RunContext context;
    context.stop = &job.stop;
    context.progress = [this, &job](const ProgressEvent& event) {
      std::lock_guard<std::mutex> lock(mutex_);
      job.phase = std::string(event.phase);
      job.step = event.step;
      job.total = event.total;
      job.cost = event.cost;
    };
    const DesignJobResult result = runDesignJob(job.spec.design, context);
    bool writeThrough = !cachePath.empty();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job.stopped = result.result.stopped;
      job.cost = result.result.objective;
      // Never cache a truncated run: a deadline/cancel result would shadow
      // the full-budget one for every future identical submit.
      if (result.result.stopped || job.cancelRequested) writeThrough = false;
    }
    std::string rendered = designResultJson(result, /*timing=*/false);
    if (writeThrough) publishDesignCache(cachePath, rendered);
    return rendered;
  }

  // Sweep job: named suite through the batch runner, store-cached.
  const SweepJobSpec& spec = job.spec.sweep;
  const SweepScale scale = sweepScaleNamed(spec.scaleName);
  const InstanceSuite suite = namedSweep(spec.sweep, scale);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.phase = "sweep";
    job.total = suite.size();
  }

  std::optional<SweepStoreCache> cache;
  if (store_ != nullptr) {
    // Reuse ON is the whole point: an identical resubmitted job is a
    // cache hit answered from records, no optimizer runs.
    cache.emplace(*store_, suite.name(), /*reuse=*/true);
  }

  BatchOptions options;
  options.shards = spec.shards;
  options.stop = &job.stop;
  options.cache = cache.has_value() ? &*cache : nullptr;
  options.onInstanceDone = [this, &job,
                            &cache](const InstanceResult& r) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++job.step;
    if (r.outcome.hasReport) job.cost = r.outcome.report.objective;
    if (cache.has_value()) job.cacheHits = cache->hits();
  };

  const BatchReport report = runBatch(suite, options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.stopped = report.stopped;
    job.cacheHits = report.cacheHits;
    job.executed = report.completed - report.cacheHits;
  }
  BatchJsonOptions json;
  json.scale = scale.name;
  json.timing = false;  // deterministic: diffs clean against the CLI
  return batchReportJson("sweep_" + spec.sweep, report, json);
}

}  // namespace ides
