#include "serve/design_job.h"

#include <cstdio>

#include "sched/validate.h"
#include "tgen/benchmark_suite.h"
#include "util/hashing.h"
#include "util/json_reader.h"

namespace ides {

namespace {

std::string num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

DesignerOptions designJobOptions(const DesignJobSpec& spec) {
  DesignerOptions opts;
  opts.sa.seed = spec.seed;
  if (spec.saIterations > 0) opts.sa.iterations = spec.saIterations;
  opts.psa.threads = spec.threads;
  opts.psa.restarts = spec.restarts;
  if (spec.specWorkers > 0) opts.sa.speculation.workers = spec.specWorkers;
  if (spec.specDepth > 0) opts.sa.speculation.maxDepth = spec.specDepth;
  opts.psa.speculativeWorkers = spec.specWorkers;
  return opts;
}

std::string designJobFingerprint(const DesignJobSpec& spec) {
  // Two independently-seeded FNV lanes over the same field stream, the
  // sweep-store convention (see instanceFingerprint). threads, specWorkers
  // and specDepth are deliberately absent: they reshape the search's
  // parallelism, never its result.
  Fnv1aHasher lanes[2] = {Fnv1aHasher(Fnv1aHasher::kDefaultBasis),
                          Fnv1aHasher(0x9e3779b97f4a7c15ULL)};
  for (Fnv1aHasher& h : lanes) {
    h.u64(kDesignFingerprintEpoch);
    h.str("design");
    h.u64(spec.nodes);
    h.u64(spec.existing);
    h.u64(spec.current);
    h.u64(spec.seed);
    h.str(spec.strategy);
    h.i64(spec.saIterations);
    h.i64(spec.restarts);
  }
  return hashHex(lanes[0].value(), lanes[1].value());
}

DesignJobResult runDesignJob(const DesignJobSpec& spec,
                             RunContext& context) {
  SuiteConfig cfg;
  cfg.nodeCount = spec.nodes;
  cfg.existingProcesses = spec.existing;
  cfg.currentProcesses = spec.current;
  cfg.tneedOverride = 12000;
  const Suite suite = buildSuite(cfg, spec.seed);

  IncrementalDesigner designer(suite.system, suite.profile,
                               designJobOptions(spec));
  DesignJobResult out;
  out.result = designer.run(spec.strategy, context);

  Schedule all;
  all.merge(designer.frozenSchedule());
  all.merge(out.result.schedule);
  std::vector<GraphId> graphs = suite.system.graphsOfKind(AppKind::Existing);
  const auto cur = suite.system.graphsOfKind(AppKind::Current);
  graphs.insert(graphs.end(), cur.begin(), cur.end());
  out.validationOk = validateSchedule(suite.system, all, graphs).ok();
  return out;
}

std::string designResultJson(const DesignJobResult& r, bool timing) {
  const DesignResult& d = r.result;
  std::string out = "{\n";
  out += "  \"strategy\": " + jsonQuote(d.strategyName) + ",\n";
  out += std::string("  \"feasible\": ") + (d.feasible ? "true" : "false") +
         ",\n";
  out += "  \"objective\": " + num(d.objective) + ",\n";
  out += "  \"C1P_pct\": " + num(d.metrics.c1p) + ",\n";
  out += "  \"C1m_pct\": " + num(d.metrics.c1m) + ",\n";
  out += "  \"C2P_ticks\": " +
         std::to_string(static_cast<long long>(d.metrics.c2p)) + ",\n";
  out += "  \"C2m_bytes\": " +
         std::to_string(static_cast<long long>(d.metrics.c2mBytes)) + ",\n";
  out += "  \"evaluations\": " + std::to_string(d.evaluations) + ",\n";
  out += std::string("  \"stopped\": ") + (d.stopped ? "true" : "false") +
         ",\n";
  out += std::string("  \"validation_ok\": ") +
         (r.validationOk ? "true" : "false");
  if (timing) {
    out += ",\n  \"seconds\": " + num(d.seconds);
  }
  out += "\n}\n";
  return out;
}

}  // namespace ides
