#include "serve/sweep_coordinator.h"

#include <cstdint>
#include <stdexcept>

#include "core/batch_suites.h"
#include "obs/telemetry.h"

namespace ides {

namespace {

/// One HTTP-transport lease lifecycle event; the file transport feeds the
/// same family with transport="file" from store/work_queue.cpp. The
/// sweep-fault CI leg asserts a "reclaim" shows up on the coordinator's
/// /metrics after a worker is SIGKILLed mid-claim.
void leaseEvent(const char* event, std::uint64_t n = 1) {
  if (!telemetryEnabled() || n == 0) return;
  telemetry()
      .counter("ides_sweep_lease_events_total",
               "Sweep lease lifecycle events (claim, renew, reclaim, lost) "
               "by transport",
               {{"event", event}, {"transport", "http"}})
      .add(n);
}

}  // namespace

SweepCoordinator::SweepCoordinator(std::string storeDir)
    : store_(std::move(storeDir)) {}

void SweepCoordinator::create(const std::string& key,
                              const std::string& sweepName,
                              const std::string& scaleName) {
  if (!validSweepKey(key)) {
    throw std::invalid_argument(
        "sweep key must be non-empty [A-Za-z0-9._-]+ (got \"" + key + "\")");
  }
  // Build outside the lock: namedSweep validates the names (throwing
  // std::invalid_argument on unknown ones) and instance construction is
  // the expensive part.
  const SweepScale scale = sweepScaleNamed(scaleName);
  const InstanceSuite suite = namedSweep(sweepName, scale);
  SweepManifest manifest = makeManifest(sweepName, scale, suite);
  std::string text = manifestJson(manifest);

  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sweeps_.find(key);
  if (it != sweeps_.end()) {
    if (it->second.sweepName == sweepName &&
        it->second.scaleName == scaleName) {
      return;  // idempotent re-registration
    }
    throw std::invalid_argument(
        "sweep key \"" + key + "\" already registered as " +
        it->second.sweepName + "/" + it->second.scaleName);
  }
  Sweep sweep;
  sweep.sweepName = sweepName;
  sweep.scaleName = scaleName;
  sweep.manifest = std::move(manifest);
  sweep.manifestText = std::move(text);
  sweeps_.emplace(key, std::move(sweep));
}

bool SweepCoordinator::exists(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sweeps_.count(key) != 0;
}

std::vector<std::string> SweepCoordinator::keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(sweeps_.size());
  for (const auto& [key, sweep] : sweeps_) out.push_back(key);
  return out;
}

SweepCoordinator::Sweep& SweepCoordinator::sweepAt(const std::string& key) {
  const auto it = sweeps_.find(key);
  if (it == sweeps_.end()) {
    throw std::invalid_argument("no such sweep \"" + key + "\"");
  }
  return it->second;
}

const SweepCoordinator::Sweep& SweepCoordinator::sweepAt(
    const std::string& key) const {
  const auto it = sweeps_.find(key);
  if (it == sweeps_.end()) {
    throw std::invalid_argument("no such sweep \"" + key + "\"");
  }
  return it->second;
}

std::string SweepCoordinator::manifestText(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sweepAt(key).manifestText;
}

void SweepCoordinator::expireLeasesLocked(Sweep& sweep) const {
  const auto now = std::chrono::steady_clock::now();
  std::uint64_t reclaimed = 0;
  for (auto it = sweep.leases.begin(); it != sweep.leases.end();) {
    if (it->second.expiry <= now) {
      it = sweep.leases.erase(it);  // the arbiter's stale-lease reclaim
      ++reclaimed;
    } else {
      ++it;
    }
  }
  leaseEvent("reclaim", reclaimed);
}

CoordinatorClaim SweepCoordinator::claim(const std::string& key,
                                         const std::string& worker,
                                         double leaseSeconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Sweep& sweep = sweepAt(key);
  expireLeasesLocked(sweep);

  CoordinatorClaim out;
  bool allRecorded = true;
  for (const WorkItem& item : sweep.manifest.items) {
    if (store_.contains(item.fingerprint)) continue;
    allRecorded = false;
    if (sweep.leases.count(item.fingerprint) != 0) continue;  // live peer
    Lease lease;
    lease.worker = worker;
    lease.seconds = leaseSeconds;
    lease.expiry = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(leaseSeconds));
    sweep.leases[item.fingerprint] = std::move(lease);
    leaseEvent("claim");
    out.kind = CoordinatorClaim::Kind::Claimed;
    out.item = item;
    return out;
  }
  out.kind = allRecorded ? CoordinatorClaim::Kind::Done
                         : CoordinatorClaim::Kind::Wait;
  return out;
}

bool SweepCoordinator::renew(const std::string& key,
                             const std::string& worker,
                             const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  Sweep& sweep = sweepAt(key);
  expireLeasesLocked(sweep);
  const auto it = sweep.leases.find(fingerprint);
  // An expired or re-assigned lease renews as false: the worker loses
  // cleanly and discards its in-flight result.
  if (it == sweep.leases.end() || it->second.worker != worker) {
    leaseEvent("lost");
    return false;
  }
  it->second.expiry = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(it->second.seconds));
  leaseEvent("renew");
  return true;
}

void SweepCoordinator::release(const std::string& key,
                               const std::string& worker,
                               const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  Sweep& sweep = sweepAt(key);
  const auto it = sweep.leases.find(fingerprint);
  if (it != sweep.leases.end() && it->second.worker == worker) {
    sweep.leases.erase(it);
  }
}

bool SweepCoordinator::complete(const std::string& key,
                                const std::string& worker,
                                const std::string& fingerprint,
                                const std::string& recordText) {
  std::lock_guard<std::mutex> lock(mutex_);
  Sweep& sweep = sweepAt(key);
  bool known = false;
  for (const WorkItem& item : sweep.manifest.items) {
    if (item.fingerprint == fingerprint) {
      known = true;
      break;
    }
  }
  if (!known) {
    throw std::invalid_argument("fingerprint \"" + fingerprint +
                                "\" is not in sweep \"" + key + "\"");
  }
  // storeRecordText validates (parse, schema, fingerprint, completeness)
  // and publishes first-writer-wins; throws std::runtime_error on an
  // invalid document. A record landing always clears the lease — whoever
  // held it, the instance is finished.
  const bool stored = store_.storeRecordText(fingerprint, recordText);
  (void)worker;  // completion is keyed by the record, not the holder
  sweep.leases.erase(fingerprint);
  return stored;
}

CoordinatorSweepStatus SweepCoordinator::status(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Sweep& sweep = sweepAt(key);
  const auto now = std::chrono::steady_clock::now();
  CoordinatorSweepStatus out;
  out.total = sweep.manifest.items.size();
  for (const WorkItem& item : sweep.manifest.items) {
    if (store_.contains(item.fingerprint)) ++out.recorded;
  }
  for (const auto& [fingerprint, lease] : sweep.leases) {
    if (lease.expiry > now) ++out.leased;
  }
  out.done = out.recorded == out.total;
  return out;
}

std::optional<std::string> SweepCoordinator::resultJson(
    const std::string& key) {
  std::string sweepName;
  std::string scaleName;
  SweepManifest manifest;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const Sweep& sweep = sweepAt(key);
    sweepName = sweep.sweepName;
    scaleName = sweep.scaleName;
    manifest = sweep.manifest;
  }
  // Rebuild the suite outside the lock (construction cost, no shared
  // state) and merge from the store in canonical order — the exact path
  // `sweep --serve` takes, hence the exact bytes.
  const SweepScale scale = sweepScaleNamed(scaleName);
  const InstanceSuite suite = namedSweep(sweepName, scale);
  BatchReport report = reportFromStore(suite, store_);
  if (report.completed != report.results.size()) return std::nullopt;
  BatchJsonOptions json;
  json.scale = scale.name;
  json.timing = false;
  return batchReportJson("sweep_" + sweepName, report, json);
}

}  // namespace ides
