#include "serve/daemon.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/telemetry.h"
#include "util/json_reader.h"
#include "util/log.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace ides {

namespace {

/// Applies one key/value pair shared by the flag and config paths.
bool applyOption(std::string_view key, const std::string& value,
                 ServeOptions& options, std::string& error) {
  try {
    if (key == "bind") {
      options.bindAddress = value;
    } else if (key == "port") {
      options.port = std::stoi(value);
      if (options.port < 0 || options.port > 65535) {
        error = "port out of range: " + value;
        return false;
      }
    } else if (key == "workers") {
      options.workers = std::stoi(value);
      if (options.workers < 1) {
        error = "workers must be >= 1";
        return false;
      }
    } else if (key == "max-queued") {
      const int queued = std::stoi(value);
      if (queued < 1) {
        error = "max-queued must be >= 1";
        return false;
      }
      options.maxQueued = static_cast<std::size_t>(queued);
    } else if (key == "retain-finished") {
      options.retainFinished = std::stoi(value);
      if (options.retainFinished < 0) {
        error = "retain-finished must be >= 0";
        return false;
      }
    } else if (key == "store-dir") {
      options.storeDir = value;
    } else if (key == "pidfile") {
      options.pidFile = value;
    } else if (key == "log") {
      options.logFile = value;
    } else if (key == "log-level") {
      if (parseLogLevel(value, LogLevel::Off) == LogLevel::Off &&
          value != "off") {
        error = "log-level must be debug|info|warn|error|off, got \"" +
                value + "\"";
        return false;
      }
      options.logLevel = value;
    } else {
      error = "unknown option \"" + std::string(key) + "\"";
      return false;
    }
  } catch (const std::exception&) {
    error = "bad value for " + std::string(key) + ": " + value;
    return false;
  }
  return true;
}

}  // namespace

bool parseServeConfig(std::string_view text, ServeOptions& options,
                      std::string& error) {
  std::istringstream in{std::string(text)};
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    // Strip comments, then surrounding whitespace.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    line = line.substr(begin, end - begin + 1);

    // `key value` or `key=value`.
    std::size_t split = line.find_first_of(" \t=");
    if (split == std::string::npos) {
      error = "config line " + std::to_string(lineNo) +
              ": expected \"key value\"";
      return false;
    }
    const std::string key = line.substr(0, split);
    split = line.find_first_not_of(" \t=", split);
    if (split == std::string::npos) {
      error = "config line " + std::to_string(lineNo) + ": missing value";
      return false;
    }
    if (!applyOption(key, line.substr(split), options, error)) {
      error = "config line " + std::to_string(lineNo) + ": " + error;
      return false;
    }
  }
  return true;
}

const char* serveUsage() {
  return
      "usage: ides_serve [options]\n"
      "  --bind ADDR      listen address            (default 127.0.0.1)\n"
      "  --port N         listen port, 0 = ephemeral (default 8080)\n"
      "  --workers N      job worker threads        (default 2)\n"
      "  --max-queued N   admission limit on waiting jobs (default 32)\n"
      "  --retain-finished N  terminal jobs kept in the registry; older\n"
      "                   ones are evicted, 0 = keep all (default 256)\n"
      "  --store-dir D    sweep store: content-addressed result cache\n"
      "                   (identical sweep jobs answer from records)\n"
      "  --pidfile FILE   write the pid; refuses an existing file\n"
      "  --log FILE       request/event log          (default stderr)\n"
      "  --log-level L    debug|info|warn|error|off; wins over IDES_LOG\n"
      "                   (default: IDES_LOG, else warn)\n"
      "  --config FILE    `key value` per line, keys = flag names\n"
      "                   without --; explicit flags override it\n"
      "  --help           this text\n"
      "\n"
      "Signals: SIGINT/SIGTERM drain gracefully — stop accepting, cancel\n"
      "queued jobs, fire running jobs' stop tokens, exit 0.\n";
}

bool parseServeOptions(int argc, char** argv, ServeOptions& options,
                       std::string& error, bool& helpRequested) {
  helpRequested = false;

  // First pass: --help and --config (config applies before other flags).
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      helpRequested = true;
      return true;
    }
    if (flag == "--config") {
      if (i + 1 >= argc) {
        error = "--config needs a value";
        return false;
      }
      std::ifstream in(argv[i + 1]);
      if (!in) {
        error = std::string("cannot open config file ") + argv[i + 1];
        return false;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      if (!parseServeConfig(buffer.str(), options, error)) {
        error = std::string(argv[i + 1]) + ": " + error;
        return false;
      }
    }
  }

  // Second pass: every flag; explicit flags win over the config file.
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (i + 1 >= argc) {
      error = "flag " + std::string(flag) + " needs a value";
      return false;
    }
    const std::string value = argv[i + 1];
    ++i;
    if (flag == "--config") continue;  // already applied
    if (flag.size() < 3 || flag.substr(0, 2) != "--") {
      error = "unknown argument \"" + std::string(flag) + "\"";
      return false;
    }
    if (!applyOption(flag.substr(2), value, options, error)) return false;
  }
  return true;
}

bool writePidFile(const std::string& path, std::string& error) {
  if (std::filesystem::exists(path)) {
    error = "pidfile " + path +
            " already exists (another instance running, or a stale file "
            "from a crash — remove it to proceed)";
    return false;
  }
  std::ofstream out(path);
  if (!out) {
    error = "cannot write pidfile " + path;
    return false;
  }
#if defined(__unix__) || defined(__APPLE__)
  out << static_cast<long>(getpid()) << '\n';
#else
  out << 0 << '\n';
#endif
  return static_cast<bool>(out);
}

void removePidFile(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

namespace {

HttpResponse jsonResponse(int status, std::string body) {
  return HttpResponse{status, "application/json", std::move(body)};
}

HttpResponse errorResponse(int status, const std::string& message) {
  return jsonResponse(status,
                      "{\"error\": " + jsonQuote(message) + "}\n");
}

/// GET /jobs pagination parameters, parsed strictly from the query
/// string: unknown keys and malformed values are client errors, same
/// policy as the JSON bodies.
struct ListQuery {
  std::size_t limit = 0;  ///< 0 = no limit
  std::string after;      ///< empty = from the first retained job
  std::string error;      ///< non-empty = answer 400 with this reason
};

ListQuery parseListQuery(std::string_view query) {
  ListQuery out;
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair = query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view{}
                                     : pair.substr(eq + 1);
    if (key == "limit") {
      if (value.empty() || value.size() > 9 ||
          value.find_first_not_of("0123456789") != std::string_view::npos) {
        out.error = "limit must be a non-negative integer";
        return out;
      }
      out.limit = static_cast<std::size_t>(
          std::stoul(std::string(value)));
    } else if (key == "after") {
      if (!parseJobIdNumber(value).has_value()) {
        out.error = "after must be a job id (\"job-<n>\")";
        return out;
      }
      out.after = std::string(value);
    } else {
      out.error = "unknown query parameter \"" + std::string(key) +
                  "\" (available: limit, after)";
      return out;
    }
  }
  return out;
}

/// healthz store probe: a full write-read round-trip under the store dir.
/// "none" when no store is configured, "unreachable" when the filesystem
/// refuses the write or reads back the wrong bytes (full disk, lost mount,
/// permissions, silent corruption) — the signal a load balancer drains on.
/// The probe file is removed on every path, success or failure, so a sick
/// round-trip never leaves `.healthz.probe` debris; `probeMs` reports the
/// round-trip latency for the healthz JSON.
std::string storeHealth(const std::string& storeDir, double& probeMs) {
  probeMs = 0.0;
  if (storeDir.empty()) return "none";
  using Clock = std::chrono::steady_clock;
  const Clock::time_point begin = Clock::now();
  const std::string probe =
      (std::filesystem::path(storeDir) / ".healthz.probe").string();
  bool healthy = false;
  {
    std::ofstream out(probe, std::ios::trunc | std::ios::binary);
    if (out) {
      out << "probe\n";
      out.flush();
      healthy = static_cast<bool>(out);
    }
  }
  if (healthy) {
    std::ifstream in(probe, std::ios::binary);
    std::string readBack;
    healthy = static_cast<bool>(in) &&
              static_cast<bool>(std::getline(in, readBack)) &&
              readBack == "probe";
  }
  std::error_code ec;
  std::filesystem::remove(probe, ec);
  probeMs = std::chrono::duration<double, std::milli>(Clock::now() - begin)
                .count();
  return healthy ? "ok" : "unreachable";
}

std::string sweepStatusJson(const std::string& key,
                            const CoordinatorSweepStatus& status) {
  return "{\"key\": " + jsonQuote(key) +
         ", \"total\": " + std::to_string(status.total) +
         ", \"recorded\": " + std::to_string(status.recorded) +
         ", \"leased\": " + std::to_string(status.leased) +
         std::string(", \"done\": ") + (status.done ? "true" : "false") +
         "}";
}

/// Coordinator errors: an unknown sweep key is a 404, every other
/// std::invalid_argument (bad key, spec conflict, foreign fingerprint) is
/// the client's 400.
HttpResponse coordinatorError(const std::invalid_argument& e) {
  const std::string what = e.what();
  const int status = what.rfind("no such sweep", 0) == 0 ? 404 : 400;
  return errorResponse(status, what);
}

HttpResponse routeSweeps(ServeRuntime& runtime,
                         const HttpRequest& request) {
  if (runtime.sweeps == nullptr) {
    return errorResponse(
        503, "no sweep store configured (start ides_serve with --store-dir)");
  }
  SweepCoordinator& sweeps = *runtime.sweeps;
  const std::string& path = request.path;

  if (path == "/sweeps") {
    if (request.method != "GET") {
      return errorResponse(405, "use GET on /sweeps (register with POST "
                                "/sweeps/<key>)");
    }
    std::string body = "{\"sweeps\": [";
    bool first = true;
    for (const std::string& key : sweeps.keys()) {
      body += first ? "\n  " : ",\n  ";
      first = false;
      body += sweepStatusJson(key, sweeps.status(key));
    }
    body += first ? "]}\n" : "\n]}\n";
    return jsonResponse(200, std::move(body));
  }

  // /sweeps/<key>[/<action>]
  std::string key = path.substr(8);
  std::string action;
  const std::size_t slash = key.find('/');
  if (slash != std::string::npos) {
    action = key.substr(slash + 1);
    key.erase(slash);
  }
  if (!validSweepKey(key)) {
    return errorResponse(400,
                         "sweep key must be non-empty [A-Za-z0-9._-]+");
  }

  try {
    if (action.empty()) {
      if (request.method == "POST") {
        const JsonValue spec = parseJson(request.body);
        const std::string scale =
            spec.find("scale") != nullptr ? spec.stringAt("scale")
                                          : std::string("default");
        sweeps.create(key, spec.stringAt("sweep"), scale);
        return jsonResponse(
            200, sweepStatusJson(key, sweeps.status(key)) + "\n");
      }
      if (request.method != "GET") {
        return errorResponse(405, "use GET or POST on /sweeps/<key>");
      }
      return jsonResponse(200,
                          sweepStatusJson(key, sweeps.status(key)) + "\n");
    }

    if (action == "manifest") {
      if (request.method != "GET") {
        return errorResponse(405, "use GET on /sweeps/<key>/manifest");
      }
      return jsonResponse(200, sweeps.manifestText(key));
    }

    if (action == "result") {
      if (request.method != "GET") {
        return errorResponse(405, "use GET on /sweeps/<key>/result");
      }
      const std::optional<std::string> result = sweeps.resultJson(key);
      if (!result.has_value()) {
        return errorResponse(409, "sweep " + key +
                                      " is not complete yet; a result "
                                      "exists once every record is in");
      }
      return jsonResponse(200, *result);
    }

    // The remaining actions are worker POSTs with JSON bodies.
    if (request.method != "POST") {
      return errorResponse(405, "use POST on /sweeps/<key>/" + action);
    }
    const JsonValue body = parseJson(request.body);

    if (action == "claim") {
      const double lease = body.find("lease_seconds") != nullptr
                               ? body.numberAt("lease_seconds")
                               : 600.0;
      if (!(lease > 0.0)) {
        return errorResponse(400, "lease_seconds must be > 0");
      }
      const CoordinatorClaim claim =
          sweeps.claim(key, body.stringAt("worker"), lease);
      switch (claim.kind) {
        case CoordinatorClaim::Kind::Done:
          return jsonResponse(200, "{\"done\": true}\n");
        case CoordinatorClaim::Kind::Wait:
          return jsonResponse(200, "{\"wait\": true}\n");
        case CoordinatorClaim::Kind::Claimed:
          break;
      }
      return jsonResponse(
          200, "{\"claimed\": {\"index\": " +
                   std::to_string(claim.item.index) +
                   ", \"id\": " + jsonQuote(claim.item.id) +
                   ", \"fingerprint\": " +
                   jsonQuote(claim.item.fingerprint) + "}}\n");
    }
    if (action == "renew") {
      const bool renewed = sweeps.renew(key, body.stringAt("worker"),
                                        body.stringAt("fingerprint"));
      return jsonResponse(200, std::string("{\"renewed\": ") +
                                   (renewed ? "true" : "false") + "}\n");
    }
    if (action == "release") {
      sweeps.release(key, body.stringAt("worker"),
                     body.stringAt("fingerprint"));
      return jsonResponse(200, "{\"released\": true}\n");
    }
    if (action == "complete") {
      bool stored = false;
      try {
        stored = sweeps.complete(key, body.stringAt("worker"),
                                 body.stringAt("fingerprint"),
                                 body.stringAt("record"));
      } catch (const std::runtime_error& e) {
        return errorResponse(400, e.what());  // invalid record document
      }
      return jsonResponse(200, std::string("{\"stored\": ") +
                                   (stored ? "true" : "false") + "}\n");
    }
    return errorResponse(404, "no such endpoint");
  } catch (const std::invalid_argument& e) {
    return coordinatorError(e);
  } catch (const std::runtime_error& e) {
    // parseJson and the typed accessors throw runtime_error on malformed
    // request bodies — the client's fault, not ours.
    return errorResponse(400, e.what());
  }
}

}  // namespace

HttpResponse routeRequest(ServeRuntime& runtime,
                          const HttpRequest& request) {
  JobManager& jobs = runtime.jobs;
  const std::string& path = request.path;

  if (path == "/healthz") {
    if (request.method != "GET") {
      return errorResponse(405, "use GET on /healthz");
    }
    double probeMs = 0.0;
    const std::string store = storeHealth(runtime.storeDir, probeMs);
    const bool sick = store == "unreachable";
    const auto uptime = std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::steady_clock::now() - runtime.start);
    char probeBuf[32];
    std::snprintf(probeBuf, sizeof(probeBuf), "%.3f", probeMs);
    std::string body =
        std::string("{\"status\": ") + (sick ? "\"sick\"" : "\"ok\"") +
        ", \"uptime_seconds\": " + std::to_string(uptime.count()) +
        ", \"queued\": " + std::to_string(jobs.queuedCount()) +
        ", \"running\": " + std::to_string(jobs.runningCount()) +
        ", \"finished\": " + std::to_string(jobs.finishedCount()) +
        ", \"store\": " + jsonQuote(store) +
        ", \"store_probe_ms\": " + probeBuf + "}\n";
    // 503 drains the instance at the load balancer while the process
    // itself stays up to finish what it can.
    return jsonResponse(sick ? 503 : 200, std::move(body));
  }

  if (path == "/metrics") {
    if (request.method != "GET") {
      return errorResponse(405, "use GET on /metrics");
    }
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        telemetry().prometheusText()};
  }

  if (path == "/sweeps" || path.rfind("/sweeps/", 0) == 0) {
    return routeSweeps(runtime, request);
  }

  if (path == "/jobs") {
    if (request.method == "GET") {
      const ListQuery page = parseListQuery(request.query);
      if (!page.error.empty()) return errorResponse(400, page.error);
      return jsonResponse(200, jobs.listJson(page.limit, page.after));
    }
    if (request.method != "POST") {
      return errorResponse(405, "use GET or POST on /jobs");
    }
    JobSpec spec;
    try {
      spec = parseJobSpec(request.body);
    } catch (const std::invalid_argument& e) {
      return errorResponse(400, e.what());
    }
    const JobManager::Submission submission = jobs.submit(std::move(spec));
    if (!submission.accepted) return errorResponse(503, submission.error);
    return jsonResponse(
        202, "{\"id\": " + jsonQuote(submission.id) +
                 ", \"status_url\": " +
                 jsonQuote("/jobs/" + submission.id) + "}\n");
  }

  // /jobs/<id> and /jobs/<id>/result
  if (path.rfind("/jobs/", 0) == 0) {
    std::string id = path.substr(6);
    bool wantResult = false;
    const std::size_t slash = id.find('/');
    if (slash != std::string::npos) {
      if (id.substr(slash) != "/result") {
        return errorResponse(404, "no such endpoint");
      }
      wantResult = true;
      id.erase(slash);
    }
    const std::optional<JobState> state = jobs.state(id);
    if (!state.has_value()) {
      return errorResponse(404, "no such job \"" + id + "\"");
    }

    if (wantResult) {
      if (request.method != "GET") {
        return errorResponse(405, "use GET on /jobs/<id>/result");
      }
      const std::optional<std::string> result = jobs.resultJson(id);
      if (!result.has_value()) {
        return errorResponse(
            409, "job " + id + " is " + toString(*state) +
                     "; a result exists once it is done (or cancelled "
                     "mid-run with a partial result)");
      }
      return jsonResponse(200, *result);
    }

    if (request.method == "DELETE") {
      if (!jobs.cancel(id)) {
        return errorResponse(409, "job " + id + " is already " +
                                      toString(*state));
      }
      return jsonResponse(200, "{\"id\": " + jsonQuote(id) +
                                   ", \"cancelled\": true}\n");
    }
    if (request.method != "GET") {
      return errorResponse(405, "use GET or DELETE on /jobs/<id>");
    }
    return jsonResponse(200, *jobs.statusJson(id));
  }

  return errorResponse(404, "no such endpoint");
}

HttpResponse routeRequest(JobManager& jobs, const HttpRequest& request) {
  ServeRuntime runtime{jobs, nullptr, std::string()};
  return routeRequest(runtime, request);
}

std::string requestLogLine(const RequestLogEntry& entry) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", entry.milliseconds);
  std::string out = "peer=";
  out += entry.peer;
  out += " method=";
  out += entry.method;
  out += " target=";
  out += entry.target;
  out += " status=";
  out += std::to_string(entry.status);
  out += " in=";
  out += std::to_string(entry.bytesIn);
  out += " out=";
  out += std::to_string(entry.bytesOut);
  out += " ms=";
  out += buf;
  return out;
}

namespace {

/// Collapses a request target onto the fixed endpoint surface so metric
/// cardinality stays bounded no matter what clients send: ids and sweep
/// keys become placeholders, unknown paths become "other".
std::string normalizeEndpoint(std::string_view target) {
  const std::size_t question = target.find('?');
  if (question != std::string_view::npos) target = target.substr(0, question);

  if (target == "/healthz" || target == "/metrics" || target == "/jobs" ||
      target == "/sweeps") {
    return std::string(target);
  }
  if (target.rfind("/jobs/", 0) == 0) {
    std::string_view rest = target.substr(6);
    const std::size_t slash = rest.find('/');
    if (slash == std::string_view::npos) return "/jobs/{id}";
    if (rest.substr(slash) == "/result") return "/jobs/{id}/result";
    return "other";
  }
  if (target.rfind("/sweeps/", 0) == 0) {
    std::string_view rest = target.substr(8);
    const std::size_t slash = rest.find('/');
    if (slash == std::string_view::npos) return "/sweeps/{key}";
    const std::string_view action = rest.substr(slash + 1);
    if (action == "manifest" || action == "result" || action == "claim" ||
        action == "renew" || action == "release" || action == "complete") {
      return "/sweeps/{key}/" + std::string(action);
    }
    return "other";
  }
  return "other";
}

}  // namespace

void recordRequestTelemetry(const RequestLogEntry& entry) {
  if (!telemetryEnabled()) return;
  const std::string endpoint = normalizeEndpoint(entry.target);
  telemetry()
      .counter("ides_serve_requests_total", "HTTP requests served",
               {{"endpoint", endpoint},
                {"method", entry.method},
                {"status", std::to_string(entry.status)}})
      .add();
  telemetry()
      .histogram("ides_serve_request_seconds",
                 "HTTP request latency in seconds",
                 {0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0},
                 {{"endpoint", endpoint}})
      .observe(entry.milliseconds / 1000.0);
}

}  // namespace ides
