// Minimal dependency-free HTTP/1.1 server for the ides_serve daemon.
//
// The daemon's API is a handful of small JSON endpoints, so this is a
// deliberately tiny server on POSIX sockets: one request per connection
// (Connection: close), a strict incremental request parser that works on a
// plain byte buffer (unit-testable without sockets), and a single-threaded
// accept loop — the expensive work (optimization jobs) runs on the
// JobManager's worker pool, never on the request path, so one thread
// handling cheap submit/status/result exchanges is all the daemon needs.
//
// The parser is strict where sloppiness could bite a long-running daemon:
// request line and header sizes are capped, Content-Length must be exact
// digits within the body cap, Transfer-Encoding is refused (501), and
// pipelined requests (bytes beyond the parsed request) are rejected rather
// than silently dropped. Every rejection carries the HTTP status the
// server should answer with.
//
// The accept loop polls with a short timeout and re-checks its StopToken,
// so a SIGTERM-fired token drains the server within one poll interval.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/stop_token.h"

namespace ides {

/// Hard caps of the request parser. Defaults fit the daemon's JSON API
/// with room to spare; anything larger is a client bug or abuse.
struct HttpLimits {
  std::size_t maxRequestLine = 4096;
  std::size_t maxHeaderCount = 64;
  /// Request line + all header lines, terminator included.
  std::size_t maxHeaderBytes = 16384;
  std::size_t maxBodyBytes = 4u << 20;
};

struct HttpRequest {
  std::string method;  ///< as received, e.g. "GET"
  std::string target;  ///< full request target, e.g. "/jobs/job-1?k=v"
  std::string path;    ///< target up to the first '?'
  std::string query;   ///< after the first '?', may be empty
  /// Headers in arrival order, names as received.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with this name (case-insensitive), or null.
  [[nodiscard]] const std::string* header(std::string_view name) const;
};

enum class HttpParseStatus {
  NeedMore,  ///< the buffer holds a valid prefix; read more bytes
  Done,      ///< one complete request parsed into `out`
  Bad,       ///< malformed or over a limit; answer `errorStatus` and close
};

struct HttpParseResult {
  HttpParseStatus status = HttpParseStatus::NeedMore;
  /// Bytes of the buffer consumed by the request (Done only). Trailing
  /// bytes mean the client pipelined — the server rejects that.
  std::size_t consumed = 0;
  /// Suggested response status for Bad (400/413/414/431/501/505).
  int errorStatus = 0;
  std::string error;
};

/// Parses one HTTP/1.1 request from the start of `buffer`. Pure function
/// of the bytes — no sockets, no state — so the malformed-input matrix is
/// unit-testable directly.
HttpParseResult parseHttpRequest(std::string_view buffer, HttpRequest& out,
                                 const HttpLimits& limits = {});

struct HttpResponse {
  int status = 200;
  std::string contentType = "application/json";
  std::string body;
};

/// Reason phrase for the status codes this server emits.
const char* httpStatusReason(int status);

/// Serializes status line + headers + body (Connection: close always —
/// one request per connection keeps the server stateless).
std::string renderHttpResponse(const HttpResponse& response);

/// One served request, for the daemon's structured request log.
struct RequestLogEntry {
  std::string peer;    ///< client address, e.g. "127.0.0.1:52114"
  std::string method;  ///< "-" when the request never parsed
  std::string target;
  int status = 0;
  std::size_t bytesIn = 0;
  std::size_t bytesOut = 0;
  double milliseconds = 0.0;
};

/// Blocking single-threaded HTTP server. Construction binds and listens;
/// serve() accepts until the StopToken fires.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  using LogSink = std::function<void(const RequestLogEntry&)>;

  /// Binds `bindAddress:port` (port 0 = ephemeral; see port()). Throws
  /// std::runtime_error when the socket cannot be set up.
  HttpServer(const std::string& bindAddress, int port,
             HttpLimits limits = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (resolves an ephemeral request).
  [[nodiscard]] int port() const { return port_; }

  /// Accept loop: one connection at a time, each read fully, parsed,
  /// dispatched to `handler` (exceptions become 500), answered, closed.
  /// Returns when `stop` fires (checked every poll interval) — accepted-
  /// but-unserved connections do not exist at that point, so returning IS
  /// the "stop accepting" half of a graceful drain.
  void serve(const Handler& handler, const StopToken* stop,
             const LogSink& log = {});

  [[nodiscard]] std::size_t requestsServed() const { return served_; }

 private:
  void handleConnection(int fd, const std::string& peer,
                        const Handler& handler, const LogSink& log);

  int listenFd_ = -1;
  int port_ = 0;
  HttpLimits limits_;
  std::size_t served_ = 0;
};

}  // namespace ides
