#include "tgen/profile_presets.h"

namespace ides {

DiscreteDistribution paperWcetDistribution() {
  return DiscreteDistribution({{20, 0.2}, {50, 0.4}, {100, 0.3}, {150, 0.1}});
}

DiscreteDistribution paperMessageSizeDistribution() {
  return DiscreteDistribution({{2, 0.2}, {4, 0.4}, {6, 0.3}, {8, 0.1}});
}

FutureProfile paperFutureProfile(Time tmin, Time tneed,
                                 std::int64_t bneedBytes) {
  FutureProfile profile;
  profile.tmin = tmin;
  profile.tneed = tneed;
  profile.bneedBytes = bneedBytes;
  profile.wcetDistribution = paperWcetDistribution();
  profile.messageSizeDistribution = paperMessageSizeDistribution();
  profile.validate();
  return profile;
}

}  // namespace ides
