// Future-application profile presets.
//
// The paper's slide 10 characterizes the family of future applications with
// two histograms (typical WCET at 20/50/100/150 time units, typical message
// size at 2/4/6/8 bytes) plus Tmin, tneed and bneed. The bar heights are
// not numerically legible in the published figure; we use a mid-heavy shape
// {0.2, 0.4, 0.3, 0.1} for both (documented in DESIGN.md).
#pragma once

#include "core/future_profile.h"

namespace ides {

/// The paper's histograms with the given periodic needs.
FutureProfile paperFutureProfile(Time tmin, Time tneed,
                                 std::int64_t bneedBytes);

/// Distribution helpers exposed for generators and tests.
DiscreteDistribution paperWcetDistribution();
DiscreteDistribution paperMessageSizeDistribution();

}  // namespace ides
