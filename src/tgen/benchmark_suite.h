// Paper-scale benchmark suites.
//
// A suite is one complete experiment instance, mirroring the paper's setup
// (slides 15-17): a 10-node TTP architecture, a base of existing
// applications totaling ~400 processes already frozen onto it, one current
// application of the size under study, an optional set of candidate future
// applications, and the FutureProfile that characterizes them.
//
// tneed and bneed are derived from the future-application parameters: a
// future application's graphs have period Tmin, so its expected processor
// demand per Tmin window is (process count) * E[wcet], and its bus demand
// is (message count) * P(inter-node) * E[size].
//
// Random instances are occasionally unschedulable; buildSuite retries with
// derived seeds until the existing applications freeze feasibly and the
// current application admits an initial mapping, so every returned suite is
// a usable experiment instance.
#pragma once

#include <cstdint>
#include <vector>

#include "core/future_profile.h"
#include "model/system_model.h"
#include "tgen/graph_gen.h"

namespace ides {

struct SuiteConfig {
  std::size_t nodeCount = 10;
  std::vector<double> speedFactors = {1.0, 0.8, 1.25};
  Time slotLength = 20;          // ticks; round = nodeCount * slotLength
  std::int64_t bytesPerTick = 1;

  Time basePeriod = 16000;       // slowest period; also the hyperperiod
  /// Graph periods are basePeriod / divisor, cycled per graph.
  std::vector<Time> periodDivisors = {1, 2};
  Time tmin = 4000;              // smallest expected future period

  std::size_t existingProcesses = 400;
  std::size_t existingGraphSize = 50;
  /// Existing applications are released at staggered phases: application a
  /// gets offset (a % offsetPhases) * period / offsetPhases. This mirrors a
  /// time-triggered system grown incrementally — each delivered application
  /// was phased to use the slack its predecessors left — and is what keeps
  /// the frozen base from piling onto the start of every period. 1 = no
  /// staggering.
  std::size_t offsetPhases = 4;
  std::size_t currentProcesses = 80;
  std::size_t currentGraphSize = 40;
  std::size_t futureAppCount = 0;   // candidate future apps to embed
  std::size_t futureProcesses = 80;
  std::size_t futureGraphSize = 40;

  GraphGenConfig graphGen;       // shape/WCET/message knobs

  /// 0 = derive from the future parameters (see header comment).
  Time tneedOverride = 0;
  std::int64_t bneedOverride = 0;

  int maxBuildAttempts = 20;
};

struct Suite {
  SystemModel system;
  FutureProfile profile;
  std::uint64_t seedUsed = 0;
  int buildAttempts = 1;
};

/// Build a feasible suite. Throws std::runtime_error if no feasible
/// instance is found within cfg.maxBuildAttempts derived seeds.
Suite buildSuite(const SuiteConfig& cfg, std::uint64_t seed);

}  // namespace ides
