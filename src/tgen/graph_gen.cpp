#include "tgen/graph_gen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ides {

namespace {

/// WCET table for one process: base effort scaled by each node's speed
/// factor with multiplicative jitter; optionally restricted to a subset.
std::vector<Time> makeWcetTable(const Architecture& arch, Time base,
                                const GraphGenConfig& cfg, Rng& rng) {
  const std::size_t nodes = arch.nodeCount();
  std::vector<Time> wcet(nodes, kNoTime);
  std::vector<std::size_t> allowed(nodes);
  for (std::size_t i = 0; i < nodes; ++i) allowed[i] = i;
  if (nodes > 2 && rng.chance(cfg.restrictedMappingProb)) {
    rng.shuffle(allowed);
    const auto keep = std::max<std::size_t>(
        2, static_cast<std::size_t>(
               std::lround(cfg.restrictedFraction *
                           static_cast<double>(nodes))));
    allowed.resize(keep);
  }
  for (std::size_t i : allowed) {
    const double jitter =
        rng.uniformReal(1.0 - cfg.wcetNodeVariation,
                        1.0 + cfg.wcetNodeVariation);
    const double scaled =
        static_cast<double>(base) * arch.node(NodeId{static_cast<int>(i)})
                                        .speedFactor *
        jitter;
    wcet[i] = std::max<Time>(1, static_cast<Time>(std::lround(scaled)));
  }
  return wcet;
}

struct LayerPlan {
  std::vector<std::size_t> layerOf;  // per local process index
  std::size_t layerCount = 0;
};

LayerPlan planLayers(std::size_t processCount, std::size_t layerWidth) {
  LayerPlan plan;
  if (layerWidth == 0) throw std::invalid_argument("layerWidth == 0");
  plan.layerOf.resize(processCount);
  for (std::size_t i = 0; i < processCount; ++i) {
    plan.layerOf[i] = i / layerWidth;
  }
  plan.layerCount = processCount == 0 ? 0 : plan.layerOf.back() + 1;
  return plan;
}

template <typename WcetFn, typename SizeFn>
GraphId generateImpl(SystemModel& sys, ApplicationId app, Time period,
                     Time deadline, const GraphGenConfig& cfg,
                     WcetFn&& drawWcet, SizeFn&& drawSize, Rng& rng,
                     Time offset) {
  if (cfg.processCount == 0) {
    throw std::invalid_argument("generateGraph: empty graph");
  }
  const GraphId g = sys.addGraph(app, period, deadline, offset);
  const LayerPlan plan = planLayers(cfg.processCount, cfg.layerWidth);

  std::vector<ProcessId> procs;
  procs.reserve(cfg.processCount);
  for (std::size_t i = 0; i < cfg.processCount; ++i) {
    const Time base = drawWcet();
    std::string name = "P";
    name += std::to_string(g.value);
    name += '_';
    name += std::to_string(i);
    procs.push_back(sys.addProcess(
        g, std::move(name),
        makeWcetTable(sys.architecture(), base, cfg, rng)));
  }

  // Connectivity tree: every process beyond layer 0 gets one parent from
  // the immediately preceding layer (bounds the critical path to the layer
  // count).
  std::size_t edges = 0;
  std::vector<std::vector<std::size_t>> byLayer(plan.layerCount);
  for (std::size_t i = 0; i < cfg.processCount; ++i) {
    byLayer[plan.layerOf[i]].push_back(i);
  }
  for (std::size_t i = 0; i < cfg.processCount; ++i) {
    const std::size_t layer = plan.layerOf[i];
    if (layer == 0) continue;
    const auto& parents = byLayer[layer - 1];
    const std::size_t parent = parents[rng.index(parents.size())];
    sys.addMessage(g, procs[parent], procs[i], drawSize());
    ++edges;
  }

  // Extra forward edges up to the density target. Duplicate edges between
  // the same pair are allowed in the model (distinct messages), matching
  // multiple data items flowing between two processes.
  const auto target = static_cast<std::size_t>(
      std::llround(cfg.edgeDensity * static_cast<double>(cfg.processCount)));
  std::size_t attempts = 0;
  while (edges < target && attempts < 16 * cfg.processCount &&
         plan.layerCount > 1) {
    ++attempts;
    const std::size_t u = rng.index(cfg.processCount);
    const std::size_t v = rng.index(cfg.processCount);
    if (plan.layerOf[u] >= plan.layerOf[v]) continue;  // forward-only: acyclic
    sys.addMessage(g, procs[u], procs[v], drawSize());
    ++edges;
  }
  return g;
}

}  // namespace

GraphId generateGraph(SystemModel& sys, ApplicationId app, Time period,
                      Time deadline, const GraphGenConfig& cfg, Rng& rng,
                      Time offset) {
  return generateImpl(
      sys, app, period, deadline, cfg,
      [&] { return rng.uniformInt(cfg.wcetMin, cfg.wcetMax); },
      [&] { return rng.uniformInt(cfg.msgMin, cfg.msgMax); }, rng, offset);
}

GraphId generateGraphFromDistributions(
    SystemModel& sys, ApplicationId app, Time period, Time deadline,
    const GraphGenConfig& cfg, const DiscreteDistribution& wcetDist,
    const DiscreteDistribution& msgDist, Rng& rng, Time offset) {
  return generateImpl(
      sys, app, period, deadline, cfg, [&] { return wcetDist.sample(rng); },
      [&] { return msgDist.sample(rng); }, rng, offset);
}

std::vector<Time> snapSlotLengths(std::size_t nodeCount, Time slotLength,
                                  Time hyperperiod) {
  if (nodeCount == 0 || slotLength <= 0 || hyperperiod <= 0) {
    throw std::invalid_argument("snapSlotLengths: empty architecture");
  }
  const Time nodes = static_cast<Time>(nodeCount);
  const Time target = nodes * slotLength;
  if (hyperperiod % target == 0) {
    return std::vector<Time>(nodeCount, slotLength);
  }
  if (hyperperiod < nodes) {
    throw std::invalid_argument(
        "snapSlotLengths: hyperperiod shorter than one tick per node");
  }
  // Largest divisor of the hyperperiod in [nodeCount, target]; every
  // divisor has a cofactor partner, so scanning cofactors up from 1 visits
  // divisors in descending order.
  Time round = 0;
  for (Time cofactor = hyperperiod / target + 1;
       cofactor * nodes <= hyperperiod; ++cofactor) {
    if (hyperperiod % cofactor == 0) {
      round = hyperperiod / cofactor;
      break;
    }
  }
  if (round == 0) {
    throw std::invalid_argument(
        "snapSlotLengths: no TDMA round in [nodeCount, nodeCount*slotLength] "
        "divides the hyperperiod");
  }
  // Spread the snapped round as evenly as the tick grid allows.
  std::vector<Time> lengths(nodeCount, round / nodes);
  for (std::size_t i = 0; i < static_cast<std::size_t>(round % nodes); ++i) {
    lengths[i] += 1;
  }
  return lengths;
}

}  // namespace ides
