#include "tgen/benchmark_suite.h"

#include <cmath>
#include <stdexcept>

#include "core/initial_mapping.h"
#include "tgen/profile_presets.h"
#include "util/log.h"

namespace ides {

namespace {

/// Split `total` processes into graphs of about `graphSize`.
std::vector<std::size_t> splitIntoGraphs(std::size_t total,
                                         std::size_t graphSize) {
  std::vector<std::size_t> sizes;
  while (total > 0) {
    const std::size_t take = std::min(total, graphSize);
    // Avoid a tiny trailing graph: merge remainders under half size into
    // the previous graph.
    if (take < graphSize / 2 && !sizes.empty()) {
      sizes.back() += take;
    } else {
      sizes.push_back(take);
    }
    total -= take;
  }
  return sizes;
}

SystemModel buildModel(const SuiteConfig& cfg, const FutureProfile& profile,
                       Rng& rng) {
  // Slot lengths snapped so the TDMA round divides the hyperperiod
  // (= basePeriod — every graph period and tmin divide it) for every node
  // count; the paper's 10 x 20-tick layout is returned unchanged, while
  // --nodes 6 used to die in finalize because 6 x 20 does not divide 16000.
  SystemModel sys(makeUniformArchitecture(
      snapSlotLengths(cfg.nodeCount, cfg.slotLength, cfg.basePeriod),
      cfg.bytesPerTick, cfg.speedFactors));

  auto addApps = [&](AppKind kind, std::size_t totalProcs,
                     std::size_t graphSize, std::size_t appCount,
                     Time fixedPeriod) {
    // Existing base is split into several independently-delivered
    // applications (one graph each keeps them small, like successive
    // product increments); the current app is one application of several
    // graphs.
    std::size_t periodCursor = 0;
    for (std::size_t a = 0; a < appCount; ++a) {
      const ApplicationId app = sys.addApplication(
          std::string(toString(kind)) + std::to_string(a), kind);
      for (std::size_t size : splitIntoGraphs(totalProcs, graphSize)) {
        GraphGenConfig g = cfg.graphGen;
        g.processCount = size;
        const Time period =
            fixedPeriod > 0
                ? fixedPeriod
                : cfg.basePeriod /
                      cfg.periodDivisors[periodCursor++ %
                                         cfg.periodDivisors.size()];
        if (kind == AppKind::Future) {
          generateGraphFromDistributions(sys, app, period, period, g,
                                         profile.wcetDistribution,
                                         profile.messageSizeDistribution,
                                         rng);
        } else {
          generateGraph(sys, app, period, period, g, rng);
        }
      }
    }
  };

  // Existing base: one application per ~existingGraphSize processes, with
  // staggered release phases (see SuiteConfig::offsetPhases).
  {
    const std::vector<std::size_t> sizes =
        splitIntoGraphs(cfg.existingProcesses, cfg.existingGraphSize);
    std::size_t periodCursor = 0;
    const std::size_t phases = std::max<std::size_t>(1, cfg.offsetPhases);
    for (std::size_t a = 0; a < sizes.size(); ++a) {
      const ApplicationId app = sys.addApplication(
          "existing" + std::to_string(a), AppKind::Existing);
      GraphGenConfig g = cfg.graphGen;
      g.processCount = sizes[a];
      const Time period =
          cfg.basePeriod /
          cfg.periodDivisors[periodCursor++ % cfg.periodDivisors.size()];
      const Time offset =
          static_cast<Time>(a % phases) * period / static_cast<Time>(phases);
      generateGraph(sys, app, period, period - offset, g, rng, offset);
    }
  }

  // Current application: one application, several graphs.
  {
    const ApplicationId app = sys.addApplication("current", AppKind::Current);
    std::size_t periodCursor = 0;
    for (std::size_t size :
         splitIntoGraphs(cfg.currentProcesses, cfg.currentGraphSize)) {
      GraphGenConfig g = cfg.graphGen;
      g.processCount = size;
      const Time period =
          cfg.basePeriod /
          cfg.periodDivisors[periodCursor++ % cfg.periodDivisors.size()];
      generateGraph(sys, app, period, period, g, rng);
    }
  }

  // Candidate future applications (period = Tmin, matching the profile).
  addApps(AppKind::Future, cfg.futureProcesses, cfg.futureGraphSize,
          cfg.futureAppCount, cfg.tmin);

  sys.finalize();
  return sys;
}

}  // namespace

Suite buildSuite(const SuiteConfig& cfg, std::uint64_t seed) {
  if (cfg.basePeriod % cfg.tmin != 0) {
    throw std::invalid_argument("buildSuite: tmin must divide basePeriod");
  }

  // Derive the periodic needs of the most demanding future application.
  const DiscreteDistribution wcetDist = paperWcetDistribution();
  const DiscreteDistribution msgDist = paperMessageSizeDistribution();
  const double interNode =
      cfg.nodeCount <= 1
          ? 0.0
          : static_cast<double>(cfg.nodeCount - 1) /
                static_cast<double>(cfg.nodeCount);
  const Time tneed =
      cfg.tneedOverride > 0
          ? cfg.tneedOverride
          : static_cast<Time>(std::llround(
                static_cast<double>(cfg.futureProcesses) *
                wcetDist.expectedValue()));
  const std::int64_t bneed =
      cfg.bneedOverride > 0
          ? cfg.bneedOverride
          : std::max<std::int64_t>(
                1, static_cast<std::int64_t>(std::llround(
                       static_cast<double>(cfg.futureProcesses) *
                       cfg.graphGen.edgeDensity * interNode *
                       msgDist.expectedValue())));
  const FutureProfile profile = paperFutureProfile(cfg.tmin, tneed, bneed);

  for (int attempt = 0; attempt < cfg.maxBuildAttempts; ++attempt) {
    const std::uint64_t derived = seed + 0x9e3779b97f4a7c15ULL *
                                             static_cast<std::uint64_t>(
                                                 attempt);
    Rng rng(derived);
    SystemModel sys = buildModel(cfg, profile, rng);

    // A usable instance must freeze its existing base and admit an initial
    // mapping of the current application.
    const FrozenBase frozen = freezeExistingApplications(sys);
    if (!frozen.feasible) {
      IDES_LOG_AT(LogLevel::Info)
          << "buildSuite: existing base infeasible at seed " << derived;
      continue;
    }
    PlatformState state = frozen.state;
    if (!initialMapping(sys, state).feasible) {
      IDES_LOG_AT(LogLevel::Info)
          << "buildSuite: IM infeasible at seed " << derived;
      continue;
    }
    return Suite{std::move(sys), profile, derived, attempt + 1};
  }
  throw std::runtime_error("buildSuite: no feasible instance found");
}

}  // namespace ides
