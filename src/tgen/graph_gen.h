// Random process-graph generation (TGFF-style layered DAGs).
//
// The paper evaluates on randomly generated process graphs. We generate
// layered DAGs: processes are spread over layers, every non-root process
// gets at least one parent in an earlier layer (weak connectivity), and
// extra forward edges are added up to the requested density. Layering
// bounds the critical-path depth, which keeps the generated graphs
// schedulable within one period.
#pragma once

#include <cstdint>

#include "model/system_model.h"
#include "util/rng.h"

namespace ides {

struct GraphGenConfig {
  std::size_t processCount = 40;
  /// Average number of edges per process (>= 1.0 keeps the graph connected;
  /// the tree uses processCount - width edges, the rest are extra).
  double edgeDensity = 1.3;
  /// Processes per layer (controls depth: depth ~= processCount / width).
  std::size_t layerWidth = 8;
  /// Base WCET range on a speed-1.0 node.
  Time wcetMin = 20;
  Time wcetMax = 150;
  /// Per-node multiplicative jitter around speedFactor * base (+-fraction).
  double wcetNodeVariation = 0.25;
  /// Probability that a process is restricted to a strict subset of nodes.
  double restrictedMappingProb = 0.25;
  /// Fraction of nodes kept when restricted (at least 2 nodes).
  double restrictedFraction = 0.5;
  /// Message payload range in bytes.
  std::int64_t msgMin = 2;
  std::int64_t msgMax = 8;

  friend bool operator==(const GraphGenConfig&,
                         const GraphGenConfig&) = default;
};

/// Generate one process graph into `sys` (which must not be finalized).
/// Returns the new graph's id.
GraphId generateGraph(SystemModel& sys, ApplicationId app, Time period,
                      Time deadline, const GraphGenConfig& cfg, Rng& rng,
                      Time offset = 0);

/// Variant whose WCETs and message sizes are drawn from discrete
/// distributions instead of uniform ranges — used to instantiate *future*
/// applications that match a FutureProfile's histograms.
GraphId generateGraphFromDistributions(
    SystemModel& sys, ApplicationId app, Time period, Time deadline,
    const GraphGenConfig& cfg, const DiscreteDistribution& wcetDist,
    const DiscreteDistribution& msgDist, Rng& rng, Time offset = 0);

/// Slot lengths for `nodeCount` TDMA slots such that the round (their sum)
/// divides `hyperperiod`, staying as close as possible to the uniform round
/// `nodeCount * slotLength` without exceeding it. Lengths differ by at most
/// one tick across slots. A uniform layout that already divides the
/// hyperperiod is returned unchanged; otherwise the round is snapped to the
/// largest divisor of the hyperperiod that still gives every node a slot
/// (this is what lets `ides_cli --nodes 6` build: 6 slots of 20 make a
/// round of 120, which does not divide the 16000-tick hyperperiod, so the
/// round snaps to 100). Throws std::invalid_argument when the hyperperiod
/// cannot host one tick per node.
std::vector<Time> snapSlotLengths(std::size_t nodeCount, Time slotLength,
                                  Time hyperperiod);

}  // namespace ides
