#include "model/model_io.h"

#include <charconv>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "model/system_model.h"

namespace ides {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument("model line " + std::to_string(line) + ": " +
                              message);
}

/// "key=value" tokens separated by whitespace after the keyword.
std::unordered_map<std::string, std::string> parseFields(
    std::istringstream& ss, int line) {
  std::unordered_map<std::string, std::string> fields;
  std::string token;
  while (ss >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 > token.size()) {
      fail(line, "expected key=value, got '" + token + "'");
    }
    fields[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return fields;
}

std::string need(const std::unordered_map<std::string, std::string>& fields,
                 const char* key, int line) {
  const auto it = fields.find(key);
  if (it == fields.end()) {
    fail(line, std::string("missing field '") + key + "'");
  }
  return it->second;
}

std::int64_t parseInt(const std::string& s, int line, const char* what) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    fail(line, std::string("bad ") + what + " '" + s + "'");
  }
  return value;
}

double parseDouble(const std::string& s, int line, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (...) {
    fail(line, std::string("bad ") + what + " '" + s + "'");
  }
}

std::vector<std::string> splitList(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
}

AppKind parseKind(const std::string& s, int line) {
  if (s == "existing") return AppKind::Existing;
  if (s == "current") return AppKind::Current;
  if (s == "future") return AppKind::Future;
  fail(line, "unknown application kind '" + s + "'");
}

}  // namespace

SystemModel readModel(std::istream& is) {
  std::optional<SystemModel> sys;
  std::optional<ApplicationId> app;
  std::optional<GraphId> graph;
  // Processes of the current graph, by name.
  std::unordered_map<std::string, ProcessId> byName;

  std::string line;
  int lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    // Strip comments and skip blanks.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ss(line);
    std::string keyword;
    if (!(ss >> keyword)) continue;
    const auto fields = parseFields(ss, lineNo);

    if (keyword == "arch") {
      if (sys.has_value()) fail(lineNo, "duplicate arch line");
      const auto nodes =
          static_cast<std::size_t>(parseInt(need(fields, "nodes", lineNo),
                                            lineNo, "nodes"));
      const Time slot = parseInt(need(fields, "slot", lineNo), lineNo,
                                 "slot");
      const std::int64_t bpt = parseInt(
          need(fields, "bytes_per_tick", lineNo), lineNo, "bytes_per_tick");
      std::vector<double> speeds{1.0};
      if (const auto it = fields.find("speeds"); it != fields.end()) {
        speeds.clear();
        for (const std::string& s : splitList(it->second)) {
          speeds.push_back(parseDouble(s, lineNo, "speed"));
        }
      }
      try {
        sys.emplace(makeUniformArchitecture(nodes, slot, bpt, speeds));
      } catch (const std::exception& e) {
        fail(lineNo, e.what());
      }
    } else if (keyword == "app") {
      if (!sys.has_value()) fail(lineNo, "app before arch");
      app = sys->addApplication(need(fields, "name", lineNo),
                                parseKind(need(fields, "kind", lineNo),
                                          lineNo));
      graph.reset();
    } else if (keyword == "graph") {
      if (!app.has_value()) fail(lineNo, "graph before app");
      const Time period =
          parseInt(need(fields, "period", lineNo), lineNo, "period");
      Time deadline = kNoTime;
      Time offset = 0;
      if (const auto it = fields.find("deadline"); it != fields.end()) {
        deadline = parseInt(it->second, lineNo, "deadline");
      }
      if (const auto it = fields.find("offset"); it != fields.end()) {
        offset = parseInt(it->second, lineNo, "offset");
      }
      try {
        graph = sys->addGraph(*app, period, deadline, offset);
      } catch (const std::exception& e) {
        fail(lineNo, e.what());
      }
      byName.clear();
    } else if (keyword == "process") {
      if (!graph.has_value()) fail(lineNo, "process before graph");
      const std::string name = need(fields, "name", lineNo);
      std::vector<Time> wcet;
      for (const std::string& s :
           splitList(need(fields, "wcet", lineNo))) {
        wcet.push_back(s == "-" ? kNoTime : parseInt(s, lineNo, "wcet"));
      }
      try {
        const ProcessId pid = sys->addProcess(*graph, name, wcet);
        if (!byName.emplace(name, pid).second) {
          fail(lineNo, "duplicate process name '" + name + "' in graph");
        }
      } catch (const std::invalid_argument& e) {
        fail(lineNo, e.what());
      }
    } else if (keyword == "message") {
      if (!graph.has_value()) fail(lineNo, "message before graph");
      const auto src = byName.find(need(fields, "src", lineNo));
      const auto dst = byName.find(need(fields, "dst", lineNo));
      if (src == byName.end() || dst == byName.end()) {
        fail(lineNo, "message references unknown process");
      }
      try {
        sys->addMessage(*graph, src->second, dst->second,
                        parseInt(need(fields, "bytes", lineNo), lineNo,
                                 "bytes"));
      } catch (const std::invalid_argument& e) {
        fail(lineNo, e.what());
      }
    } else {
      fail(lineNo, "unknown keyword '" + keyword + "'");
    }
  }
  if (!sys.has_value()) {
    throw std::invalid_argument("model: no arch line found");
  }
  try {
    sys->finalize();
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("model finalize: ") + e.what());
  }
  return std::move(*sys);
}

SystemModel modelFromString(const std::string& text) {
  std::istringstream is(text);
  return readModel(is);
}

void writeModel(std::ostream& os, const SystemModel& sys) {
  const Architecture& arch = sys.architecture();
  os << "# ides model v1\n";
  os << "arch nodes=" << arch.nodeCount() << " slot="
     << arch.bus().slot(0).length << " bytes_per_tick="
     << arch.bus().bytesPerTick() << " speeds=";
  for (std::size_t i = 0; i < arch.nodeCount(); ++i) {
    if (i > 0) os << ',';
    os << arch.node(NodeId{static_cast<std::int32_t>(i)}).speedFactor;
  }
  os << '\n';
  for (const Application& app : sys.applications()) {
    os << "app name=" << app.name << " kind=" << toString(app.kind) << '\n';
    for (const GraphId gid : app.graphs) {
      const ProcessGraph& g = sys.graph(gid);
      os << "graph period=" << g.period << " deadline=" << g.deadline;
      if (g.offset != 0) os << " offset=" << g.offset;
      os << '\n';
      for (const ProcessId pid : g.processes) {
        const Process& p = sys.process(pid);
        os << "process name=" << p.name << " wcet=";
        for (std::size_t n = 0; n < p.wcet.size(); ++n) {
          if (n > 0) os << ',';
          if (p.wcet[n] == kNoTime) {
            os << '-';
          } else {
            os << p.wcet[n];
          }
        }
        os << '\n';
      }
      for (const MessageId mid : g.messages) {
        const Message& m = sys.message(mid);
        os << "message src=" << sys.process(m.src).name
           << " dst=" << sys.process(m.dst).name << " bytes=" << m.sizeBytes
           << '\n';
      }
    }
  }
}

std::string modelToString(const SystemModel& sys) {
  std::ostringstream os;
  writeModel(os, sys);
  return os.str();
}

}  // namespace ides
