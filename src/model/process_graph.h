// A process graph: a DAG of processes with a period, a deadline, and a
// release offset (phase).
//
// Instance k of the graph is released at k*period + offset and must finish
// by k*period + offset + deadline. The paper requires deadline <= period so
// consecutive instances never overlap; we additionally require
// offset + deadline <= period so every instance's window stays inside its
// own period (and hence inside the hyperperiod). Offsets model the phases
// time-triggered integrators assign when successive applications are added
// to a running system — they are what keeps an incrementally-grown schedule
// from piling every application onto the start of the cycle.
#pragma once

#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace ides {

struct ProcessGraph {
  GraphId id;
  ApplicationId application;
  Time period = 0;
  Time deadline = 0;
  Time offset = 0;  ///< release phase within the period
  std::vector<ProcessId> processes;
  std::vector<MessageId> messages;

  /// Absolute release of instance k.
  [[nodiscard]] Time releaseOf(std::int64_t k) const {
    return k * period + offset;
  }
  /// Absolute deadline of instance k.
  [[nodiscard]] Time deadlineOf(std::int64_t k) const {
    return k * period + offset + deadline;
  }
};

}  // namespace ides
