// SystemModel: the complete design instance.
//
// Owns the architecture and all applications/graphs/processes/messages in
// dense id-indexed storage, plus the derived structures every algorithm
// needs: per-process in/out message lists, per-graph topological order, and
// the hyperperiod. Build incrementally via the add* methods, then call
// finalize() once; finalize validates the whole model and freezes it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/architecture.h"
#include "model/application.h"
#include "model/message.h"
#include "model/process.h"
#include "model/process_graph.h"

namespace ides {

class SystemModel {
 public:
  explicit SystemModel(Architecture arch);

  // ---- construction ------------------------------------------------------
  ApplicationId addApplication(std::string name, AppKind kind);
  /// deadline defaults to period - offset (requires offset + deadline <=
  /// period so every instance's window lies inside its own period).
  GraphId addGraph(ApplicationId app, Time period, Time deadline = kNoTime,
                   Time offset = 0);
  /// wcet must have one entry per node (kNoTime = not allowed).
  ProcessId addProcess(GraphId graph, std::string name,
                       std::vector<Time> wcet);
  MessageId addMessage(GraphId graph, ProcessId src, ProcessId dst,
                       std::int64_t sizeBytes);

  /// Validate and freeze. Throws std::invalid_argument on a malformed model
  /// (cyclic graph, empty WCET set, deadline > period, hyperperiod not a
  /// multiple of the TDMA round, message larger than its possible slots...).
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  // ---- access ------------------------------------------------------------
  [[nodiscard]] const Architecture& architecture() const { return arch_; }
  [[nodiscard]] const std::vector<Application>& applications() const {
    return applications_;
  }
  [[nodiscard]] const Application& application(ApplicationId id) const {
    return applications_.at(id.index());
  }
  [[nodiscard]] const std::vector<ProcessGraph>& graphs() const {
    return graphs_;
  }
  [[nodiscard]] const ProcessGraph& graph(GraphId id) const {
    return graphs_.at(id.index());
  }
  [[nodiscard]] const std::vector<Process>& processes() const {
    return processes_;
  }
  [[nodiscard]] const Process& process(ProcessId id) const {
    return processes_.at(id.index());
  }
  [[nodiscard]] const std::vector<Message>& messages() const {
    return messages_;
  }
  [[nodiscard]] const Message& message(MessageId id) const {
    return messages_.at(id.index());
  }

  /// Messages consumed / produced by a process.
  [[nodiscard]] const std::vector<MessageId>& inputsOf(ProcessId p) const {
    return inputs_.at(p.index());
  }
  [[nodiscard]] const std::vector<MessageId>& outputsOf(ProcessId p) const {
    return outputs_.at(p.index());
  }

  /// Topological order of a graph's processes (valid after finalize()).
  [[nodiscard]] const std::vector<ProcessId>& topoOrder(GraphId g) const {
    return topoOrder_.at(g.index());
  }

  /// lcm of all graph periods (valid after finalize()).
  [[nodiscard]] Time hyperperiod() const { return hyperperiod_; }

  /// Number of instances of graph g inside the hyperperiod.
  [[nodiscard]] std::int64_t instanceCount(GraphId g) const {
    return hyperperiod_ / graphs_[g.index()].period;
  }

  /// All processes of applications of the given kind.
  [[nodiscard]] std::vector<ProcessId> processesOfKind(AppKind kind) const;
  /// All graphs of applications of the given kind.
  [[nodiscard]] std::vector<GraphId> graphsOfKind(AppKind kind) const;

  /// Applications of the given kind.
  [[nodiscard]] std::vector<ApplicationId> applicationsOfKind(
      AppKind kind) const;

  /// Total WCET demand of the current application if every process ran on
  /// its fastest allowed node (a lower bound used in reporting).
  [[nodiscard]] Time minDemandOfKind(AppKind kind) const;

 private:
  void requireMutable() const;
  void requireFinalized() const;

  Architecture arch_;
  std::vector<Application> applications_;
  std::vector<ProcessGraph> graphs_;
  std::vector<Process> processes_;
  std::vector<Message> messages_;
  std::vector<std::vector<MessageId>> inputs_;   // per process
  std::vector<std::vector<MessageId>> outputs_;  // per process
  std::vector<std::vector<ProcessId>> topoOrder_;  // per graph
  Time hyperperiod_ = 0;
  bool finalized_ = false;
};

}  // namespace ides
