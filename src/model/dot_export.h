// Graphviz DOT export of process graphs and mappings.
//
// `dot -Tpng` of the output gives the usual co-synthesis paper figure: one
// cluster per process graph, nodes annotated with WCETs, edges with message
// sizes; when a mapping is supplied, processes are colored by the node they
// were mapped to.
#pragma once

#include <iosfwd>
#include <string>

#include "util/ids.h"

namespace ides {

class SystemModel;
class MappingSolution;

struct DotOptions {
  /// Restrict to one application (invalid id = whole system).
  ApplicationId application;
  /// Color processes by mapped node (requires mapping).
  const MappingSolution* mapping = nullptr;
  /// Annotate processes with their WCET vector.
  bool showWcets = true;
};

void writeDot(std::ostream& os, const SystemModel& sys,
              const DotOptions& options = {});

std::string toDot(const SystemModel& sys, const DotOptions& options = {});

}  // namespace ides
