#include "model/graph_algos.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "model/system_model.h"

namespace ides {

std::vector<ProcessId> topologicalOrder(const SystemModel& sys, GraphId g) {
  const ProcessGraph& graph = sys.graph(g);
  // Local dense indices for this graph's processes.
  std::unordered_map<ProcessId, std::size_t> local;
  local.reserve(graph.processes.size());
  for (std::size_t i = 0; i < graph.processes.size(); ++i) {
    local.emplace(graph.processes[i], i);
  }
  std::vector<int> inDegree(graph.processes.size(), 0);
  for (MessageId m : graph.messages) {
    inDegree[local.at(sys.message(m).dst)] += 1;
  }
  std::vector<ProcessId> order;
  order.reserve(graph.processes.size());
  // Deterministic Kahn: scan in process-id order; the frontier is kept
  // sorted by insertion, which is id order because processes are added in
  // id order.
  std::vector<ProcessId> frontier;
  for (std::size_t i = 0; i < graph.processes.size(); ++i) {
    if (inDegree[i] == 0) frontier.push_back(graph.processes[i]);
  }
  std::size_t head = 0;
  while (head < frontier.size()) {
    const ProcessId p = frontier[head++];
    order.push_back(p);
    for (MessageId m : sys.outputsOf(p)) {
      const ProcessId dst = sys.message(m).dst;
      if (--inDegree[local.at(dst)] == 0) frontier.push_back(dst);
    }
  }
  if (order.size() != graph.processes.size()) {
    throw std::invalid_argument("topologicalOrder: graph has a cycle");
  }
  return order;
}

namespace {

/// Estimated worst-case latency of one message on the TDMA bus: actual
/// transmission plus an expected half round of waiting for the sender slot.
double messageLatencyEstimate(const SystemModel& sys, const Message& msg) {
  const TdmaBus& bus = sys.architecture().bus();
  return static_cast<double>(bus.transmissionTime(msg.sizeBytes)) +
         static_cast<double>(bus.roundLength()) / 2.0;
}

}  // namespace

std::vector<double> criticalPathPriorities(const SystemModel& sys, GraphId g) {
  const ProcessGraph& graph = sys.graph(g);
  std::unordered_map<ProcessId, std::size_t> local;
  local.reserve(graph.processes.size());
  for (std::size_t i = 0; i < graph.processes.size(); ++i) {
    local.emplace(graph.processes[i], i);
  }
  const std::vector<ProcessId> order = sys.topoOrder(g);
  std::vector<double> prio(graph.processes.size(), 0.0);
  // Sweep in reverse topological order: priority(p) = wcet(p) + max over
  // successors of (msg estimate + priority(succ)).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const ProcessId p = *it;
    const std::size_t pi = local.at(p);
    double best = 0.0;
    for (MessageId m : sys.outputsOf(p)) {
      const Message& msg = sys.message(m);
      best = std::max(best, messageLatencyEstimate(sys, msg) +
                                prio[local.at(msg.dst)]);
    }
    prio[pi] = sys.process(p).averageWcet() + best;
  }
  return prio;
}

double criticalPathLength(const SystemModel& sys, GraphId g) {
  const std::vector<double> prio = criticalPathPriorities(sys, g);
  double best = 0.0;
  for (double v : prio) best = std::max(best, v);
  return best;
}

}  // namespace ides
