// System statistics: demand and utilization figures for reporting.
//
// Everything here is derived from the model (WCETs, periods, instance
// counts) and, optionally, a platform state — no scheduling is performed.
// Used by the CLI, the examples, and anyone sizing an architecture.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "model/application.h"
#include "util/ids.h"
#include "util/time.h"

namespace ides {

class SystemModel;
class PlatformState;

struct SystemStats {
  Time hyperperiod = 0;
  /// Σ over process instances of mean WCET (expected processor demand per
  /// hyperperiod) per application kind.
  double demandExisting = 0.0;
  double demandCurrent = 0.0;
  double demandFuture = 0.0;
  /// Expected processor utilization (mean-WCET demand / total capacity).
  double utilization = 0.0;  // existing + current
  /// Expected bus demand per hyperperiod in ticks (inter-node messages,
  /// probability-weighted by a random uniform mapping) and utilization.
  double busDemandTicks = 0.0;
  double busUtilization = 0.0;
  std::size_t processCount = 0;
  std::size_t messageCount = 0;
  std::size_t graphCount = 0;
};

/// Demand/utilization from the model alone.
SystemStats computeStats(const SystemModel& sys);

/// Per-node occupancy percentages of a concrete platform state.
std::vector<double> nodeOccupancyPercent(const PlatformState& state);

/// Multi-line report.
std::string statsReport(const SystemModel& sys);

}  // namespace ides
