#include "model/dot_export.h"

#include <ostream>
#include <sstream>

#include "model/system_model.h"
#include "sched/mapping.h"

namespace ides {

namespace {

// A qualitative palette; node i of the architecture gets color i (cycled).
constexpr const char* kPalette[] = {
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6",
    "#ffff99", "#1f78b4", "#33a02c", "#e31a1c", "#ff7f00",
};

std::string wcetLabel(const Process& p) {
  std::ostringstream os;
  os << "\\n[";
  bool first = true;
  for (Time t : p.wcet) {
    if (!first) os << ' ';
    if (t == kNoTime) {
      os << '-';
    } else {
      os << t;
    }
    first = false;
  }
  os << ']';
  return os.str();
}

}  // namespace

void writeDot(std::ostream& os, const SystemModel& sys,
              const DotOptions& options) {
  os << "digraph system {\n"
     << "  rankdir=TB;\n"
     << "  node [shape=ellipse, style=filled, fillcolor=white];\n";
  for (const Application& app : sys.applications()) {
    if (options.application.valid() && app.id != options.application) {
      continue;
    }
    for (const GraphId gid : app.graphs) {
      const ProcessGraph& g = sys.graph(gid);
      os << "  subgraph cluster_g" << gid.value << " {\n"
         << "    label=\"" << app.name << " / G" << gid.value
         << " (T=" << g.period << ", D=" << g.deadline;
      if (g.offset != 0) os << ", O=" << g.offset;
      os << ")\";\n";
      for (const ProcessId pid : g.processes) {
        const Process& p = sys.process(pid);
        os << "    p" << pid.value << " [label=\"" << p.name;
        if (options.showWcets) os << wcetLabel(p);
        os << '"';
        if (options.mapping != nullptr) {
          const NodeId n = options.mapping->nodeOf(pid);
          if (n.valid()) {
            os << ", fillcolor=\""
               << kPalette[n.index() % std::size(kPalette)] << '"';
          }
        }
        os << "];\n";
      }
      for (const MessageId mid : g.messages) {
        const Message& m = sys.message(mid);
        os << "    p" << m.src.value << " -> p" << m.dst.value
           << " [label=\"" << m.sizeBytes << "B\"];\n";
      }
      os << "  }\n";
    }
  }
  os << "}\n";
}

std::string toDot(const SystemModel& sys, const DotOptions& options) {
  std::ostringstream os;
  writeDot(os, sys, options);
  return os.str();
}

}  // namespace ides
