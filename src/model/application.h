// An application: a set of process graphs delivered as one unit of
// functionality. The incremental design process distinguishes the frozen
// existing applications, the current application being mapped, and future
// applications that do not exist yet.
#pragma once

#include <string>
#include <vector>

#include "util/ids.h"

namespace ides {

enum class AppKind {
  Existing,  ///< Already implemented; mapping and schedule are frozen.
  Current,   ///< Being mapped/scheduled now.
  Future,    ///< Hypothetical future increment (used by FutureFit).
};

const char* toString(AppKind kind);

struct Application {
  ApplicationId id;
  std::string name;
  AppKind kind = AppKind::Current;
  std::vector<GraphId> graphs;
};

}  // namespace ides
