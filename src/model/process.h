// A process: the schedulable unit of computation.
//
// Each process belongs to exactly one process graph, and carries a WCET per
// node of the architecture. kNoTime marks nodes the process cannot be mapped
// to ("potential set of nodes" in the paper's problem formulation).
#pragma once

#include <string>
#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace ides {

struct Process {
  ProcessId id;
  GraphId graph;
  std::string name;
  /// wcet[n] = worst-case execution time on node n; kNoTime if not allowed.
  std::vector<Time> wcet;

  [[nodiscard]] bool allowedOn(NodeId node) const {
    return node.index() < wcet.size() && wcet[node.index()] != kNoTime;
  }
  [[nodiscard]] Time wcetOn(NodeId node) const { return wcet[node.index()]; }

  /// Mean WCET over the allowed nodes (list-scheduling priority estimate).
  [[nodiscard]] double averageWcet() const {
    double sum = 0.0;
    int count = 0;
    for (Time t : wcet) {
      if (t != kNoTime) {
        sum += static_cast<double>(t);
        ++count;
      }
    }
    return count == 0 ? 0.0 : sum / count;
  }

  /// Allowed nodes, in node order.
  [[nodiscard]] std::vector<NodeId> allowedNodes() const {
    std::vector<NodeId> out;
    for (std::size_t n = 0; n < wcet.size(); ++n) {
      if (wcet[n] != kNoTime) out.push_back(NodeId{static_cast<int>(n)});
    }
    return out;
  }
};

}  // namespace ides
