// A message: data dependency between two processes of the same graph.
//
// If source and destination end up on the same node the message is a local
// memory hand-off and takes no bus time; otherwise it is scheduled into the
// TDMA slot of the source's node.
#pragma once

#include <cstdint>

#include "util/ids.h"

namespace ides {

struct Message {
  MessageId id;
  GraphId graph;
  ProcessId src;
  ProcessId dst;
  std::int64_t sizeBytes = 0;
};

}  // namespace ides
