#include "model/system_model.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "model/graph_algos.h"

namespace ides {

const char* toString(AppKind kind) {
  switch (kind) {
    case AppKind::Existing: return "existing";
    case AppKind::Current: return "current";
    case AppKind::Future: return "future";
  }
  return "?";
}

SystemModel::SystemModel(Architecture arch) : arch_(std::move(arch)) {}

void SystemModel::requireMutable() const {
  if (finalized_) {
    throw std::logic_error("SystemModel: mutation after finalize()");
  }
}

void SystemModel::requireFinalized() const {
  if (!finalized_) {
    throw std::logic_error("SystemModel: query before finalize()");
  }
}

ApplicationId SystemModel::addApplication(std::string name, AppKind kind) {
  requireMutable();
  const ApplicationId id{static_cast<std::int32_t>(applications_.size())};
  applications_.push_back({id, std::move(name), kind, {}});
  return id;
}

GraphId SystemModel::addGraph(ApplicationId app, Time period, Time deadline,
                              Time offset) {
  requireMutable();
  if (period <= 0) throw std::invalid_argument("addGraph: period <= 0");
  if (offset < 0 || offset >= period) {
    throw std::invalid_argument("addGraph: need 0 <= offset < period");
  }
  if (deadline == kNoTime) deadline = period - offset;
  if (deadline <= 0 || offset + deadline > period) {
    throw std::invalid_argument(
        "addGraph: need 0 < deadline and offset + deadline <= period");
  }
  const GraphId id{static_cast<std::int32_t>(graphs_.size())};
  graphs_.push_back({id, app, period, deadline, offset, {}, {}});
  applications_.at(app.index()).graphs.push_back(id);
  return id;
}

ProcessId SystemModel::addProcess(GraphId graph, std::string name,
                                  std::vector<Time> wcet) {
  requireMutable();
  if (wcet.size() != arch_.nodeCount()) {
    throw std::invalid_argument("addProcess: wcet arity != node count");
  }
  bool anyAllowed = false;
  for (Time t : wcet) {
    if (t == kNoTime) continue;
    if (t <= 0) throw std::invalid_argument("addProcess: wcet <= 0");
    anyAllowed = true;
  }
  if (!anyAllowed) {
    throw std::invalid_argument("addProcess: no allowed node");
  }
  const ProcessId id{static_cast<std::int32_t>(processes_.size())};
  processes_.push_back({id, graph, std::move(name), std::move(wcet)});
  graphs_.at(graph.index()).processes.push_back(id);
  inputs_.emplace_back();
  outputs_.emplace_back();
  return id;
}

MessageId SystemModel::addMessage(GraphId graph, ProcessId src, ProcessId dst,
                                  std::int64_t sizeBytes) {
  requireMutable();
  if (sizeBytes <= 0) throw std::invalid_argument("addMessage: size <= 0");
  if (src == dst) throw std::invalid_argument("addMessage: self loop");
  const Process& ps = processes_.at(src.index());
  const Process& pd = processes_.at(dst.index());
  if (ps.graph != graph || pd.graph != graph) {
    throw std::invalid_argument("addMessage: endpoints not in graph");
  }
  const MessageId id{static_cast<std::int32_t>(messages_.size())};
  messages_.push_back({id, graph, src, dst, sizeBytes});
  graphs_.at(graph.index()).messages.push_back(id);
  outputs_.at(src.index()).push_back(id);
  inputs_.at(dst.index()).push_back(id);
  return id;
}

void SystemModel::finalize() {
  requireMutable();
  if (graphs_.empty()) throw std::invalid_argument("finalize: no graphs");

  // Hyperperiod and bus alignment.
  hyperperiod_ = 1;
  for (const ProcessGraph& g : graphs_) {
    hyperperiod_ = std::lcm(hyperperiod_, g.period);
  }
  const Time round = arch_.bus().roundLength();
  if (hyperperiod_ % round != 0) {
    throw std::invalid_argument(
        "finalize: hyperperiod must be a multiple of the TDMA round length");
  }

  // Messages must fit into the slot of any node their source may map to;
  // otherwise some mappings would be structurally unschedulable in a way
  // the strategies cannot repair.
  const TdmaBus& bus = arch_.bus();
  for (const Message& m : messages_) {
    const Process& src = processes_.at(m.src.index());
    for (NodeId n : src.allowedNodes()) {
      const std::size_t slot = bus.slotOfNode(n);
      if (m.sizeBytes > bus.slotCapacityBytes(slot)) {
        throw std::invalid_argument(
            "finalize: message larger than a potential sender slot");
      }
    }
  }

  // finalize() must run before topologicalOrder (which calls topoOrder_ via
  // criticalPathPriorities only later); compute topo orders directly here.
  finalized_ = true;  // topologicalOrder uses read-only accessors only
  topoOrder_.clear();
  topoOrder_.reserve(graphs_.size());
  try {
    for (const ProcessGraph& g : graphs_) {
      if (g.processes.empty()) {
        throw std::invalid_argument("finalize: empty graph");
      }
      topoOrder_.push_back(topologicalOrder(*this, g.id));
    }
  } catch (...) {
    finalized_ = false;
    throw;
  }
}

std::vector<ProcessId> SystemModel::processesOfKind(AppKind kind) const {
  std::vector<ProcessId> out;
  for (const Application& app : applications_) {
    if (app.kind != kind) continue;
    for (GraphId g : app.graphs) {
      const ProcessGraph& graph = graphs_.at(g.index());
      out.insert(out.end(), graph.processes.begin(), graph.processes.end());
    }
  }
  return out;
}

std::vector<GraphId> SystemModel::graphsOfKind(AppKind kind) const {
  std::vector<GraphId> out;
  for (const Application& app : applications_) {
    if (app.kind != kind) continue;
    out.insert(out.end(), app.graphs.begin(), app.graphs.end());
  }
  return out;
}

std::vector<ApplicationId> SystemModel::applicationsOfKind(
    AppKind kind) const {
  std::vector<ApplicationId> out;
  for (const Application& app : applications_) {
    if (app.kind == kind) out.push_back(app.id);
  }
  return out;
}

Time SystemModel::minDemandOfKind(AppKind kind) const {
  requireFinalized();
  Time demand = 0;
  for (ProcessId p : processesOfKind(kind)) {
    const Process& proc = processes_.at(p.index());
    Time best = kTimeMax;
    for (Time t : proc.wcet) {
      if (t != kNoTime) best = std::min(best, t);
    }
    const std::int64_t instances = instanceCount(proc.graph);
    demand += best * instances;
  }
  return demand;
}

}  // namespace ides
