// Graph algorithms over process graphs.
#pragma once

#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace ides {

class SystemModel;

/// Kahn topological order of the processes of graph g.
/// Throws std::invalid_argument if the graph has a cycle.
std::vector<ProcessId> topologicalOrder(const SystemModel& sys, GraphId g);

/// Partial-critical-path priority of every process of graph g: the longest
/// path from the process to any sink, where a process contributes its mean
/// WCET over allowed nodes and a message contributes its worst-case TDMA
/// latency estimate (transmission time + half a round of slot waiting).
/// This is the priority function of the HCP list scheduler.
std::vector<double> criticalPathPriorities(const SystemModel& sys, GraphId g);

/// Longest chain of processes (by mean WCET, no comm) — a lower bound on
/// graph makespan used in validation and reporting.
double criticalPathLength(const SystemModel& sys, GraphId g);

}  // namespace ides
