// Plain-text system description format ("ides model v1").
//
// Lets users define architectures and applications in a text file instead
// of C++ — the ides_cli can then map/schedule hand-written systems. The
// format is line-oriented, TGFF-in-spirit:
//
//   # comment
//   arch nodes=2 slot=10 bytes_per_tick=1 speeds=1.0,1.0
//   app name=legacy kind=existing
//   graph period=200 deadline=200 offset=0
//   process name=E0 wcet=25,-
//   process name=E1 wcet=-,25
//   message src=E0 dst=E1 bytes=4
//   app name=new kind=current
//   graph period=200
//   process name=P1 wcet=10,-
//   ...
//
// Rules: exactly one `arch` line, first; `graph` lines attach to the most
// recent `app`; `process`/`message` lines to the most recent `graph`;
// WCET vectors use '-' for disallowed nodes; processes are referenced by
// name within their graph. `deadline` and `offset` are optional. The
// parser finalizes the model, so the result is ready to schedule.
#pragma once

#include <iosfwd>
#include <string>

namespace ides {

class SystemModel;

/// Parse a model from a stream. Throws std::invalid_argument with a
/// line-numbered message on any syntax or semantic error (including
/// finalize() failures such as cyclic graphs).
SystemModel readModel(std::istream& is);
SystemModel modelFromString(const std::string& text);

/// Write a model in the same format (round-trips through readModel).
void writeModel(std::ostream& os, const SystemModel& sys);
std::string modelToString(const SystemModel& sys);

}  // namespace ides
