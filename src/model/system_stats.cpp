#include "model/system_stats.h"

#include <sstream>

#include "model/system_model.h"
#include "sched/platform_state.h"

namespace ides {

SystemStats computeStats(const SystemModel& sys) {
  SystemStats stats;
  stats.hyperperiod = sys.hyperperiod();
  stats.processCount = sys.processes().size();
  stats.messageCount = sys.messages().size();
  stats.graphCount = sys.graphs().size();

  auto demandOf = [&](AppKind kind) {
    double demand = 0.0;
    for (ProcessId p : sys.processesOfKind(kind)) {
      const Process& proc = sys.process(p);
      demand += proc.averageWcet() *
                static_cast<double>(sys.instanceCount(proc.graph));
    }
    return demand;
  };
  stats.demandExisting = demandOf(AppKind::Existing);
  stats.demandCurrent = demandOf(AppKind::Current);
  stats.demandFuture = demandOf(AppKind::Future);

  const double capacity =
      static_cast<double>(sys.architecture().nodeCount()) *
      static_cast<double>(sys.hyperperiod());
  stats.utilization =
      capacity > 0.0
          ? (stats.demandExisting + stats.demandCurrent) / capacity
          : 0.0;

  // Expected bus demand: a message crosses nodes with probability
  // (n-1)/n under a uniform random mapping of distinct endpoints.
  const TdmaBus& bus = sys.architecture().bus();
  const double n = static_cast<double>(sys.architecture().nodeCount());
  const double interNode = n <= 1.0 ? 0.0 : (n - 1.0) / n;
  for (const Message& m : sys.messages()) {
    const AppKind kind =
        sys.application(sys.graph(m.graph).application).kind;
    if (kind == AppKind::Future) continue;
    stats.busDemandTicks +=
        static_cast<double>(bus.transmissionTime(m.sizeBytes)) * interNode *
        static_cast<double>(sys.instanceCount(m.graph));
  }
  stats.busUtilization =
      sys.hyperperiod() > 0
          ? stats.busDemandTicks / static_cast<double>(sys.hyperperiod())
          : 0.0;
  return stats;
}

std::vector<double> nodeOccupancyPercent(const PlatformState& state) {
  std::vector<double> out;
  out.reserve(state.nodeCount());
  for (std::size_t i = 0; i < state.nodeCount(); ++i) {
    const Time busy =
        state.nodeBusy(NodeId{static_cast<std::int32_t>(i)}).totalLength();
    out.push_back(100.0 * static_cast<double>(busy) /
                  static_cast<double>(state.horizon()));
  }
  return out;
}

std::string statsReport(const SystemModel& sys) {
  const SystemStats s = computeStats(sys);
  std::ostringstream os;
  os << "system: " << sys.architecture().nodeCount() << " nodes, "
     << s.graphCount << " graphs, " << s.processCount << " processes, "
     << s.messageCount << " messages\n";
  os << "hyperperiod: " << s.hyperperiod << " ticks ("
     << sys.hyperperiod() / sys.architecture().bus().roundLength()
     << " TDMA rounds)\n";
  os << "expected demand/hyperperiod [ticks]: existing "
     << static_cast<long long>(s.demandExisting) << ", current "
     << static_cast<long long>(s.demandCurrent) << ", future "
     << static_cast<long long>(s.demandFuture) << '\n';
  os << "expected processor utilization (existing+current): "
     << static_cast<int>(s.utilization * 100.0 + 0.5) << "%\n";
  os << "expected bus utilization: "
     << static_cast<int>(s.busUtilization * 100.0 + 0.5) << "%\n";
  return os.str();
}

}  // namespace ides
