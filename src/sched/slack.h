// Slack extraction: the free capacity of a platform state.
//
// The design metrics of the paper operate on slack only: C1 packs the
// hypothetical future application into the free intervals; C2 measures how
// the free time is distributed over Tmin windows. SlackInfo is the common
// snapshot both metrics consume.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/platform_state.h"
#include "util/interval.h"

namespace ides {

struct SlackInfo {
  Time horizon = 0;
  std::int64_t busBytesPerTick = 1;

  /// Free processor intervals per node within [0, horizon).
  std::vector<IntervalSet> nodeFree;

  /// One entry per TDMA slot occurrence with free room, in time order.
  /// `start` is the first free tick of the occurrence (transmissions pack
  /// from the front of the slot), so [start, start+freeTicks) is a
  /// contiguous free bus window usable only by the slot's owner node.
  struct BusChunk {
    std::size_t slotIndex = 0;
    std::int64_t round = 0;
    Time start = 0;
    Time freeTicks = 0;
  };
  std::vector<BusChunk> busChunks;

  [[nodiscard]] Time totalNodeSlack() const;
  [[nodiscard]] Time totalBusFreeTicks() const;
  [[nodiscard]] std::int64_t totalBusFreeBytes() const {
    return totalBusFreeTicks() * busBytesPerTick;
  }

  /// Free processor ticks of one node inside [winStart, winEnd).
  [[nodiscard]] Time nodeSlackInWindow(std::size_t nodeIndex, Time winStart,
                                       Time winEnd) const;
  /// Free bus ticks inside [winStart, winEnd) over all slots.
  [[nodiscard]] Time busSlackInWindow(Time winStart, Time winEnd) const;
};

/// Snapshot the slack of a platform state.
SlackInfo extractSlack(const PlatformState& state);

/// Snapshot into `info`, reusing its buffers (node interval sets, bus chunk
/// list). The evaluation hot path extracts slack once per candidate; this
/// variant keeps it allocation-free after warm-up (see EvalContext).
void extractSlackInto(const PlatformState& state, SlackInfo& info);

}  // namespace ides
