// Static cyclic list scheduler with slack (gap) insertion.
//
// Schedules a set of process graphs — every instance inside the hyperperiod —
// onto a PlatformState that may already contain the frozen schedule of the
// existing applications. Placement only ever inserts into free gaps, so the
// paper's requirement (a) "no modifications are performed to the existing
// applications" holds by construction.
//
// Two modes:
//  * mapping mode  — every process's node is dictated by a MappingSolution
//    (used when evaluating a candidate solution inside MH/SA);
//  * HCP mode      — the scheduler also chooses the node, picking for each
//    ready process the allowed node with the earliest finish time. With the
//    partial-critical-path priority this is the Heterogeneous Critical Path
//    construction of Jorgensen & Madsen (CODES'97) that the paper's Initial
//    Mapping (IM) starts from.
//
// Messages between processes on different nodes are scheduled into the TDMA
// slot of the sender's node at destination-scheduling time; same-node
// messages cost no bus time.
#pragma once

#include <vector>

#include "sched/mapping.h"
#include "sched/platform_state.h"
#include "sched/schedule.h"
#include "util/ids.h"

namespace ides {

class SystemModel;

struct ScheduleRequest {
  /// Graphs to schedule (normally all graphs of one application).
  std::vector<GraphId> graphs;
  /// Node assignment + hints. Required in mapping mode. In HCP mode, if
  /// non-null, hints are honored and any process whose entry already names
  /// a valid node is pinned to it (HCP chooses nodes only for the rest).
  const MappingSolution* mapping = nullptr;
  /// HCP mode: scheduler chooses nodes (earliest-finish-time).
  bool chooseNodes = false;
  /// Optional precomputed priorities, one vector per entry of `graphs`
  /// (criticalPathPriorities). Strategies precompute these once per run to
  /// keep the evaluation inner loop cheap.
  const std::vector<std::vector<double>>* priorities = nullptr;
};

struct ScheduleOutcome {
  /// Every process/message instance was placed inside the horizon.
  bool placed = false;
  /// placed, and every graph instance met its deadline.
  bool feasible = false;
  int deadlineMisses = 0;
  /// Sum over process instances of max(0, end - absolute deadline).
  Time totalLateness = 0;
  /// Entries created by this call only (not the frozen baseline).
  Schedule schedule;
  /// Node chosen for every scheduled process (copy of the input mapping in
  /// mapping mode, HCP choices otherwise).
  MappingSolution mapping;
};

/// Schedule `req.graphs` into `state`. On success the state contains the new
/// occupancy; if the outcome is not `placed`, the state is partially updated
/// and must be discarded by the caller (evaluations always work on copies).
ScheduleOutcome scheduleGraphs(const SystemModel& sys,
                               const ScheduleRequest& req,
                               PlatformState& state);

}  // namespace ides
