// Static cyclic list scheduler with slack (gap) insertion.
//
// Schedules process graphs — every instance inside the hyperperiod — onto a
// PlatformState that may already contain the frozen schedule of the existing
// applications. Placement only ever inserts into free gaps, so the paper's
// requirement (a) "no modifications are performed to the existing
// applications" holds by construction.
//
// Two modes:
//  * mapping mode  — every process's node is dictated by a MappingSolution
//    (used when evaluating a candidate solution inside MH/SA);
//  * HCP mode      — the scheduler also chooses the node, picking for each
//    ready process the allowed node with the earliest finish time. With the
//    partial-critical-path priority this is the Heterogeneous Critical Path
//    construction of Jorgensen & Madsen (CODES'97) that the paper's Initial
//    Mapping (IM) starts from.
//
// Graphs are scheduled one at a time, in the fixed order of the request.
// Graphs never exchange messages (messages connect processes of one graph),
// so the only coupling between them is the platform occupancy — which makes
// "the state after graph i" a well-defined checkpoint. SchedulerSession
// exposes exactly that: schedule one graph, observe the state, schedule the
// next. Combined with PlatformState's journal this is what lets EvalContext
// rewind to the first graph a move affects and re-schedule only from there.
//
// Messages between processes on different nodes are scheduled into the TDMA
// slot of the sender's node at destination-scheduling time; same-node
// messages cost no bus time.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/mapping.h"
#include "sched/platform_state.h"
#include "sched/schedule.h"
#include "util/ids.h"

namespace ides {

class SystemModel;
struct ProcessGraph;

struct ScheduleRequest {
  /// Graphs to schedule (normally all graphs of one application), in the
  /// deterministic order they are committed to the platform.
  std::vector<GraphId> graphs;
  /// Node assignment + hints. Required in mapping mode. In HCP mode, if
  /// non-null, hints are honored and any process whose entry already names
  /// a valid node is pinned to it (HCP chooses nodes only for the rest).
  const MappingSolution* mapping = nullptr;
  /// HCP mode: scheduler chooses nodes (earliest-finish-time).
  bool chooseNodes = false;
  /// Optional precomputed priorities, one vector per entry of `graphs`
  /// (criticalPathPriorities). Strategies precompute these once per run to
  /// keep the evaluation inner loop cheap.
  const std::vector<std::vector<double>>* priorities = nullptr;
};

/// Static commit order of one graph's jobs under a fixed priority vector.
///
/// The ready-heap pop order of SchedulerSession::run is a pure function of
/// (graph topology, priorities): the comparator reads only static job keys
/// (priority, release, pid, instance) and a job enters the heap exactly when
/// its last intra-instance input commits — never depending on the mapping or
/// on placement results. The order can therefore be computed once per graph
/// and the evaluation inner loop driven off it directly, which is what makes
/// a mid-graph (process-granular) restart well-defined: for a move that
/// first affects order position k, every position before k commits
/// identically, so re-scheduling the suffix [k, jobs) reproduces the full
/// pass bit for bit.
struct GraphJobOrder {
  /// Dense job index: instance * processCount + local process index.
  std::vector<std::int32_t> jobAt;       ///< position -> flat job index
  std::vector<std::int32_t> positionOf;  ///< flat job index -> position
  std::size_t processCount = 0;

  [[nodiscard]] std::size_t jobCount() const { return jobAt.size(); }
};

/// Simulates the ready-heap discipline of the scheduler without placing
/// anything, yielding the static commit order (see GraphJobOrder).
GraphJobOrder computeJobOrder(const SystemModel& sys, GraphId g,
                              const std::vector<double>& priorities);

struct ScheduleOutcome {
  /// Every process/message instance was placed inside the horizon.
  bool placed = false;
  /// placed, and every graph instance met its deadline.
  bool feasible = false;
  int deadlineMisses = 0;
  /// Sum over process instances of max(0, end - absolute deadline).
  Time totalLateness = 0;
  /// Entries created by this call only (not the frozen baseline).
  Schedule schedule;
  /// Node chosen for every scheduled process (copy of the input mapping in
  /// mapping mode, HCP choices otherwise).
  MappingSolution mapping;
};

/// Reusable one-graph-at-a-time scheduler bound to a model and a platform
/// state. All scratch structures (job pool, ready heap, candidate lists)
/// live in the session and are reused across calls, so the optimization
/// inner loops schedule without per-evaluation allocations.
class SchedulerSession {
 public:
  /// Per-graph tally. The aggregate flags of ScheduleOutcome are folded by
  /// the caller (placed = all graphs placed, feasible = placed and no
  /// misses).
  struct GraphResult {
    bool placed = false;
    int deadlineMisses = 0;
    Time totalLateness = 0;
  };

  /// Binds to `sys` and `state`; both must outlive the session.
  SchedulerSession(const SystemModel& sys, PlatformState& state);

  /// Mapping mode: schedule every instance of graph `g` under `mapping`,
  /// appending the committed entries to `processesOut` / `messagesOut` (in
  /// commit order — a checkpoint is just the pair of sizes) and occupying
  /// the bound state. On a placement failure the state keeps the partial
  /// occupancy — rewind with a PlatformState mark (EvalContext) or discard
  /// the state (one-shot callers). `priorities` may be null (computed
  /// internally).
  GraphResult scheduleGraph(GraphId g, const MappingSolution& mapping,
                            const std::vector<double>* priorities,
                            std::vector<ScheduledProcess>& processesOut,
                            std::vector<ScheduledMessage>& messagesOut);

  /// HCP mode: additionally chooses a node for every process whose entry in
  /// `mapping` is invalid, recording the choice into `mapping`.
  GraphResult scheduleGraphChoosingNodes(
      GraphId g, MappingSolution& mapping,
      const std::vector<double>* priorities,
      std::vector<ScheduledProcess>& processesOut,
      std::vector<ScheduledMessage>& messagesOut);

  /// State snapshot taken immediately before committing one order position:
  /// journal mark plus output sizes and the graph-local running tallies.
  /// Rewinding a graph to position k is the same two-resize rollback as a
  /// whole-graph checkpoint, just finer.
  struct JobCheckpoint {
    PlatformState::Mark mark = 0;
    std::uint32_t processCount = 0;  ///< processesOut.size() before position
    std::uint32_t messageCount = 0;  ///< messagesOut.size() before position
    std::int32_t deadlineMisses = 0;  ///< graph-local, before this position
    Time lateness = 0;                ///< graph-local, before this position
  };

  /// Mapping-mode scheduling driven by the precomputed static `order`,
  /// resumable mid-graph: positions [0, resumeAt) must already be committed
  /// in the bound state, with their entries at
  /// processesOut[graphBase + position] (graphBase = processesOut.size() at
  /// the graph's whole-graph checkpoint); only positions [resumeAt, jobs)
  /// are scheduled. Writes one JobCheckpoint per re-scheduled position into
  /// `marksOut` (resized to the order size; earlier entries untouched) and,
  /// when `arrivalsOut` is non-null, the hint-independent arrival bound of
  /// every committed position at arrivalsOut[graphBase + position]: the
  /// earliest start permitted by release time and input-message arrivals
  /// alone. start == earliestFit(node, max(bound, period-relative hint)),
  /// which is what lets a hint change be proven schedule-identical without
  /// re-scheduling (see core/simulated_annealing.h's zero-delta filter).
  ///
  /// Bit-identical to scheduleGraph for resumeAt == 0 by the static-order
  /// property (asserted across the whole property suite, which diffs this
  /// path against the heap-driven full pass).
  GraphResult scheduleGraphResume(
      GraphId g, const MappingSolution& mapping,
      const std::vector<double>* priorities, const GraphJobOrder& order,
      std::size_t resumeAt, std::size_t graphBase,
      std::vector<ScheduledProcess>& processesOut,
      std::vector<ScheduledMessage>& messagesOut,
      std::vector<JobCheckpoint>& marksOut, std::vector<Time>* arrivalsOut);

 private:
  struct Job {
    ProcessId pid;
    std::int32_t instance = 0;
    Time release = 0;
    Time absDeadline = 0;
    Time end = kNoTime;  ///< finish time once committed
    double priority = 0.0;
    int remainingInputs = 0;
  };
  struct ReadyOrder;

  GraphResult run(GraphId g, const MappingSolution& mapping,
                  MappingSolution* chosen,
                  const std::vector<double>* priorities,
                  std::vector<ScheduledProcess>& processesOut,
                  std::vector<ScheduledMessage>& messagesOut);

  /// Fills jobs_/procLocal_ for graph `g` (shared by both scheduling loops).
  void materializeJobs(const ProcessGraph& graph,
                       const std::vector<double>& priorities,
                       std::int64_t instances);

  const SystemModel* sys_;
  PlatformState* state_;
  // Reusable scratch, cleared per graph. Jobs are indexed densely as
  // instance * processCount + local process index (via procLocal_), so the
  // inner loop runs without a single hash lookup.
  std::vector<Job> jobs_;
  std::vector<std::int32_t> procLocal_;  // by ProcessId::index(), per graph
  std::vector<Job*> ready_;  // binary heap via std::push_heap/pop_heap
  std::vector<NodeId> candidates_;
  std::vector<double> localPriorities_;
};

/// Schedule `req.graphs` into `state`, graph by graph in request order. On
/// success the state contains the new occupancy; if the outcome is not
/// `placed`, the state is partially updated and must be discarded (or
/// rewound via the journal) by the caller.
ScheduleOutcome scheduleGraphs(const SystemModel& sys,
                               const ScheduleRequest& req,
                               PlatformState& state);

}  // namespace ides
