// MappingSolution: one point in the design space explored by the strategies.
//
// A solution fixes, for every process of the application being mapped:
//   * the node it runs on, and
//   * a period-relative start hint: the scheduler will not start instance k
//     of the process before k*period + hint. Hint 0 means "as soon as
//     possible". Raising a hint is exactly the paper's design transformation
//     "move a process into a different slack" — it pushes the process past
//     earlier gaps into a chosen one.
// and, for every message, a period-relative hint that delays the earliest
// bus transmission the same way ("move a message to a different slack on
// the bus").
//
// The arrays are indexed by global ProcessId / MessageId; entries for
// processes outside the application being scheduled are simply unused.
#pragma once

#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace ides {

class SystemModel;

class MappingSolution {
 public:
  MappingSolution() = default;
  MappingSolution(std::size_t processCount, std::size_t messageCount);
  /// Sized for the given model.
  explicit MappingSolution(const SystemModel& sys);

  [[nodiscard]] NodeId nodeOf(ProcessId p) const { return node_[p.index()]; }
  void setNode(ProcessId p, NodeId n) { node_[p.index()] = n; }

  [[nodiscard]] Time startHint(ProcessId p) const {
    return startHint_[p.index()];
  }
  void setStartHint(ProcessId p, Time hint) { startHint_[p.index()] = hint; }

  [[nodiscard]] Time messageHint(MessageId m) const {
    return messageHint_[m.index()];
  }
  void setMessageHint(MessageId m, Time hint) {
    messageHint_[m.index()] = hint;
  }

  [[nodiscard]] std::size_t processCount() const { return node_.size(); }
  [[nodiscard]] std::size_t messageCount() const {
    return messageHint_.size();
  }

  friend bool operator==(const MappingSolution&,
                         const MappingSolution&) = default;

 private:
  std::vector<NodeId> node_;
  std::vector<Time> startHint_;
  std::vector<Time> messageHint_;
};

}  // namespace ides
