#include "sched/schedule_io.h"

#include <charconv>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "model/system_model.h"

namespace ides {

namespace {

std::vector<std::string> splitCsv(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

std::int64_t parseInt(const std::string& s, const char* what) {
  std::int64_t value = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::invalid_argument(std::string("readSchedule: bad ") + what +
                                " '" + s + "'");
  }
  return value;
}

}  // namespace

void writeSchedule(std::ostream& os, const SystemModel& sys,
                   const Schedule& schedule) {
  os << "# ides schedule v1\n";
  os << "[processes]\n";
  os << "pid,name,instance,node,start,end\n";
  for (const ScheduledProcess& e : schedule.processes()) {
    os << e.pid.value << ',' << sys.process(e.pid).name << ',' << e.instance
       << ',' << e.node.value << ',' << e.start << ',' << e.end << '\n';
  }
  os << "[messages]\n";
  os << "mid,instance,slot,round,start,end\n";
  for (const ScheduledMessage& e : schedule.messages()) {
    os << e.mid.value << ',' << e.instance << ',' << e.slotIndex << ','
       << e.round << ',' << e.start << ',' << e.end << '\n';
  }
}

Schedule readSchedule(std::istream& is, const SystemModel& sys) {
  Schedule schedule;
  enum class Section { None, Processes, Messages } section = Section::None;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line == "[processes]") {
      section = Section::Processes;
      std::getline(is, line);  // header
      continue;
    }
    if (line == "[messages]") {
      section = Section::Messages;
      std::getline(is, line);  // header
      continue;
    }
    const std::vector<std::string> f = splitCsv(line);
    if (section == Section::Processes) {
      if (f.size() != 6) {
        throw std::invalid_argument("readSchedule: malformed process row");
      }
      const auto pid = static_cast<std::int32_t>(parseInt(f[0], "pid"));
      if (pid < 0 || static_cast<std::size_t>(pid) >= sys.processes().size()) {
        throw std::invalid_argument("readSchedule: unknown process id");
      }
      const auto node = static_cast<std::int32_t>(parseInt(f[3], "node"));
      if (node < 0 ||
          static_cast<std::size_t>(node) >= sys.architecture().nodeCount()) {
        throw std::invalid_argument("readSchedule: unknown node id");
      }
      schedule.addProcess({ProcessId{pid},
                           static_cast<std::int32_t>(parseInt(f[2],
                                                              "instance")),
                           NodeId{node}, parseInt(f[4], "start"),
                           parseInt(f[5], "end")});
    } else if (section == Section::Messages) {
      if (f.size() != 6) {
        throw std::invalid_argument("readSchedule: malformed message row");
      }
      const auto mid = static_cast<std::int32_t>(parseInt(f[0], "mid"));
      if (mid < 0 || static_cast<std::size_t>(mid) >= sys.messages().size()) {
        throw std::invalid_argument("readSchedule: unknown message id");
      }
      const auto slot = parseInt(f[2], "slot");
      if (slot < 0 || static_cast<std::size_t>(slot) >=
                          sys.architecture().bus().slotCount()) {
        throw std::invalid_argument("readSchedule: unknown slot");
      }
      schedule.addMessage({MessageId{mid},
                           static_cast<std::int32_t>(parseInt(f[1],
                                                              "instance")),
                           static_cast<std::size_t>(slot),
                           parseInt(f[3], "round"), parseInt(f[4], "start"),
                           parseInt(f[5], "end")});
    } else {
      throw std::invalid_argument("readSchedule: data before section header");
    }
  }
  return schedule;
}

std::string scheduleToString(const SystemModel& sys,
                             const Schedule& schedule) {
  std::ostringstream os;
  writeSchedule(os, sys, schedule);
  return os.str();
}

Schedule scheduleFromString(const std::string& text, const SystemModel& sys) {
  std::istringstream is(text);
  return readSchedule(is, sys);
}

}  // namespace ides
