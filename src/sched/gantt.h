// ASCII Gantt rendering of a static cyclic schedule.
//
// Reproduces the style of the paper's slide-5 example: one row per node,
// one row for the bus, slack visible as '.' runs. Used by the examples and
// handy when debugging strategies with IDES_LOG=debug.
#pragma once

#include <string>

#include "sched/schedule.h"
#include "util/time.h"

namespace ides {

class SystemModel;

struct GanttOptions {
  int width = 96;          ///< characters for the time axis
  Time horizon = kNoTime;  ///< defaults to the hyperperiod
  bool showRounds = true;  ///< tick marks at TDMA round boundaries
};

/// Render the given schedule (typically frozen existing + current merged).
std::string renderGantt(const SystemModel& sys, const Schedule& schedule,
                        const GanttOptions& options = {});

}  // namespace ides
