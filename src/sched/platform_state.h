// PlatformState: occupancy of every processor and every TDMA slot occurrence
// over one hyperperiod.
//
// The frozen existing applications are baked into a baseline state once;
// each candidate mapping of the current application is then scheduled on
// top. Historically every evaluation copied the whole baseline; the journal
// (see setJournaling/mark/rollbackTo) turns that into checkpoint + undo:
// every occupy is recorded, and rolling back to a mark replays the records
// in reverse. EvalContext keeps ONE journaled state per thread and rewinds
// it to the checkpoint before the first graph a move affects, which is what
// makes incremental re-evaluation cheap.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/architecture.h"
#include "util/interval.h"
#include "util/time.h"

namespace ides {

class PlatformState {
 public:
  /// Horizon must be a positive multiple of the bus round length.
  PlatformState(const Architecture& arch, Time horizon);

  [[nodiscard]] Time horizon() const { return horizon_; }
  [[nodiscard]] const TdmaBus& bus() const { return *bus_; }
  [[nodiscard]] std::size_t nodeCount() const { return nodeBusy_.size(); }

  // ---- processor occupancy ------------------------------------------------

  /// Earliest start s >= after such that [s, s+duration) is free on the node
  /// and s+duration <= horizon. Returns kNoTime if no gap exists.
  [[nodiscard]] Time earliestFit(NodeId node, Time after, Time duration) const;

  /// Mark [iv.start, iv.end) busy. The range must be free and within the
  /// horizon (throws std::logic_error otherwise — a scheduler bug).
  void occupyNode(NodeId node, Interval iv);

  [[nodiscard]] const IntervalSet& nodeBusy(NodeId node) const {
    return nodeBusy_[node.index()];
  }
  [[nodiscard]] IntervalSet nodeFree(NodeId node) const {
    return nodeBusy_[node.index()].complementWithin({0, horizon_});
  }

  // ---- bus occupancy ------------------------------------------------------

  struct BusPlacement {
    std::int64_t round = 0;
    Time start = 0;  ///< first tick of the transmission
    Time end = 0;    ///< arrival tick
  };

  /// First round >= minRound whose slot `slotIndex` starts at or after
  /// `ready` and still has `txTicks` of room. Transmissions are packed
  /// back-to-back, so the placement begins after the ticks already used in
  /// that occurrence. Returns nullopt if nothing fits before the horizon.
  /// A per-slot first-free-round cursor (maintained by occupyBus and
  /// rollbackTo) skips the fully-booked prefix, so the common append —
  /// packing messages behind a saturated base — is O(1) instead of a scan
  /// over every full round.
  [[nodiscard]] std::optional<BusPlacement> findBusSlot(
      std::size_t slotIndex, Time ready, Time txTicks,
      std::int64_t minRound = 0) const;

  /// Consume `txTicks` of slot `slotIndex` in `round`.
  void occupyBus(std::size_t slotIndex, std::int64_t round, Time txTicks);

  [[nodiscard]] std::int64_t roundCount() const { return roundCount_; }
  [[nodiscard]] Time slotUsedTicks(std::size_t slotIndex,
                                   std::int64_t round) const {
    return slotUsed_[slotIndex][static_cast<std::size_t>(round)];
  }
  [[nodiscard]] Time slotFreeTicks(std::size_t slotIndex,
                                   std::int64_t round) const {
    return bus_->slot(slotIndex).length -
           slotUsed_[slotIndex][static_cast<std::size_t>(round)];
  }

  /// Total free processor ticks over all nodes.
  [[nodiscard]] Time totalNodeSlack() const;
  /// Total free bus ticks over all slot occurrences.
  [[nodiscard]] Time totalBusSlackTicks() const;

  // ---- checkpoint / undo journal ------------------------------------------

  /// Journal position; positions taken before a rollback past them are
  /// invalidated.
  using Mark = std::size_t;

  /// Start (or stop) recording occupy operations. Enabling clears any
  /// previous journal, so the current occupancy becomes the floor no
  /// rollback can cross. Off by default: one-shot consumers (frozen-base
  /// construction, stateWith) pay nothing.
  void setJournaling(bool enabled);
  [[nodiscard]] bool journaling() const { return journaling_; }

  /// Current journal position. Only meaningful while journaling.
  [[nodiscard]] Mark mark() const { return journal_.size(); }

  /// Undo every occupy recorded after `m`, restoring the exact occupancy
  /// the state had when mark() returned `m`. Throws std::logic_error if
  /// `m` is ahead of the journal or journaling is off.
  void rollbackTo(Mark m);

  struct JournalEntry {
    enum class Kind : std::uint8_t { Node, Bus } kind = Kind::Node;
    std::uint32_t index = 0;  ///< node index or slot index
    Interval iv;              ///< Node: the occupied interval
    std::int64_t round = 0;   ///< Bus: the slot occurrence
    Time txTicks = 0;         ///< Bus: ticks consumed
  };

  /// The journal records themselves, [0, mark()). Read-only dirty-tracking
  /// hook: the records between two marks name exactly the nodes and slot
  /// occurrences whose occupancy changed, which is what the incremental
  /// metrics cache (core/evaluator.h) uses to recompute window minima and
  /// slack containers only where occupancy actually moved.
  [[nodiscard]] const std::vector<JournalEntry>& journal() const {
    return journal_;
  }

  /// Re-apply journal records captured before a rollback, through the normal
  /// occupy paths (same validation, cursor maintenance and journaling as the
  /// original commits — the journal grows by byte-identical records). Used
  /// by the zero-delta serve in EvalContext: when a mid-graph rewind turns
  /// out to have changed nothing, the downstream graphs' occupancy is
  /// restored verbatim instead of re-running their schedulers.
  void replay(const JournalEntry* first, const JournalEntry* last);

 private:

  const Architecture* arch_;  // non-owning; architectures outlive states
  const TdmaBus* bus_;
  Time horizon_;
  std::int64_t roundCount_;
  std::vector<IntervalSet> nodeBusy_;             // per node
  std::vector<std::vector<Time>> slotUsed_;       // [slot][round] ticks
  /// Per slot: the lowest round that still has free ticks. Invariant —
  /// every round below the cursor is completely full, so findBusSlot may
  /// start its scan at the cursor. occupyBus advances it (amortized O(1)),
  /// rollbackTo lowers it when freed ticks reopen an earlier round.
  std::vector<std::int64_t> slotCursor_;
  bool journaling_ = false;
  std::vector<JournalEntry> journal_;
};

}  // namespace ides
