#include "sched/slack.h"

#include <algorithm>

namespace ides {

Time SlackInfo::totalNodeSlack() const {
  Time total = 0;
  for (const IntervalSet& free : nodeFree) total += free.totalLength();
  return total;
}

Time SlackInfo::totalBusFreeTicks() const {
  Time total = 0;
  for (const BusChunk& c : busChunks) total += c.freeTicks;
  return total;
}

Time SlackInfo::nodeSlackInWindow(std::size_t nodeIndex, Time winStart,
                                  Time winEnd) const {
  return nodeFree[nodeIndex].lengthWithin({winStart, winEnd});
}

Time SlackInfo::busSlackInWindow(Time winStart, Time winEnd) const {
  Time total = 0;
  for (const BusChunk& c : busChunks) {
    const Time s = std::max(c.start, winStart);
    const Time e = std::min(c.start + c.freeTicks, winEnd);
    if (e > s) total += e - s;
  }
  return total;
}

SlackInfo extractSlack(const PlatformState& state) {
  SlackInfo info;
  extractSlackInto(state, info);
  return info;
}

void extractSlackInto(const PlatformState& state, SlackInfo& info) {
  info.horizon = state.horizon();
  const TdmaBus& bus = state.bus();
  info.busBytesPerTick = bus.bytesPerTick();

  info.nodeFree.resize(state.nodeCount());
  for (std::size_t n = 0; n < state.nodeCount(); ++n) {
    const NodeId id{static_cast<std::int32_t>(n)};
    state.nodeBusy(id).complementWithinInto({0, info.horizon},
                                            info.nodeFree[n]);
  }

  info.busChunks.clear();
  for (std::int64_t r = 0; r < state.roundCount(); ++r) {
    for (std::size_t s = 0; s < bus.slotCount(); ++s) {
      const Time freeTicks = state.slotFreeTicks(s, r);
      if (freeTicks <= 0) continue;
      const Time used = state.slotUsedTicks(s, r);
      info.busChunks.push_back(
          {s, r, bus.slotStart(r, s) + used, freeTicks});
    }
  }
  // Rounds iterate outermost, slots in round order, so chunks are already
  // sorted by start time.
}

}  // namespace ides
