// Schedule validation: every invariant a static cyclic schedule must hold.
//
// The checker is the library's executable specification. It verifies a
// (merged) schedule against the model:
//   * completeness  — every (process, instance) of the checked graphs
//     appears exactly once;
//   * timing        — instances run inside [release, deadline] windows and
//     entries are exactly WCET long on an allowed node;
//   * exclusivity   — no two executions overlap on a node;
//   * messaging     — every inter-node dependency has a bus entry in the
//     sender's slot, inside the slot occurrence, after the producer and
//     before the consumer; slot capacity is never exceeded; same-node
//     dependencies still respect precedence;
//   * horizon       — nothing extends past the hyperperiod.
//
// Used by integration tests, the CLI, and available to library users who
// post-process or hand-edit schedules.
#pragma once

#include <string>
#include <vector>

#include "sched/mapping.h"
#include "sched/schedule.h"
#include "util/ids.h"

namespace ides {

class SystemModel;

struct ValidationIssue {
  enum class Kind {
    MissingEntry,
    DuplicateBeyondInstances,
    OutsideWindow,
    WrongDuration,
    DisallowedNode,
    NodeOverlap,
    MissingMessage,
    LocalMessageOnBus,
    WrongSlot,
    OutsideSlot,
    SlotOverflow,
    PrecedenceViolated,
    BeyondHorizon,
  };
  Kind kind;
  std::string detail;
};

const char* toString(ValidationIssue::Kind kind);

struct ValidationReport {
  std::vector<ValidationIssue> issues;
  [[nodiscard]] bool ok() const { return issues.empty(); }
  /// Multi-line human-readable summary ("schedule valid" when ok).
  [[nodiscard]] std::string summary() const;
};

/// Validate `schedule` for the given graphs (typically: frozen + current
/// merged, over all non-future graphs). The mapping provides node
/// assignments for message-side checks; it is taken from the schedule's own
/// process entries, so callers only pass the schedule.
ValidationReport validateSchedule(const SystemModel& sys,
                                  const Schedule& schedule,
                                  const std::vector<GraphId>& graphs);

}  // namespace ides
