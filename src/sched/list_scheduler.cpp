#include "sched/list_scheduler.h"

#include <algorithm>
#include <stdexcept>

#include "model/graph_algos.h"
#include "model/system_model.h"

namespace ides {

struct SchedulerSession::ReadyOrder {
  // priority desc, then release asc, then (pid, instance) asc for
  // determinism. The heap pops the *largest*, so "a before b" must mean
  // a < b here.
  bool operator()(const Job* a, const Job* b) const {
    if (a->priority != b->priority) return a->priority < b->priority;
    if (a->release != b->release) return a->release > b->release;
    if (a->pid != b->pid) return a->pid.value > b->pid.value;
    return a->instance > b->instance;
  }
};

SchedulerSession::SchedulerSession(const SystemModel& sys,
                                   PlatformState& state)
    : sys_(&sys), state_(&state) {
  procLocal_.assign(sys.processes().size(), -1);
}

SchedulerSession::GraphResult SchedulerSession::scheduleGraph(
    GraphId g, const MappingSolution& mapping,
    const std::vector<double>* priorities,
    std::vector<ScheduledProcess>& processesOut,
    std::vector<ScheduledMessage>& messagesOut) {
  return run(g, mapping, nullptr, priorities, processesOut, messagesOut);
}

SchedulerSession::GraphResult SchedulerSession::scheduleGraphChoosingNodes(
    GraphId g, MappingSolution& mapping,
    const std::vector<double>* priorities,
    std::vector<ScheduledProcess>& processesOut,
    std::vector<ScheduledMessage>& messagesOut) {
  return run(g, mapping, &mapping, priorities, processesOut, messagesOut);
}

SchedulerSession::GraphResult SchedulerSession::run(
    GraphId g, const MappingSolution& mapping, MappingSolution* chosen,
    const std::vector<double>* priorities,
    std::vector<ScheduledProcess>& processesOut,
    std::vector<ScheduledMessage>& messagesOut) {
  const SystemModel& sys = *sys_;
  PlatformState& state = *state_;
  const TdmaBus& bus = sys.architecture().bus();
  const ProcessGraph& graph = sys.graph(g);
  const bool chooseNodes = chosen != nullptr;
  const std::size_t procCount = graph.processes.size();

  GraphResult out;
  if (priorities == nullptr) {
    localPriorities_ = criticalPathPriorities(sys, g);
    priorities = &localPriorities_;
  }

  // Materialize one Job per (process, instance) of this graph, indexed
  // instance-major so a (pid, instance) pair resolves without hashing.
  const std::int64_t instances = sys.instanceCount(g);
  for (std::size_t i = 0; i < procCount; ++i) {
    procLocal_[graph.processes[i].index()] = static_cast<std::int32_t>(i);
  }
  jobs_.clear();
  jobs_.reserve(procCount * static_cast<std::size_t>(instances));
  for (std::int64_t k = 0; k < instances; ++k) {
    for (std::size_t i = 0; i < procCount; ++i) {
      const ProcessId p = graph.processes[i];
      Job job;
      job.pid = p;
      job.instance = static_cast<std::int32_t>(k);
      job.release = graph.releaseOf(k);
      job.absDeadline = graph.deadlineOf(k);
      job.priority = (*priorities)[i];
      job.remainingInputs = static_cast<int>(sys.inputsOf(p).size());
      jobs_.push_back(job);
    }
  }
  const auto jobAt = [&](ProcessId p, std::int32_t instance) -> Job& {
    return jobs_[static_cast<std::size_t>(instance) * procCount +
                 static_cast<std::size_t>(procLocal_[p.index()])];
  };

  ready_.clear();
  for (Job& j : jobs_) {
    if (j.remainingInputs == 0) ready_.push_back(&j);
  }
  std::make_heap(ready_.begin(), ready_.end(), ReadyOrder{});

  // Arrival of a message for the destination: end of the committed bus
  // transmission, or the source's end for same-node hand-offs. Computed
  // lazily per (candidate node), committed once for the chosen node.
  auto messageReady = [&](const Message& msg, std::int32_t instance) {
    const Time srcEnd = jobAt(msg.src, instance).end;
    const Time hint = mapping.messageHint(msg.id) +
                      static_cast<Time>(instance) * graph.period;
    return std::max(srcEnd, hint);
  };

  std::size_t scheduled = 0;
  while (!ready_.empty()) {
    std::pop_heap(ready_.begin(), ready_.end(), ReadyOrder{});
    Job& job = *ready_.back();
    ready_.pop_back();
    const Process& proc = sys.process(job.pid);
    const auto& inputs = sys.inputsOf(job.pid);

    const Time hintedRelease =
        std::max(job.release, static_cast<Time>(job.instance) * graph.period +
                                  mapping.startHint(job.pid));

    // Evaluate candidate nodes. The mapping is static: every instance of a
    // process runs on the same node, so once HCP has placed one instance
    // the other instances are pinned to that choice.
    candidates_.clear();
    if (chooseNodes) {
      const NodeId prev = mapping.nodeOf(job.pid);
      if (prev.valid()) {
        candidates_.push_back(prev);
      } else {
        const auto allowed = proc.allowedNodes();
        candidates_.assign(allowed.begin(), allowed.end());
      }
    } else {
      const NodeId n = mapping.nodeOf(job.pid);
      if (!n.valid() || !proc.allowedOn(n)) {
        throw std::invalid_argument(
            "scheduleGraphs: mapping assigns a disallowed node");
      }
      candidates_.push_back(n);
    }

    NodeId bestNode;
    Time bestFinish = kTimeMax;
    for (const NodeId n : candidates_) {
      Time est = hintedRelease;
      bool ok = true;
      for (const MessageId mId : inputs) {
        const Message& msg = sys.message(mId);
        const NodeId srcNode = mapping.nodeOf(msg.src);
        if (srcNode == n) {
          est = std::max(est, jobAt(msg.src, job.instance).end);
          continue;
        }
        const auto placement = state.findBusSlot(
            bus.slotOfNode(srcNode), messageReady(msg, job.instance),
            bus.transmissionTime(msg.sizeBytes));
        if (!placement) {
          ok = false;
          break;
        }
        est = std::max(est, placement->end);
      }
      if (!ok) continue;
      const Time start = state.earliestFit(n, est, proc.wcetOn(n));
      if (start == kNoTime) continue;
      const Time finish = start + proc.wcetOn(n);
      if (finish < bestFinish) {
        bestFinish = finish;
        bestNode = n;
      }
    }
    if (!bestNode.valid()) {
      // Nothing fits inside the horizon: hard failure for this solution.
      out.placed = false;
      return out;
    }

    // Commit on the chosen node. Bus commits are sequential, so recompute
    // each placement against the occupancy left by the previous commit.
    const NodeId n = bestNode;
    Time est = hintedRelease;
    bool ok = true;
    for (const MessageId mId : inputs) {
      const Message& msg = sys.message(mId);
      const NodeId srcNode = mapping.nodeOf(msg.src);
      if (srcNode == n) {
        est = std::max(est, jobAt(msg.src, job.instance).end);
        continue;
      }
      const std::size_t slot = bus.slotOfNode(srcNode);
      const auto placement = state.findBusSlot(
          slot, messageReady(msg, job.instance),
          bus.transmissionTime(msg.sizeBytes));
      if (!placement) {
        ok = false;
        break;
      }
      state.occupyBus(slot, placement->round,
                      bus.transmissionTime(msg.sizeBytes));
      messagesOut.push_back({msg.id, job.instance, slot, placement->round,
                             placement->start, placement->end});
      est = std::max(est, placement->end);
    }
    if (!ok) {
      out.placed = false;
      return out;
    }
    const Time start = state.earliestFit(n, est, proc.wcetOn(n));
    if (start == kNoTime) {
      out.placed = false;
      return out;
    }
    const Time end = start + proc.wcetOn(n);
    state.occupyNode(n, {start, end});
    processesOut.push_back({job.pid, job.instance, n, start, end});
    job.end = end;
    if (chooseNodes) chosen->setNode(job.pid, n);
    ++scheduled;

    if (end > job.absDeadline) {
      out.deadlineMisses += 1;
      out.totalLateness += end - job.absDeadline;
    }

    // Release successors of the same instance.
    for (const MessageId mId : sys.outputsOf(job.pid)) {
      const Message& msg = sys.message(mId);
      Job& dst = jobAt(msg.dst, job.instance);
      if (--dst.remainingInputs == 0) {
        ready_.push_back(&dst);
        std::push_heap(ready_.begin(), ready_.end(), ReadyOrder{});
      }
    }
  }

  out.placed = scheduled == jobs_.size();
  return out;
}

ScheduleOutcome scheduleGraphs(const SystemModel& sys,
                               const ScheduleRequest& req,
                               PlatformState& state) {
  if (!req.chooseNodes && req.mapping == nullptr) {
    throw std::invalid_argument(
        "scheduleGraphs: mapping mode requires a MappingSolution");
  }
  ScheduleOutcome out;
  out.mapping = req.mapping != nullptr ? *req.mapping : MappingSolution(sys);

  SchedulerSession session(sys, state);
  std::vector<ScheduledProcess> processes;
  std::vector<ScheduledMessage> messages;
  bool placed = true;
  for (std::size_t gi = 0; gi < req.graphs.size() && placed; ++gi) {
    const std::vector<double>* prio =
        req.priorities != nullptr ? &(*req.priorities)[gi] : nullptr;
    const SchedulerSession::GraphResult r =
        req.chooseNodes
            ? session.scheduleGraphChoosingNodes(req.graphs[gi], out.mapping,
                                                 prio, processes, messages)
            : session.scheduleGraph(req.graphs[gi], out.mapping, prio,
                                    processes, messages);
    out.deadlineMisses += r.deadlineMisses;
    out.totalLateness += r.totalLateness;
    placed = r.placed;
  }
  for (const ScheduledProcess& sp : processes) out.schedule.addProcess(sp);
  for (const ScheduledMessage& sm : messages) out.schedule.addMessage(sm);
  out.placed = placed;
  out.feasible = placed && out.deadlineMisses == 0;
  return out;
}

}  // namespace ides
