#include "sched/list_scheduler.h"

#include <algorithm>
#include <stdexcept>

#include "model/graph_algos.h"
#include "model/system_model.h"

namespace ides {

struct SchedulerSession::ReadyOrder {
  // priority desc, then release asc, then (pid, instance) asc for
  // determinism. The heap pops the *largest*, so "a before b" must mean
  // a < b here.
  bool operator()(const Job* a, const Job* b) const {
    if (a->priority != b->priority) return a->priority < b->priority;
    if (a->release != b->release) return a->release > b->release;
    if (a->pid != b->pid) return a->pid.value > b->pid.value;
    return a->instance > b->instance;
  }
};

SchedulerSession::SchedulerSession(const SystemModel& sys,
                                   PlatformState& state)
    : sys_(&sys), state_(&state) {
  procLocal_.assign(sys.processes().size(), -1);
}

GraphJobOrder computeJobOrder(const SystemModel& sys, GraphId g,
                              const std::vector<double>& priorities) {
  const ProcessGraph& graph = sys.graph(g);
  const std::size_t procCount = graph.processes.size();
  const std::int64_t instances = sys.instanceCount(g);
  const std::size_t jobCount = procCount * static_cast<std::size_t>(instances);

  std::vector<std::int32_t> procLocal(sys.processes().size(), -1);
  for (std::size_t i = 0; i < procCount; ++i) {
    procLocal[graph.processes[i].index()] = static_cast<std::int32_t>(i);
  }

  // The same Job keys and ReadyOrder comparator as the scheduling loop, but
  // popping commits nothing: committing a job only releases successors, so
  // the pop sequence here is exactly the commit order of the real run.
  struct OrderJob {
    ProcessId pid;
    std::int32_t instance = 0;
    std::int32_t flat = 0;
    Time release = 0;
    double priority = 0.0;
    int remainingInputs = 0;
  };
  std::vector<OrderJob> jobs;
  jobs.reserve(jobCount);
  for (std::int64_t k = 0; k < instances; ++k) {
    for (std::size_t i = 0; i < procCount; ++i) {
      const ProcessId p = graph.processes[i];
      OrderJob job;
      job.pid = p;
      job.instance = static_cast<std::int32_t>(k);
      job.flat = static_cast<std::int32_t>(
          static_cast<std::size_t>(k) * procCount + i);
      job.release = graph.releaseOf(k);
      job.priority = priorities[i];
      job.remainingInputs = static_cast<int>(sys.inputsOf(p).size());
      jobs.push_back(job);
    }
  }
  const auto order = [](const OrderJob* a, const OrderJob* b) {
    if (a->priority != b->priority) return a->priority < b->priority;
    if (a->release != b->release) return a->release > b->release;
    if (a->pid != b->pid) return a->pid.value > b->pid.value;
    return a->instance > b->instance;
  };

  std::vector<OrderJob*> ready;
  for (OrderJob& j : jobs) {
    if (j.remainingInputs == 0) ready.push_back(&j);
  }
  std::make_heap(ready.begin(), ready.end(), order);

  GraphJobOrder out;
  out.processCount = procCount;
  out.jobAt.reserve(jobCount);
  out.positionOf.assign(jobCount, -1);
  while (!ready.empty()) {
    std::pop_heap(ready.begin(), ready.end(), order);
    OrderJob& job = *ready.back();
    ready.pop_back();
    out.positionOf[static_cast<std::size_t>(job.flat)] =
        static_cast<std::int32_t>(out.jobAt.size());
    out.jobAt.push_back(job.flat);
    for (const MessageId mId : sys.outputsOf(job.pid)) {
      const Message& msg = sys.message(mId);
      OrderJob& dst =
          jobs[static_cast<std::size_t>(job.instance) * procCount +
               static_cast<std::size_t>(procLocal[msg.dst.index()])];
      if (--dst.remainingInputs == 0) {
        ready.push_back(&dst);
        std::push_heap(ready.begin(), ready.end(), order);
      }
    }
  }
  if (out.jobAt.size() != jobCount) {
    throw std::logic_error("computeJobOrder: graph has a dependency cycle");
  }
  return out;
}

SchedulerSession::GraphResult SchedulerSession::scheduleGraph(
    GraphId g, const MappingSolution& mapping,
    const std::vector<double>* priorities,
    std::vector<ScheduledProcess>& processesOut,
    std::vector<ScheduledMessage>& messagesOut) {
  return run(g, mapping, nullptr, priorities, processesOut, messagesOut);
}

SchedulerSession::GraphResult SchedulerSession::scheduleGraphChoosingNodes(
    GraphId g, MappingSolution& mapping,
    const std::vector<double>* priorities,
    std::vector<ScheduledProcess>& processesOut,
    std::vector<ScheduledMessage>& messagesOut) {
  return run(g, mapping, &mapping, priorities, processesOut, messagesOut);
}

SchedulerSession::GraphResult SchedulerSession::run(
    GraphId g, const MappingSolution& mapping, MappingSolution* chosen,
    const std::vector<double>* priorities,
    std::vector<ScheduledProcess>& processesOut,
    std::vector<ScheduledMessage>& messagesOut) {
  const SystemModel& sys = *sys_;
  PlatformState& state = *state_;
  const TdmaBus& bus = sys.architecture().bus();
  const ProcessGraph& graph = sys.graph(g);
  const bool chooseNodes = chosen != nullptr;
  const std::size_t procCount = graph.processes.size();

  GraphResult out;
  if (priorities == nullptr) {
    localPriorities_ = criticalPathPriorities(sys, g);
    priorities = &localPriorities_;
  }

  const std::int64_t instances = sys.instanceCount(g);
  materializeJobs(graph, *priorities, instances);
  const auto jobAt = [&](ProcessId p, std::int32_t instance) -> Job& {
    return jobs_[static_cast<std::size_t>(instance) * procCount +
                 static_cast<std::size_t>(procLocal_[p.index()])];
  };

  ready_.clear();
  for (Job& j : jobs_) {
    if (j.remainingInputs == 0) ready_.push_back(&j);
  }
  std::make_heap(ready_.begin(), ready_.end(), ReadyOrder{});

  // Arrival of a message for the destination: end of the committed bus
  // transmission, or the source's end for same-node hand-offs. Computed
  // lazily per (candidate node), committed once for the chosen node.
  auto messageReady = [&](const Message& msg, std::int32_t instance) {
    const Time srcEnd = jobAt(msg.src, instance).end;
    const Time hint = mapping.messageHint(msg.id) +
                      static_cast<Time>(instance) * graph.period;
    return std::max(srcEnd, hint);
  };

  std::size_t scheduled = 0;
  while (!ready_.empty()) {
    std::pop_heap(ready_.begin(), ready_.end(), ReadyOrder{});
    Job& job = *ready_.back();
    ready_.pop_back();
    const Process& proc = sys.process(job.pid);
    const auto& inputs = sys.inputsOf(job.pid);

    const Time hintedRelease =
        std::max(job.release, static_cast<Time>(job.instance) * graph.period +
                                  mapping.startHint(job.pid));

    // Evaluate candidate nodes. The mapping is static: every instance of a
    // process runs on the same node, so once HCP has placed one instance
    // the other instances are pinned to that choice.
    candidates_.clear();
    if (chooseNodes) {
      const NodeId prev = mapping.nodeOf(job.pid);
      if (prev.valid()) {
        candidates_.push_back(prev);
      } else {
        const auto allowed = proc.allowedNodes();
        candidates_.assign(allowed.begin(), allowed.end());
      }
    } else {
      const NodeId n = mapping.nodeOf(job.pid);
      if (!n.valid() || !proc.allowedOn(n)) {
        throw std::invalid_argument(
            "scheduleGraphs: mapping assigns a disallowed node");
      }
      candidates_.push_back(n);
    }

    NodeId bestNode;
    Time bestFinish = kTimeMax;
    for (const NodeId n : candidates_) {
      Time est = hintedRelease;
      bool ok = true;
      for (const MessageId mId : inputs) {
        const Message& msg = sys.message(mId);
        const NodeId srcNode = mapping.nodeOf(msg.src);
        if (srcNode == n) {
          est = std::max(est, jobAt(msg.src, job.instance).end);
          continue;
        }
        const auto placement = state.findBusSlot(
            bus.slotOfNode(srcNode), messageReady(msg, job.instance),
            bus.transmissionTime(msg.sizeBytes));
        if (!placement) {
          ok = false;
          break;
        }
        est = std::max(est, placement->end);
      }
      if (!ok) continue;
      const Time start = state.earliestFit(n, est, proc.wcetOn(n));
      if (start == kNoTime) continue;
      const Time finish = start + proc.wcetOn(n);
      if (finish < bestFinish) {
        bestFinish = finish;
        bestNode = n;
      }
    }
    if (!bestNode.valid()) {
      // Nothing fits inside the horizon: hard failure for this solution.
      out.placed = false;
      return out;
    }

    // Commit on the chosen node. Bus commits are sequential, so recompute
    // each placement against the occupancy left by the previous commit.
    const NodeId n = bestNode;
    Time est = hintedRelease;
    bool ok = true;
    for (const MessageId mId : inputs) {
      const Message& msg = sys.message(mId);
      const NodeId srcNode = mapping.nodeOf(msg.src);
      if (srcNode == n) {
        est = std::max(est, jobAt(msg.src, job.instance).end);
        continue;
      }
      const std::size_t slot = bus.slotOfNode(srcNode);
      const auto placement = state.findBusSlot(
          slot, messageReady(msg, job.instance),
          bus.transmissionTime(msg.sizeBytes));
      if (!placement) {
        ok = false;
        break;
      }
      state.occupyBus(slot, placement->round,
                      bus.transmissionTime(msg.sizeBytes));
      messagesOut.push_back({msg.id, job.instance, slot, placement->round,
                             placement->start, placement->end});
      est = std::max(est, placement->end);
    }
    if (!ok) {
      out.placed = false;
      return out;
    }
    const Time start = state.earliestFit(n, est, proc.wcetOn(n));
    if (start == kNoTime) {
      out.placed = false;
      return out;
    }
    const Time end = start + proc.wcetOn(n);
    state.occupyNode(n, {start, end});
    processesOut.push_back({job.pid, job.instance, n, start, end});
    job.end = end;
    if (chooseNodes) chosen->setNode(job.pid, n);
    ++scheduled;

    if (end > job.absDeadline) {
      out.deadlineMisses += 1;
      out.totalLateness += end - job.absDeadline;
    }

    // Release successors of the same instance.
    for (const MessageId mId : sys.outputsOf(job.pid)) {
      const Message& msg = sys.message(mId);
      Job& dst = jobAt(msg.dst, job.instance);
      if (--dst.remainingInputs == 0) {
        ready_.push_back(&dst);
        std::push_heap(ready_.begin(), ready_.end(), ReadyOrder{});
      }
    }
  }

  out.placed = scheduled == jobs_.size();
  return out;
}

void SchedulerSession::materializeJobs(const ProcessGraph& graph,
                                       const std::vector<double>& priorities,
                                       std::int64_t instances) {
  // One Job per (process, instance), indexed instance-major so a
  // (pid, instance) pair resolves without hashing.
  const std::size_t procCount = graph.processes.size();
  for (std::size_t i = 0; i < procCount; ++i) {
    procLocal_[graph.processes[i].index()] = static_cast<std::int32_t>(i);
  }
  jobs_.clear();
  jobs_.reserve(procCount * static_cast<std::size_t>(instances));
  for (std::int64_t k = 0; k < instances; ++k) {
    for (std::size_t i = 0; i < procCount; ++i) {
      const ProcessId p = graph.processes[i];
      Job job;
      job.pid = p;
      job.instance = static_cast<std::int32_t>(k);
      job.release = graph.releaseOf(k);
      job.absDeadline = graph.deadlineOf(k);
      job.priority = priorities[i];
      job.remainingInputs = static_cast<int>(sys_->inputsOf(p).size());
      jobs_.push_back(job);
    }
  }
}

SchedulerSession::GraphResult SchedulerSession::scheduleGraphResume(
    GraphId g, const MappingSolution& mapping,
    const std::vector<double>* priorities, const GraphJobOrder& order,
    std::size_t resumeAt, std::size_t graphBase,
    std::vector<ScheduledProcess>& processesOut,
    std::vector<ScheduledMessage>& messagesOut,
    std::vector<JobCheckpoint>& marksOut, std::vector<Time>* arrivalsOut) {
  const SystemModel& sys = *sys_;
  PlatformState& state = *state_;
  const TdmaBus& bus = sys.architecture().bus();
  const ProcessGraph& graph = sys.graph(g);
  const std::size_t procCount = graph.processes.size();

  GraphResult out;
  if (priorities == nullptr) {
    localPriorities_ = criticalPathPriorities(sys, g);
    priorities = &localPriorities_;
  }
  const std::int64_t instances = sys.instanceCount(g);
  materializeJobs(graph, *priorities, instances);
  marksOut.resize(order.jobCount());

  // Restore the committed finish times of the prefix positions: they are
  // everything a later position reads from an earlier one (besides the
  // platform occupancy, which the caller restored via the journal mark).
  for (std::size_t pos = 0; pos < resumeAt; ++pos) {
    jobs_[static_cast<std::size_t>(order.jobAt[pos])].end =
        processesOut[graphBase + pos].end;
  }
  if (resumeAt > 0) {
    // Cumulative tallies after the whole prefix = tallies before the last
    // prefix position plus that position's own contribution.
    const std::size_t last = resumeAt - 1;
    const Job& job = jobs_[static_cast<std::size_t>(order.jobAt[last])];
    out.deadlineMisses = marksOut[last].deadlineMisses;
    out.totalLateness = marksOut[last].lateness;
    if (job.end > job.absDeadline) {
      out.deadlineMisses += 1;
      out.totalLateness += job.end - job.absDeadline;
    }
  }

  const auto jobAt = [&](ProcessId p, std::int32_t instance) -> Job& {
    return jobs_[static_cast<std::size_t>(instance) * procCount +
                 static_cast<std::size_t>(procLocal_[p.index()])];
  };
  auto messageReady = [&](const Message& msg, std::int32_t instance) {
    const Time srcEnd = jobAt(msg.src, instance).end;
    const Time hint = mapping.messageHint(msg.id) +
                      static_cast<Time>(instance) * graph.period;
    return std::max(srcEnd, hint);
  };

  // Commit-only loop over the static order. The heap path's candidate
  // pre-pass is redundant in mapping mode (one candidate, and a candidate
  // failure implies a commit failure against the same occupancy), so each
  // placement is computed exactly once here. Failure leaves partial commits
  // of the failing position in the state/outputs; the caller rewinds to a
  // mark, exactly as with scheduleGraph.
  for (std::size_t pos = resumeAt; pos < order.jobCount(); ++pos) {
    Job& job = jobs_[static_cast<std::size_t>(order.jobAt[pos])];
    marksOut[pos] = {state.mark(),
                     static_cast<std::uint32_t>(processesOut.size()),
                     static_cast<std::uint32_t>(messagesOut.size()),
                     out.deadlineMisses, out.totalLateness};
    const Process& proc = sys.process(job.pid);
    const NodeId n = mapping.nodeOf(job.pid);
    if (!n.valid() || !proc.allowedOn(n)) {
      throw std::invalid_argument(
          "scheduleGraphs: mapping assigns a disallowed node");
    }

    // The arrival bound folds release time and input-message arrivals only;
    // the start hint joins afterwards, so the bound is exactly the pivot the
    // zero-delta hint filter compares against.
    Time arrival = job.release;
    bool ok = true;
    for (const MessageId mId : sys.inputsOf(job.pid)) {
      const Message& msg = sys.message(mId);
      const NodeId srcNode = mapping.nodeOf(msg.src);
      if (srcNode == n) {
        arrival = std::max(arrival, jobAt(msg.src, job.instance).end);
        continue;
      }
      const std::size_t slot = bus.slotOfNode(srcNode);
      const Time txTicks = bus.transmissionTime(msg.sizeBytes);
      const auto placement =
          state.findBusSlot(slot, messageReady(msg, job.instance), txTicks);
      if (!placement) {
        ok = false;
        break;
      }
      state.occupyBus(slot, placement->round, txTicks);
      messagesOut.push_back({msg.id, job.instance, slot, placement->round,
                             placement->start, placement->end});
      arrival = std::max(arrival, placement->end);
    }
    if (!ok) {
      out.placed = false;
      return out;
    }
    const Time est =
        std::max(arrival, static_cast<Time>(job.instance) * graph.period +
                              mapping.startHint(job.pid));
    const Time start = state.earliestFit(n, est, proc.wcetOn(n));
    if (start == kNoTime) {
      out.placed = false;
      return out;
    }
    const Time end = start + proc.wcetOn(n);
    state.occupyNode(n, {start, end});
    processesOut.push_back({job.pid, job.instance, n, start, end});
    if (arrivalsOut != nullptr) {
      arrivalsOut->resize(processesOut.size());
      (*arrivalsOut)[graphBase + pos] = arrival;
    }
    job.end = end;
    if (end > job.absDeadline) {
      out.deadlineMisses += 1;
      out.totalLateness += end - job.absDeadline;
    }
  }
  out.placed = true;
  return out;
}

ScheduleOutcome scheduleGraphs(const SystemModel& sys,
                               const ScheduleRequest& req,
                               PlatformState& state) {
  if (!req.chooseNodes && req.mapping == nullptr) {
    throw std::invalid_argument(
        "scheduleGraphs: mapping mode requires a MappingSolution");
  }
  ScheduleOutcome out;
  out.mapping = req.mapping != nullptr ? *req.mapping : MappingSolution(sys);

  SchedulerSession session(sys, state);
  std::vector<ScheduledProcess> processes;
  std::vector<ScheduledMessage> messages;
  bool placed = true;
  for (std::size_t gi = 0; gi < req.graphs.size() && placed; ++gi) {
    const std::vector<double>* prio =
        req.priorities != nullptr ? &(*req.priorities)[gi] : nullptr;
    const SchedulerSession::GraphResult r =
        req.chooseNodes
            ? session.scheduleGraphChoosingNodes(req.graphs[gi], out.mapping,
                                                 prio, processes, messages)
            : session.scheduleGraph(req.graphs[gi], out.mapping, prio,
                                    processes, messages);
    out.deadlineMisses += r.deadlineMisses;
    out.totalLateness += r.totalLateness;
    placed = r.placed;
  }
  for (const ScheduledProcess& sp : processes) out.schedule.addProcess(sp);
  for (const ScheduledMessage& sm : messages) out.schedule.addMessage(sm);
  out.placed = placed;
  out.feasible = placed && out.deadlineMisses == 0;
  return out;
}

}  // namespace ides
