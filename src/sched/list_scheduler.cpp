#include "sched/list_scheduler.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "model/graph_algos.h"
#include "model/system_model.h"

namespace ides {

namespace {

struct Job {
  ProcessId pid;
  std::int32_t instance = 0;
  Time release = 0;
  Time absDeadline = 0;
  double priority = 0.0;
  int remainingInputs = 0;
};

struct ReadyOrder {
  // priority desc, then release asc, then (pid, instance) asc for
  // determinism. std::priority_queue pops the *largest*, so "a before b"
  // must mean a < b here.
  bool operator()(const Job* a, const Job* b) const {
    if (a->priority != b->priority) return a->priority < b->priority;
    if (a->release != b->release) return a->release > b->release;
    if (a->pid != b->pid) return a->pid.value > b->pid.value;
    return a->instance > b->instance;
  }
};

std::int64_t jobKey(ProcessId p, std::int32_t instance) {
  return (static_cast<std::int64_t>(p.value) << 20) | instance;
}

}  // namespace

ScheduleOutcome scheduleGraphs(const SystemModel& sys,
                               const ScheduleRequest& req,
                               PlatformState& state) {
  if (!req.chooseNodes && req.mapping == nullptr) {
    throw std::invalid_argument(
        "scheduleGraphs: mapping mode requires a MappingSolution");
  }
  const TdmaBus& bus = sys.architecture().bus();

  ScheduleOutcome out;
  out.mapping = req.mapping != nullptr ? *req.mapping : MappingSolution(sys);

  // Materialize one Job per (process, instance) over all requested graphs.
  std::vector<Job> jobs;
  std::unordered_map<std::int64_t, std::size_t> jobIndex;
  for (std::size_t gi = 0; gi < req.graphs.size(); ++gi) {
    const GraphId g = req.graphs[gi];
    const ProcessGraph& graph = sys.graph(g);
    std::vector<double> localPrio;
    const std::vector<double>* prio;
    if (req.priorities != nullptr) {
      prio = &(*req.priorities)[gi];
    } else {
      localPrio = criticalPathPriorities(sys, g);
      prio = &localPrio;
    }
    const std::int64_t instances = sys.instanceCount(g);
    for (std::int64_t k = 0; k < instances; ++k) {
      for (std::size_t i = 0; i < graph.processes.size(); ++i) {
        const ProcessId p = graph.processes[i];
        Job job;
        job.pid = p;
        job.instance = static_cast<std::int32_t>(k);
        job.release = graph.releaseOf(k);
        job.absDeadline = graph.deadlineOf(k);
        job.priority = (*prio)[i];
        job.remainingInputs = static_cast<int>(sys.inputsOf(p).size());
        jobIndex.emplace(jobKey(p, job.instance), jobs.size());
        jobs.push_back(job);
      }
    }
  }

  std::priority_queue<const Job*, std::vector<const Job*>, ReadyOrder> ready;
  for (const Job& j : jobs) {
    if (j.remainingInputs == 0) ready.push(&j);
  }

  // Arrival of a message for the destination: end of the committed bus
  // transmission, or the source's end for same-node hand-offs. Computed
  // lazily per (candidate node), committed once for the chosen node.
  auto messageReady = [&](const Message& msg, std::int32_t instance) {
    const Time srcEnd =
        out.schedule.processEntry(msg.src, instance).end;
    const Time hint = out.mapping.messageHint(msg.id) +
                      static_cast<Time>(instance) *
                          sys.graph(msg.graph).period;
    return std::max(srcEnd, hint);
  };

  std::size_t scheduled = 0;
  while (!ready.empty()) {
    const Job& job = *ready.top();
    ready.pop();
    const Process& proc = sys.process(job.pid);
    const ProcessGraph& graph = sys.graph(proc.graph);
    const auto& inputs = sys.inputsOf(job.pid);

    const Time hintedRelease =
        std::max(job.release, static_cast<Time>(job.instance) * graph.period +
                                  out.mapping.startHint(job.pid));

    // Evaluate candidate nodes. The mapping is static: every instance of a
    // process runs on the same node, so once HCP has placed one instance
    // the other instances are pinned to that choice.
    std::vector<NodeId> candidates;
    if (req.chooseNodes) {
      const NodeId prev = out.mapping.nodeOf(job.pid);
      if (prev.valid()) {
        candidates.push_back(prev);
      } else {
        candidates = proc.allowedNodes();
      }
    } else {
      const NodeId n = out.mapping.nodeOf(job.pid);
      if (!n.valid() || !proc.allowedOn(n)) {
        throw std::invalid_argument(
            "scheduleGraphs: mapping assigns a disallowed node");
      }
      candidates.push_back(n);
    }

    NodeId bestNode;
    Time bestFinish = kTimeMax;
    for (const NodeId n : candidates) {
      Time est = hintedRelease;
      bool ok = true;
      for (const MessageId mId : inputs) {
        const Message& msg = sys.message(mId);
        const NodeId srcNode = out.mapping.nodeOf(msg.src);
        if (srcNode == n) {
          est = std::max(est,
                         out.schedule.processEntry(msg.src, job.instance).end);
          continue;
        }
        const auto placement = state.findBusSlot(
            bus.slotOfNode(srcNode), messageReady(msg, job.instance),
            bus.transmissionTime(msg.sizeBytes));
        if (!placement) {
          ok = false;
          break;
        }
        est = std::max(est, placement->end);
      }
      if (!ok) continue;
      const Time start = state.earliestFit(n, est, proc.wcetOn(n));
      if (start == kNoTime) continue;
      const Time finish = start + proc.wcetOn(n);
      if (finish < bestFinish) {
        bestFinish = finish;
        bestNode = n;
      }
    }
    if (!bestNode.valid()) {
      // Nothing fits inside the horizon: hard failure for this solution.
      out.placed = false;
      out.feasible = false;
      return out;
    }

    // Commit on the chosen node. Bus commits are sequential, so recompute
    // each placement against the occupancy left by the previous commit.
    const NodeId n = bestNode;
    Time est = hintedRelease;
    bool ok = true;
    for (const MessageId mId : inputs) {
      const Message& msg = sys.message(mId);
      const NodeId srcNode = out.mapping.nodeOf(msg.src);
      if (srcNode == n) {
        est = std::max(est,
                       out.schedule.processEntry(msg.src, job.instance).end);
        continue;
      }
      const std::size_t slot = bus.slotOfNode(srcNode);
      const auto placement = state.findBusSlot(
          slot, messageReady(msg, job.instance),
          bus.transmissionTime(msg.sizeBytes));
      if (!placement) {
        ok = false;
        break;
      }
      state.occupyBus(slot, placement->round,
                      bus.transmissionTime(msg.sizeBytes));
      out.schedule.addMessage({msg.id, job.instance, slot, placement->round,
                               placement->start, placement->end});
      est = std::max(est, placement->end);
    }
    if (!ok) {
      out.placed = false;
      out.feasible = false;
      return out;
    }
    const Time start = state.earliestFit(n, est, proc.wcetOn(n));
    if (start == kNoTime) {
      out.placed = false;
      out.feasible = false;
      return out;
    }
    const Time end = start + proc.wcetOn(n);
    state.occupyNode(n, {start, end});
    out.schedule.addProcess({job.pid, job.instance, n, start, end});
    out.mapping.setNode(job.pid, n);
    ++scheduled;

    if (end > job.absDeadline) {
      out.deadlineMisses += 1;
      out.totalLateness += end - job.absDeadline;
    }

    // Release successors of the same instance.
    for (const MessageId mId : sys.outputsOf(job.pid)) {
      const Message& msg = sys.message(mId);
      Job& dst = jobs[jobIndex.at(jobKey(msg.dst, job.instance))];
      if (--dst.remainingInputs == 0) ready.push(&dst);
    }
  }

  out.placed = scheduled == jobs.size();
  out.feasible = out.placed && out.deadlineMisses == 0;
  return out;
}

}  // namespace ides
