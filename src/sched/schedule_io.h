// Schedule serialization: dump a static cyclic schedule to a portable CSV
// text form and load it back.
//
// The exported form is the hand-off artifact of the design flow: it is what
// a TTP configuration tool would consume to program the nodes' dispatch
// tables and the bus controller's MEDL. Round-trips exactly (integer
// ticks).
#pragma once

#include <iosfwd>
#include <string>

#include "sched/schedule.h"

namespace ides {

class SystemModel;

/// Write the schedule as two CSV sections:
///   processes: pid,name,instance,node,start,end
///   messages:  mid,instance,slot,round,start,end
void writeSchedule(std::ostream& os, const SystemModel& sys,
                   const Schedule& schedule);

/// Parse a schedule previously written by writeSchedule. Throws
/// std::invalid_argument on malformed input (unknown ids, bad numbers,
/// truncated rows). The result is *not* validated against timing
/// invariants — run validateSchedule for that.
Schedule readSchedule(std::istream& is, const SystemModel& sys);

/// Convenience: round-trip through strings.
std::string scheduleToString(const SystemModel& sys,
                             const Schedule& schedule);
Schedule scheduleFromString(const std::string& text, const SystemModel& sys);

}  // namespace ides
