#include "sched/schedule.h"

#include <algorithm>
#include <stdexcept>

namespace ides {

void Schedule::addProcess(const ScheduledProcess& sp) {
  const auto k = key(sp.pid.value, sp.instance);
  if (!processIndex_.emplace(k, processes_.size()).second) {
    throw std::logic_error("Schedule: duplicate process entry");
  }
  processes_.push_back(sp);
}

void Schedule::addMessage(const ScheduledMessage& sm) {
  const auto k = key(sm.mid.value, sm.instance);
  if (!messageIndex_.emplace(k, messages_.size()).second) {
    throw std::logic_error("Schedule: duplicate message entry");
  }
  messages_.push_back(sm);
}

bool Schedule::hasProcess(ProcessId p, std::int32_t instance) const {
  return processIndex_.contains(key(p.value, instance));
}

const ScheduledProcess& Schedule::processEntry(ProcessId p,
                                               std::int32_t instance) const {
  return processes_.at(processIndex_.at(key(p.value, instance)));
}

bool Schedule::hasMessage(MessageId m, std::int32_t instance) const {
  return messageIndex_.contains(key(m.value, instance));
}

const ScheduledMessage& Schedule::messageEntry(MessageId m,
                                               std::int32_t instance) const {
  return messages_.at(messageIndex_.at(key(m.value, instance)));
}

void Schedule::merge(const Schedule& other) {
  for (const ScheduledProcess& sp : other.processes_) addProcess(sp);
  for (const ScheduledMessage& sm : other.messages_) addMessage(sm);
}

Time Schedule::makespan() const {
  Time last = 0;
  for (const ScheduledProcess& sp : processes_) last = std::max(last, sp.end);
  for (const ScheduledMessage& sm : messages_) last = std::max(last, sm.end);
  return last;
}

}  // namespace ides
