#include "sched/mapping.h"

#include "model/system_model.h"

namespace ides {

MappingSolution::MappingSolution(std::size_t processCount,
                                 std::size_t messageCount)
    : node_(processCount),
      startHint_(processCount, 0),
      messageHint_(messageCount, 0) {}

MappingSolution::MappingSolution(const SystemModel& sys)
    : MappingSolution(sys.processes().size(), sys.messages().size()) {}

}  // namespace ides
