#include "sched/gantt.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "model/system_model.h"

namespace ides {

namespace {

/// Label character for the i-th distinct process: A..Z a..z 0..9 then '?'.
char labelChar(std::size_t i) {
  if (i < 26) return static_cast<char>('A' + i);
  i -= 26;
  if (i < 26) return static_cast<char>('a' + i);
  i -= 26;
  if (i < 10) return static_cast<char>('0' + i);
  return '?';
}

}  // namespace

std::string renderGantt(const SystemModel& sys, const Schedule& schedule,
                        const GanttOptions& options) {
  const Architecture& arch = sys.architecture();
  const Time horizon =
      options.horizon == kNoTime ? sys.hyperperiod() : options.horizon;
  const int width = std::max(16, options.width);
  auto toCol = [&](Time t) {
    return static_cast<int>(t * width / horizon);
  };

  std::ostringstream os;
  os << "time 0 .. " << horizon << "  ('" << '.'
     << "' = slack, letters = processes, '#' = bus transmission)\n";

  // Legend: map each process that appears to a letter.
  std::vector<char> label(sys.processes().size(), 0);
  std::size_t next = 0;
  for (const ScheduledProcess& sp : schedule.processes()) {
    if (label[sp.pid.index()] == 0) label[sp.pid.index()] = labelChar(next++);
  }

  for (const Node& node : arch.nodes()) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (const ScheduledProcess& sp : schedule.processes()) {
      if (sp.node != node.id) continue;
      const int c0 = std::clamp(toCol(sp.start), 0, width - 1);
      const int c1 = std::clamp(toCol(sp.end - 1), c0, width - 1);
      for (int c = c0; c <= c1; ++c) {
        row[static_cast<std::size_t>(c)] = label[sp.pid.index()];
      }
    }
    os << "  " << node.name << " |" << row << "|\n";
  }

  // Bus row.
  {
    std::string row(static_cast<std::size_t>(width), '.');
    if (options.showRounds) {
      const Time round = arch.bus().roundLength();
      for (Time t = 0; t < horizon; t += round) {
        row[static_cast<std::size_t>(std::clamp(toCol(t), 0, width - 1))] =
            '|';
      }
    }
    for (const ScheduledMessage& sm : schedule.messages()) {
      const int c0 = std::clamp(toCol(sm.start), 0, width - 1);
      const int c1 = std::clamp(toCol(sm.end - 1), c0, width - 1);
      for (int c = c0; c <= c1; ++c) {
        row[static_cast<std::size_t>(c)] = '#';
      }
    }
    os << "  bus"
       << std::string(
              arch.nodes().empty()
                  ? 0
                  : std::max<std::size_t>(arch.nodes()[0].name.size(), 3) - 3,
              ' ')
       << " |" << row << "|\n";
  }

  // Legend.
  os << "  legend:";
  for (const ScheduledProcess& sp : schedule.processes()) {
    const Process& p = sys.process(sp.pid);
    if (sp.instance != 0) continue;
    os << ' ' << label[sp.pid.index()] << '=' << p.name;
  }
  os << '\n';
  return os.str();
}

}  // namespace ides
