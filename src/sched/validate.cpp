#include "sched/validate.h"

#include <sstream>
#include <unordered_map>

#include "model/system_model.h"
#include "util/interval.h"

namespace ides {

const char* toString(ValidationIssue::Kind kind) {
  using Kind = ValidationIssue::Kind;
  switch (kind) {
    case Kind::MissingEntry: return "missing-entry";
    case Kind::DuplicateBeyondInstances: return "entry-beyond-instances";
    case Kind::OutsideWindow: return "outside-window";
    case Kind::WrongDuration: return "wrong-duration";
    case Kind::DisallowedNode: return "disallowed-node";
    case Kind::NodeOverlap: return "node-overlap";
    case Kind::MissingMessage: return "missing-message";
    case Kind::LocalMessageOnBus: return "local-message-on-bus";
    case Kind::WrongSlot: return "wrong-slot";
    case Kind::OutsideSlot: return "outside-slot";
    case Kind::SlotOverflow: return "slot-overflow";
    case Kind::PrecedenceViolated: return "precedence-violated";
    case Kind::BeyondHorizon: return "beyond-horizon";
  }
  return "?";
}

std::string ValidationReport::summary() const {
  if (issues.empty()) return "schedule valid";
  std::ostringstream os;
  os << issues.size() << " issue(s):\n";
  for (const ValidationIssue& issue : issues) {
    os << "  [" << toString(issue.kind) << "] " << issue.detail << '\n';
  }
  return os.str();
}

namespace {

class Checker {
 public:
  Checker(const SystemModel& sys, const Schedule& schedule,
          const std::vector<GraphId>& graphs)
      : sys_(sys), schedule_(schedule), graphs_(graphs) {}

  ValidationReport run() {
    checkProcesses();
    checkNodeExclusivity();
    checkMessages();
    return std::move(report_);
  }

 private:
  void issue(ValidationIssue::Kind kind, const std::string& detail) {
    report_.issues.push_back({kind, detail});
  }

  std::string procName(ProcessId p, std::int32_t k) const {
    return sys_.process(p).name + "#" + std::to_string(k);
  }

  void checkProcesses() {
    const Time horizon = sys_.hyperperiod();
    for (const GraphId gid : graphs_) {
      const ProcessGraph& g = sys_.graph(gid);
      const std::int64_t instances = sys_.instanceCount(gid);
      for (ProcessId p : g.processes) {
        for (std::int64_t k = 0; k < instances; ++k) {
          const auto ki = static_cast<std::int32_t>(k);
          if (!schedule_.hasProcess(p, ki)) {
            issue(ValidationIssue::Kind::MissingEntry, procName(p, ki));
            continue;
          }
          const ScheduledProcess& e = schedule_.processEntry(p, ki);
          if (e.start < g.releaseOf(k) || e.end > g.deadlineOf(k)) {
            issue(ValidationIssue::Kind::OutsideWindow,
                  procName(p, ki) + " runs [" + std::to_string(e.start) +
                      "," + std::to_string(e.end) + ") window [" +
                      std::to_string(g.releaseOf(k)) + "," +
                      std::to_string(g.deadlineOf(k)) + "]");
          }
          const Process& proc = sys_.process(p);
          if (!proc.allowedOn(e.node)) {
            issue(ValidationIssue::Kind::DisallowedNode, procName(p, ki));
          } else if (e.end - e.start != proc.wcetOn(e.node)) {
            issue(ValidationIssue::Kind::WrongDuration,
                  procName(p, ki) + " duration " +
                      std::to_string(e.end - e.start) + " != wcet " +
                      std::to_string(proc.wcetOn(e.node)));
          }
          if (e.end > horizon) {
            issue(ValidationIssue::Kind::BeyondHorizon, procName(p, ki));
          }
        }
        // Entries beyond the instance count indicate a stale schedule.
        if (schedule_.hasProcess(p, static_cast<std::int32_t>(instances))) {
          issue(ValidationIssue::Kind::DuplicateBeyondInstances,
                sys_.process(p).name);
        }
      }
    }
  }

  void checkNodeExclusivity() {
    std::vector<IntervalSet> busy(sys_.architecture().nodeCount());
    for (const ScheduledProcess& e : schedule_.processes()) {
      if (busy[e.node.index()].intersects({e.start, e.end})) {
        issue(ValidationIssue::Kind::NodeOverlap,
              procName(e.pid, e.instance) + " on N" +
                  std::to_string(e.node.value));
      }
      busy[e.node.index()].add({e.start, e.end});
    }
  }

  void checkMessages() {
    const TdmaBus& bus = sys_.architecture().bus();
    std::unordered_map<std::int64_t, Time> slotLoad;
    for (const GraphId gid : graphs_) {
      const ProcessGraph& g = sys_.graph(gid);
      const std::int64_t instances = sys_.instanceCount(gid);
      for (MessageId mid : g.messages) {
        const Message& msg = sys_.message(mid);
        for (std::int64_t k = 0; k < instances; ++k) {
          const auto ki = static_cast<std::int32_t>(k);
          if (!schedule_.hasProcess(msg.src, ki) ||
              !schedule_.hasProcess(msg.dst, ki)) {
            continue;  // already reported as MissingEntry
          }
          const ScheduledProcess& src = schedule_.processEntry(msg.src, ki);
          const ScheduledProcess& dst = schedule_.processEntry(msg.dst, ki);
          std::string name = "m";
          name += std::to_string(mid.value);
          name += '#';
          name += std::to_string(ki);
          if (src.node == dst.node) {
            if (schedule_.hasMessage(mid, ki)) {
              issue(ValidationIssue::Kind::LocalMessageOnBus, name);
            }
            if (dst.start < src.end) {
              issue(ValidationIssue::Kind::PrecedenceViolated,
                    name + " (local)");
            }
            continue;
          }
          if (!schedule_.hasMessage(mid, ki)) {
            issue(ValidationIssue::Kind::MissingMessage, name);
            continue;
          }
          const ScheduledMessage& sm = schedule_.messageEntry(mid, ki);
          if (sm.slotIndex != bus.slotOfNode(src.node)) {
            issue(ValidationIssue::Kind::WrongSlot, name);
          } else {
            if (sm.start < bus.slotStart(sm.round, sm.slotIndex) ||
                sm.end > bus.slotEnd(sm.round, sm.slotIndex)) {
              issue(ValidationIssue::Kind::OutsideSlot, name);
            }
            slotLoad[static_cast<std::int64_t>(sm.slotIndex) * (1 << 20) +
                     sm.round] += sm.end - sm.start;
          }
          if (sm.start < src.end || dst.start < sm.end) {
            issue(ValidationIssue::Kind::PrecedenceViolated, name);
          }
          if (sm.end > sys_.hyperperiod()) {
            issue(ValidationIssue::Kind::BeyondHorizon, name);
          }
        }
      }
    }
    for (const auto& [key, ticks] : slotLoad) {
      const auto slot = static_cast<std::size_t>(key >> 20);
      if (ticks > bus.slot(slot).length) {
        issue(ValidationIssue::Kind::SlotOverflow,
              "slot " + std::to_string(slot) + " round " +
                  std::to_string(key & ((1 << 20) - 1)));
      }
    }
  }

  const SystemModel& sys_;
  const Schedule& schedule_;
  const std::vector<GraphId>& graphs_;
  ValidationReport report_;
};

}  // namespace

ValidationReport validateSchedule(const SystemModel& sys,
                                  const Schedule& schedule,
                                  const std::vector<GraphId>& graphs) {
  return Checker(sys, schedule, graphs).run();
}

}  // namespace ides
