// Static cyclic schedule: the placed process executions and bus messages.
//
// A Schedule is a record of decisions, not an occupancy structure; the
// occupancy (for gap search) lives in PlatformState. Keeping them separate
// lets the frozen existing-application schedule be displayed and analyzed
// while evaluations only copy the cheap occupancy state.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace ides {

struct ScheduledProcess {
  ProcessId pid;
  std::int32_t instance = 0;
  NodeId node;
  Time start = 0;
  Time end = 0;

  friend bool operator==(const ScheduledProcess&,
                         const ScheduledProcess&) = default;
};

struct ScheduledMessage {
  MessageId mid;
  std::int32_t instance = 0;
  std::size_t slotIndex = 0;
  std::int64_t round = 0;
  Time start = 0;  ///< first tick on the bus
  Time end = 0;    ///< arrival: tick after the last byte

  friend bool operator==(const ScheduledMessage&,
                         const ScheduledMessage&) = default;
};

class Schedule {
 public:
  void addProcess(const ScheduledProcess& sp);
  void addMessage(const ScheduledMessage& sm);

  [[nodiscard]] const std::vector<ScheduledProcess>& processes() const {
    return processes_;
  }
  [[nodiscard]] const std::vector<ScheduledMessage>& messages() const {
    return messages_;
  }

  [[nodiscard]] bool hasProcess(ProcessId p, std::int32_t instance) const;
  [[nodiscard]] const ScheduledProcess& processEntry(
      ProcessId p, std::int32_t instance) const;
  [[nodiscard]] bool hasMessage(MessageId m, std::int32_t instance) const;
  [[nodiscard]] const ScheduledMessage& messageEntry(
      MessageId m, std::int32_t instance) const;

  /// Merge another schedule's entries into this one (used to view frozen +
  /// current together).
  void merge(const Schedule& other);

  /// Latest end time over all entries (0 if empty).
  [[nodiscard]] Time makespan() const;

  [[nodiscard]] std::size_t processEntryCount() const {
    return processes_.size();
  }
  [[nodiscard]] std::size_t messageEntryCount() const {
    return messages_.size();
  }

 private:
  static std::int64_t key(std::int32_t id, std::int32_t instance) {
    return (static_cast<std::int64_t>(id) << 20) | instance;
  }

  std::vector<ScheduledProcess> processes_;
  std::vector<ScheduledMessage> messages_;
  std::unordered_map<std::int64_t, std::size_t> processIndex_;
  std::unordered_map<std::int64_t, std::size_t> messageIndex_;
};

}  // namespace ides
