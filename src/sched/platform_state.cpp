#include "sched/platform_state.h"

#include <algorithm>
#include <stdexcept>

namespace ides {

PlatformState::PlatformState(const Architecture& arch, Time horizon)
    : arch_(&arch), bus_(&arch.bus()), horizon_(horizon) {
  if (horizon_ <= 0 || horizon_ % bus_->roundLength() != 0) {
    throw std::invalid_argument(
        "PlatformState: horizon must be a positive multiple of the round");
  }
  roundCount_ = horizon_ / bus_->roundLength();
  nodeBusy_.resize(arch.nodeCount());
  slotUsed_.assign(bus_->slotCount(),
                   std::vector<Time>(static_cast<std::size_t>(roundCount_),
                                     0));
  slotCursor_.assign(bus_->slotCount(), 0);
}

Time PlatformState::earliestFit(NodeId node, Time after, Time duration) const {
  if (after < 0) after = 0;
  if (duration <= 0) throw std::invalid_argument("earliestFit: duration <= 0");
  const auto& busy = nodeBusy_[node.index()].intervals();
  Time cursor = after;
  // Skip straight to the first busy interval that can constrain the cursor
  // (end > after); everything before it is history. The evaluation inner
  // loop calls this once per job against node sets holding the whole frozen
  // base, so the scan start matters more than the scan itself.
  auto it = std::upper_bound(
      busy.begin(), busy.end(), after,
      [](Time t, const Interval& iv) { return t < iv.end; });
  for (; it != busy.end(); ++it) {
    if (it->start >= cursor + duration) break;  // gap before it is big enough
    cursor = std::max(cursor, it->end);
  }
  return cursor + duration <= horizon_ ? cursor : kNoTime;
}

void PlatformState::occupyNode(NodeId node, Interval iv) {
  if (iv.empty() || iv.start < 0 || iv.end > horizon_) {
    throw std::logic_error("occupyNode: interval outside horizon");
  }
  IntervalSet& busy = nodeBusy_[node.index()];
  if (busy.intersects(iv)) {
    throw std::logic_error("occupyNode: double booking");
  }
  busy.add(iv);
  if (journaling_) {
    journal_.push_back({JournalEntry::Kind::Node,
                        static_cast<std::uint32_t>(node.index()), iv, 0, 0});
  }
}

std::optional<PlatformState::BusPlacement> PlatformState::findBusSlot(
    std::size_t slotIndex, Time ready, Time txTicks,
    std::int64_t minRound) const {
  if (txTicks <= 0) throw std::invalid_argument("findBusSlot: txTicks <= 0");
  if (txTicks > bus_->slot(slotIndex).length) return std::nullopt;
  if (ready < 0) ready = 0;
  std::int64_t round =
      std::max(minRound, bus_->firstRoundAtOrAfter(slotIndex, ready));
  // Every round below the cursor is full; txTicks >= 1 can never fit there.
  round = std::max(round, slotCursor_[slotIndex]);
  for (; round < roundCount_; ++round) {
    const Time used = slotUsed_[slotIndex][static_cast<std::size_t>(round)];
    if (used + txTicks > bus_->slot(slotIndex).length) continue;
    const Time start = bus_->slotStart(round, slotIndex) + used;
    return BusPlacement{round, start, start + txTicks};
  }
  return std::nullopt;
}

void PlatformState::occupyBus(std::size_t slotIndex, std::int64_t round,
                              Time txTicks) {
  if (round < 0 || round >= roundCount_) {
    throw std::logic_error("occupyBus: round outside horizon");
  }
  Time& used = slotUsed_[slotIndex][static_cast<std::size_t>(round)];
  if (used + txTicks > bus_->slot(slotIndex).length) {
    throw std::logic_error("occupyBus: slot overflow");
  }
  used += txTicks;
  // Advance the first-free-round cursor past every round this occupy just
  // sealed (amortized O(1): each round is crossed once until a rollback
  // reopens it).
  std::int64_t& cursor = slotCursor_[slotIndex];
  if (round == cursor) {
    const Time length = bus_->slot(slotIndex).length;
    while (cursor < roundCount_ &&
           slotUsed_[slotIndex][static_cast<std::size_t>(cursor)] >= length) {
      ++cursor;
    }
  }
  if (journaling_) {
    journal_.push_back({JournalEntry::Kind::Bus,
                        static_cast<std::uint32_t>(slotIndex),
                        Interval{},
                        round,
                        txTicks});
  }
}

void PlatformState::setJournaling(bool enabled) {
  journaling_ = enabled;
  journal_.clear();
}

void PlatformState::rollbackTo(Mark m) {
  if (!journaling_) {
    throw std::logic_error("rollbackTo: journaling is off");
  }
  if (m > journal_.size()) {
    throw std::logic_error("rollbackTo: mark ahead of the journal");
  }
  // The undone occupies are pairwise disjoint (each saw the range free), so
  // order does not matter: bus ticks subtract directly, and each touched
  // node gets one batched subtraction pass instead of a per-interval
  // rewrite. Transmissions pack from the slot front, so freeing the ticks
  // restores exactly the position the next findBusSlot would hand out.
  static thread_local std::vector<std::pair<std::uint32_t, Interval>> undo;
  undo.clear();
  for (std::size_t i = m; i < journal_.size(); ++i) {
    const JournalEntry& e = journal_[i];
    if (e.kind == JournalEntry::Kind::Node) {
      undo.emplace_back(e.index, e.iv);
    } else {
      slotUsed_[e.index][static_cast<std::size_t>(e.round)] -= e.txTicks;
      // The freed ticks reopen this round: lower the cursor so findBusSlot
      // sees it again (rounds below it stay full, keeping the invariant).
      slotCursor_[e.index] = std::min(slotCursor_[e.index], e.round);
    }
  }
  journal_.resize(m);
  std::sort(undo.begin(), undo.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second.start < b.second.start;
            });
  static thread_local std::vector<Interval> run;
  for (std::size_t i = 0; i < undo.size();) {
    const std::uint32_t node = undo[i].first;
    run.clear();
    for (; i < undo.size() && undo[i].first == node; ++i) {
      run.push_back(undo[i].second);
    }
    nodeBusy_[node].subtractSorted(run.data(), run.data() + run.size());
  }
}

void PlatformState::replay(const JournalEntry* first,
                           const JournalEntry* last) {
  for (const JournalEntry* e = first; e != last; ++e) {
    if (e->kind == JournalEntry::Kind::Node) {
      occupyNode(NodeId{static_cast<std::int32_t>(e->index)}, e->iv);
    } else {
      occupyBus(e->index, e->round, e->txTicks);
    }
  }
}

Time PlatformState::totalNodeSlack() const {
  Time total = 0;
  for (const IntervalSet& busy : nodeBusy_) {
    total += horizon_ - busy.totalLength();
  }
  return total;
}

Time PlatformState::totalBusSlackTicks() const {
  Time total = 0;
  for (std::size_t s = 0; s < slotUsed_.size(); ++s) {
    for (Time used : slotUsed_[s]) {
      total += bus_->slot(s).length - used;
    }
  }
  return total;
}

}  // namespace ides
