#include "sched/platform_state.h"

#include <stdexcept>

namespace ides {

PlatformState::PlatformState(const Architecture& arch, Time horizon)
    : arch_(&arch), bus_(&arch.bus()), horizon_(horizon) {
  if (horizon_ <= 0 || horizon_ % bus_->roundLength() != 0) {
    throw std::invalid_argument(
        "PlatformState: horizon must be a positive multiple of the round");
  }
  roundCount_ = horizon_ / bus_->roundLength();
  nodeBusy_.resize(arch.nodeCount());
  slotUsed_.assign(bus_->slotCount(),
                   std::vector<Time>(static_cast<std::size_t>(roundCount_),
                                     0));
}

Time PlatformState::earliestFit(NodeId node, Time after, Time duration) const {
  if (after < 0) after = 0;
  if (duration <= 0) throw std::invalid_argument("earliestFit: duration <= 0");
  const auto& busy = nodeBusy_[node.index()].intervals();
  Time cursor = after;
  for (const Interval& iv : busy) {
    if (iv.end <= cursor) continue;
    if (iv.start >= cursor + duration) break;  // gap before iv is big enough
    cursor = std::max(cursor, iv.end);
  }
  return cursor + duration <= horizon_ ? cursor : kNoTime;
}

void PlatformState::occupyNode(NodeId node, Interval iv) {
  if (iv.empty() || iv.start < 0 || iv.end > horizon_) {
    throw std::logic_error("occupyNode: interval outside horizon");
  }
  IntervalSet& busy = nodeBusy_[node.index()];
  if (busy.intersects(iv)) {
    throw std::logic_error("occupyNode: double booking");
  }
  busy.add(iv);
}

std::optional<PlatformState::BusPlacement> PlatformState::findBusSlot(
    std::size_t slotIndex, Time ready, Time txTicks,
    std::int64_t minRound) const {
  if (txTicks <= 0) throw std::invalid_argument("findBusSlot: txTicks <= 0");
  if (txTicks > bus_->slot(slotIndex).length) return std::nullopt;
  if (ready < 0) ready = 0;
  std::int64_t round =
      std::max(minRound, bus_->firstRoundAtOrAfter(slotIndex, ready));
  for (; round < roundCount_; ++round) {
    const Time used = slotUsed_[slotIndex][static_cast<std::size_t>(round)];
    if (used + txTicks > bus_->slot(slotIndex).length) continue;
    const Time start = bus_->slotStart(round, slotIndex) + used;
    return BusPlacement{round, start, start + txTicks};
  }
  return std::nullopt;
}

void PlatformState::occupyBus(std::size_t slotIndex, std::int64_t round,
                              Time txTicks) {
  if (round < 0 || round >= roundCount_) {
    throw std::logic_error("occupyBus: round outside horizon");
  }
  Time& used = slotUsed_[slotIndex][static_cast<std::size_t>(round)];
  if (used + txTicks > bus_->slot(slotIndex).length) {
    throw std::logic_error("occupyBus: slot overflow");
  }
  used += txTicks;
}

Time PlatformState::totalNodeSlack() const {
  Time total = 0;
  for (const IntervalSet& busy : nodeBusy_) {
    total += horizon_ - busy.totalLength();
  }
  return total;
}

Time PlatformState::totalBusSlackTicks() const {
  Time total = 0;
  for (std::size_t s = 0; s < slotUsed_.size(); ++s) {
    for (Time used : slotUsed_[s]) {
      total += bus_->slot(s).length - used;
    }
  }
  return total;
}

}  // namespace ides
