// Processing node of the distributed architecture.
//
// The paper's architecture (slide 4) is a set of heterogeneous nodes, each
// with CPU, RAM/ROM, optionally an ASIC, and a communication controller
// attached to the shared TDMA bus. For mapping and scheduling, all that
// matters per node is its identity and a relative speed class: process WCETs
// are stored per (process, node), so heterogeneity is fully general — the
// speed class only drives the synthetic generators.
#pragma once

#include <string>

#include "util/ids.h"

namespace ides {

struct Node {
  NodeId id;
  std::string name;
  /// Relative speed class used by generators to derive per-node WCETs
  /// (1.0 = reference CPU; 0.5 = twice as fast; 2.0 = twice as slow).
  double speedFactor = 1.0;
};

}  // namespace ides
