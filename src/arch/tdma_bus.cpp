#include "arch/tdma_bus.h"

#include <stdexcept>
#include <unordered_set>

namespace ides {

TdmaBus::TdmaBus(std::vector<TdmaSlot> slots, std::int64_t bytesPerTick)
    : slots_(std::move(slots)), bytesPerTick_(bytesPerTick) {
  if (slots_.empty()) throw std::invalid_argument("TdmaBus: no slots");
  if (bytesPerTick_ <= 0) {
    throw std::invalid_argument("TdmaBus: bytesPerTick must be positive");
  }
  slotOffset_.reserve(slots_.size());
  std::unordered_set<NodeId> owners;
  Time offset = 0;
  for (const TdmaSlot& s : slots_) {
    if (s.length <= 0) {
      throw std::invalid_argument("TdmaBus: slot length must be positive");
    }
    if (!s.owner.valid()) {
      throw std::invalid_argument("TdmaBus: slot owner invalid");
    }
    if (!owners.insert(s.owner).second) {
      throw std::invalid_argument("TdmaBus: duplicate slot owner");
    }
    slotOffset_.push_back(offset);
    offset += s.length;
  }
  roundLength_ = offset;
}

std::size_t TdmaBus::slotOfNode(NodeId node) const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].owner == node) return i;
  }
  throw std::out_of_range("TdmaBus: node has no slot");
}

bool TdmaBus::nodeHasSlot(NodeId node) const {
  for (const TdmaSlot& s : slots_) {
    if (s.owner == node) return true;
  }
  return false;
}

std::int64_t TdmaBus::firstRoundAtOrAfter(std::size_t i, Time t) const {
  if (t <= slotOffset_[i]) return 0;
  // slotStart(r, i) = r*roundLength + offset[i] >= t
  return ceilDiv(t - slotOffset_[i], roundLength_);
}

}  // namespace ides
