// The target hardware platform: heterogeneous nodes + one TDMA bus.
#pragma once

#include <string>
#include <vector>

#include "arch/node.h"
#include "arch/tdma_bus.h"

namespace ides {

class Architecture {
 public:
  Architecture() = default;
  /// Every node must own exactly one bus slot.
  Architecture(std::vector<Node> nodes, TdmaBus bus);

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const Node& node(NodeId id) const {
    return nodes_.at(id.index());
  }
  [[nodiscard]] std::size_t nodeCount() const { return nodes_.size(); }
  [[nodiscard]] const TdmaBus& bus() const { return bus_; }

 private:
  std::vector<Node> nodes_;
  TdmaBus bus_;
};

/// Convenience builder: `count` nodes with the given speed factors (cycled),
/// equal slot lengths, slots in node order.
Architecture makeUniformArchitecture(std::size_t count, Time slotLength,
                                     std::int64_t bytesPerTick,
                                     const std::vector<double>& speedFactors = {
                                         1.0});

/// Variant with one slot length per node (slots in node order) — used by
/// the suite generator when the uniform round must be snapped to divide
/// the hyperperiod.
Architecture makeUniformArchitecture(const std::vector<Time>& slotLengths,
                                     std::int64_t bytesPerTick,
                                     const std::vector<double>& speedFactors = {
                                         1.0});

}  // namespace ides
