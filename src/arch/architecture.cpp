#include "arch/architecture.h"

#include <stdexcept>

namespace ides {

Architecture::Architecture(std::vector<Node> nodes, TdmaBus bus)
    : nodes_(std::move(nodes)), bus_(std::move(bus)) {
  if (nodes_.empty()) throw std::invalid_argument("Architecture: no nodes");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].id.index() != i) {
      throw std::invalid_argument("Architecture: node ids must be dense");
    }
    if (!bus_.nodeHasSlot(nodes_[i].id)) {
      throw std::invalid_argument("Architecture: node without a bus slot");
    }
  }
  if (bus_.slotCount() != nodes_.size()) {
    throw std::invalid_argument("Architecture: slot count != node count");
  }
}

Architecture makeUniformArchitecture(std::size_t count, Time slotLength,
                                     std::int64_t bytesPerTick,
                                     const std::vector<double>& speedFactors) {
  return makeUniformArchitecture(std::vector<Time>(count, slotLength),
                                 bytesPerTick, speedFactors);
}

Architecture makeUniformArchitecture(const std::vector<Time>& slotLengths,
                                     std::int64_t bytesPerTick,
                                     const std::vector<double>& speedFactors) {
  if (slotLengths.empty()) {
    throw std::invalid_argument("makeUniformArchitecture: count == 0");
  }
  if (speedFactors.empty()) {
    throw std::invalid_argument("makeUniformArchitecture: no speed factors");
  }
  std::vector<Node> nodes;
  std::vector<TdmaSlot> slots;
  nodes.reserve(slotLengths.size());
  slots.reserve(slotLengths.size());
  for (std::size_t i = 0; i < slotLengths.size(); ++i) {
    const NodeId id{static_cast<std::int32_t>(i)};
    std::string name = "N";
    name += std::to_string(i);
    nodes.push_back(
        {id, std::move(name), speedFactors[i % speedFactors.size()]});
    slots.push_back({id, slotLengths[i]});
  }
  return Architecture{std::move(nodes), TdmaBus{std::move(slots),
                                                bytesPerTick}};
}

}  // namespace ides
