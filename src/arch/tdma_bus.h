// TDMA bus model (TTP-style, Kopetz & Grünsteidl '94).
//
// Bus time is divided into rounds; a round is a fixed sequence of slots, one
// per node. A node may transmit only inside its own slot. The slot sequence
// repeats identically every round, so the position of round r's slot for
// node n is a pure function of (r, n) — this is what makes static cyclic
// message scheduling possible.
//
// Capacity model: the bus moves `bytesPerTick` bytes per tick, so a slot of
// L ticks carries L*bytesPerTick bytes per round. Messages are packed
// back-to-back inside a slot occurrence; a message arrives at the tick its
// last byte has been transmitted.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace ides {

struct TdmaSlot {
  NodeId owner;
  Time length = 0;  // ticks
};

class TdmaBus {
 public:
  TdmaBus() = default;
  /// Slots must be non-empty with positive lengths and distinct owners.
  TdmaBus(std::vector<TdmaSlot> slots, std::int64_t bytesPerTick);

  [[nodiscard]] Time roundLength() const { return roundLength_; }
  [[nodiscard]] std::size_t slotCount() const { return slots_.size(); }
  [[nodiscard]] const TdmaSlot& slot(std::size_t i) const { return slots_[i]; }
  [[nodiscard]] const std::vector<TdmaSlot>& slots() const { return slots_; }
  [[nodiscard]] std::int64_t bytesPerTick() const { return bytesPerTick_; }

  /// Index of the slot owned by `node`. Throws if the node has no slot.
  [[nodiscard]] std::size_t slotOfNode(NodeId node) const;

  /// True if the node owns a slot (every mapped node must).
  [[nodiscard]] bool nodeHasSlot(NodeId node) const;

  /// Bytes a single occurrence of slot `i` can carry.
  [[nodiscard]] std::int64_t slotCapacityBytes(std::size_t i) const {
    return slots_[i].length * bytesPerTick_;
  }

  /// Start tick of slot `i` in round `round`.
  [[nodiscard]] Time slotStart(std::int64_t round, std::size_t i) const {
    return round * roundLength_ + slotOffset_[i];
  }
  [[nodiscard]] Time slotEnd(std::int64_t round, std::size_t i) const {
    return slotStart(round, i) + slots_[i].length;
  }

  /// Ticks needed to push `bytes` onto the bus.
  [[nodiscard]] Time transmissionTime(std::int64_t bytes) const {
    return ceilDiv(bytes, bytesPerTick_);
  }

  /// Smallest round r such that slotStart(r, i) >= t (r >= 0).
  [[nodiscard]] std::int64_t firstRoundAtOrAfter(std::size_t i, Time t) const;

 private:
  std::vector<TdmaSlot> slots_;
  std::vector<Time> slotOffset_;  // start offset of each slot within a round
  Time roundLength_ = 0;
  std::int64_t bytesPerTick_ = 1;
};

}  // namespace ides
