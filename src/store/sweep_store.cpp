#include "store/sweep_store.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/batch_suites.h"
#include "obs/telemetry.h"
#include "util/json_reader.h"
#include "util/provenance.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace ides {

namespace fs = std::filesystem;

namespace {

/// %.17g: enough digits that strtod recovers the exact double, so a loaded
/// record re-renders (%.6g in the BENCH json) byte-identically to the
/// original run.
std::string roundTripNum(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string uniqueSuffix() {
  static std::atomic<std::uint64_t> counter{0};
#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(getpid());
#else
  const long pid = 0;
#endif
  // Hostname included: pids collide across the machines sharing a store
  // directory, and a colliding tmp name would let a slow writer scribble
  // into a record another machine already renamed into place.
  std::string suffix = buildProvenance().hostname;
  suffix += '.';
  suffix += std::to_string(pid);
  suffix += '.';
  suffix += std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  return suffix;
}

/// A record must re-render exactly on load; "inf"/"nan" from %.17g would
/// make it permanently unparseable to the strict reader (quarantined and
/// re-run on every resume, forever), so non-finite outcomes are refused.
bool outcomeIsFinite(const InstanceOutcome& outcome) {
  if (outcome.hasReport) {
    const RunReport& report = outcome.report;
    for (const double v : {report.objective, report.metrics.c1p,
                           report.metrics.c1m, report.seconds}) {
      if (!std::isfinite(v)) return false;
    }
  }
  for (const auto& [key, value] : outcome.extras.fields) {
    if (!std::isfinite(value)) return false;
  }
  return true;
}

}  // namespace

std::string renderSweepRecord(const std::string& fingerprint,
                              const std::string& suiteName,
                              const std::string& instanceId,
                              const InstanceOutcome& outcome) {
  const Provenance& prov = buildProvenance();
  std::string out = "{\n";
  out += "  \"schema\": " + std::to_string(SweepStore::kSchemaVersion) +
         ",\n";
  // The fingerprint epoch the record was produced under. Informational for
  // readers (the fingerprint already folds it in, so an old-epoch record
  // can never be LOADED against new code) — `store gc --epoch` uses it to
  // find superseded records. Absent in pre-epoch-field records (= epoch
  // numbers below the field's introduction).
  out += "  \"epoch\": " + std::to_string(kSweepFingerprintEpoch) + ",\n";
  out += "  \"fingerprint\": " + jsonQuote(fingerprint) + ",\n";
  out += "  \"suite\": " + jsonQuote(suiteName) + ",\n";
  out += "  \"id\": " + jsonQuote(instanceId) + ",\n";
  out += "  \"git_sha\": " + jsonQuote(prov.gitSha) + ",\n";
  out += "  \"hostname\": " + jsonQuote(prov.hostname) + ",\n";
  out += "  \"hardware_concurrency\": " +
         std::to_string(prov.hardwareConcurrency) + ",\n";
  out += "  \"compiler\": " + jsonQuote(prov.compiler) + ",\n";
  out += std::string("  \"has_report\": ") +
         (outcome.hasReport ? "true" : "false") + ",\n";
  if (outcome.hasReport) {
    const RunReport& report = outcome.report;
    out += "  \"strategy\": " + jsonQuote(report.strategy) + ",\n";
    out += std::string("  \"feasible\": ") +
           (report.feasible ? "true" : "false") + ",\n";
    out += "  \"objective\": " + roundTripNum(report.objective) + ",\n";
    out += "  \"c1p\": " + roundTripNum(report.metrics.c1p) + ",\n";
    out += "  \"c1m\": " + roundTripNum(report.metrics.c1m) + ",\n";
    out += "  \"c2p\": " +
           std::to_string(static_cast<long long>(report.metrics.c2p)) +
           ",\n";
    out += "  \"c2m_bytes\": " +
           std::to_string(static_cast<long long>(report.metrics.c2mBytes)) +
           ",\n";
    out += "  \"evaluations\": " + std::to_string(report.evaluations) +
           ",\n";
    out += std::string("  \"run_stopped\": ") +
           (report.stopped ? "true" : "false") + ",\n";
    out += "  \"seconds\": " + roundTripNum(report.seconds) + ",\n";
  }
  out += "  \"extras\": [";
  bool first = true;
  for (const auto& [key, value] : outcome.extras.fields) {
    out += first ? "\n    [" : ",\n    [";
    first = false;
    out += jsonQuote(key) + ", " + roundTripNum(value) + "]";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

InstanceOutcome parseSweepRecord(const JsonValue& root,
                                 const std::string& fingerprint) {
  if (root.intAt("schema") != SweepStore::kSchemaVersion) {
    throw std::runtime_error("record schema mismatch");
  }
  if (root.stringAt("fingerprint") != fingerprint) {
    throw std::runtime_error("record fingerprint does not match file name");
  }
  InstanceOutcome outcome;
  outcome.hasReport = root.boolAt("has_report");
  if (outcome.hasReport) {
    RunReport& report = outcome.report;
    report.strategy = root.stringAt("strategy");
    report.feasible = root.boolAt("feasible");
    report.objective = root.numberAt("objective");
    report.metrics.c1p = root.numberAt("c1p");
    report.metrics.c1m = root.numberAt("c1m");
    report.metrics.c2p = root.intAt("c2p");
    report.metrics.c2mBytes = root.intAt("c2m_bytes");
    report.evaluations =
        static_cast<std::size_t>(root.intAt("evaluations"));
    report.stopped = root.boolAt("run_stopped");
    report.seconds = root.numberAt("seconds");
  }
  const JsonValue& extras = root.at("extras");
  if (!extras.isArray()) throw std::runtime_error("extras is not an array");
  for (const JsonValue& entry : extras.items) {
    if (!entry.isArray() || entry.items.size() != 2 ||
        entry.items[0].kind != JsonValue::Kind::String ||
        entry.items[1].kind != JsonValue::Kind::Number) {
      throw std::runtime_error("malformed extras entry");
    }
    outcome.extras.add(entry.items[0].stringValue,
                       entry.items[1].numberValue);
  }
  return outcome;
}

SweepStore::SweepStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(fs::path(dir_) / "records", ec);
  if (!ec) fs::create_directories(fs::path(dir_) / "quarantine", ec);
  if (ec) {
    throw std::runtime_error("SweepStore: cannot create " + dir_ + ": " +
                             ec.message());
  }
}

std::string SweepStore::recordPath(const std::string& fingerprint) const {
  return (fs::path(dir_) / "records" / (fingerprint + ".json")).string();
}

bool SweepStore::contains(const std::string& fingerprint) const {
  std::error_code ec;
  return fs::exists(recordPath(fingerprint), ec);
}

std::size_t SweepStore::recordCount() const {
  std::size_t count = 0;
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(fs::path(dir_) / "records", ec)) {
    if (entry.path().extension() == ".json") ++count;
  }
  return count;
}

bool SweepStore::outcomeIsComplete(const InstanceOutcome& outcome) {
  if (outcome.hasReport && outcome.report.stopped) return false;
  for (const auto& [key, value] : outcome.extras.fields) {
    if (key == "run_stopped" && value != 0.0) return false;
  }
  return true;
}

namespace {

/// tmp+rename publish of a rendered record document; first writer wins.
bool publishRecordText(const std::string& finalPath,
                       const std::string& text) {
  std::error_code ec;
  if (fs::exists(finalPath, ec)) return false;

  const std::string tmpPath = finalPath + ".tmp." + uniqueSuffix();
  {
    std::ofstream out(tmpPath, std::ios::binary);
    if (!out) {
      throw std::runtime_error("SweepStore: cannot write " + tmpPath);
    }
    out << text;
    out.flush();
    if (!out) {
      throw std::runtime_error("SweepStore: short write to " + tmpPath);
    }
  }
  // First writer wins: a record that appeared while we were rendering is
  // equivalent (only wall-clock differs), keep it and drop ours. The
  // exists/rename race window leaves at worst the concurrent writer's
  // equally valid record in place — rename is atomic either way.
  if (fs::exists(finalPath, ec)) {
    fs::remove(tmpPath, ec);
    return false;
  }
  fs::rename(tmpPath, finalPath, ec);
  if (ec) {
    fs::remove(tmpPath, ec);
    throw std::runtime_error("SweepStore: cannot rename into " + finalPath);
  }
  telemetry()
      .counter("ides_store_records_written_total",
               "Sweep records published into the store")
      .add();
  return true;
}

}  // namespace

bool SweepStore::store(const std::string& fingerprint,
                       const std::string& suiteName,
                       const std::string& instanceId,
                       const InstanceOutcome& outcome) {
  if (!outcomeIsComplete(outcome) || !outcomeIsFinite(outcome)) {
    return false;
  }
  return publishRecordText(
      recordPath(fingerprint),
      renderSweepRecord(fingerprint, suiteName, instanceId, outcome));
}

bool SweepStore::storeRecordText(const std::string& fingerprint,
                                 const std::string& text) {
  // Full validation before any byte hits the records directory: a remote
  // worker's document goes through the same parser that load() trusts, so
  // a malformed upload is rejected here instead of quarantined later.
  InstanceOutcome outcome;
  try {
    outcome = parseSweepRecord(parseJson(text), fingerprint);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("SweepStore: invalid record: ") +
                             e.what());
  }
  if (!outcomeIsComplete(outcome)) {
    throw std::runtime_error(
        "SweepStore: invalid record: partial (stopped) outcome refused");
  }
  if (!outcomeIsFinite(outcome)) {
    throw std::runtime_error(
        "SweepStore: invalid record: non-finite value refused");
  }
  return publishRecordText(recordPath(fingerprint), text);
}

std::optional<InstanceOutcome> SweepStore::load(
    const std::string& fingerprint) {
  const std::string path = recordPath(fingerprint);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  in.close();
  try {
    InstanceOutcome outcome = parseSweepRecord(parseJson(text), fingerprint);
    telemetry()
        .counter("ides_store_records_read_total",
                 "Sweep records loaded from the store")
        .add();
    return outcome;
  } catch (const std::exception&) {
    quarantine(fingerprint);
    return std::nullopt;
  }
}

void SweepStore::quarantine(const std::string& fingerprint) {
  const std::string from = recordPath(fingerprint);
  const std::string to =
      (fs::path(dir_) / "quarantine" /
       (fingerprint + ".json." + uniqueSuffix()))
          .string();
  std::error_code ec;
  fs::rename(from, to, ec);  // best effort; a lost race just means a peer
  ++quarantined_;            // quarantined the same corrupt file first
  telemetry()
      .counter("ides_store_quarantined_total",
               "Corrupt sweep records moved to quarantine")
      .add();
}

SweepStoreCache::SweepStoreCache(SweepStore& store, std::string suiteName,
                                 bool reuse)
    : store_(store), suiteName_(std::move(suiteName)), reuse_(reuse) {}

bool SweepStoreCache::lookup(const BatchInstance& instance,
                             InstanceOutcome& outcome) {
  if (!reuse_) return false;
  std::optional<InstanceOutcome> loaded =
      store_.load(instanceFingerprint(suiteName_, instance));
  telemetry()
      .counter("ides_store_sweep_cache_total",
               "Sweep-instance cache lookups against the store",
               {{"result", loaded.has_value() ? "hit" : "miss"}})
      .add();
  if (!loaded.has_value()) return false;
  outcome = std::move(*loaded);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SweepStoreCache::store(const BatchInstance& instance,
                            const InstanceOutcome& outcome) {
  if (store_.store(instanceFingerprint(suiteName_, instance), suiteName_,
                   instance.id, outcome)) {
    stored_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace ides
