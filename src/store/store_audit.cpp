#include "store/store_audit.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "store/sweep_store.h"
#include "util/json_reader.h"

namespace ides {

namespace fs = std::filesystem;

namespace {

double fileAgeSeconds(const fs::path& path) {
  std::error_code ec;
  const fs::file_time_type mtime = fs::last_write_time(path, ec);
  if (ec) return 0.0;
  const auto age = fs::file_time_type::clock::now() - mtime;
  return std::chrono::duration<double>(age).count();
}

std::string ageText(double seconds) {
  char buf[32];
  if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.0fs", seconds);
  } else if (seconds < 7200.0) {
    std::snprintf(buf, sizeof(buf), "%.0fm", seconds / 60.0);
  } else if (seconds < 172800.0) {
    std::snprintf(buf, sizeof(buf), "%.1fh", seconds / 3600.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fd", seconds / 86400.0);
  }
  return buf;
}

StoreRecordInfo auditRecord(const fs::path& path) {
  StoreRecordInfo info;
  info.fingerprint = path.stem().string();
  info.suite = info.id = info.strategy = "-";
  info.ageSeconds = fileAgeSeconds(path);

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    info.error = "cannot open";
    return info;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  try {
    const JsonValue root = parseJson(buffer.str());
    // Best-effort identity first, so even a record that fails the strict
    // checks below still lists with whatever identity it carries.
    if (root.isObject()) {
      if (const JsonValue* v = root.find("suite");
          v != nullptr && v->kind == JsonValue::Kind::String) {
        info.suite = v->stringValue;
      }
      if (const JsonValue* v = root.find("id");
          v != nullptr && v->kind == JsonValue::Kind::String) {
        info.id = v->stringValue;
      }
      if (const JsonValue* v = root.find("strategy");
          v != nullptr && v->kind == JsonValue::Kind::String) {
        info.strategy = v->stringValue;
      }
    }
    // The exact acceptance check a resuming sweep would apply.
    (void)parseSweepRecord(root, info.fingerprint);
    info.ok = true;
  } catch (const std::exception& e) {
    info.error = e.what();
  }
  return info;
}

}  // namespace

StoreAuditReport auditSweepStore(const std::string& dir) {
  const fs::path records = fs::path(dir) / "records";
  std::error_code ec;
  if (!fs::is_directory(records, ec)) {
    throw std::runtime_error("not a sweep store (no records/ under " + dir +
                             ")");
  }

  StoreAuditReport report;
  for (const auto& entry : fs::directory_iterator(records, ec)) {
    if (entry.path().extension() != ".json") continue;  // tmp files etc.
    report.records.push_back(auditRecord(entry.path()));
  }
  std::sort(report.records.begin(), report.records.end(),
            [](const StoreRecordInfo& a, const StoreRecordInfo& b) {
              return a.fingerprint < b.fingerprint;
            });
  for (const StoreRecordInfo& info : report.records) {
    ++(info.ok ? report.okCount : report.badCount);
  }

  const fs::path quarantine = fs::path(dir) / "quarantine";
  for (const auto& entry : fs::directory_iterator(quarantine, ec)) {
    report.quarantined.push_back(entry.path().filename().string());
  }
  std::sort(report.quarantined.begin(), report.quarantined.end());
  return report;
}

std::string storeLsText(const StoreAuditReport& report) {
  std::string out;
  for (const StoreRecordInfo& info : report.records) {
    char line[512];
    std::snprintf(line, sizeof(line), "%s  %-14s %-22s %-4s %6s%s\n",
                  info.fingerprint.c_str(), info.suite.c_str(),
                  info.id.c_str(), info.strategy.c_str(),
                  ageText(info.ageSeconds).c_str(),
                  info.ok ? "" : "  [BAD]");
    out += line;
  }
  out += std::to_string(report.records.size()) + " record(s), " +
         std::to_string(report.quarantined.size()) + " quarantined\n";
  return out;
}

std::string storeVerifyText(const StoreAuditReport& report) {
  std::string out;
  for (const StoreRecordInfo& info : report.records) {
    if (info.ok) continue;
    out += "BAD " + info.fingerprint + ": " + info.error + "\n";
  }
  for (const std::string& name : report.quarantined) {
    out += "quarantined: " + name + "\n";
  }
  out += "verify: " + std::to_string(report.okCount) + " ok, " +
         std::to_string(report.badCount) + " bad, " +
         std::to_string(report.quarantined.size()) + " quarantined\n";
  return out;
}

}  // namespace ides
