// SweepStore — persistent, content-addressed sweep results.
//
// The paper's experiments are large deterministic sweeps; a full-scale run
// is hours of work whose instances are all independent and reproducible.
// The store persists one self-contained JSON record per completed instance,
// keyed by the instance fingerprint (core/batch_suites.h: a stable hash of
// suite name, generator config, seeds, strategy + result-relevant options
// and a code epoch). That turns every sweep into an incremental, resumable
// artifact:
//
//   * resume — a cancelled sweep rerun with the store attached skips every
//     instance whose record exists; the merged report renders byte-identical
//     (timing off) to an uncancelled run, because records hold the exact
//     deterministic field values;
//   * reuse — figure regeneration after a code-irrelevant change (or on
//     another axis of the same instances) is near-instant;
//   * distribution — records are plain files under one directory, so any
//     number of processes (or machines over a shared filesystem) can fill
//     the same store; see store/work_queue.h.
//
// Durability protocol, append-only by construction:
//   records/<fingerprint>.json       one completed instance (atomic rename)
//   records/<fingerprint>.json.tmp.* in-flight writes (never read)
//   quarantine/                      corrupt records, moved aside on load
//
// A record is written to a unique tmp file and renamed into place — readers
// see a complete record or none. The first writer wins; a concurrent
// duplicate is discarded (contents only differ in recorded wall-clock).
// Records that fail to parse or that disagree with their file name are
// quarantined (renamed into quarantine/) and treated as absent, so one
// corrupt file costs one re-run, not the sweep.
//
// Partial results are never persisted: an outcome whose run was cut short
// by a StopToken is refused, because a resumed sweep must reproduce the
// FULL result for that instance, not the truncated one.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "core/batch_runner.h"

namespace ides {

class JsonValue;

/// Parses one record document and verifies schema + embedded fingerprint
/// against `fingerprint`; throws std::runtime_error naming the problem.
/// Shared by SweepStore::load (which quarantines on failure) and the
/// read-only `store verify` audit (which only reports).
InstanceOutcome parseSweepRecord(const JsonValue& root,
                                 const std::string& fingerprint);

/// Renders one record document (the inverse of parseSweepRecord, plus
/// provenance fields). Exposed so an HTTP worker can render its result
/// locally — keeping ITS provenance in the record — and ship the document
/// to the coordinator for verbatim persistence (storeRecordText).
std::string renderSweepRecord(const std::string& fingerprint,
                              const std::string& suiteName,
                              const std::string& instanceId,
                              const InstanceOutcome& outcome);

/// Thread-safe: the filesystem protocol carries all the coordination
/// (atomic renames, first-writer-wins), so concurrent load/store calls on
/// one object need no locking — the shard workers of a resumed runBatch
/// hit the store in parallel.
class SweepStore {
 public:
  /// Record layout version, written into every record and checked on load.
  static constexpr std::int64_t kSchemaVersion = 1;

  /// Opens (creating if needed) a store rooted at `dir`.
  /// Throws std::runtime_error when the directories cannot be created.
  explicit SweepStore(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Path of the (existing or future) record for a fingerprint.
  [[nodiscard]] std::string recordPath(const std::string& fingerprint) const;

  [[nodiscard]] bool contains(const std::string& fingerprint) const;

  /// Number of records currently on disk.
  [[nodiscard]] std::size_t recordCount() const;

  /// True when `outcome` may be persisted: it finished its full budget
  /// (no stop token fired mid-run). Custom jobs signal truncation through
  /// a non-zero "run_stopped" extra, mirroring the report flag.
  [[nodiscard]] static bool outcomeIsComplete(const InstanceOutcome& outcome);

  /// Persists a completed outcome under `fingerprint` (atomic tmp+rename).
  /// Returns false without writing when the outcome is incomplete or a
  /// record already exists (first writer wins). Throws std::runtime_error
  /// on I/O failure.
  bool store(const std::string& fingerprint, const std::string& suiteName,
             const std::string& instanceId, const InstanceOutcome& outcome);

  /// Persists a pre-rendered record document verbatim (atomic tmp+rename)
  /// after validating it: parseable, schema + fingerprint match, complete
  /// outcome. Throws std::runtime_error naming the problem on an invalid
  /// document; returns false when a record already exists (idempotent
  /// duplicate — first writer wins). Used by the HTTP coordinator, which
  /// receives documents rendered by remote workers.
  bool storeRecordText(const std::string& fingerprint,
                       const std::string& text);

  /// Loads a record; nullopt when absent. A present-but-corrupt record
  /// (unparseable, wrong schema, fingerprint mismatch) is quarantined and
  /// reported absent, so the caller re-runs the instance.
  std::optional<InstanceOutcome> load(const std::string& fingerprint);

  /// Records this store object quarantined so far (observability/tests).
  [[nodiscard]] std::size_t quarantinedCount() const {
    return quarantined_.load(std::memory_order_relaxed);
  }

 private:
  void quarantine(const std::string& fingerprint);

  std::string dir_;
  std::atomic<std::size_t> quarantined_{0};
};

/// ResultCache adapter binding a SweepStore to one suite's runBatch call:
/// write-through persistence always, lookups only when `reuse` is set (a
/// sweep run with reuse off records results without trusting prior state).
/// Thread-safe without serializing the I/O — shards read/write records
/// concurrently (the store needs no locking); only the counters are shared
/// state.
class SweepStoreCache final : public ResultCache {
 public:
  SweepStoreCache(SweepStore& store, std::string suiteName, bool reuse);

  bool lookup(const BatchInstance& instance,
              InstanceOutcome& outcome) override;
  void store(const BatchInstance& instance,
             const InstanceOutcome& outcome) override;

  [[nodiscard]] std::size_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t stored() const {
    return stored_.load(std::memory_order_relaxed);
  }

 private:
  SweepStore& store_;
  std::string suiteName_;
  bool reuse_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> stored_{0};
};

}  // namespace ides
