#include "store/store_gc.h"

#include <algorithm>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "store/work_queue.h"
#include "util/json_reader.h"

#include <sys/stat.h>

namespace ides {

namespace fs = std::filesystem;

namespace {

/// File age against the LOCAL clock. GC is an operator action, not a
/// correctness arbiter like lease staleness — a skewed clock at worst
/// keeps a dead record a while longer or reaps an old one early, and the
/// manifest protection below still guards anything live.
bool fileAge(const fs::path& path, double& ageSeconds) {
  struct stat st = {};
  if (::stat(path.string().c_str(), &st) != 0) return false;
  ageSeconds = std::difftime(std::time(nullptr), st.st_mtime);
  return true;
}

/// Fingerprints named by a live manifest.json in the store dir, if any —
/// an in-flight distributed sweep whose records must survive.
std::set<std::string> protectedFingerprints(const std::string& dir) {
  std::set<std::string> out;
  try {
    const std::optional<SweepManifest> manifest = readManifest(dir);
    if (manifest.has_value()) {
      for (const WorkItem& item : manifest->items) {
        out.insert(item.fingerprint);
      }
    }
  } catch (const std::exception&) {
    // A malformed manifest still marks the directory as in use; without a
    // readable item list, protect everything by poisoning the scan.
    out.insert("*");
  }
  return out;
}

}  // namespace

StoreGcReport gcSweepStore(const std::string& dir,
                           const StoreGcOptions& options) {
  const fs::path records = fs::path(dir) / "records";
  const fs::path quarantine = fs::path(dir) / "quarantine";
  std::error_code ec;
  if (!fs::is_directory(records, ec)) {
    throw std::runtime_error("store gc: no records directory under " + dir +
                             " (not a sweep store?)");
  }

  StoreGcReport report;
  const std::set<std::string> live = protectedFingerprints(dir);
  const bool protectAll = live.count("*") != 0;

  // Quarantined records: corrupt files moved aside by load(); always
  // candidates — they were kept for inspection, not forever.
  for (const auto& entry : fs::directory_iterator(quarantine, ec)) {
    if (!entry.is_regular_file()) continue;
    report.remove.push_back(
        {entry.path().string(), std::string(), "quarantined"});
  }

  for (const auto& entry : fs::directory_iterator(records, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".json") continue;  // in-flight .tmp.* writes
    const std::string fingerprint = path.stem().string();

    std::string reason;
    if (options.epoch >= 0) {
      std::int64_t epoch = 0;  // records predate the epoch field -> 0
      bool parsed = false;
      std::ifstream in(path, std::ios::binary);
      if (in) {
        std::ostringstream buffer;
        buffer << in.rdbuf();
        try {
          const JsonValue root = parseJson(buffer.str());
          const JsonValue* field = root.find("epoch");
          epoch = field == nullptr ? 0 : root.intAt("epoch");
          parsed = true;
        } catch (const std::exception&) {
        }
      }
      // Unparseable records are left to load()'s quarantine path — the
      // epoch predicate only reaps what it could actually read.
      if (parsed && epoch < options.epoch) {
        reason = "superseded (epoch " + std::to_string(epoch) + " < " +
                 std::to_string(options.epoch) + ")";
      }
    }
    if (reason.empty() && options.olderThanSeconds >= 0.0) {
      double age = 0.0;
      if (fileAge(path, age) && age > options.olderThanSeconds) {
        reason = "older than " + std::to_string(static_cast<long long>(
                                     options.olderThanSeconds)) + "s";
      }
    }
    if (reason.empty()) {
      ++report.kept;
      continue;
    }
    if (protectAll || live.count(fingerprint) != 0) {
      ++report.protectedByManifest;
      ++report.kept;
      continue;
    }
    report.remove.push_back({path.string(), fingerprint, reason});
  }

  // Deterministic listing (directory iteration order is not).
  std::sort(report.remove.begin(), report.remove.end(),
            [](const StoreGcAction& a, const StoreGcAction& b) {
              return a.path < b.path;
            });

  if (options.apply) {
    for (const StoreGcAction& action : report.remove) {
      fs::remove(action.path, ec);
    }
    report.applied = true;
  }
  return report;
}

std::string storeGcText(const StoreGcReport& report,
                        const StoreGcOptions& options) {
  std::string out;
  for (const StoreGcAction& action : report.remove) {
    out += report.applied ? "removed " : "would remove ";
    out += action.path;
    out += "  (";
    out += action.reason;
    out += ")\n";
  }
  out += "gc: ";
  out += std::to_string(report.remove.size());
  out += report.applied ? " removed, " : " removable, ";
  out += std::to_string(report.kept);
  out += " kept";
  if (report.protectedByManifest > 0) {
    out += " (" + std::to_string(report.protectedByManifest) +
           " matched but protected by a live manifest)";
  }
  out += "\n";
  if (!report.applied && !report.remove.empty()) {
    out += "dry run — re-run with --apply to delete\n";
  }
  (void)options;
  return out;
}

}  // namespace ides
