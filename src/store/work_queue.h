// Cross-process sweep execution over a shared directory.
//
// One coordinator (`ides_cli sweep --serve <dir>`) publishes a manifest of
// the sweep's canonical instances; any number of independent worker
// processes (`ides_cli sweep --worker <dir>`), on this machine or on others
// sharing the directory, claim instances through file-based leases, run
// them, and write records into the SweepStore. The coordinator (itself a
// participant) merges the records in canonical order once all are present —
// byte-identical (timing off) to the single-process runBatch path for ANY
// worker count, because the records hold the exact deterministic fields and
// the merge order is the suite's, not the arrival order.
//
// Directory protocol (everything lives under the store dir):
//   manifest.json               sweep identity + canonical work list
//   claims/<fingerprint>.lease  exclusive claim (created with O_EXCL
//                               semantics; content: worker id + lease
//                               duration)
//   records/<fingerprint>.json  completion marker AND the result itself
//   stop                        cooperative cancellation sentinel
//
// Lease expiry: a lease older than its declared duration whose record
// never appeared marks a dead worker. Any participant may reclaim it —
// rename the stale lease aside (atomic, exactly one winner), then race for
// a fresh exclusive claim. Because completion is the record file and
// records are content-addressed and first-writer-wins, even a worker that
// was merely slow (not dead) cannot corrupt anything: both runs produce
// the same record, one write is discarded.
//
// Clocks: staleness compares the lease file's mtime against the mtime of
// a probe file written at check time, so the shared filesystem's
// timestamps arbitrate on both sides of the subtraction and per-machine
// wall-clock skew cancels out. Size leases comfortably above the slowest
// instance.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/batch_runner.h"
#include "core/batch_suites.h"
#include "store/sweep_store.h"
#include "util/stop_token.h"

namespace ides {

/// One manifest entry: an instance's canonical position and record key.
struct WorkItem {
  std::size_t index = 0;
  std::string id;
  std::string fingerprint;
};

/// The coordinator's published description of the sweep: enough for a
/// worker on another machine to rebuild the identical InstanceSuite and
/// verify it (fingerprints catch code/version skew before any work runs).
struct SweepManifest {
  std::string sweep;      ///< namedSweep key, e.g. "quality"
  std::string suiteName;  ///< InstanceSuite::name(), e.g. "fig-quality"
  SweepScale scale;       ///< full scale parameters, not just the name
  std::vector<WorkItem> items;
};

/// True for sweep keys safe to embed in paths and URLs (the HTTP
/// transport's sweep identifier): non-empty [A-Za-z0-9._-], at most 128.
bool validSweepKey(std::string_view key);

/// Builds the manifest for a named sweep's suite (fingerprints computed
/// against the suite's canonical instance list).
SweepManifest makeManifest(const std::string& sweepName,
                           const SweepScale& scale,
                           const InstanceSuite& suite);

/// The manifest's canonical JSON document. Shared by the file transport
/// (writeManifest) and the HTTP coordinator (GET /sweeps/<key>/manifest),
/// so a worker parses one format regardless of how the manifest arrived.
std::string manifestJson(const SweepManifest& manifest);

/// Parses a manifest document (inverse of manifestJson). Throws
/// std::runtime_error on malformed or wrong-schema input.
SweepManifest parseManifestJson(const std::string& text);

/// Atomically (tmp+rename) publishes the manifest into `dir`.
void writeManifest(const std::string& dir, const SweepManifest& manifest);

/// Loads the manifest; nullopt when none is published yet. Throws
/// std::runtime_error on a malformed manifest.
std::optional<SweepManifest> readManifest(const std::string& dir);

/// Rebuilds the manifest's InstanceSuite via namedSweep and verifies every
/// fingerprint against the manifest. Throws std::runtime_error on any
/// mismatch — running skewed code against a shared store would poison it.
InstanceSuite suiteFromManifest(const SweepManifest& manifest);

/// File-based claim/lease queue of one participant process.
class WorkQueue {
 public:
  /// `workerId` names this participant in lease files (diagnostics only;
  /// exclusivity comes from the filesystem). `leaseSeconds` is how long
  /// this participant's own claims stay valid before peers may reclaim.
  WorkQueue(std::string dir, std::string workerId,
            double leaseSeconds = 600.0);

  [[nodiscard]] const std::string& workerId() const { return workerId_; }
  [[nodiscard]] double leaseSeconds() const { return leaseSeconds_; }

  /// Claims the first instance (canonical order) that has no record and no
  /// live lease, reclaiming expired leases on the way. nullopt = nothing
  /// claimable right now (all done, or peers hold live leases).
  std::optional<WorkItem> claim(const SweepStore& store,
                                const SweepManifest& manifest);

  /// Refreshes our lease's timestamp so a slow instance is never reclaimed
  /// while its owner is alive. Returns false — losing cleanly — when the
  /// lease is gone or held by another worker (a peer reclaimed it): the
  /// caller no longer owns the instance and must not release or complete
  /// it. Never recreates a missing lease file. The refresh is a rewrite of
  /// the lease content, so the shared filesystem stamps the new mtime with
  /// the same clock the staleness probe reads.
  ///
  /// The read-check-write window can race a reclaim: in the worst case two
  /// workers briefly both believe they own the instance. That tie is
  /// benign by construction — both produce the identical record and the
  /// content-addressed store keeps exactly one.
  bool renew(const WorkItem& item);

  /// Drops our lease without a record (the run was cut short) so another
  /// participant can redo the instance.
  void release(const WorkItem& item);

  /// Drops our lease after the record became visible.
  void complete(const WorkItem& item);

  /// True when every manifest item has a record.
  [[nodiscard]] bool allDone(const SweepStore& store,
                             const SweepManifest& manifest) const;

  /// Cooperative cross-process cancellation via the `stop` sentinel file.
  void requestStop();
  [[nodiscard]] bool stopRequested() const;
  /// Removes a stale sentinel (coordinator, before publishing a manifest).
  void clearStop();

 private:
  [[nodiscard]] std::string leasePath(const WorkItem& item) const;
  [[nodiscard]] std::string leaseContent() const;
  bool tryClaimExclusive(const WorkItem& item);
  /// `probeFresh` tracks whether this claim() scan already refreshed the
  /// filesystem-clock probe file (one write per scan, not per lease).
  bool reclaimIfStale(const WorkItem& item, bool& probeFresh);

  std::string dir_;
  std::string workerId_;
  double leaseSeconds_;
  std::uint64_t reclaimSeq_ = 0;
};

/// Transport-neutral view of one sweep participant: the work loop below is
/// the same whether claims travel through a shared directory (WorkQueue)
/// or an HTTP coordinator (RemoteWorkQueue in store/remote_queue.h).
class SweepParticipant {
 public:
  virtual ~SweepParticipant() = default;

  /// Next claimable instance; nullopt when nothing is claimable right now
  /// (all recorded, peers hold live leases, or the transport is lost —
  /// check failed()/failureReason() to tell the last case apart).
  virtual std::optional<WorkItem> claimNext() = 0;

  /// Heartbeat for a held claim. false = we no longer own it (a peer
  /// reclaimed after staleness); the caller must stop treating the
  /// instance as ours and must not release or complete it.
  virtual bool renew(const WorkItem& item) = 0;

  /// Gives a held claim back without a record (run cut short).
  virtual void release(const WorkItem& item) = 0;

  /// Publishes the finished outcome as the instance's record and drops the
  /// claim. Idempotent across duplicate runs (content-addressed store).
  virtual void storeRecord(const WorkItem& item,
                           const InstanceOutcome& outcome) = 0;

  /// True when every manifest instance has a record.
  virtual bool allDone() = 0;

  /// Cooperative cancellation observed through the transport.
  virtual bool stopRequested() = 0;

  /// This participant's declared lease duration (renewal period derives
  /// from it).
  [[nodiscard]] virtual double leaseSeconds() const = 0;

  /// True when the transport failed permanently (HTTP coordinator gone
  /// after retries). File-based participants never fail this way.
  [[nodiscard]] virtual bool failed() const { return false; }
  [[nodiscard]] virtual std::string failureReason() const { return {}; }
};

/// Adapter: WorkQueue + SweepStore + manifest as a SweepParticipant.
class FileSweepParticipant final : public SweepParticipant {
 public:
  FileSweepParticipant(const InstanceSuite& suite,
                       const SweepManifest& manifest, SweepStore& store,
                       WorkQueue& queue)
      : suite_(suite), manifest_(manifest), store_(store), queue_(queue) {}

  std::optional<WorkItem> claimNext() override {
    return queue_.claim(store_, manifest_);
  }
  bool renew(const WorkItem& item) override { return queue_.renew(item); }
  void release(const WorkItem& item) override { queue_.release(item); }
  void storeRecord(const WorkItem& item,
                   const InstanceOutcome& outcome) override {
    store_.store(item.fingerprint, suite_.name(),
                 suite_.instances()[item.index].id, outcome);
    queue_.complete(item);
  }
  bool allDone() override { return queue_.allDone(store_, manifest_); }
  bool stopRequested() override { return queue_.stopRequested(); }
  [[nodiscard]] double leaseSeconds() const override {
    return queue_.leaseSeconds();
  }

 private:
  const InstanceSuite& suite_;
  const SweepManifest& manifest_;
  SweepStore& store_;
  WorkQueue& queue_;
};

/// RAII holder of one claim: spawns a renewal heartbeat thread for the
/// claim's lifetime and guarantees the lease is returned on EVERY exit
/// path — normal completion (markCompleted), a stop, or an exception
/// unwinding through the owner. Without this, a throw from the instance
/// run leaves the claim dangling until peers wait out the stale timeout.
class LeaseGuard {
 public:
  LeaseGuard(SweepParticipant& participant, WorkItem item);
  ~LeaseGuard();
  LeaseGuard(const LeaseGuard&) = delete;
  LeaseGuard& operator=(const LeaseGuard&) = delete;

  /// The record was published; the destructor must not release.
  void markCompleted() { completed_.store(true); }

  /// True when a renewal heartbeat discovered we lost the claim (a peer
  /// reclaimed it). The owner must discard its result without storing —
  /// the reclaimer owns the instance now.
  [[nodiscard]] bool renewalLost() const { return lost_.load(); }

 private:
  SweepParticipant& participant_;
  WorkItem item_;
  std::atomic<bool> completed_{false};
  std::atomic<bool> lost_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopRenewal_ = false;
  std::thread renewal_;
};

struct QueueRunStats {
  std::size_t executed = 0;  ///< instances this participant ran to records
  bool stopped = false;      ///< a stop (token or sentinel) ended the loop
  bool failed = false;       ///< the transport was lost (HTTP coordinator
                             ///< unreachable after retries)
  std::string error;         ///< human-readable reason when failed
};

/// The participant work loop shared by every transport: claim, heartbeat
/// (LeaseGuard), run (core/batch_runner.h runBatchInstance — identical
/// records to the in-process path), publish, until nothing is claimable or
/// a stop lands. An outcome cut short by `stop` is discarded and its claim
/// released; an instance whose lease was lost mid-run is discarded too
/// (the reclaimer publishes it). IDES_FAULT points post-claim and
/// pre-complete fire here; mid-renewal fires inside the heartbeat.
QueueRunStats runSweepParticipant(
    const InstanceSuite& suite, SweepParticipant& participant,
    const StopToken* stop,
    const std::function<void(const WorkItem&, const InstanceOutcome&)>&
        onDone = {});

/// The file-transport work loop (--serve / --worker over a shared dir):
/// runSweepParticipant over a FileSweepParticipant.
QueueRunStats runQueuedInstances(
    const InstanceSuite& suite, const SweepManifest& manifest,
    SweepStore& store, WorkQueue& queue, const StopToken* stop,
    const std::function<void(const WorkItem&, const InstanceOutcome&)>&
        onDone = {});

/// Canonical-order merge: one InstanceResult per suite instance, loaded
/// from the store (missing records stay ran=false). The BENCH rendering of
/// a fully populated store is byte-identical (timing off) to a
/// single-process run — every completed field came from the same
/// deterministic computation, whoever ran it.
BatchReport reportFromStore(const InstanceSuite& suite, SweepStore& store);

}  // namespace ides
