// Cross-process sweep execution over a shared directory.
//
// One coordinator (`ides_cli sweep --serve <dir>`) publishes a manifest of
// the sweep's canonical instances; any number of independent worker
// processes (`ides_cli sweep --worker <dir>`), on this machine or on others
// sharing the directory, claim instances through file-based leases, run
// them, and write records into the SweepStore. The coordinator (itself a
// participant) merges the records in canonical order once all are present —
// byte-identical (timing off) to the single-process runBatch path for ANY
// worker count, because the records hold the exact deterministic fields and
// the merge order is the suite's, not the arrival order.
//
// Directory protocol (everything lives under the store dir):
//   manifest.json               sweep identity + canonical work list
//   claims/<fingerprint>.lease  exclusive claim (created with O_EXCL
//                               semantics; content: worker id + lease
//                               duration)
//   records/<fingerprint>.json  completion marker AND the result itself
//   stop                        cooperative cancellation sentinel
//
// Lease expiry: a lease older than its declared duration whose record
// never appeared marks a dead worker. Any participant may reclaim it —
// rename the stale lease aside (atomic, exactly one winner), then race for
// a fresh exclusive claim. Because completion is the record file and
// records are content-addressed and first-writer-wins, even a worker that
// was merely slow (not dead) cannot corrupt anything: both runs produce
// the same record, one write is discarded.
//
// Clocks: staleness compares the lease file's mtime against the mtime of
// a probe file written at check time, so the shared filesystem's
// timestamps arbitrate on both sides of the subtraction and per-machine
// wall-clock skew cancels out. Size leases comfortably above the slowest
// instance.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/batch_runner.h"
#include "core/batch_suites.h"
#include "store/sweep_store.h"
#include "util/stop_token.h"

namespace ides {

/// One manifest entry: an instance's canonical position and record key.
struct WorkItem {
  std::size_t index = 0;
  std::string id;
  std::string fingerprint;
};

/// The coordinator's published description of the sweep: enough for a
/// worker on another machine to rebuild the identical InstanceSuite and
/// verify it (fingerprints catch code/version skew before any work runs).
struct SweepManifest {
  std::string sweep;      ///< namedSweep key, e.g. "quality"
  std::string suiteName;  ///< InstanceSuite::name(), e.g. "fig-quality"
  SweepScale scale;       ///< full scale parameters, not just the name
  std::vector<WorkItem> items;
};

/// Builds the manifest for a named sweep's suite (fingerprints computed
/// against the suite's canonical instance list).
SweepManifest makeManifest(const std::string& sweepName,
                           const SweepScale& scale,
                           const InstanceSuite& suite);

/// Atomically (tmp+rename) publishes the manifest into `dir`.
void writeManifest(const std::string& dir, const SweepManifest& manifest);

/// Loads the manifest; nullopt when none is published yet. Throws
/// std::runtime_error on a malformed manifest.
std::optional<SweepManifest> readManifest(const std::string& dir);

/// Rebuilds the manifest's InstanceSuite via namedSweep and verifies every
/// fingerprint against the manifest. Throws std::runtime_error on any
/// mismatch — running skewed code against a shared store would poison it.
InstanceSuite suiteFromManifest(const SweepManifest& manifest);

/// File-based claim/lease queue of one participant process.
class WorkQueue {
 public:
  /// `workerId` names this participant in lease files (diagnostics only;
  /// exclusivity comes from the filesystem). `leaseSeconds` is how long
  /// this participant's own claims stay valid before peers may reclaim.
  WorkQueue(std::string dir, std::string workerId,
            double leaseSeconds = 600.0);

  [[nodiscard]] const std::string& workerId() const { return workerId_; }

  /// Claims the first instance (canonical order) that has no record and no
  /// live lease, reclaiming expired leases on the way. nullopt = nothing
  /// claimable right now (all done, or peers hold live leases).
  std::optional<WorkItem> claim(const SweepStore& store,
                                const SweepManifest& manifest);

  /// Drops our lease without a record (the run was cut short) so another
  /// participant can redo the instance.
  void release(const WorkItem& item);

  /// Drops our lease after the record became visible.
  void complete(const WorkItem& item);

  /// True when every manifest item has a record.
  [[nodiscard]] bool allDone(const SweepStore& store,
                             const SweepManifest& manifest) const;

  /// Cooperative cross-process cancellation via the `stop` sentinel file.
  void requestStop();
  [[nodiscard]] bool stopRequested() const;
  /// Removes a stale sentinel (coordinator, before publishing a manifest).
  void clearStop();

 private:
  [[nodiscard]] std::string leasePath(const WorkItem& item) const;
  bool tryClaimExclusive(const WorkItem& item);
  /// `probeFresh` tracks whether this claim() scan already refreshed the
  /// filesystem-clock probe file (one write per scan, not per lease).
  bool reclaimIfStale(const WorkItem& item, bool& probeFresh);

  std::string dir_;
  std::string workerId_;
  double leaseSeconds_;
  std::uint64_t reclaimSeq_ = 0;
};

struct QueueRunStats {
  std::size_t executed = 0;  ///< instances this participant ran to records
  bool stopped = false;      ///< a stop (token or sentinel) ended the loop
};

/// The participant work loop shared by --serve and --worker: claim, run
/// (core/batch_runner.h runBatchInstance — identical records to the
/// in-process path), persist, until nothing is claimable or a stop lands.
/// An outcome cut short by `stop` is discarded and its claim released.
QueueRunStats runQueuedInstances(
    const InstanceSuite& suite, const SweepManifest& manifest,
    SweepStore& store, WorkQueue& queue, const StopToken* stop,
    const std::function<void(const WorkItem&, const InstanceOutcome&)>&
        onDone = {});

/// Canonical-order merge: one InstanceResult per suite instance, loaded
/// from the store (missing records stay ran=false). The BENCH rendering of
/// a fully populated store is byte-identical (timing off) to a
/// single-process run — every completed field came from the same
/// deterministic computation, whoever ran it.
BatchReport reportFromStore(const InstanceSuite& suite, SweepStore& store);

}  // namespace ides
