// HTTP worker side of the sweep fabric (SweepParticipant over the
// ides_serve coordinator).
//
// `ides_cli sweep --worker http://host:port/<key>` builds one of these
// instead of a WorkQueue: claims, renewals, and completions are POSTs to
// /sweeps/<key>/..., and the finished record is rendered LOCALLY (with
// this worker's provenance) and shipped as a document for the coordinator
// to validate and persist verbatim. Workers therefore need a TCP route to
// the daemon, not a shared mount.
//
// Degradation when the coordinator vanishes: every request retries under a
// capped-exponential-backoff policy with jitter; once retries are
// exhausted the participant marks itself failed with a human-readable
// reason, best-effort releases any held claim, and claimNext() returns
// nullopt — the work loop unwinds and the CLI exits nonzero printing the
// reason. Nothing half-done can leak: an unreported record is simply
// re-run by a surviving worker after the lease expires, and a re-run
// produces the identical record.
#pragma once

#include <optional>
#include <string>

#include "store/work_queue.h"
#include "util/http_client.h"
#include "util/rng.h"

namespace ides {

class RemoteWorkQueue final : public SweepParticipant {
 public:
  /// `url` is http://host:port/<key> (an optional "sweeps/" path prefix is
  /// accepted, so pasting the manifest URL minus "/manifest" also works).
  /// Throws std::invalid_argument on an unparseable url or bad key.
  RemoteWorkQueue(const std::string& url, std::string workerId,
                  double leaseSeconds, BackoffPolicy policy = {},
                  HttpClientOptions options = {});

  [[nodiscard]] const std::string& workerId() const { return workerId_; }
  [[nodiscard]] const std::string& key() const { return key_; }

  /// Fetches and parses the sweep's manifest, waiting up to `waitSeconds`
  /// for it to be registered (404 polls like the file worker polls for
  /// manifest.json). nullopt + failed() on timeout or transport loss.
  std::optional<SweepManifest> fetchManifest(double waitSeconds,
                                             const StopToken* stop);

  // SweepParticipant over the wire. storeRecord throws std::runtime_error
  // when the coordinator is unreachable or rejects the record; the
  // LeaseGuard unwinds the claim and the reason reaches the operator.
  std::optional<WorkItem> claimNext() override;
  bool renew(const WorkItem& item) override;
  void release(const WorkItem& item) override;
  void storeRecord(const WorkItem& item,
                   const InstanceOutcome& outcome) override;
  bool allDone() override;
  bool stopRequested() override { return false; }
  [[nodiscard]] double leaseSeconds() const override {
    return leaseSeconds_;
  }
  [[nodiscard]] bool failed() const override { return failed_; }
  [[nodiscard]] std::string failureReason() const override {
    return reason_;
  }

 private:
  /// One coordinator call with retry/backoff; on exhausted retries marks
  /// the participant failed and returns the failing result.
  HttpClientResult call(const std::string& method,
                        const std::string& endpoint, const std::string& body,
                        const StopToken* stop);
  [[nodiscard]] std::string target(const std::string& endpoint) const;
  void markFailed(const std::string& what, const HttpClientResult& result);

  HttpUrl base_;
  std::string key_;
  std::string workerId_;
  double leaseSeconds_;
  BackoffPolicy policy_;
  HttpClientOptions options_;
  Rng rng_;
  std::string suiteName_;  ///< from the fetched manifest (record rendering)
  std::optional<SweepManifest> manifest_;
  bool failed_ = false;
  std::string reason_;
};

}  // namespace ides
