#include "store/remote_queue.h"

#include <chrono>
#include <functional>
#include <stdexcept>
#include <thread>

#include "util/json_reader.h"

namespace ides {

namespace {

/// The coordinator's {"error": "..."} body, or the raw body when it is not
/// that shape (truncated, proxy-generated, ...).
std::string serverError(const HttpClientResult& result) {
  try {
    return parseJson(result.body).stringAt("error");
  } catch (const std::exception&) {
    return result.body.empty() ? "(empty body)" : result.body;
  }
}

}  // namespace

RemoteWorkQueue::RemoteWorkQueue(const std::string& url, std::string workerId,
                                 double leaseSeconds, BackoffPolicy policy,
                                 HttpClientOptions options)
    : workerId_(std::move(workerId)),
      leaseSeconds_(leaseSeconds),
      policy_(policy),
      options_(options),
      // Seeded per worker id: the backoff jitter is deterministic for a
      // given worker but decorrelated across a fleet.
      rng_(std::hash<std::string>{}(workerId_)) {
  const std::optional<HttpUrl> parsed = parseHttpUrl(url);
  if (!parsed.has_value()) {
    throw std::invalid_argument("not an http://host:port/<key> url: " + url);
  }
  base_ = *parsed;
  std::string key = base_.path;
  while (!key.empty() && key.front() == '/') key.erase(0, 1);
  if (key.rfind("sweeps/", 0) == 0) key.erase(0, 7);
  while (!key.empty() && key.back() == '/') key.pop_back();
  if (!validSweepKey(key)) {
    throw std::invalid_argument(
        "sweep key in url must be [A-Za-z0-9._-]+ (got \"" + key + "\")");
  }
  key_ = key;
}

std::string RemoteWorkQueue::target(const std::string& endpoint) const {
  return "/sweeps/" + key_ + endpoint;
}

void RemoteWorkQueue::markFailed(const std::string& what,
                                 const HttpClientResult& result) {
  failed_ = true;
  reason_ = "coordinator " + base_.host + ":" + std::to_string(base_.port) +
            " unreachable during " + what + ": " +
            (result.ok ? "HTTP " + std::to_string(result.status) + " " +
                             serverError(result)
                       : result.error);
}

HttpClientResult RemoteWorkQueue::call(const std::string& method,
                                       const std::string& endpoint,
                                       const std::string& body,
                                       const StopToken* stop) {
  return httpRequestWithRetry(base_, method, target(endpoint), body, policy_,
                              rng_, stop, options_);
}

std::optional<SweepManifest> RemoteWorkQueue::fetchManifest(
    double waitSeconds, const StopToken* stop) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(waitSeconds);
  HttpClientResult last;
  while (true) {
    if (stop != nullptr && stop->stopRequested()) return std::nullopt;
    // Single attempts inside our own poll loop: a 404 here means "not
    // registered yet", which the backoff policy must not treat as fatal.
    last = httpRequest(base_, "GET", target("/manifest"), "", options_);
    if (last.ok && last.status == 200) {
      SweepManifest manifest = parseManifestJson(last.body);
      suiteName_ = manifest.suiteName;
      manifest_ = manifest;
      return manifest;
    }
    if (last.ok && last.status != 404 && last.status < 500) {
      markFailed("manifest fetch", last);
      return std::nullopt;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  markFailed("manifest fetch (is the sweep registered at the daemon?)",
             last);
  return std::nullopt;
}

std::optional<WorkItem> RemoteWorkQueue::claimNext() {
  if (failed_) return std::nullopt;
  const std::string body =
      "{\"worker\": " + jsonQuote(workerId_) +
      ", \"lease_seconds\": " + std::to_string(leaseSeconds_) + "}";
  const HttpClientResult result = call("POST", "/claim", body, nullptr);
  if (!result.ok || result.status != 200) {
    markFailed("claim", result);
    return std::nullopt;
  }
  try {
    const JsonValue root = parseJson(result.body);
    const JsonValue* claimed = root.find("claimed");
    if (claimed == nullptr) return std::nullopt;  // wait or done
    WorkItem item;
    item.index = static_cast<std::size_t>(claimed->intAt("index"));
    item.id = claimed->stringAt("id");
    item.fingerprint = claimed->stringAt("fingerprint");
    return item;
  } catch (const std::exception& e) {
    HttpClientResult bad = result;
    bad.ok = false;
    bad.error = std::string("malformed claim response: ") + e.what();
    markFailed("claim", bad);
    return std::nullopt;
  }
}

bool RemoteWorkQueue::renew(const WorkItem& item) {
  if (failed_) return false;
  const std::string body = "{\"worker\": " + jsonQuote(workerId_) +
                           ", \"fingerprint\": " +
                           jsonQuote(item.fingerprint) + "}";
  const HttpClientResult result = call("POST", "/renew", body, nullptr);
  if (!result.ok || result.status != 200) {
    // An unreachable coordinator means we can no longer prove ownership;
    // losing cleanly (discarding the local result) is always safe — the
    // instance re-runs to the identical record once the fabric heals.
    markFailed("lease renewal", result);
    return false;
  }
  try {
    return parseJson(result.body).boolAt("renewed");
  } catch (const std::exception&) {
    return false;
  }
}

void RemoteWorkQueue::release(const WorkItem& item) {
  const std::string body = "{\"worker\": " + jsonQuote(workerId_) +
                           ", \"fingerprint\": " +
                           jsonQuote(item.fingerprint) + "}";
  // Best effort: a failed release just waits out the lease on the
  // coordinator. No retry storm on an already-failed transport.
  if (failed_) return;
  (void)call("POST", "/release", body, nullptr);
}

void RemoteWorkQueue::storeRecord(const WorkItem& item,
                                  const InstanceOutcome& outcome) {
  const std::string record =
      renderSweepRecord(item.fingerprint, suiteName_, item.id, outcome);
  const std::string body =
      "{\"worker\": " + jsonQuote(workerId_) +
      ", \"fingerprint\": " + jsonQuote(item.fingerprint) +
      ", \"record\": " + jsonQuote(record) + "}";
  const HttpClientResult result = call("POST", "/complete", body, nullptr);
  if (result.ok && result.status == 200) return;
  markFailed("record completion", result);
  // Throwing here routes through the LeaseGuard (release, best effort)
  // and surfaces the reason at the CLI — a lost record must be loud, even
  // though a peer will eventually redo the instance.
  throw std::runtime_error(reason_);
}

bool RemoteWorkQueue::allDone() {
  if (failed_) return false;
  const HttpClientResult result = call("GET", "", "", nullptr);
  if (!result.ok || result.status != 200) {
    markFailed("status poll", result);
    return false;
  }
  try {
    return parseJson(result.body).boolAt("done");
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace ides
