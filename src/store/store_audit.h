// Read-only audit of a sweep store directory (`ides_cli store ls/verify`).
//
// A shared store that fleets write into for months needs an operator's
// view: what records exist (suite, instance, strategy, age), whether each
// one still parses and matches its file name, and what the quarantine has
// accumulated. Unlike SweepStore::load, the audit NEVER mutates the store
// — a record that fails verification is reported with its reason, not
// quarantined, so `store verify` is safe to run against a store that live
// workers are filling.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ides {

struct StoreRecordInfo {
  std::string fingerprint;  ///< file stem (the content address)
  std::string suite;        ///< record's suite field ("-" when unreadable)
  std::string id;           ///< instance id ("-" when unreadable)
  std::string strategy;     ///< "-" for custom-job records / unreadable
  double ageSeconds = 0.0;  ///< now - file mtime
  bool ok = false;          ///< parsed + schema + fingerprint all check out
  std::string error;        ///< why verification failed (ok == false)
};

struct StoreAuditReport {
  /// Every records/*.json, sorted by fingerprint (deterministic output).
  std::vector<StoreRecordInfo> records;
  /// File names under quarantine/, sorted.
  std::vector<std::string> quarantined;
  std::size_t okCount = 0;
  std::size_t badCount = 0;
};

/// Scans `dir` (a SweepStore root). Throws std::runtime_error when the
/// directory does not look like a store (no records/ subdirectory).
StoreAuditReport auditSweepStore(const std::string& dir);

/// `store ls` rendering: one line per record (fingerprint, suite, id,
/// strategy, age) plus a summary.
std::string storeLsText(const StoreAuditReport& report);

/// `store verify` rendering: per-record failures with reasons, quarantine
/// contents, ok/bad summary.
std::string storeVerifyText(const StoreAuditReport& report);

}  // namespace ides
