#include "store/work_queue.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/telemetry.h"
#include "util/fault_injection.h"
#include "util/json_reader.h"
#include "util/provenance.h"

#include <sys/stat.h>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace ides {

namespace fs = std::filesystem;

namespace {

std::string manifestPath(const std::string& dir) {
  return (fs::path(dir) / "manifest.json").string();
}

std::string stopPath(const std::string& dir) {
  return (fs::path(dir) / "stop").string();
}

/// Age of `path` measured against the SHARED FILESYSTEM's clock: "now" is
/// the mtime of a probe file the caller wrote just before asking, so both
/// ends of the subtraction come from the same (file-server) clock and
/// per-machine wall-clock skew cancels out — a worker whose clock drifts
/// can neither hold every lease hostage nor reclaim live ones. POSIX stat
/// for the mtimes: std::filesystem::file_time_type is not portably
/// comparable before C++20's clock_cast is universal.
bool fileAgeSeconds(const std::string& path, const std::string& probePath,
                    double& ageSeconds) {
  struct stat st = {};
  if (::stat(path.c_str(), &st) != 0) return false;
  struct stat probeSt = {};
  if (::stat(probePath.c_str(), &probeSt) != 0) return false;
  ageSeconds = std::difftime(probeSt.st_mtime, st.st_mtime);
  return true;
}

/// One file-transport lease lifecycle event. The same family (with
/// transport="http") is fed by serve/sweep_coordinator.cpp, so a mixed
/// deployment's lease churn reads off one metric.
void leaseEvent(const char* event) {
  if (!telemetryEnabled()) return;
  telemetry()
      .counter("ides_sweep_lease_events_total",
               "Sweep lease lifecycle events (claim, renew, reclaim, lost) "
               "by transport",
               {{"event", event}, {"transport", "file"}})
      .add();
}

}  // namespace

bool validSweepKey(std::string_view key) {
  if (key.empty() || key.size() > 128) return false;
  for (char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

SweepManifest makeManifest(const std::string& sweepName,
                           const SweepScale& scale,
                           const InstanceSuite& suite) {
  SweepManifest manifest;
  manifest.sweep = sweepName;
  manifest.suiteName = suite.name();
  manifest.scale = scale;
  manifest.items.reserve(suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const BatchInstance& instance = suite.instances()[i];
    manifest.items.push_back(
        {i, instance.id, instanceFingerprint(suite.name(), instance)});
  }
  return manifest;
}

std::string manifestJson(const SweepManifest& manifest) {
  std::string out = "{\n";
  out += "  \"schema\": 1,\n";
  out += "  \"sweep\": " + jsonQuote(manifest.sweep) + ",\n";
  out += "  \"suite\": " + jsonQuote(manifest.suiteName) + ",\n";
  out += "  \"scale\": {\n";
  out += "    \"name\": " + jsonQuote(manifest.scale.name) + ",\n";
  out += "    \"seeds\": " + std::to_string(manifest.scale.seeds) + ",\n";
  out += "    \"sa_iterations\": " +
         std::to_string(manifest.scale.saIterations) + ",\n";
  out += "    \"sizes\": [";
  for (std::size_t i = 0; i < manifest.scale.sizes.size(); ++i) {
    out += (i == 0 ? "" : ", ") + std::to_string(manifest.scale.sizes[i]);
  }
  out += "],\n";
  out += "    \"future_apps\": " +
         std::to_string(manifest.scale.futureAppsPerInstance) + "\n  },\n";
  out += "  \"instances\": [";
  for (std::size_t i = 0; i < manifest.items.size(); ++i) {
    const WorkItem& item = manifest.items[i];
    out += i == 0 ? "\n    {" : ",\n    {";
    out += "\"index\": " + std::to_string(item.index) +
           ", \"id\": " + jsonQuote(item.id) +
           ", \"fingerprint\": " + jsonQuote(item.fingerprint) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void writeManifest(const std::string& dir, const SweepManifest& manifest) {
  const std::string out = manifestJson(manifest);
  const std::string finalPath = manifestPath(dir);
  // Host+pid-unique tmp name: a second coordinator racing the publish must
  // not interleave writes into the same tmp file (the later rename still
  // wins wholesale, which is fine — both manifests are complete).
  std::string tmpPath = finalPath;
  tmpPath += ".tmp.";
  tmpPath += buildProvenance().hostname;
#if defined(__unix__) || defined(__APPLE__)
  tmpPath += '.';
  tmpPath += std::to_string(static_cast<long>(getpid()));
#endif
  {
    std::ofstream file(tmpPath, std::ios::binary);
    if (!file) {
      throw std::runtime_error("work queue: cannot write " + tmpPath);
    }
    file << out;
    file.flush();
    if (!file) {
      throw std::runtime_error("work queue: short write to " + tmpPath);
    }
  }
  std::error_code ec;
  fs::rename(tmpPath, finalPath, ec);
  if (ec) {
    throw std::runtime_error("work queue: cannot publish " + finalPath +
                             ": " + ec.message());
  }
}

SweepManifest parseManifestJson(const std::string& text) {
  JsonValue root;
  try {
    root = parseJson(text);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("work queue: bad manifest: ") +
                             e.what());
  }
  if (root.intAt("schema") != 1) {
    throw std::runtime_error("work queue: unsupported manifest schema");
  }
  SweepManifest manifest;
  manifest.sweep = root.stringAt("sweep");
  manifest.suiteName = root.stringAt("suite");
  const JsonValue& scale = root.at("scale");
  manifest.scale.name = scale.stringAt("name");
  manifest.scale.seeds = static_cast<int>(scale.intAt("seeds"));
  manifest.scale.saIterations =
      static_cast<int>(scale.intAt("sa_iterations"));
  manifest.scale.sizes.clear();
  for (const JsonValue& size : scale.at("sizes").items) {
    manifest.scale.sizes.push_back(
        static_cast<std::size_t>(size.numberValue));
  }
  manifest.scale.futureAppsPerInstance =
      static_cast<std::size_t>(scale.intAt("future_apps"));
  for (const JsonValue& entry : root.at("instances").items) {
    WorkItem item;
    item.index = static_cast<std::size_t>(entry.intAt("index"));
    item.id = entry.stringAt("id");
    item.fingerprint = entry.stringAt("fingerprint");
    manifest.items.push_back(std::move(item));
  }
  return manifest;
}

std::optional<SweepManifest> readManifest(const std::string& dir) {
  std::ifstream in(manifestPath(dir), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseManifestJson(buffer.str());
}

InstanceSuite suiteFromManifest(const SweepManifest& manifest) {
  InstanceSuite suite = namedSweep(manifest.sweep, manifest.scale);
  if (suite.size() != manifest.items.size()) {
    throw std::runtime_error(
        "work queue: local suite has " + std::to_string(suite.size()) +
        " instances, manifest lists " +
        std::to_string(manifest.items.size()) +
        " — code version skew, refusing to join");
  }
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const std::string local =
        instanceFingerprint(suite.name(), suite.instances()[i]);
    if (local != manifest.items[i].fingerprint) {
      throw std::runtime_error(
          "work queue: fingerprint mismatch at instance " +
          std::to_string(i) + " (" + suite.instances()[i].id +
          ") — code version skew, refusing to join");
    }
  }
  return suite;
}

WorkQueue::WorkQueue(std::string dir, std::string workerId,
                     double leaseSeconds)
    : dir_(std::move(dir)),
      workerId_(std::move(workerId)),
      leaseSeconds_(leaseSeconds) {
  std::error_code ec;
  fs::create_directories(fs::path(dir_) / "claims", ec);
  if (ec) {
    throw std::runtime_error("work queue: cannot create claims dir: " +
                             ec.message());
  }
}

std::string WorkQueue::leasePath(const WorkItem& item) const {
  return (fs::path(dir_) / "claims" / (item.fingerprint + ".lease"))
      .string();
}

std::string WorkQueue::leaseContent() const {
  return "{\"worker\": " + jsonQuote(workerId_) +
         ", \"lease_seconds\": " + std::to_string(leaseSeconds_) + "}\n";
}

bool WorkQueue::tryClaimExclusive(const WorkItem& item) {
  // fopen "wx" = O_CREAT | O_EXCL: exactly one participant wins the create,
  // even over NFS-style shared directories with close-to-open consistency.
  std::FILE* file = std::fopen(leasePath(item).c_str(), "wx");
  if (file == nullptr) return false;
  std::fputs(leaseContent().c_str(), file);
  std::fclose(file);
  leaseEvent("claim");
  return true;
}

bool WorkQueue::renew(const WorkItem& item) {
  const std::string path = leasePath(item);
  const auto ownedByUs = [&] {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      return parseJson(buffer.str()).stringAt("worker") == workerId_;
    } catch (const std::exception&) {
      // Mid-write or corrupt: do not touch what we may not own.
      return false;
    }
  };
  if (!ownedByUs()) {
    leaseEvent("lost");
    return false;
  }
  // "r+" (never create): a reclaimed lease must stay gone — recreating the
  // file here would resurrect a claim a peer has already moved aside.
  std::FILE* file = std::fopen(path.c_str(), "r+");
  if (file == nullptr) {
    leaseEvent("lost");
    return false;
  }
  const std::string content = leaseContent();
  std::fputs(content.c_str(), file);
  std::fflush(file);
#if defined(__unix__) || defined(__APPLE__)
  (void)::ftruncate(fileno(file), static_cast<off_t>(content.size()));
#endif
  std::fclose(file);
  // Re-check after the rewrite: if a reclaim slipped between the ownership
  // check and the write, report the loss now so the caller stops. (The
  // narrower write-vs-reclaim tie that survives this check is benign — both
  // runs produce the identical record and the store keeps exactly one.)
  if (!ownedByUs()) {
    leaseEvent("lost");
    return false;
  }
  leaseEvent("renew");
  return true;
}

bool WorkQueue::reclaimIfStale(const WorkItem& item, bool& probeFresh) {
  const std::string path = leasePath(item);
  double declared = leaseSeconds_;
  {
    // The WRITER's declared duration governs expiry; fall back to ours
    // when the lease is unreadable (it may be mid-write or corrupt).
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      try {
        declared = parseJson(buffer.str()).numberAt("lease_seconds");
      } catch (const std::exception&) {
      }
    }
  }
  // One probe write per claim() scan, not per contested lease: the waiting
  // loops poll claim() continuously, and a per-lease rewrite would be
  // sustained metadata churn on a shared (NFS-style) directory.
  const std::string probe =
      (fs::path(dir_) / "claims" / (".clock." + workerId_)).string();
  if (!probeFresh) {
    std::ofstream out(probe, std::ios::trunc);
    if (!out) return false;
    out << '\n';
    out.flush();
    if (!out) return false;
    probeFresh = true;
  }
  double age = 0.0;
  if (!fileAgeSeconds(path, probe, age) || age <= declared) return false;
  // Atomically move the stale lease aside: exactly one reclaimer's rename
  // succeeds. The winner does NOT own the claim yet — it just cleared the
  // way; ownership is still decided by the exclusive create that follows.
  const std::string aside =
      path + ".stale." + workerId_ + "." + std::to_string(reclaimSeq_++);
  std::error_code ec;
  fs::rename(path, aside, ec);
  if (ec) return false;
  fs::remove(aside, ec);
  leaseEvent("reclaim");
  return true;
}

std::optional<WorkItem> WorkQueue::claim(const SweepStore& store,
                                         const SweepManifest& manifest) {
  bool probeFresh = false;  // refreshed at most once per scan
  for (const WorkItem& item : manifest.items) {
    if (store.contains(item.fingerprint)) continue;
    const auto claimedDoneItem = [&] {
      // A record may have landed between the contains() check and the
      // claim — including the whole instance completing behind a lease
      // that then went stale. Running it again would only produce a
      // duplicate for store() to discard; skip instead.
      if (!store.contains(item.fingerprint)) return false;
      release(item);
      return true;
    };
    if (tryClaimExclusive(item)) {
      if (claimedDoneItem()) continue;
      return item;
    }
    if (reclaimIfStale(item, probeFresh) && tryClaimExclusive(item)) {
      if (claimedDoneItem()) continue;
      return item;
    }
  }
  return std::nullopt;
}

void WorkQueue::release(const WorkItem& item) {
  std::error_code ec;
  fs::remove(leasePath(item), ec);
}

void WorkQueue::complete(const WorkItem& item) { release(item); }

bool WorkQueue::allDone(const SweepStore& store,
                        const SweepManifest& manifest) const {
  for (const WorkItem& item : manifest.items) {
    if (!store.contains(item.fingerprint)) return false;
  }
  return true;
}

void WorkQueue::requestStop() {
  std::ofstream out(stopPath(dir_));
  out << workerId_ << "\n";
}

bool WorkQueue::stopRequested() const {
  std::error_code ec;
  return fs::exists(stopPath(dir_), ec);
}

void WorkQueue::clearStop() {
  std::error_code ec;
  fs::remove(stopPath(dir_), ec);
}

LeaseGuard::LeaseGuard(SweepParticipant& participant, WorkItem item)
    : participant_(participant), item_(std::move(item)) {
  // Renew at a third of the lease so two consecutive missed heartbeats
  // still leave the lease fresh; the floor keeps a deliberately tiny test
  // lease from spinning the thread.
  const double period = std::max(participant_.leaseSeconds() / 3.0, 0.05);
  renewal_ = std::thread([this, period] {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopRenewal_) {
      const bool stopping =
          cv_.wait_for(lock, std::chrono::duration<double>(period),
                       [this] { return stopRenewal_; });
      if (stopping) break;
      lock.unlock();
      faultPoint("mid-renewal");
      const bool renewed = participant_.renew(item_);
      lock.lock();
      if (!renewed) {
        lost_.store(true);
        break;  // we no longer own the claim; stop heartbeating
      }
    }
  });
}

LeaseGuard::~LeaseGuard() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopRenewal_ = true;
  }
  cv_.notify_all();
  if (renewal_.joinable()) renewal_.join();
  // A lost claim belongs to its reclaimer now — releasing would delete the
  // PEER's live lease.
  if (!completed_.load() && !lost_.load()) participant_.release(item_);
}

QueueRunStats runSweepParticipant(
    const InstanceSuite& suite, SweepParticipant& participant,
    const StopToken* stop,
    const std::function<void(const WorkItem&, const InstanceOutcome&)>&
        onDone) {
  QueueRunStats stats;
  while (true) {
    if ((stop != nullptr && stop->stopRequested()) ||
        participant.stopRequested()) {
      stats.stopped = true;
      return stats;
    }
    std::optional<WorkItem> item = participant.claimNext();
    if (!item.has_value()) {
      if (participant.failed()) {
        stats.failed = true;
        stats.error = participant.failureReason();
      }
      return stats;
    }
    const BatchInstance& instance = suite.instances()[item->index];
    // Everything from here to markCompleted() is covered by the guard: a
    // throw from the instance run or the store releases the lease instead
    // of leaving it to dangle until the stale timeout.
    LeaseGuard guard(participant, *item);
    faultPoint("post-claim");
    InstanceOutcome outcome = runBatchInstance(instance, stop);
    if (!SweepStore::outcomeIsComplete(outcome)) {
      // Cut short mid-instance: the partial result must not enter the
      // store. The guard releases the claim so a peer (or a resume)
      // redoes it.
      stats.stopped = true;
      return stats;
    }
    if (guard.renewalLost()) continue;  // the reclaimer publishes it
    faultPoint("pre-complete");
    participant.storeRecord(*item, outcome);
    guard.markCompleted();
    ++stats.executed;
    if (onDone) onDone(*item, outcome);
  }
}

QueueRunStats runQueuedInstances(
    const InstanceSuite& suite, const SweepManifest& manifest,
    SweepStore& store, WorkQueue& queue, const StopToken* stop,
    const std::function<void(const WorkItem&, const InstanceOutcome&)>&
        onDone) {
  FileSweepParticipant participant(suite, manifest, store, queue);
  return runSweepParticipant(suite, participant, stop, onDone);
}

BatchReport reportFromStore(const InstanceSuite& suite, SweepStore& store) {
  BatchReport report;
  report.suiteName = suite.name();
  report.results.resize(suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const BatchInstance& instance = suite.instances()[i];
    InstanceResult& slot = report.results[i];
    slot.index = i;
    slot.id = instance.id;
    slot.group = instance.group;
    slot.axis = instance.axis;
    slot.seedIndex = instance.seedIndex;
    slot.suiteSeed = instance.suiteSeed;
    std::optional<InstanceOutcome> outcome =
        store.load(instanceFingerprint(suite.name(), instance));
    if (outcome.has_value()) {
      slot.outcome = std::move(*outcome);
      slot.ran = true;
      slot.cached = true;
      ++report.completed;
      ++report.cacheHits;
    }
  }
  report.stopped = report.completed != suite.size();
  return report;
}

}  // namespace ides
