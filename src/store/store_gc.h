// Sweep store garbage collection (`ides_cli store gc`).
//
// The store is append-only by design — every mutating path only ever adds
// records. That is the right default for a cache of expensive results, but
// two kinds of file accumulate forever without an explicit reaper:
//
//   * quarantined records: corrupt files load() moved aside. Kept for
//     post-mortems, worthless once inspected.
//   * superseded records: a kSweepFingerprintEpoch bump re-keys every
//     instance, so records written under earlier epochs can never be
//     loaded again (their fingerprints are simply never asked for). They
//     are dead weight with no tombstone.
//
// GC selects candidates by explicit, conservative predicates and is a
// DRY RUN unless `apply` is set. Records whose fingerprint appears in a
// live manifest.json in the store directory are never touched, whatever
// the predicates say — an in-flight distributed sweep must not lose
// records out from under its participants.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ides {

struct StoreGcOptions {
  bool apply = false;  ///< false = report only (the default, and the
                       ///< CLI's default too)
  /// Remove records whose embedded epoch is strictly below this (records
  /// predating the epoch field count as epoch 0). Negative = off.
  std::int64_t epoch = -1;
  /// Remove records whose file is older than this many seconds (also
  /// catches unparseable strays the epoch predicate cannot read).
  /// Negative = off.
  double olderThanSeconds = -1.0;
};

struct StoreGcAction {
  std::string path;
  std::string fingerprint;  ///< empty for quarantine files
  std::string reason;       ///< "quarantined", "superseded epoch N", "age"
};

struct StoreGcReport {
  std::vector<StoreGcAction> remove;   ///< selected for removal
  std::size_t kept = 0;                ///< records inspected and kept
  std::size_t protectedByManifest = 0; ///< matched a predicate but live
  bool applied = false;                ///< true when files were deleted
};

/// Scans the store and selects removal candidates; deletes them only when
/// `options.apply`. Quarantine files are always candidates; records only
/// via the epoch/age predicates. Throws std::runtime_error when the store
/// directory is missing.
StoreGcReport gcSweepStore(const std::string& dir,
                           const StoreGcOptions& options);

/// Human-readable rendering for the CLI (one line per action + summary).
std::string storeGcText(const StoreGcReport& report,
                        const StoreGcOptions& options);

}  // namespace ides
