// Small online statistics helpers used by the benchmark harness.
#pragma once

#include <cstddef>
#include <vector>

namespace ides {

/// Online accumulator: mean / min / max / sample standard deviation.
class StatAccumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Sample (n-1) standard deviation; 0 for fewer than two samples.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double sumSq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample (nearest-rank). q in [0, 100].
double percentile(std::vector<double> samples, double q);

}  // namespace ides
