// Portable content hashing for the sweep store.
//
// The store keys every persisted instance record by a fingerprint of the
// inputs that determine its result (suite name, generator config, seeds,
// strategy and options, plus a code epoch). The hash therefore has to be
// stable across platforms, compilers and process runs — std::hash is none
// of those — so this is a plain FNV-1a over an explicitly serialized field
// stream, with splitmix64 finalization for avalanche and a second
// independently-seeded lane to stretch the digest to 128 bits (the store
// is content-addressed; 64 bits alone would make record-file collisions
// merely improbable instead of negligible).
//
// Field framing: every typed append is length- or width-delimited (strings
// are length-prefixed, scalars fixed-width), so adjacent fields can never
// alias each other ("ab"+"c" hashes differently from "a"+"bc").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ides {

/// Streaming FNV-1a (64-bit) over a typed field stream.
class Fnv1aHasher {
 public:
  static constexpr std::uint64_t kDefaultBasis = 0xcbf29ce484222325ULL;

  explicit Fnv1aHasher(std::uint64_t basis = kDefaultBasis)
      : state_(basis) {}

  /// Raw bytes, no framing (building block for the typed appends).
  void bytes(const void* data, std::size_t size);

  /// Fixed-width scalars, hashed little-endian regardless of host order.
  void u64(std::uint64_t value);
  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }
  void boolean(bool value) { u64(value ? 1 : 0); }
  /// IEEE-754 bit pattern; -0.0 is normalized to 0.0 so numerically equal
  /// configurations fingerprint equally.
  void f64(double value);
  /// Length-prefixed, so consecutive strings cannot alias.
  void str(std::string_view value);

  /// Current digest, splitmix64-finalized for avalanche (the raw FNV state
  /// changes only a few bits per small input).
  [[nodiscard]] std::uint64_t value() const;

 private:
  std::uint64_t state_;
};

/// One-shot FNV-1a of a byte string (unfinalized, standard test vectors).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data);

/// 32-hex-character rendering of a 128-bit digest, high lane first.
[[nodiscard]] std::string hashHex(std::uint64_t hi, std::uint64_t lo);

}  // namespace ides
