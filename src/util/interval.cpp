#include "util/interval.h"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace ides {

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << '[' << iv.start << ',' << iv.end << ')';
}

IntervalSet::IntervalSet(std::vector<Interval> intervals) {
  for (const Interval& iv : intervals) add(iv);
}

void IntervalSet::add(Interval iv) {
  if (iv.empty()) return;
  // Find the first member that ends at or after iv.start (touching counts,
  // so adjacent intervals coalesce into one).
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv,
      [](const Interval& a, const Interval& b) { return a.end < b.start; });
  // Find one past the last member that starts at or before iv.end.
  auto last = first;
  while (last != intervals_.end() && last->start <= iv.end) {
    iv.start = std::min(iv.start, last->start);
    iv.end = std::max(iv.end, last->end);
    ++last;
  }
  auto pos = intervals_.erase(first, last);
  intervals_.insert(pos, iv);
  checkInvariant();
}

void IntervalSet::subtract(Interval iv) {
  if (iv.empty() || intervals_.empty()) return;
  // Locate the overlapping run with binary search and rewrite only it; the
  // journal rollback path subtracts one interval at a time from large sets,
  // where rebuilding the whole vector per call dominated.
  const auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv,
      [](const Interval& a, const Interval& b) { return a.end <= b.start; });
  auto last = first;
  while (last != intervals_.end() && last->start < iv.end) ++last;
  if (first == last) return;  // no overlap

  // Clipped edges of the outermost overlapped members survive.
  const Interval head{first->start, iv.start};
  const Interval tail{iv.end, std::prev(last)->end};
  auto pos = intervals_.erase(first, last);
  if (!tail.empty()) pos = intervals_.insert(pos, tail);
  if (!head.empty()) intervals_.insert(pos, head);
  checkInvariant();
}

void IntervalSet::subtractSorted(const Interval* begin, const Interval* end) {
  if (begin == end || intervals_.empty()) return;
  if (std::next(begin) == end) {
    subtract(*begin);
    return;
  }
  // Build the survivor list in a reused buffer, then copy back into the
  // member vector's existing capacity — the rollback hot path stays
  // allocation-free after warm-up.
  static thread_local std::vector<Interval> buffer;
  buffer.clear();
  const Interval* cut = begin;
  for (const Interval& member : intervals_) {
    Time cursor = member.start;
    while (cut != end && cut->end <= cursor) ++cut;
    const Interval* c = cut;
    for (; c != end && c->start < member.end; ++c) {
      if (c->start > cursor) buffer.push_back({cursor, c->start});
      cursor = std::max(cursor, c->end);
    }
    if (cursor < member.end) buffer.push_back({cursor, member.end});
  }
  intervals_.assign(buffer.begin(), buffer.end());
  checkInvariant();
}

Time IntervalSet::totalLength() const {
  Time total = 0;
  for (const Interval& iv : intervals_) total += iv.length();
  return total;
}

bool IntervalSet::covers(Interval iv) const {
  if (iv.empty()) return true;
  // The covering member, if any, is the last one starting at or before
  // iv.start.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), iv,
      [](const Interval& a, const Interval& b) { return a.start < b.start; });
  if (it == intervals_.begin()) return false;
  --it;
  return it->start <= iv.start && it->end >= iv.end;
}

bool IntervalSet::intersects(Interval iv) const {
  if (iv.empty()) return false;
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv,
      [](const Interval& a, const Interval& b) { return a.end <= b.start; });
  return it != intervals_.end() && it->overlaps(iv);
}

IntervalSet IntervalSet::complementWithin(Interval horizon) const {
  IntervalSet out;
  complementWithinInto(horizon, out);
  return out;
}

void IntervalSet::complementWithinInto(Interval horizon,
                                       IntervalSet& out) const {
  out.intervals_.clear();
  if (horizon.empty()) return;
  Time cursor = horizon.start;
  for (const Interval& iv : intervals_) {
    if (iv.end <= horizon.start) continue;
    if (iv.start >= horizon.end) break;
    if (iv.start > cursor) {
      out.intervals_.push_back({cursor, std::min(iv.start, horizon.end)});
    }
    cursor = std::max(cursor, iv.end);
    if (cursor >= horizon.end) break;
  }
  if (cursor < horizon.end) {
    out.intervals_.push_back({cursor, horizon.end});
  }
  out.checkInvariant();
}

IntervalSet IntervalSet::intersectWith(Interval window) const {
  IntervalSet out;
  if (window.empty()) return out;
  for (const Interval& iv : intervals_) {
    if (iv.end <= window.start) continue;
    if (iv.start >= window.end) break;
    out.intervals_.push_back(
        {std::max(iv.start, window.start), std::min(iv.end, window.end)});
  }
  out.checkInvariant();
  return out;
}

Time IntervalSet::lengthWithin(Interval window) const {
  Time total = 0;
  for (const Interval& iv : intervals_) {
    if (iv.end <= window.start) continue;
    if (iv.start >= window.end) break;
    total += std::min(iv.end, window.end) - std::max(iv.start, window.start);
  }
  return total;
}

Time IntervalSet::largest() const {
  Time best = 0;
  for (const Interval& iv : intervals_) best = std::max(best, iv.length());
  return best;
}

void IntervalSet::checkInvariant() const {
#ifndef NDEBUG
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    assert(!intervals_[i].empty());
    if (i > 0) assert(intervals_[i - 1].end < intervals_[i].start);
  }
#endif
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& set) {
  os << '{';
  bool first = true;
  for (const Interval& iv : set.intervals()) {
    if (!first) os << ", ";
    os << iv;
    first = false;
  }
  return os << '}';
}

}  // namespace ides
