// Cooperative cancellation for long-running optimizer and batch runs.
//
// A StopToken combines an explicit cancellation flag with an optional
// wall-clock deadline. Consumers (the strategy inner loops, the batch
// runner's shard workers) poll stopRequested() at their natural step
// boundaries — an SA iteration, an MH improvement round, a batch instance —
// and wind down gracefully, returning a well-formed partial result. The
// token never interrupts anything by force, so every result produced under
// cancellation is still internally consistent and reproducible up to the
// point the stop landed.
//
// Thread-safe: one token is typically shared by many workers. The deadline
// latches into the flag on first observation, so later checks are a single
// relaxed atomic load instead of a clock read.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>

namespace ides {

class StopToken {
 public:
  using Clock = std::chrono::steady_clock;

  StopToken() = default;

  StopToken(const StopToken&) = delete;
  StopToken& operator=(const StopToken&) = delete;

  /// Request cancellation. Idempotent; visible to every polling thread.
  void requestStop() { stopped_.store(true, std::memory_order_release); }

  /// Absolute deadline; stopRequested() turns true once the clock passes
  /// it. A second call replaces the previous deadline (unless the token
  /// already latched).
  void setDeadline(Clock::time_point deadline) {
    deadline_.store(deadline.time_since_epoch().count(),
                    std::memory_order_release);
  }

  /// Convenience: deadline `seconds` from now. Non-positive values fire
  /// immediately.
  void setTimeout(double seconds) {
    setDeadline(Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(seconds)));
  }

  /// True once cancellation was requested or the deadline passed.
  [[nodiscard]] bool stopRequested() const {
    if (stopped_.load(std::memory_order_acquire)) return true;
    const Clock::rep d = deadline_.load(std::memory_order_acquire);
    if (d != kNoDeadline &&
        Clock::now().time_since_epoch().count() >= d) {
      stopped_.store(true, std::memory_order_release);  // latch
      return true;
    }
    return false;
  }

 private:
  static constexpr Clock::rep kNoDeadline =
      std::numeric_limits<Clock::rep>::max();

  /// Mutable: the deadline check latches into the flag from const readers.
  mutable std::atomic<bool> stopped_{false};
  std::atomic<Clock::rep> deadline_{kNoDeadline};
};

}  // namespace ides
