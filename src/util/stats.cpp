#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ides {

void StatAccumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  sumSq_ += x * x;
}

double StatAccumulator::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double StatAccumulator::min() const { return count_ == 0 ? 0.0 : min_; }
double StatAccumulator::max() const { return count_ == 0 ? 0.0 : max_; }

double StatAccumulator::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sumSq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample");
  if (q < 0.0 || q > 100.0) {
    throw std::invalid_argument("percentile: q outside [0,100]");
  }
  std::sort(samples.begin(), samples.end());
  const double rank = q / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace ides
