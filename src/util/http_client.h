// Minimal dependency-free HTTP/1.1 client for the sweep fabric.
//
// The counterpart of serve/http_server.h: plain POSIX sockets, one request
// per connection (the server answers Connection: close anyway), explicit
// connect and read timeouts so a vanished coordinator costs a bounded wait
// instead of a hung worker, and a capped exponential backoff policy with
// deterministic jitter for the retry loops around it.
//
// Transport failures (refused, timed out, short response) and HTTP status
// codes are reported separately: `ok` says "a complete HTTP response came
// back", `status` says what the server answered. Retry loops treat
// transport failures and 5xx as retryable; 4xx are the caller's bug and
// surface immediately.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/rng.h"
#include "util/stop_token.h"

namespace ides {

/// Parsed http:// URL. Only the scheme the fabric speaks; https is out of
/// scope for a LAN coordinator (put a terminating proxy in front if the
/// path crosses trust boundaries).
struct HttpUrl {
  std::string host;
  int port = 80;
  std::string path = "/";  ///< always starts with '/'
};

/// Parses "http://host[:port][/path]". nullopt on anything else (https,
/// missing host, junk port).
std::optional<HttpUrl> parseHttpUrl(std::string_view url);

struct HttpClientOptions {
  double connectTimeoutSeconds = 5.0;
  /// Budget for the whole response read, not per-chunk — a coordinator
  /// that stops mid-response is as gone as one that never accepted.
  double readTimeoutSeconds = 30.0;
};

struct HttpClientResult {
  bool ok = false;    ///< a complete HTTP response was received
  int status = 0;     ///< HTTP status when ok
  std::string body;
  std::string error;  ///< transport-level reason when !ok
};

/// One blocking request. `target` is the request target ("/path?query"),
/// `body` non-empty implies a Content-Length body (method chosen by the
/// caller). Never throws; failures come back in the result.
HttpClientResult httpRequest(const HttpUrl& url, const std::string& method,
                             const std::string& target,
                             const std::string& body,
                             const HttpClientOptions& options = {});

/// Capped exponential backoff with jitter. Delay for attempt k (0-based)
/// is min(initial * multiplier^k, max), scaled by a uniform factor in
/// [1 - jitter, 1 + jitter] — jitter decorrelates a worker fleet that lost
/// its coordinator at the same instant, so the comeback is not a stampede.
struct BackoffPolicy {
  double initialSeconds = 0.25;
  double maxSeconds = 5.0;
  double multiplier = 2.0;
  double jitter = 0.25;  ///< fraction of the delay; must be in [0, 1)
  int maxAttempts = 6;   ///< total tries (first attempt included)
};

/// The delay to sleep after failed attempt `attempt` (0-based). Pure given
/// the rng state — unit-testable and deterministic per worker seed.
double backoffDelaySeconds(const BackoffPolicy& policy, int attempt,
                           Rng& rng);

/// httpRequest with retries under `policy`: transport failures and 5xx
/// responses retry (sleeping the backoff delay between attempts, leaving
/// early when `stop` fires); anything else returns immediately. The final
/// failure carries the last error/status seen.
HttpClientResult httpRequestWithRetry(const HttpUrl& url,
                                      const std::string& method,
                                      const std::string& target,
                                      const std::string& body,
                                      const BackoffPolicy& policy, Rng& rng,
                                      const StopToken* stop = nullptr,
                                      const HttpClientOptions& options = {});

}  // namespace ides
