#include "util/hashing.h"

#include <cstring>

#include "util/rng.h"

namespace ides {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

}  // namespace

void Fnv1aHasher::bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state_ ^= p[i];
    state_ *= kFnvPrime;
  }
}

void Fnv1aHasher::u64(std::uint64_t value) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<unsigned char>(value >> (8 * i));
  }
  bytes(buf, sizeof(buf));
}

void Fnv1aHasher::f64(double value) {
  if (value == 0.0) value = 0.0;  // collapse -0.0 onto +0.0
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  u64(bits);
}

void Fnv1aHasher::str(std::string_view value) {
  u64(value.size());
  bytes(value.data(), value.size());
}

std::uint64_t Fnv1aHasher::value() const { return splitmix64(state_); }

std::uint64_t fnv1a64(std::string_view data) {
  // Unfinalized on purpose: this is the textbook FNV-1a (matches the
  // published test vectors), while Fnv1aHasher::value() finalizes.
  std::uint64_t state = Fnv1aHasher::kDefaultBasis;
  for (const char c : data) {
    state ^= static_cast<unsigned char>(c);
    state *= kFnvPrime;
  }
  return state;
}

std::string hashHex(std::uint64_t hi, std::uint64_t lo) {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = digits[(hi >> (4 * i)) & 0xF];
    out[31 - i] = digits[(lo >> (4 * i)) & 0xF];
  }
  return out;
}

}  // namespace ides
