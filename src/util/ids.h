// Strongly-typed integer identifiers.
//
// Every entity in the model (node, process, message, graph, application) is
// referred to by a dense index into its owning container. Wrapping the index
// in a distinct struct stops a ProcessId from silently being used where a
// NodeId is expected -- a classic source of mapping bugs in co-synthesis
// code, where everything is "just an int".
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace ides {

namespace detail {

/// CRTP-free tagged index. Tag makes each instantiation a distinct type.
template <typename Tag>
struct TaggedId {
  std::int32_t value = -1;

  constexpr TaggedId() = default;
  constexpr explicit TaggedId(std::int32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value >= 0; }
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(value);
  }

  friend constexpr bool operator==(TaggedId, TaggedId) = default;
  friend constexpr auto operator<=>(TaggedId, TaggedId) = default;
};

}  // namespace detail

using NodeId = detail::TaggedId<struct NodeTag>;
using ProcessId = detail::TaggedId<struct ProcessTag>;
using MessageId = detail::TaggedId<struct MessageTag>;
using GraphId = detail::TaggedId<struct GraphTag>;
using ApplicationId = detail::TaggedId<struct ApplicationTag>;

}  // namespace ides

namespace std {

template <typename Tag>
struct hash<ides::detail::TaggedId<Tag>> {
  size_t operator()(ides::detail::TaggedId<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};

}  // namespace std
