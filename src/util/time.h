// Time base for the whole library.
//
// All schedules, periods, deadlines and WCETs are expressed as integer tick
// counts. Ticks are dimensionless; a benchmark suite decides what one tick
// means (the paper-scale suites treat one tick as roughly one microsecond).
// Integer time keeps the static cyclic schedules exact: the hyperperiod, the
// TDMA round length and every slot boundary are exact multiples of a tick,
// so there is no accumulation error over rounds.
#pragma once

#include <cstdint>
#include <limits>

namespace ides {

/// Discrete time in ticks.
using Time = std::int64_t;

/// Sentinel for "no time" / "unscheduled".
inline constexpr Time kNoTime = std::numeric_limits<Time>::min();

/// Largest representable time; used as an "infinite" horizon.
inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

/// Ceiling division for non-negative integers.
constexpr Time ceilDiv(Time num, Time den) { return (num + den - 1) / den; }

}  // namespace ides
