// Half-open time intervals and sorted disjoint interval sets.
//
// The scheduler represents processor busy time as a sorted set of disjoint
// [start, end) intervals; the slack (free) intervals are the complement
// within the hyperperiod. The design metrics (C1, C2) operate directly on
// these interval sets, so correctness of the gap arithmetic here is
// load-bearing for the whole reproduction.
#pragma once

#include <iosfwd>
#include <vector>

#include "util/time.h"

namespace ides {

/// Half-open interval [start, end). Empty iff start >= end.
struct Interval {
  Time start = 0;
  Time end = 0;

  [[nodiscard]] constexpr Time length() const {
    return end > start ? end - start : 0;
  }
  [[nodiscard]] constexpr bool empty() const { return end <= start; }
  [[nodiscard]] constexpr bool contains(Time t) const {
    return t >= start && t < end;
  }
  /// True if the two intervals share at least one tick.
  [[nodiscard]] constexpr bool overlaps(const Interval& o) const {
    return start < o.end && o.start < end;
  }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

/// Sorted set of pairwise-disjoint, non-empty, non-touching intervals.
///
/// Maintains the invariant after every mutation; adjacent/overlapping
/// insertions are coalesced. All query results are deterministic.
class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(std::vector<Interval> intervals);

  /// Insert an interval, merging with any overlapping/touching members.
  void add(Interval iv);

  /// Remove [iv.start, iv.end) from the set, splitting members as needed.
  void subtract(Interval iv);

  /// Remove every interval of [begin, end) — sorted by start, pairwise
  /// non-overlapping — in one linear pass. Equivalent to subtracting them
  /// one by one; the journal rollback undoes whole scheduling suffixes this
  /// way instead of paying a per-interval rewrite.
  void subtractSorted(const Interval* begin, const Interval* end);

  /// Total covered length.
  [[nodiscard]] Time totalLength() const;

  /// True if [iv.start, iv.end) is fully covered by the set.
  [[nodiscard]] bool covers(Interval iv) const;

  /// True if the interval overlaps any member.
  [[nodiscard]] bool intersects(Interval iv) const;

  /// Complement of this set within [horizon.start, horizon.end).
  [[nodiscard]] IntervalSet complementWithin(Interval horizon) const;

  /// Complement written into `out`, reusing its capacity. The hot
  /// evaluation loop extracts slack thousands of times per optimization
  /// run; this variant keeps that loop allocation-free.
  void complementWithinInto(Interval horizon, IntervalSet& out) const;

  /// Intersection with a single window (used by the C2 metric).
  [[nodiscard]] IntervalSet intersectWith(Interval window) const;

  /// Covered length inside a window, without materializing the intersection.
  [[nodiscard]] Time lengthWithin(Interval window) const;

  [[nodiscard]] const std::vector<Interval>& intervals() const {
    return intervals_;
  }
  [[nodiscard]] bool empty() const { return intervals_.empty(); }
  [[nodiscard]] std::size_t size() const { return intervals_.size(); }

  /// Largest single member length (0 if empty).
  [[nodiscard]] Time largest() const;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  void checkInvariant() const;

  std::vector<Interval> intervals_;
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& set);

}  // namespace ides
