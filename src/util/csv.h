// Minimal CSV table writer for benchmark output.
//
// Each figure bench emits both a human-readable table and a CSV block so
// the series can be re-plotted outside the harness.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ides {

/// Column-oriented table; all rows must have the same arity as the header.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header);

  void addRow(std::vector<std::string> row);

  /// Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 2);
  static std::string num(long long v);

  void writeCsv(std::ostream& os) const;
  /// Aligned, human-readable rendering.
  void writePretty(std::ostream& os) const;

  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ides
