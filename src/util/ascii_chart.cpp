#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ides {

namespace {
constexpr char kMarkers[] = {'*', 'o', '+', 'x', '#', '@'};
}

AsciiChart::AsciiChart(std::string title, std::string xLabel,
                       std::string yLabel)
    : title_(std::move(title)),
      xLabel_(std::move(xLabel)),
      yLabel_(std::move(yLabel)) {}

void AsciiChart::setXAxis(std::vector<double> xs) { xs_ = std::move(xs); }

void AsciiChart::addSeries(std::string name, std::vector<double> ys) {
  if (ys.size() != xs_.size()) {
    throw std::invalid_argument("AsciiChart: series size != x-axis size");
  }
  const char marker = kMarkers[series_.size() % std::size(kMarkers)];
  series_.push_back({std::move(name), std::move(ys), marker});
}

void AsciiChart::render(std::ostream& os, int width, int height) const {
  if (xs_.empty() || series_.empty()) {
    os << title_ << ": (no data)\n";
    return;
  }
  double xMin = xs_.front(), xMax = xs_.back();
  double yMin = 0.0, yMax = 0.0;
  bool first = true;
  for (const Series& s : series_) {
    for (double y : s.ys) {
      if (first) {
        yMin = yMax = y;
        first = false;
      } else {
        yMin = std::min(yMin, y);
        yMax = std::max(yMax, y);
      }
    }
  }
  yMin = std::min(yMin, 0.0);
  if (yMax <= yMin) yMax = yMin + 1.0;
  if (xMax <= xMin) xMax = xMin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  auto toCol = [&](double x) {
    const double t = (x - xMin) / (xMax - xMin);
    return std::clamp(static_cast<int>(std::lround(t * (width - 1))), 0,
                      width - 1);
  };
  auto toRow = [&](double y) {
    const double t = (y - yMin) / (yMax - yMin);
    return std::clamp(
        height - 1 - static_cast<int>(std::lround(t * (height - 1))), 0,
        height - 1);
  };
  // Connect consecutive points with linear interpolation, then overdraw the
  // data points with the series marker.
  for (const Series& s : series_) {
    for (std::size_t i = 0; i + 1 < xs_.size(); ++i) {
      const int c0 = toCol(xs_[i]), c1 = toCol(xs_[i + 1]);
      for (int c = c0; c <= c1; ++c) {
        const double t = (c1 == c0) ? 0.0
                                    : static_cast<double>(c - c0) /
                                          static_cast<double>(c1 - c0);
        const double y = s.ys[i] + t * (s.ys[i + 1] - s.ys[i]);
        auto& cell = grid[static_cast<std::size_t>(toRow(y))]
                         [static_cast<std::size_t>(c)];
        if (cell == ' ') cell = '.';
      }
    }
    for (std::size_t i = 0; i < xs_.size(); ++i) {
      grid[static_cast<std::size_t>(toRow(s.ys[i]))]
          [static_cast<std::size_t>(toCol(xs_[i]))] = s.marker;
    }
  }

  os << '\n' << "  " << title_ << '\n';
  os << "  y: " << yLabel_ << "   (";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i > 0) os << ", ";
    os << series_[i].marker << " = " << series_[i].name;
  }
  os << ")\n";
  std::ostringstream top, bot;
  top << std::setprecision(4) << yMax;
  bot << std::setprecision(4) << yMin;
  const int labelW =
      static_cast<int>(std::max(top.str().size(), bot.str().size()));
  for (int r = 0; r < height; ++r) {
    std::string label(static_cast<std::size_t>(labelW), ' ');
    if (r == 0) label = top.str();
    if (r == height - 1) label = bot.str();
    os << "  " << std::setw(labelW) << label << " |"
       << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << "  " << std::string(static_cast<std::size_t>(labelW), ' ') << " +"
     << std::string(static_cast<std::size_t>(width), '-') << '\n';
  std::ostringstream xlo, xhi;
  xlo << std::setprecision(4) << xMin;
  xhi << std::setprecision(4) << xMax;
  os << "  " << std::string(static_cast<std::size_t>(labelW), ' ') << "  "
     << xlo.str()
     << std::string(
            std::max<std::size_t>(
                1, static_cast<std::size_t>(width) > xlo.str().size() +
                                                         xhi.str().size()
                       ? static_cast<std::size_t>(width) - xlo.str().size() -
                             xhi.str().size()
                       : 1),
            ' ')
     << xhi.str() << "   x: " << xLabel_ << '\n';
}

}  // namespace ides
