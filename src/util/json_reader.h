// A tiny JSON reader for the sweep store's record files.
//
// The store writes its records (and the work queue its manifests) in the
// same hand-rendered JSON dialect the bench output uses; this is the
// matching reader. It is a full, strict JSON parser — objects, arrays,
// strings with the common escapes, numbers via strtod (so a %.17g
// rendering round-trips to the exact same double), true/false/null — but
// deliberately small: it materializes one immutable JsonValue tree and
// offers lookup helpers, nothing else. Parse errors throw std::runtime_error
// with the byte offset, which the store turns into record quarantine.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ides {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolValue = false;
  double numberValue = 0.0;
  std::string stringValue;
  std::vector<JsonValue> items;  ///< array elements
  /// Object members in document order (records care about field order).
  std::vector<std::pair<std::string, JsonValue>> members;

  [[nodiscard]] bool isObject() const { return kind == Kind::Object; }
  [[nodiscard]] bool isArray() const { return kind == Kind::Array; }

  /// Member lookup (first match); null when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Typed member accessors; throw std::runtime_error naming the key when
  /// it is absent or of the wrong kind (the store's schema checks).
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  [[nodiscard]] double numberAt(std::string_view key) const;
  [[nodiscard]] std::int64_t intAt(std::string_view key) const;
  [[nodiscard]] bool boolAt(std::string_view key) const;
  [[nodiscard]] const std::string& stringAt(std::string_view key) const;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected). Throws std::runtime_error with the byte offset on malformed
/// input.
[[nodiscard]] JsonValue parseJson(std::string_view text);

/// Writer-side counterpart for every hand-rendered JSON emitter in the
/// tree: `value` as a quoted JSON string with '"' and '\\' escaped (the
/// only escapes the emitters need — and exactly what parseJson undoes).
[[nodiscard]] std::string jsonQuote(std::string_view value);

}  // namespace ides
