// Deterministic random number generation.
//
// Every stochastic component (graph generators, simulated annealing, the C1
// packing sampler) takes an explicit seed or an Rng&; nothing reads global
// entropy. Re-running any experiment with the same seed reproduces the same
// numbers bit-for-bit, which the benchmark harness relies on to compare
// strategies on identical instances.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace ides {

/// splitmix64 finalizer: a cheap bijective scrambler with good avalanche
/// behaviour. Used wherever one logical seed has to be fanned out into many
/// decorrelated generator seeds (parallel SA chains, split RNG streams).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x);

/// Seed of deterministic stream `stream` derived from `seed`. Streams of
/// one seed are mutually decorrelated and stable across platforms, which
/// lets one stochastic component split its draws into independent
/// sub-sequences (e.g. SA's move-proposal stream vs. its Metropolis
/// acceptance stream) that can be consumed at different rates without one
/// perturbing the other.
[[nodiscard]] std::uint64_t rngStreamSeed(std::uint64_t seed,
                                          std::uint64_t stream);

/// Thin deterministic wrapper around mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi).
  double uniformReal(double lo, double hi);

  /// Bernoulli trial.
  bool chance(double probability);

  /// Uniform index in [0, size). Requires size > 0.
  std::size_t index(std::size_t size);

  /// Pick a uniformly random element. Requires non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[index(items.size())];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Derive an independent child generator (for per-instance seeding).
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Finite discrete distribution over (value, probability) pairs.
///
/// Used for the paper's future-application characterization: "typical
/// process WCET" and "typical message size" histograms (slide 10).
class DiscreteDistribution {
 public:
  struct Entry {
    std::int64_t value = 0;
    double probability = 0.0;
  };

  DiscreteDistribution() = default;
  /// Probabilities are normalized; entries with p <= 0 are rejected.
  explicit DiscreteDistribution(std::vector<Entry> entries);

  /// Draw a random value.
  [[nodiscard]] std::int64_t sample(Rng& rng) const;

  /// Probability-weighted mean value.
  [[nodiscard]] double expectedValue() const;

  /// Deterministic stream of values whose long-run mix matches the
  /// probabilities exactly (largest-remainder round-robin). Element i of the
  /// result is the i-th value of the stream. Used by the C1 metric so that
  /// the "largest future application" is the same for every design
  /// alternative being compared.
  [[nodiscard]] std::vector<std::int64_t> deterministicStream(
      std::size_t count) const;

  /// Per-entry item counts of deterministicStream(count): quotas[i] copies
  /// of entries()[i].value, emitted by descending value. Lets hot callers
  /// (the C1 metric) consume the stream run-by-run without materializing
  /// it.
  [[nodiscard]] std::vector<std::size_t> deterministicQuotas(
      std::size_t count) const;

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::int64_t maxValue() const;
  [[nodiscard]] std::int64_t minValue() const;

 private:
  std::vector<Entry> entries_;           // sorted by value, normalized
  std::vector<double> cumulative_;       // prefix sums for sampling
};

}  // namespace ides
