// Build/host provenance for benchmark artifacts and store records.
//
// Every BENCH_*.json header and every sweep-store record carries the four
// facts needed to interpret a number later: which code produced it (git
// SHA, captured at CMake configure time), on which machine (hostname,
// hardware_concurrency) and with which compiler. All four are stable for a
// given build on a given machine, so deterministic renderings still diff
// cleanly between runs — provenance only changes when something that could
// legitimately move the numbers changed too.
#pragma once

#include <string>

namespace ides {

struct Provenance {
  /// Short git SHA of the configured source tree ("unknown" outside git).
  /// Captured when CMake configures, not per build — a dirty tree or an
  /// unconfigured SHA bump is not reflected until the next configure.
  std::string gitSha;
  std::string hostname;
  unsigned hardwareConcurrency = 0;
  /// Compiler id and version, e.g. "gcc 12.2.0".
  std::string compiler;
};

/// The process-wide provenance, computed once on first use.
const Provenance& buildProvenance();

}  // namespace ides
