// Terminal line charts for the figure benchmarks.
//
// The paper's evaluation is three line charts; each figure bench renders an
// ASCII approximation next to the numeric table, so the "shape" claim
// (who wins, by how much, where the lines cross) is visible directly in
// bench output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ides {

/// Multi-series line chart over a shared x-axis.
class AsciiChart {
 public:
  AsciiChart(std::string title, std::string xLabel, std::string yLabel);

  /// All series must have the same number of points as `xs`.
  void setXAxis(std::vector<double> xs);
  void addSeries(std::string name, std::vector<double> ys);

  /// Render at the given plot-area size (characters).
  void render(std::ostream& os, int width = 64, int height = 18) const;

 private:
  std::string title_;
  std::string xLabel_;
  std::string yLabel_;
  std::vector<double> xs_;
  struct Series {
    std::string name;
    std::vector<double> ys;
    char marker;
  };
  std::vector<Series> series_;
};

}  // namespace ides
