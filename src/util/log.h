// Tiny leveled logger.
//
// The library itself is silent by default; strategies log progress at
// `Debug` so long benchmark runs can be traced with IDES_LOG=debug without
// recompiling.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace ides {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Parses a level name (debug|info|warn|error|off); anything else —
/// including garbage and the empty string — yields `fallback`. This is the
/// one parser behind IDES_LOG and the --log-level flags.
LogLevel parseLogLevel(std::string_view name, LogLevel fallback);

/// Global threshold. Initialized from the IDES_LOG environment variable
/// (debug|info|warn|error|off); defaults to Warn.
LogLevel logThreshold();
void setLogThreshold(LogLevel level);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Usage: IDES_LOG_AT(LogLevel::Info) << "mapped " << n << " processes";
#define IDES_LOG_AT(level)                                    \
  if ((level) < ::ides::logThreshold()) {                     \
  } else                                                      \
    ::ides::detail::LogLine(level)

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace ides
