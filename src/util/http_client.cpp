#include "util/http_client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace ides {

std::optional<HttpUrl> parseHttpUrl(std::string_view url) {
  constexpr std::string_view scheme = "http://";
  if (url.substr(0, scheme.size()) != scheme) return std::nullopt;
  std::string_view rest = url.substr(scheme.size());

  HttpUrl out;
  const std::size_t slash = rest.find('/');
  std::string_view authority =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  out.path = slash == std::string_view::npos ? "/"
                                             : std::string(rest.substr(slash));
  if (authority.empty()) return std::nullopt;

  const std::size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    const std::string_view portText = authority.substr(colon + 1);
    if (portText.empty()) return std::nullopt;
    int port = 0;
    for (char c : portText) {
      if (c < '0' || c > '9') return std::nullopt;
      port = port * 10 + (c - '0');
      if (port > 65535) return std::nullopt;
    }
    if (port == 0) return std::nullopt;
    out.port = port;
    authority = authority.substr(0, colon);
  }
  if (authority.empty()) return std::nullopt;
  out.host = std::string(authority);
  return out;
}

namespace {

struct SocketGuard {
  int fd = -1;
  ~SocketGuard() {
    if (fd >= 0) ::close(fd);
  }
};

HttpClientResult transportError(std::string reason) {
  HttpClientResult result;
  result.error = std::move(reason);
  return result;
}

/// Connects with an explicit timeout via a non-blocking connect + poll.
int connectWithTimeout(const HttpUrl& url, double timeoutSeconds,
                       std::string& error) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;

  const std::string portText = std::to_string(url.port);
  struct addrinfo* infos = nullptr;
  const int rc = ::getaddrinfo(url.host.c_str(), portText.c_str(), &hints,
                               &infos);
  if (rc != 0 || infos == nullptr) {
    error = "resolve " + url.host + ": " + ::gai_strerror(rc);
    return -1;
  }

  int fd = -1;
  error = "no usable address for " + url.host;
  for (struct addrinfo* info = infos; info != nullptr; info = info->ai_next) {
    fd = ::socket(info->ai_family, info->ai_socktype, info->ai_protocol);
    if (fd < 0) {
      error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

    if (::connect(fd, info->ai_addr, info->ai_addrlen) == 0) break;
    if (errno == EINPROGRESS) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      const int timeoutMs =
          static_cast<int>(std::max(0.0, timeoutSeconds) * 1000.0);
      const int ready = ::poll(&pfd, 1, timeoutMs);
      if (ready > 0) {
        int soError = 0;
        socklen_t len = sizeof(soError);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len) == 0 &&
            soError == 0) {
          break;  // connected
        }
        error = std::string("connect ") + url.host + ":" + portText + ": " +
                std::strerror(soError != 0 ? soError : ECONNREFUSED);
      } else if (ready == 0) {
        error = "connect " + url.host + ":" + portText + ": timed out";
      } else {
        error = std::string("poll: ") + std::strerror(errno);
      }
    } else {
      error = std::string("connect ") + url.host + ":" + portText + ": " +
              std::strerror(errno);
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(infos);
  if (fd >= 0) {
    // Back to blocking for the request/response exchange; per-call timeouts
    // come from SO_SNDTIMEO/SO_RCVTIMEO set by the caller.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    (void)::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  }
  return fd;
}

void setSocketTimeout(int fd, int option, double seconds) {
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - std::floor(seconds)) *
                                        1000000.0);
  (void)::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

bool sendAll(int fd, const std::string& data, std::string& error) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR)) continue;
      error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool caseInsensitiveEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

HttpClientResult httpRequest(const HttpUrl& url, const std::string& method,
                             const std::string& target,
                             const std::string& body,
                             const HttpClientOptions& options) {
  std::string connectError;
  SocketGuard socket;
  socket.fd = connectWithTimeout(url, options.connectTimeoutSeconds,
                                 connectError);
  if (socket.fd < 0) return transportError(connectError);
  setSocketTimeout(socket.fd, SO_SNDTIMEO, options.readTimeoutSeconds);
  setSocketTimeout(socket.fd, SO_RCVTIMEO, options.readTimeoutSeconds);

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + url.host + ":" + std::to_string(url.port) + "\r\n";
  request += "Connection: close\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    request += "Content-Type: application/json\r\n";
  }
  request += "\r\n";
  request += body;

  std::string sendError;
  if (!sendAll(socket.fd, request, sendError)) {
    return transportError(std::move(sendError));
  }

  // Read the response under an overall deadline: SO_RCVTIMEO bounds each
  // recv, the deadline bounds the sum, so a drip-feeding peer cannot hold
  // the worker past readTimeoutSeconds.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(options.readTimeoutSeconds);
  std::string raw;
  char buffer[4096];
  for (;;) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return transportError("read: timed out");
    }
    const ssize_t n = ::recv(socket.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      raw.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;  // orderly close — full response received
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return transportError("read: timed out");
    }
    return transportError(std::string("recv: ") + std::strerror(errno));
  }

  const std::size_t headerEnd = raw.find("\r\n\r\n");
  if (headerEnd == std::string::npos) {
    return transportError("malformed response: no header terminator");
  }
  const std::string_view head = std::string_view(raw).substr(0, headerEnd);
  const std::size_t lineEnd = head.find("\r\n");
  const std::string_view statusLine =
      lineEnd == std::string_view::npos ? head : head.substr(0, lineEnd);
  // "HTTP/1.1 200 OK"
  const std::size_t firstSpace = statusLine.find(' ');
  if (firstSpace == std::string_view::npos ||
      statusLine.substr(0, 5) != "HTTP/") {
    return transportError("malformed response: bad status line");
  }
  std::string_view statusText = statusLine.substr(firstSpace + 1);
  const std::size_t secondSpace = statusText.find(' ');
  if (secondSpace != std::string_view::npos) {
    statusText = statusText.substr(0, secondSpace);
  }
  int status = 0;
  for (char c : statusText) {
    if (c < '0' || c > '9') return transportError("malformed status code");
    status = status * 10 + (c - '0');
  }
  if (status < 100 || status > 599) {
    return transportError("malformed status code");
  }

  // Content-Length, when present, guards against a truncated body; the
  // server closes after each response so read-to-EOF is the fallback.
  std::size_t contentLength = std::string::npos;
  std::string_view headers =
      lineEnd == std::string_view::npos ? std::string_view{}
                                        : head.substr(lineEnd + 2);
  while (!headers.empty()) {
    const std::size_t eol = headers.find("\r\n");
    const std::string_view line =
        eol == std::string_view::npos ? headers : headers.substr(0, eol);
    headers = eol == std::string_view::npos ? std::string_view{}
                                            : headers.substr(eol + 2);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    if (!caseInsensitiveEquals(line.substr(0, colon), "content-length")) {
      continue;
    }
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    std::size_t length = 0;
    bool valid = !value.empty();
    for (char c : value) {
      if (c < '0' || c > '9') {
        valid = false;
        break;
      }
      length = length * 10 + static_cast<std::size_t>(c - '0');
    }
    if (valid) contentLength = length;
  }

  HttpClientResult result;
  result.body = raw.substr(headerEnd + 4);
  if (contentLength != std::string::npos) {
    if (result.body.size() < contentLength) {
      return transportError("truncated body");
    }
    result.body.resize(contentLength);
  }
  result.ok = true;
  result.status = status;
  return result;
}

double backoffDelaySeconds(const BackoffPolicy& policy, int attempt,
                           Rng& rng) {
  double delay = policy.initialSeconds;
  for (int i = 0; i < attempt && delay < policy.maxSeconds; ++i) {
    delay *= policy.multiplier;
  }
  delay = std::min(delay, policy.maxSeconds);
  if (policy.jitter > 0.0) {
    const double factor =
        rng.uniformReal(1.0 - policy.jitter, 1.0 + policy.jitter);
    delay *= factor;
  }
  return delay;
}

HttpClientResult httpRequestWithRetry(const HttpUrl& url,
                                      const std::string& method,
                                      const std::string& target,
                                      const std::string& body,
                                      const BackoffPolicy& policy, Rng& rng,
                                      const StopToken* stop,
                                      const HttpClientOptions& options) {
  HttpClientResult last;
  const int attempts = std::max(1, policy.maxAttempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (stop != nullptr && stop->stopRequested()) {
      last.ok = false;
      last.error = "stopped";
      return last;
    }
    last = httpRequest(url, method, target, body, options);
    const bool retryable = !last.ok || last.status >= 500;
    if (!retryable || attempt + 1 == attempts) return last;

    // Sleep in short slices so a stop request interrupts the backoff.
    double remaining = backoffDelaySeconds(policy, attempt, rng);
    while (remaining > 0.0) {
      if (stop != nullptr && stop->stopRequested()) {
        last.ok = false;
        last.error = "stopped";
        return last;
      }
      const double slice = std::min(remaining, 0.05);
      std::this_thread::sleep_for(std::chrono::duration<double>(slice));
      remaining -= slice;
    }
  }
  return last;
}

}  // namespace ides
