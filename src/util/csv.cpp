#include "util/csv.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ides {

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("CsvTable: empty header");
}

void CsvTable::addRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("CsvTable: row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string CsvTable::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string CsvTable::num(long long v) { return std::to_string(v); }

void CsvTable::writeCsv(std::ostream& os) const {
  auto writeRow = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  writeRow(header_);
  for (const auto& row : rows_) writeRow(row);
}

void CsvTable::writePretty(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto writeRow = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << "  " << std::setw(static_cast<int>(width[i])) << row[i];
    }
    os << '\n';
  };
  os << std::right;
  writeRow(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) writeRow(row);
}

}  // namespace ides
