#include "util/json_reader.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace ides {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue document() {
    JsonValue value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parseValue() {
    skipWhitespace();
    switch (peek()) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"': {
        JsonValue value;
        value.kind = JsonValue::Kind::String;
        value.stringValue = parseString();
        return value;
      }
      case 't':
      case 'f': {
        JsonValue value;
        value.kind = JsonValue::Kind::Bool;
        if (consumeLiteral("true")) {
          value.boolValue = true;
        } else if (consumeLiteral("false")) {
          value.boolValue = false;
        } else {
          fail("malformed literal");
        }
        return value;
      }
      case 'n': {
        if (!consumeLiteral("null")) fail("malformed literal");
        return JsonValue{};
      }
      default:
        return parseNumber();
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue value;
    value.kind = JsonValue::Kind::Object;
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skipWhitespace();
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      value.members.emplace_back(std::move(key), parseValue());
      skipWhitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue value;
    value.kind = JsonValue::Kind::Array;
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.items.push_back(parseValue());
      skipWhitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out += escape;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          // The writers never emit \u escapes; decode the BMP code point
          // as a single byte when it fits, reject otherwise (strictness
          // beats silent mojibake in a store record).
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          if (code > 0x7F) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    // strtod needs a terminated buffer; the slice is short, copy it.
    const std::string slice(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size() || !std::isfinite(parsed)) {
      fail("malformed number");
    }
    JsonValue value;
    value.kind = JsonValue::Kind::Number;
    value.numberValue = parsed;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw std::runtime_error("json: missing key \"" + std::string(key) +
                             "\"");
  }
  return *value;
}

double JsonValue::numberAt(std::string_view key) const {
  const JsonValue& value = at(key);
  if (value.kind != Kind::Number) {
    throw std::runtime_error("json: key \"" + std::string(key) +
                             "\" is not a number");
  }
  return value.numberValue;
}

std::int64_t JsonValue::intAt(std::string_view key) const {
  return static_cast<std::int64_t>(numberAt(key));
}

bool JsonValue::boolAt(std::string_view key) const {
  const JsonValue& value = at(key);
  if (value.kind != Kind::Bool) {
    throw std::runtime_error("json: key \"" + std::string(key) +
                             "\" is not a bool");
  }
  return value.boolValue;
}

const std::string& JsonValue::stringAt(std::string_view key) const {
  const JsonValue& value = at(key);
  if (value.kind != Kind::String) {
    throw std::runtime_error("json: key \"" + std::string(key) +
                             "\" is not a string");
  }
  return value.stringValue;
}

JsonValue parseJson(std::string_view text) {
  return Parser(text).document();
}

std::string jsonQuote(std::string_view value) {
  std::string out = "\"";
  for (const char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace ides
