#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ides {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t rngStreamSeed(std::uint64_t seed, std::uint64_t stream) {
  // Two finalizer rounds over the (seed, stream) pair: the golden-ratio
  // multiplier spreads small stream ids across the word before mixing, so
  // stream 0 is as far from stream 1 as from stream 2^40.
  return splitmix64(splitmix64(seed + (stream + 1) * 0x9e3779b97f4a7c15ULL));
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniformInt: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniformReal(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

bool Rng::chance(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return uniform01() < probability;
}

std::size_t Rng::index(std::size_t size) {
  if (size == 0) throw std::invalid_argument("Rng::index: empty range");
  return static_cast<std::size_t>(
      uniformInt(0, static_cast<std::int64_t>(size) - 1));
}

Rng Rng::fork() { return Rng(engine_()); }

DiscreteDistribution::DiscreteDistribution(std::vector<Entry> entries)
    : entries_(std::move(entries)) {
  if (entries_.empty()) {
    throw std::invalid_argument("DiscreteDistribution: no entries");
  }
  double total = 0.0;
  for (const Entry& e : entries_) {
    if (e.probability <= 0.0) {
      throw std::invalid_argument(
          "DiscreteDistribution: probabilities must be positive");
    }
    total += e.probability;
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.value < b.value; });
  cumulative_.reserve(entries_.size());
  double acc = 0.0;
  for (Entry& e : entries_) {
    e.probability /= total;
    acc += e.probability;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

std::int64_t DiscreteDistribution::sample(Rng& rng) const {
  const double u = rng.uniform01();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const std::size_t i =
      std::min<std::size_t>(static_cast<std::size_t>(it - cumulative_.begin()),
                            entries_.size() - 1);
  return entries_[i].value;
}

double DiscreteDistribution::expectedValue() const {
  double mean = 0.0;
  for (const Entry& e : entries_) {
    mean += static_cast<double>(e.value) * e.probability;
  }
  return mean;
}

std::vector<std::size_t> DiscreteDistribution::deterministicQuotas(
    std::size_t count) const {
  // Largest-remainder apportionment of `count` draws across the entries.
  std::vector<std::size_t> quota(entries_.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const double exact = entries_[i].probability * static_cast<double>(count);
    quota[i] = static_cast<std::size_t>(exact);
    assigned += quota[i];
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (std::size_t k = 0; assigned < count; ++k, ++assigned) {
    quota[remainders[k % remainders.size()].second] += 1;
  }
  return quota;
}

std::vector<std::int64_t> DiscreteDistribution::deterministicStream(
    std::size_t count) const {
  // Emit the quotas interleaved largest-value-first so bin packing sees the
  // hard items early (best-fit-decreasing behaviour).
  const std::vector<std::size_t> quota = deterministicQuotas(count);
  std::vector<std::int64_t> out;
  out.reserve(count);
  for (std::size_t i = entries_.size(); i > 0; --i) {
    for (std::size_t k = 0; k < quota[i - 1]; ++k) {
      out.push_back(entries_[i - 1].value);
    }
  }
  return out;
}

std::int64_t DiscreteDistribution::maxValue() const {
  return entries_.back().value;
}

std::int64_t DiscreteDistribution::minValue() const {
  return entries_.front().value;
}

}  // namespace ides
