// Deterministic fault injection for crash/slowness testing.
//
// The sweep fabric's robustness claims ("a SIGKILLed worker costs one
// lease timeout, not the sweep"; "a worker slower than the lease is never
// reclaimed while alive") are only testable by actually killing and
// stalling real processes at precise points. This hook compiles into the
// production binaries but is completely inert unless the IDES_FAULT
// environment variable is set, so the tested binary IS the shipped binary.
//
// Spec grammar (comma-separated entries):
//
//   IDES_FAULT="<point>:<action>[:<arg>][,<point>:<action>[:<arg>]...]"
//
//   actions:
//     crash        raise(SIGKILL) — an un-catchable death, exactly what a
//                  kernel OOM kill or power loss looks like to peers
//     exit[:CODE]  _exit(CODE) without unwinding (default 70) — a crash
//                  that skips destructors but flushes nothing
//     stall[:SEC]  sleep SEC seconds (default 1.0) every time the point is
//                  hit — a worker slower than its lease
//
// Named points live on the sweep participant path (store/work_queue.cpp):
//   post-claim     after a claim is won, before the instance runs
//   pre-complete   after the instance ran, before its record is published
//   mid-renewal    inside the lease renewal heartbeat, before each renew
//
// The spec is parsed once, on the first faultPoint() call; a malformed
// spec aborts loudly at that moment rather than silently disabling the
// fault a test depends on.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ides {

struct FaultSpec {
  enum class Action { Crash, Exit, Stall };
  std::string point;
  Action action = Action::Crash;
  double arg = 0.0;  ///< exit code or stall seconds
};

/// Parses one IDES_FAULT value. Throws std::invalid_argument naming the
/// offending entry on malformed input.
std::vector<FaultSpec> parseFaultSpec(std::string_view text);

/// First spec matching `point` in `specs`, or nullopt.
std::optional<FaultSpec> findFault(const std::vector<FaultSpec>& specs,
                                   std::string_view point);

/// Executes one spec's action: crash and exit do not return; stall sleeps
/// and returns. Exposed for tests (stall) — production code goes through
/// faultPoint().
void executeFault(const FaultSpec& spec);

/// The production hook: no-op unless IDES_FAULT names `point`. The env var
/// is read and parsed once per process (first call).
void faultPoint(std::string_view point);

/// True when IDES_FAULT is set and non-empty (diagnostics/log lines).
bool faultInjectionActive();

}  // namespace ides
