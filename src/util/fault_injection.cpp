#include "util/fault_injection.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace ides {

namespace {

double parseArg(std::string_view entry, std::string_view text,
                double fallback) {
  if (text.empty()) return fallback;
  try {
    std::size_t used = 0;
    const double value = std::stod(std::string(text), &used);
    if (used != text.size() || value < 0.0) {
      throw std::invalid_argument("trailing junk");
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("IDES_FAULT: bad argument in \"" +
                                std::string(entry) + "\"");
  }
}

}  // namespace

std::vector<FaultSpec> parseFaultSpec(std::string_view text) {
  std::vector<FaultSpec> specs;
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    const std::string_view entry = text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
    if (entry.empty()) continue;

    const std::size_t colon = entry.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      throw std::invalid_argument(
          "IDES_FAULT: expected \"point:action[:arg]\", got \"" +
          std::string(entry) + "\"");
    }
    FaultSpec spec;
    spec.point = std::string(entry.substr(0, colon));
    std::string_view rest = entry.substr(colon + 1);
    const std::size_t argColon = rest.find(':');
    const std::string_view action = rest.substr(0, argColon);
    const std::string_view arg = argColon == std::string_view::npos
                                     ? std::string_view{}
                                     : rest.substr(argColon + 1);
    if (action == "crash") {
      if (!arg.empty()) {
        throw std::invalid_argument("IDES_FAULT: crash takes no argument (\"" +
                                    std::string(entry) + "\")");
      }
      spec.action = FaultSpec::Action::Crash;
    } else if (action == "exit") {
      spec.action = FaultSpec::Action::Exit;
      spec.arg = parseArg(entry, arg, 70.0);
      if (spec.arg != static_cast<double>(static_cast<int>(spec.arg)) ||
          spec.arg > 255.0) {
        throw std::invalid_argument(
            "IDES_FAULT: exit code must be an integer in [0, 255] (\"" +
            std::string(entry) + "\")");
      }
    } else if (action == "stall") {
      spec.action = FaultSpec::Action::Stall;
      spec.arg = parseArg(entry, arg, 1.0);
    } else {
      throw std::invalid_argument("IDES_FAULT: unknown action \"" +
                                  std::string(action) +
                                  "\" (available: crash, exit, stall)");
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::optional<FaultSpec> findFault(const std::vector<FaultSpec>& specs,
                                   std::string_view point) {
  for (const FaultSpec& spec : specs) {
    if (spec.point == point) return spec;
  }
  return std::nullopt;
}

void executeFault(const FaultSpec& spec) {
  switch (spec.action) {
    case FaultSpec::Action::Crash:
      // SIGKILL cannot be caught or unwound — peers observe exactly what a
      // kernel kill looks like: a held lease and silence.
      std::fprintf(stderr, "IDES_FAULT: crash at %s\n", spec.point.c_str());
      std::fflush(stderr);
#if defined(__unix__) || defined(__APPLE__)
      (void)::raise(SIGKILL);
#endif
      std::abort();  // unreachable on POSIX; a hard stop elsewhere
    case FaultSpec::Action::Exit:
      std::fprintf(stderr, "IDES_FAULT: exit %d at %s\n",
                   static_cast<int>(spec.arg), spec.point.c_str());
      std::fflush(stderr);
#if defined(__unix__) || defined(__APPLE__)
      ::_exit(static_cast<int>(spec.arg));
#else
      std::_Exit(static_cast<int>(spec.arg));
#endif
    case FaultSpec::Action::Stall:
      std::fprintf(stderr, "IDES_FAULT: stall %.3fs at %s\n", spec.arg,
                   spec.point.c_str());
      std::fflush(stderr);
      std::this_thread::sleep_for(std::chrono::duration<double>(spec.arg));
      return;
  }
}

namespace {

const std::vector<FaultSpec>& processFaults() {
  // Parsed once; a malformed spec must abort the process loudly, not
  // silently disable the fault a robustness test depends on.
  static const std::vector<FaultSpec> specs = [] {
    const char* env = std::getenv("IDES_FAULT");
    if (env == nullptr || env[0] == '\0') return std::vector<FaultSpec>{};
    try {
      return parseFaultSpec(env);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::fflush(stderr);
      std::abort();
    }
  }();
  return specs;
}

}  // namespace

void faultPoint(std::string_view point) {
  const std::vector<FaultSpec>& specs = processFaults();
  if (specs.empty()) return;  // the common (production) path: one branch
  const std::optional<FaultSpec> spec = findFault(specs, point);
  if (spec.has_value()) executeFault(*spec);
}

bool faultInjectionActive() { return !processFaults().empty(); }

}  // namespace ides
