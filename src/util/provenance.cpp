#include "util/provenance.h"

#include <cstdlib>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace ides {

namespace {

std::string detectHostname() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
    return buf;
  }
#endif
  const char* env = std::getenv("HOSTNAME");
  if (env != nullptr && *env != '\0') return env;
  return "unknown";
}

std::string detectCompiler() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace

const Provenance& buildProvenance() {
  static const Provenance provenance = [] {
    Provenance p;
#ifdef IDES_GIT_SHA
    p.gitSha = IDES_GIT_SHA;
#else
    p.gitSha = "unknown";
#endif
    p.hostname = detectHostname();
    p.hardwareConcurrency = std::thread::hardware_concurrency();
    p.compiler = detectCompiler();
    return p;
  }();
  return provenance;
}

}  // namespace ides
