#include "util/log.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace ides {

namespace {

LogLevel parseEnv() {
  const char* env = std::getenv("IDES_LOG");
  if (env == nullptr) return LogLevel::Warn;
  const std::string v(env);
  if (v == "debug") return LogLevel::Debug;
  if (v == "info") return LogLevel::Info;
  if (v == "warn") return LogLevel::Warn;
  if (v == "error") return LogLevel::Error;
  if (v == "off") return LogLevel::Off;
  return LogLevel::Warn;
}

std::atomic<LogLevel> g_threshold{parseEnv()};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel logThreshold() { return g_threshold.load(std::memory_order_relaxed); }

void setLogThreshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

namespace detail {

void emit(LogLevel level, const std::string& message) {
  std::clog << "[ides:" << levelName(level) << "] " << message << '\n';
}

}  // namespace detail
}  // namespace ides
