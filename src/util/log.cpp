#include "util/log.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace ides {

namespace {

LogLevel parseEnv() {
  const char* env = std::getenv("IDES_LOG");
  if (env == nullptr) return LogLevel::Warn;
  return parseLogLevel(env, LogLevel::Warn);
}

std::atomic<LogLevel> g_threshold{parseEnv()};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel parseLogLevel(std::string_view name, LogLevel fallback) {
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  return fallback;
}

LogLevel logThreshold() { return g_threshold.load(std::memory_order_relaxed); }

void setLogThreshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

namespace detail {

void emit(LogLevel level, const std::string& message) {
  std::clog << "[ides:" << levelName(level) << "] " << message << '\n';
}

}  // namespace detail
}  // namespace ides
