#include "tgen/graph_gen.h"

#include <gtest/gtest.h>

#include "tgen/profile_presets.h"

namespace ides {
namespace {

Architecture arch4() { return makeUniformArchitecture(4, 20, 1); }

TEST(GraphGen, ProducesRequestedProcessCount) {
  SystemModel sys(arch4());
  const ApplicationId app = sys.addApplication("a", AppKind::Current);
  GraphGenConfig cfg;
  cfg.processCount = 37;
  Rng rng(1);
  const GraphId g = generateGraph(sys, app, 1600, 1600, cfg, rng);
  EXPECT_EQ(sys.graph(g).processes.size(), 37u);
  sys.finalize();  // must be a valid DAG
}

TEST(GraphGen, GeneratedGraphIsConnectedEnough) {
  // Every process beyond the first layer has at least one input.
  SystemModel sys(arch4());
  const ApplicationId app = sys.addApplication("a", AppKind::Current);
  GraphGenConfig cfg;
  cfg.processCount = 30;
  cfg.layerWidth = 6;
  Rng rng(2);
  const GraphId g = generateGraph(sys, app, 1600, 1600, cfg, rng);
  sys.finalize();
  std::size_t roots = 0;
  for (ProcessId p : sys.graph(g).processes) {
    if (sys.inputsOf(p).empty()) ++roots;
  }
  EXPECT_LE(roots, cfg.layerWidth);  // only layer 0 may be root processes
}

TEST(GraphGen, EdgeDensityIsApproximatelyMet) {
  SystemModel sys(arch4());
  const ApplicationId app = sys.addApplication("a", AppKind::Current);
  GraphGenConfig cfg;
  cfg.processCount = 60;
  cfg.edgeDensity = 1.5;
  Rng rng(3);
  const GraphId g = generateGraph(sys, app, 1600, 1600, cfg, rng);
  sys.finalize();
  const double ratio = static_cast<double>(sys.graph(g).messages.size()) /
                       static_cast<double>(cfg.processCount);
  EXPECT_GE(ratio, 0.8);   // at least the connectivity tree
  EXPECT_LE(ratio, 1.6);   // no runaway edge count
}

TEST(GraphGen, WcetsRespectRangeAndSpeedFactors) {
  Architecture arch = makeUniformArchitecture(3, 20, 1, {1.0, 2.0, 0.5});
  SystemModel sys(std::move(arch));
  const ApplicationId app = sys.addApplication("a", AppKind::Current);
  GraphGenConfig cfg;
  cfg.processCount = 40;
  cfg.wcetMin = 50;
  cfg.wcetMax = 100;
  cfg.wcetNodeVariation = 0.1;
  cfg.restrictedMappingProb = 0.0;
  Rng rng(4);
  generateGraph(sys, app, 1800, 1800, cfg, rng);
  for (const Process& p : sys.processes()) {
    // Node 0 (speed 1.0): wcet in [50*0.9, 100*1.1].
    ASSERT_NE(p.wcet[0], kNoTime);
    EXPECT_GE(p.wcet[0], 45);
    EXPECT_LE(p.wcet[0], 110);
    // Node 1 is twice as slow, node 2 twice as fast (within jitter).
    EXPECT_GE(p.wcet[1], 90);
    EXPECT_LE(p.wcet[1], 220);
    EXPECT_GE(p.wcet[2], 22);
    EXPECT_LE(p.wcet[2], 55);
  }
}

TEST(GraphGen, RestrictedMappingKeepsAtLeastTwoNodes) {
  SystemModel sys(arch4());
  const ApplicationId app = sys.addApplication("a", AppKind::Current);
  GraphGenConfig cfg;
  cfg.processCount = 50;
  cfg.restrictedMappingProb = 1.0;
  cfg.restrictedFraction = 0.5;
  Rng rng(5);
  generateGraph(sys, app, 1600, 1600, cfg, rng);
  for (const Process& p : sys.processes()) {
    const auto allowed = p.allowedNodes();
    EXPECT_GE(allowed.size(), 2u);
    EXPECT_LT(allowed.size(), 4u);  // restriction actually applied
  }
}

TEST(GraphGen, MessageSizesWithinRange) {
  SystemModel sys(arch4());
  const ApplicationId app = sys.addApplication("a", AppKind::Current);
  GraphGenConfig cfg;
  cfg.processCount = 40;
  cfg.msgMin = 3;
  cfg.msgMax = 6;
  Rng rng(6);
  generateGraph(sys, app, 1600, 1600, cfg, rng);
  for (const Message& m : sys.messages()) {
    EXPECT_GE(m.sizeBytes, 3);
    EXPECT_LE(m.sizeBytes, 6);
  }
}

TEST(GraphGen, DeterministicGivenSeed) {
  auto build = [] {
    SystemModel sys(arch4());
    const ApplicationId app = sys.addApplication("a", AppKind::Current);
    GraphGenConfig cfg;
    cfg.processCount = 25;
    Rng rng(77);
    generateGraph(sys, app, 1600, 1600, cfg, rng);
    sys.finalize();
    return sys;
  };
  const SystemModel a = build();
  const SystemModel b = build();
  ASSERT_EQ(a.messages().size(), b.messages().size());
  for (std::size_t i = 0; i < a.messages().size(); ++i) {
    EXPECT_EQ(a.messages()[i].src, b.messages()[i].src);
    EXPECT_EQ(a.messages()[i].dst, b.messages()[i].dst);
    EXPECT_EQ(a.messages()[i].sizeBytes, b.messages()[i].sizeBytes);
  }
  for (std::size_t i = 0; i < a.processes().size(); ++i) {
    EXPECT_EQ(a.processes()[i].wcet, b.processes()[i].wcet);
  }
}

TEST(GraphGen, RejectsEmptyGraph) {
  SystemModel sys(arch4());
  const ApplicationId app = sys.addApplication("a", AppKind::Current);
  GraphGenConfig cfg;
  cfg.processCount = 0;
  Rng rng(1);
  EXPECT_THROW(generateGraph(sys, app, 1600, 1600, cfg, rng),
               std::invalid_argument);
}

TEST(GraphGenFromDistributions, DrawsWcetsFromSupport) {
  SystemModel sys(arch4());
  const ApplicationId app = sys.addApplication("f", AppKind::Future);
  GraphGenConfig cfg;
  cfg.processCount = 60;
  cfg.wcetNodeVariation = 0.0;
  cfg.restrictedMappingProb = 0.0;
  Rng rng(9);
  generateGraphFromDistributions(sys, app, 1600, 1600, cfg,
                                 paperWcetDistribution(),
                                 paperMessageSizeDistribution(), rng);
  for (const Process& p : sys.processes()) {
    // Speed factors are 1.0, so WCETs must be exactly histogram values.
    EXPECT_TRUE(p.wcet[0] == 20 || p.wcet[0] == 50 || p.wcet[0] == 100 ||
                p.wcet[0] == 150)
        << p.wcet[0];
  }
  for (const Message& m : sys.messages()) {
    EXPECT_TRUE(m.sizeBytes == 2 || m.sizeBytes == 4 || m.sizeBytes == 6 ||
                m.sizeBytes == 8);
  }
}

TEST(SnapSlotLengths, KeepsUniformLayoutWhenItDivides) {
  const std::vector<Time> lengths = snapSlotLengths(10, 20, 16000);
  EXPECT_EQ(lengths, std::vector<Time>(10, 20));
}

TEST(SnapSlotLengths, SnapsRoundToLargestFittingDivisor) {
  // 6 x 20 = 120 does not divide 16000; the largest divisor <= 120 that
  // gives every node a slot is 100 -> slots of 17/16 ticks.
  const std::vector<Time> lengths = snapSlotLengths(6, 20, 16000);
  Time round = 0;
  for (Time l : lengths) round += l;
  EXPECT_EQ(round, 100);
  EXPECT_EQ(16000 % round, 0);
  for (Time l : lengths) {
    EXPECT_GE(l, 16);
    EXPECT_LE(l, 17);
  }
}

TEST(SnapSlotLengths, SweepAlwaysDividesTheHyperperiod) {
  for (std::size_t nodes = 2; nodes <= 16; ++nodes) {
    const std::vector<Time> lengths = snapSlotLengths(nodes, 20, 16000);
    ASSERT_EQ(lengths.size(), nodes);
    Time round = 0;
    for (Time l : lengths) {
      EXPECT_GE(l, 1);
      round += l;
    }
    EXPECT_EQ(16000 % round, 0) << nodes << " nodes";
    EXPECT_LE(round, static_cast<Time>(nodes) * 20);
  }
}

TEST(SnapSlotLengths, RejectsImpossibleHyperperiods) {
  EXPECT_THROW(snapSlotLengths(0, 20, 16000), std::invalid_argument);
  EXPECT_THROW(snapSlotLengths(10, 20, 5), std::invalid_argument);
  // 7 does not divide any number in [3, 6]... hyperperiod 7 is prime and
  // > nodeCount*slotLength, so no round fits.
  EXPECT_THROW(snapSlotLengths(3, 2, 7), std::invalid_argument);
}

}  // namespace
}  // namespace ides
