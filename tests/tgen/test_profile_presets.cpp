#include "tgen/profile_presets.h"

#include <gtest/gtest.h>

namespace ides {
namespace {

TEST(ProfilePresets, WcetHistogramMatchesPaperSupport) {
  const DiscreteDistribution d = paperWcetDistribution();
  ASSERT_EQ(d.entries().size(), 4u);
  EXPECT_EQ(d.entries()[0].value, 20);
  EXPECT_EQ(d.entries()[1].value, 50);
  EXPECT_EQ(d.entries()[2].value, 100);
  EXPECT_EQ(d.entries()[3].value, 150);
  EXPECT_DOUBLE_EQ(d.entries()[0].probability, 0.2);
  EXPECT_DOUBLE_EQ(d.entries()[1].probability, 0.4);
  EXPECT_DOUBLE_EQ(d.entries()[2].probability, 0.3);
  EXPECT_DOUBLE_EQ(d.entries()[3].probability, 0.1);
}

TEST(ProfilePresets, MessageHistogramMatchesPaperSupport) {
  const DiscreteDistribution d = paperMessageSizeDistribution();
  ASSERT_EQ(d.entries().size(), 4u);
  EXPECT_EQ(d.entries()[0].value, 2);
  EXPECT_EQ(d.entries()[3].value, 8);
  EXPECT_NEAR(d.expectedValue(), 0.2 * 2 + 0.4 * 4 + 0.3 * 6 + 0.1 * 8,
              1e-12);
}

TEST(ProfilePresets, PaperProfileIsValid) {
  const FutureProfile p = paperFutureProfile(4000, 5000, 400);
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.tmin, 4000);
  EXPECT_EQ(p.tneed, 5000);
  EXPECT_EQ(p.bneedBytes, 400);
}

TEST(ProfilePresets, RejectsNonPositiveNeeds) {
  EXPECT_THROW(paperFutureProfile(0, 100, 10), std::invalid_argument);
  EXPECT_THROW(paperFutureProfile(100, 0, 10), std::invalid_argument);
  EXPECT_THROW(paperFutureProfile(100, 100, 0), std::invalid_argument);
}

TEST(FutureProfileValidation, CatchesEmptyDistributions) {
  FutureProfile p;
  p.tmin = 10;
  p.tneed = 10;
  p.bneedBytes = 10;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.wcetDistribution = paperWcetDistribution();
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.messageSizeDistribution = paperMessageSizeDistribution();
  EXPECT_NO_THROW(p.validate());
}

}  // namespace
}  // namespace ides
