#include "tgen/benchmark_suite.h"

#include <gtest/gtest.h>

#include <set>

#include "core/initial_mapping.h"

namespace ides {
namespace {

SuiteConfig smallConfig() {
  SuiteConfig cfg;
  cfg.nodeCount = 4;
  cfg.existingProcesses = 60;
  cfg.currentProcesses = 24;
  cfg.futureAppCount = 2;
  cfg.futureProcesses = 16;
  return cfg;
}

TEST(BenchmarkSuite, BuildsRequestedPopulation) {
  const Suite suite = buildSuite(smallConfig(), 1);
  const SystemModel& sys = suite.system;
  EXPECT_EQ(sys.architecture().nodeCount(), 4u);
  EXPECT_EQ(sys.processesOfKind(AppKind::Existing).size(), 60u);
  EXPECT_EQ(sys.processesOfKind(AppKind::Current).size(), 24u);
  EXPECT_EQ(sys.processesOfKind(AppKind::Future).size(), 2u * 16u);
  EXPECT_EQ(sys.applicationsOfKind(AppKind::Current).size(), 1u);
  EXPECT_EQ(sys.applicationsOfKind(AppKind::Future).size(), 2u);
}

TEST(BenchmarkSuite, HyperperiodAlignsWithBusAndTmin) {
  const Suite suite = buildSuite(smallConfig(), 2);
  const SystemModel& sys = suite.system;
  EXPECT_EQ(sys.hyperperiod() % sys.architecture().bus().roundLength(), 0);
  EXPECT_EQ(sys.hyperperiod() % suite.profile.tmin, 0);
}

TEST(BenchmarkSuite, FutureGraphsRunAtTmin) {
  const Suite suite = buildSuite(smallConfig(), 3);
  for (GraphId g : suite.system.graphsOfKind(AppKind::Future)) {
    EXPECT_EQ(suite.system.graph(g).period, suite.profile.tmin);
  }
}

TEST(BenchmarkSuite, DerivedNeedsMatchFutureSize) {
  const SuiteConfig cfg = smallConfig();
  const Suite suite = buildSuite(cfg, 4);
  // tneed = futureProcesses * E[wcet] = 16 * 69.
  EXPECT_EQ(suite.profile.tneed,
            static_cast<Time>(cfg.futureProcesses * 69));
  EXPECT_GT(suite.profile.bneedBytes, 0);
}

TEST(BenchmarkSuite, OverridesAreHonored) {
  SuiteConfig cfg = smallConfig();
  cfg.tneedOverride = 1234;
  cfg.bneedOverride = 99;
  const Suite suite = buildSuite(cfg, 5);
  EXPECT_EQ(suite.profile.tneed, 1234);
  EXPECT_EQ(suite.profile.bneedBytes, 99);
}

TEST(BenchmarkSuite, GuaranteedFeasibility) {
  // The builder's contract: the returned instance freezes and IM-schedules.
  const Suite suite = buildSuite(smallConfig(), 6);
  const FrozenBase frozen = freezeExistingApplications(suite.system);
  ASSERT_TRUE(frozen.feasible);
  PlatformState state = frozen.state;
  EXPECT_TRUE(initialMapping(suite.system, state).feasible);
}

TEST(BenchmarkSuite, DeterministicForSeed) {
  const Suite a = buildSuite(smallConfig(), 7);
  const Suite b = buildSuite(smallConfig(), 7);
  EXPECT_EQ(a.seedUsed, b.seedUsed);
  ASSERT_EQ(a.system.processes().size(), b.system.processes().size());
  for (std::size_t i = 0; i < a.system.processes().size(); ++i) {
    EXPECT_EQ(a.system.processes()[i].wcet, b.system.processes()[i].wcet);
  }
}

TEST(BenchmarkSuite, DifferentSeedsGiveDifferentInstances) {
  const Suite a = buildSuite(smallConfig(), 8);
  const Suite b = buildSuite(smallConfig(), 9);
  bool anyDifferent =
      a.system.processes().size() != b.system.processes().size();
  if (!anyDifferent) {
    for (std::size_t i = 0; i < a.system.processes().size(); ++i) {
      if (a.system.processes()[i].wcet != b.system.processes()[i].wcet) {
        anyDifferent = true;
        break;
      }
    }
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(BenchmarkSuite, ExistingApplicationsArePhaseStaggered) {
  SuiteConfig cfg = smallConfig();
  cfg.existingProcesses = 200;  // several apps so phases actually cycle
  cfg.offsetPhases = 4;
  const Suite suite = buildSuite(cfg, 10);
  std::set<Time> offsets;
  for (GraphId g : suite.system.graphsOfKind(AppKind::Existing)) {
    const ProcessGraph& graph = suite.system.graph(g);
    offsets.insert(graph.offset);
    EXPECT_LE(graph.offset + graph.deadline, graph.period);
  }
  EXPECT_GT(offsets.size(), 1u);  // not everything released at phase 0
  // Current and future applications are not staggered.
  for (GraphId g : suite.system.graphsOfKind(AppKind::Current)) {
    EXPECT_EQ(suite.system.graph(g).offset, 0);
  }
}

TEST(BenchmarkSuite, StaggeringCanBeDisabled) {
  SuiteConfig cfg = smallConfig();
  cfg.offsetPhases = 1;
  const Suite suite = buildSuite(cfg, 10);
  for (GraphId g : suite.system.graphsOfKind(AppKind::Existing)) {
    EXPECT_EQ(suite.system.graph(g).offset, 0);
  }
}

TEST(BenchmarkSuite, RejectsMisalignedTmin) {
  SuiteConfig cfg = smallConfig();
  cfg.tmin = 3000;  // does not divide 16000
  EXPECT_THROW(buildSuite(cfg, 1), std::invalid_argument);
}

TEST(BenchmarkSuite, SnapsSlotLengthsForAwkwardNodeCounts) {
  // Regression: 6 nodes x 20-tick slots make a 120-tick round, which does
  // not divide the 16000-tick base period — finalize used to throw. The
  // builder now snaps the slot lengths so the round divides the
  // hyperperiod.
  SuiteConfig cfg = smallConfig();
  cfg.nodeCount = 6;
  const Suite suite = buildSuite(cfg, 1);
  const TdmaBus& bus = suite.system.architecture().bus();
  EXPECT_EQ(bus.slotCount(), 6u);
  EXPECT_EQ(suite.system.hyperperiod() % bus.roundLength(), 0);
  // Snapping stays near the requested layout and keeps slots usable.
  EXPECT_LE(bus.roundLength(), 6 * cfg.slotLength);
  for (std::size_t s = 0; s < bus.slotCount(); ++s) {
    EXPECT_GE(bus.slot(s).length, 8);  // largest generated message fits
  }
  // The instance is a usable experiment, not just a finalizable model.
  EXPECT_TRUE(freezeExistingApplications(suite.system).feasible);
}

TEST(BenchmarkSuite, UniformSlotsAreUntouchedWhenTheyAlreadyDivide) {
  const Suite suite = buildSuite(smallConfig(), 1);  // 4 x 20 | 16000
  const TdmaBus& bus = suite.system.architecture().bus();
  for (std::size_t s = 0; s < bus.slotCount(); ++s) {
    EXPECT_EQ(bus.slot(s).length, 20);
  }
}

}  // namespace
}  // namespace ides
