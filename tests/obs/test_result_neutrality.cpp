// The telemetry spine's hard guarantee: metrics and trace spans never feed
// back into optimization. A PSA ensemble (the most instrumented path —
// speculative evaluation, per-chain SA loops, EvalContext rewinds) must
// render byte-identical result JSON with telemetry off, on, and traced.
#include <gtest/gtest.h>

#include <string>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "serve/design_job.h"

namespace ides {
namespace {

std::string runOnce(const DesignJobSpec& spec) {
  RunContext context;
  const DesignJobResult result = runDesignJob(spec, context);
  return designResultJson(result, /*timing=*/false);
}

DesignJobSpec psaSpec() {
  DesignJobSpec spec;
  spec.nodes = 4;
  spec.existing = 60;
  spec.current = 24;
  spec.seed = 7;
  spec.strategy = "PSA";
  spec.saIterations = 400;
  spec.restarts = 2;
  spec.threads = 2;
  return spec;
}

TEST(ResultNeutrality, PsaEnsembleIsByteIdenticalAcrossTelemetryModes) {
  const bool wasEnabled = telemetryEnabled();
  traceDisable();

  setTelemetryEnabled(false);
  const std::string off = runOnce(psaSpec());

  setTelemetryEnabled(true);
  const std::string on = runOnce(psaSpec());

  traceConfigure("");  // in-memory tracing: spans recorded, nothing read
  const std::string traced = runOnce(psaSpec());
  EXPECT_GT(traceEventCount(), 0u);

  traceDisable();
  setTelemetryEnabled(wasEnabled);

  EXPECT_EQ(off, on) << "telemetry on changed the result";
  EXPECT_EQ(on, traced) << "tracing changed the result";
  // Sanity: the rendering actually carries a result, not an error stub.
  EXPECT_NE(off.find("\"objective\""), std::string::npos);
}

TEST(ResultNeutrality, InstrumentedCountersMoveWhileResultsDoNot) {
  const bool wasEnabled = telemetryEnabled();
  setTelemetryEnabled(true);
  Counter& evals = telemetry().counter("ides_eval_evaluations_total",
                                       "Objective evaluations");
  const std::uint64_t before = evals.value();
  (void)runOnce(psaSpec());
  EXPECT_GT(evals.value(), before)
      << "the PSA run should have recorded evaluations";
  setTelemetryEnabled(wasEnabled);
}

}  // namespace
}  // namespace ides
