#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace ides {
namespace {

/// Every test runs against its own registry (the process-wide one is
/// shared with whatever the rest of the binary recorded) and with
/// telemetry forced on, restoring the enable flag afterwards.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wasEnabled_ = telemetryEnabled();
    setTelemetryEnabled(true);
  }
  void TearDown() override { setTelemetryEnabled(wasEnabled_); }

  TelemetryRegistry registry;

 private:
  bool wasEnabled_ = true;
};

TEST_F(TelemetryTest, CounterAccumulatesAcrossThreads) {
  Counter& hits = registry.counter("ides_test_hits_total", "hits");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hits] {
      for (int i = 0; i < kAddsPerThread; ++i) hits.add();
    });
  }
  for (std::thread& t : threads) t.join();
  // The shards must aggregate losslessly no matter how threads landed on
  // them.
  EXPECT_EQ(hits.value(), kThreads * kAddsPerThread);
}

TEST_F(TelemetryTest, ReRegistrationReturnsTheSameInstance) {
  Counter& a = registry.counter("ides_test_total", "help", {{"k", "v"}});
  Counter& b = registry.counter("ides_test_total", "help", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // Label order must not matter for identity.
  Counter& c = registry.counter("ides_test_two_total", "help",
                                {{"b", "2"}, {"a", "1"}});
  Counter& d = registry.counter("ides_test_two_total", "help",
                                {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&c, &d);
}

TEST_F(TelemetryTest, KindMismatchThrows) {
  registry.counter("ides_test_kind_total", "help");
  EXPECT_THROW(registry.gauge("ides_test_kind_total", "help"),
               std::logic_error);
  EXPECT_THROW(registry.histogram("ides_test_kind_total", "help", {1.0}),
               std::logic_error);
}

TEST_F(TelemetryTest, GaugeSetAddSub) {
  Gauge& depth = registry.gauge("ides_test_depth", "queue depth");
  depth.set(5);
  depth.add(2);
  depth.sub(4);
  EXPECT_EQ(depth.value(), 3);
}

TEST_F(TelemetryTest, HistogramBucketsAreCumulativeAtScrape) {
  Histogram& h = registry.histogram("ides_test_seconds", "latency",
                                    {0.1, 1.0, 10.0});
  h.observe(0.05);   // <= 0.1
  h.observe(0.5);    // <= 1.0
  h.observe(0.5);    // <= 1.0
  h.observe(100.0);  // +Inf
  const Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.bucketCounts.size(), 4u);  // 3 bounds + Inf
  EXPECT_EQ(snap.bucketCounts[0], 1u);
  EXPECT_EQ(snap.bucketCounts[1], 2u);
  EXPECT_EQ(snap.bucketCounts[2], 0u);
  EXPECT_EQ(snap.bucketCounts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 101.05);

  const std::string text = registry.prometheusText();
  // Cumulative counts: le="1" covers the le="0.1" observations too.
  EXPECT_NE(text.find("ides_test_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ides_test_seconds_bucket{le=\"1\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("ides_test_seconds_bucket{le=\"10\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("ides_test_seconds_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("ides_test_seconds_count 4"), std::string::npos);
}

TEST_F(TelemetryTest, PrometheusTextHasHelpAndType) {
  registry.counter("ides_test_a_total", "what a counts").add(7);
  registry.gauge("ides_test_b", "a level").set(-2);
  const std::string text = registry.prometheusText();
  EXPECT_NE(text.find("# HELP ides_test_a_total what a counts"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ides_test_a_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("ides_test_a_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ides_test_b gauge"), std::string::npos);
  EXPECT_NE(text.find("ides_test_b -2"), std::string::npos);
}

TEST_F(TelemetryTest, LabeledSeriesRenderSortedAndEscaped) {
  registry.counter("ides_test_l_total", "h", {{"z", "1"}, {"a", "x\"y"}})
      .add();
  const std::string text = registry.prometheusText();
  // Labels sorted by key; the quote escaped.
  EXPECT_NE(text.find("ides_test_l_total{a=\"x\\\"y\",z=\"1\"} 1"),
            std::string::npos);
}

TEST_F(TelemetryTest, ScrapesAreDeterministic) {
  registry.counter("ides_test_b_total", "b").add(2);
  registry.counter("ides_test_a_total", "a").add(1);
  EXPECT_EQ(registry.prometheusText(), registry.prometheusText());
  EXPECT_EQ(registry.jsonSnapshot(), registry.jsonSnapshot());
}

TEST_F(TelemetryTest, JsonSnapshotCarriesValues) {
  registry.counter("ides_test_j_total", "j", {{"k", "v"}}).add(9);
  registry.histogram("ides_test_j_seconds", "js", {1.0}).observe(0.5);
  const std::string json = registry.jsonSnapshot();
  EXPECT_NE(json.find("\"ides_test_j_total\""), std::string::npos);
  EXPECT_NE(json.find("\"k\": \"v\""), std::string::npos);
  EXPECT_NE(json.find("9"), std::string::npos);
  EXPECT_NE(json.find("\"ides_test_j_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"count\""), std::string::npos);
}

TEST_F(TelemetryTest, DisabledAddsAreDropped) {
  Counter& c = registry.counter("ides_test_off_total", "off");
  setTelemetryEnabled(false);
  c.add(5);
  setTelemetryEnabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(TelemetryTest, ResetAllZeroesButKeepsReferences) {
  Counter& c = registry.counter("ides_test_r_total", "r");
  Histogram& h = registry.histogram("ides_test_r_seconds", "rs", {1.0});
  c.add(4);
  h.observe(0.5);
  registry.resetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  c.add(2);  // the handed-out reference must still be live
  EXPECT_EQ(c.value(), 2u);
  EXPECT_EQ(registry.familyCount(), 2u);
}

TEST_F(TelemetryTest, ProcessRegistryIsASingleton) {
  EXPECT_EQ(&telemetry(), &telemetry());
}

}  // namespace
}  // namespace ides
