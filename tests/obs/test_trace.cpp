#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace ides {
namespace {

/// The tracer is process-global; every test starts from a clean disabled
/// state and leaves one behind.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { traceDisable(); }
  void TearDown() override { traceDisable(); }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  EXPECT_FALSE(traceEnabled());
  {
    TraceSpan span("ignored", "test");
  }
  traceInstant("ignored", "test");
  EXPECT_EQ(traceEventCount(), 0u);
}

TEST_F(TraceTest, SpanAndInstantAreRecordedWhenEnabled) {
  traceConfigure("");  // in-memory only
  EXPECT_TRUE(traceEnabled());
  {
    TraceSpan span("optimizer:PSA", "core");
  }
  traceInstant("PSA:chain-done", "progress");
  EXPECT_EQ(traceEventCount(), 2u);

  const std::string json = traceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"optimizer:PSA\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"PSA:chain-done\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"core\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"progress\""), std::string::npos);
}

TEST_F(TraceTest, DisableDropsRecordedEvents) {
  traceConfigure("");
  traceInstant("one", "test");
  EXPECT_EQ(traceEventCount(), 1u);
  traceDisable();
  EXPECT_FALSE(traceEnabled());
  EXPECT_EQ(traceEventCount(), 0u);
}

TEST_F(TraceTest, SpanStartedBeforeDisableDoesNotRecordAfterIt) {
  traceConfigure("");
  {
    TraceSpan span("straddler", "test");
    traceDisable();
  }  // destructor runs with tracing off
  EXPECT_EQ(traceEventCount(), 0u);
}

TEST_F(TraceTest, FlushWritesTheConfiguredFile) {
  const std::string path =
      ::testing::TempDir() + "/ides_trace_test_flush.json";
  std::remove(path.c_str());
  traceConfigure(path);
  {
    TraceSpan span("flushed", "test");
  }
  traceFlush();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"flushed\""), std::string::npos);
  traceDisable();
  std::remove(path.c_str());
}

TEST_F(TraceTest, NameEscaping) {
  traceConfigure("");
  traceInstant("quote\"back\\slash", "test");
  const std::string json = traceJson();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

}  // namespace
}  // namespace ides
