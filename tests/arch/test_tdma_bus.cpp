#include "arch/tdma_bus.h"

#include <gtest/gtest.h>

namespace ides {
namespace {

TdmaBus makeBus3() {
  // Three nodes, slot lengths 10/20/10, 2 bytes per tick.
  return TdmaBus({{NodeId{0}, 10}, {NodeId{1}, 20}, {NodeId{2}, 10}}, 2);
}

TEST(TdmaBus, RoundLengthIsSumOfSlots) {
  EXPECT_EQ(makeBus3().roundLength(), 40);
}

TEST(TdmaBus, SlotCapacityScalesWithBandwidth) {
  const TdmaBus bus = makeBus3();
  EXPECT_EQ(bus.slotCapacityBytes(0), 20);
  EXPECT_EQ(bus.slotCapacityBytes(1), 40);
  EXPECT_EQ(bus.slotCapacityBytes(2), 20);
}

TEST(TdmaBus, SlotStartsRepeatEveryRound) {
  const TdmaBus bus = makeBus3();
  EXPECT_EQ(bus.slotStart(0, 0), 0);
  EXPECT_EQ(bus.slotStart(0, 1), 10);
  EXPECT_EQ(bus.slotStart(0, 2), 30);
  EXPECT_EQ(bus.slotStart(1, 0), 40);
  EXPECT_EQ(bus.slotStart(5, 1), 5 * 40 + 10);
  EXPECT_EQ(bus.slotEnd(0, 1), 30);
}

TEST(TdmaBus, SlotOfNodeLookup) {
  const TdmaBus bus = makeBus3();
  EXPECT_EQ(bus.slotOfNode(NodeId{0}), 0u);
  EXPECT_EQ(bus.slotOfNode(NodeId{1}), 1u);
  EXPECT_EQ(bus.slotOfNode(NodeId{2}), 2u);
  EXPECT_THROW((void)bus.slotOfNode(NodeId{3}), std::out_of_range);
  EXPECT_TRUE(bus.nodeHasSlot(NodeId{1}));
  EXPECT_FALSE(bus.nodeHasSlot(NodeId{7}));
}

TEST(TdmaBus, TransmissionTimeRoundsUp) {
  const TdmaBus bus = makeBus3();  // 2 bytes/tick
  EXPECT_EQ(bus.transmissionTime(1), 1);
  EXPECT_EQ(bus.transmissionTime(2), 1);
  EXPECT_EQ(bus.transmissionTime(3), 2);
  EXPECT_EQ(bus.transmissionTime(8), 4);
}

TEST(TdmaBus, FirstRoundAtOrAfter) {
  const TdmaBus bus = makeBus3();  // slot1 offset 10, round 40
  EXPECT_EQ(bus.firstRoundAtOrAfter(1, 0), 0);
  EXPECT_EQ(bus.firstRoundAtOrAfter(1, 10), 0);  // exactly at the start
  EXPECT_EQ(bus.firstRoundAtOrAfter(1, 11), 1);
  EXPECT_EQ(bus.firstRoundAtOrAfter(1, 50), 1);
  EXPECT_EQ(bus.firstRoundAtOrAfter(1, 51), 2);
  EXPECT_EQ(bus.firstRoundAtOrAfter(0, 1), 1);  // slot0 offset 0
}

TEST(TdmaBus, ValidationRejectsBadConfigs) {
  EXPECT_THROW(TdmaBus({}, 1), std::invalid_argument);
  EXPECT_THROW(TdmaBus({{NodeId{0}, 0}}, 1), std::invalid_argument);
  EXPECT_THROW(TdmaBus({{NodeId{0}, 10}}, 0), std::invalid_argument);
  EXPECT_THROW(TdmaBus({{NodeId{0}, 10}, {NodeId{0}, 10}}, 1),
               std::invalid_argument);  // duplicate owner
  EXPECT_THROW(TdmaBus({{NodeId{}, 10}}, 1), std::invalid_argument);
}

// Property: for any t, the returned round's slot start is >= t and the
// previous round's start is < t.
class FirstRoundProperty : public ::testing::TestWithParam<Time> {};

TEST_P(FirstRoundProperty, IsTightLowerBound) {
  const TdmaBus bus = makeBus3();
  const Time t = GetParam();
  for (std::size_t s = 0; s < bus.slotCount(); ++s) {
    const std::int64_t r = bus.firstRoundAtOrAfter(s, t);
    EXPECT_GE(bus.slotStart(r, s), t);
    if (r > 0) {
      EXPECT_LT(bus.slotStart(r - 1, s), t);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Times, FirstRoundProperty,
                         ::testing::Values(0, 1, 9, 10, 11, 39, 40, 41, 79, 80,
                                           123, 399, 400, 1000));

}  // namespace
}  // namespace ides
