#include "arch/architecture.h"

#include <gtest/gtest.h>

namespace ides {
namespace {

TEST(Architecture, UniformBuilderCreatesDenseNodesAndSlots) {
  const Architecture arch = makeUniformArchitecture(4, 15, 2, {1.0, 0.5});
  EXPECT_EQ(arch.nodeCount(), 4u);
  EXPECT_EQ(arch.bus().slotCount(), 4u);
  EXPECT_EQ(arch.bus().roundLength(), 60);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(arch.nodes()[i].id.index(), i);
    EXPECT_EQ(arch.bus().slotOfNode(arch.nodes()[i].id), i);
  }
  // Speed factors cycle.
  EXPECT_DOUBLE_EQ(arch.node(NodeId{0}).speedFactor, 1.0);
  EXPECT_DOUBLE_EQ(arch.node(NodeId{1}).speedFactor, 0.5);
  EXPECT_DOUBLE_EQ(arch.node(NodeId{2}).speedFactor, 1.0);
}

TEST(Architecture, BuilderRejectsDegenerateInput) {
  EXPECT_THROW(makeUniformArchitecture(0, 10, 1), std::invalid_argument);
  EXPECT_THROW(makeUniformArchitecture(2, 10, 1, {}), std::invalid_argument);
}

TEST(Architecture, ConstructorValidatesNodeSlotCorrespondence) {
  std::vector<Node> nodes{{NodeId{0}, "N0", 1.0}, {NodeId{1}, "N1", 1.0}};
  // Slot for a node that does not exist.
  TdmaBus bus({{NodeId{0}, 10}, {NodeId{2}, 10}}, 1);
  EXPECT_THROW(Architecture(nodes, bus), std::invalid_argument);
  // One node without a slot.
  TdmaBus oneSlot({{NodeId{0}, 10}}, 1);
  EXPECT_THROW(Architecture(nodes, oneSlot), std::invalid_argument);
}

TEST(Architecture, ConstructorRequiresDenseIds) {
  std::vector<Node> nodes{{NodeId{1}, "N1", 1.0}};
  TdmaBus bus({{NodeId{1}, 10}}, 1);
  EXPECT_THROW(Architecture(nodes, bus), std::invalid_argument);
}

TEST(Architecture, NodeAccessors) {
  const Architecture arch = makeUniformArchitecture(3, 10, 1);
  EXPECT_EQ(arch.node(NodeId{2}).name, "N2");
  EXPECT_EQ(arch.nodes().size(), 3u);
}

}  // namespace
}  // namespace ides
