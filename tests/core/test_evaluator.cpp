#include "core/evaluator.h"

#include <gtest/gtest.h>

#include "core/initial_mapping.h"
#include "model/system_model.h"
#include "test_helpers.h"

namespace ides {
namespace {

using ides::testing::makeIncrementalScenario;
using ides::testing::ScenarioIds;

FutureProfile smallProfile() {
  FutureProfile p;
  p.tmin = 100;
  p.tneed = 30;
  p.bneedBytes = 8;
  p.wcetDistribution = DiscreteDistribution({{10, 0.5}, {20, 0.5}});
  p.messageSizeDistribution = DiscreteDistribution({{2, 0.5}, {4, 0.5}});
  return p;
}

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Deadline 150 < period 200: late placements are observable before the
    // schedule runs out of horizon.
    sys_ = std::make_unique<SystemModel>(
        makeIncrementalScenario(&ids_, 200, 150));
    frozen_ = std::make_unique<FrozenBase>(freezeExistingApplications(*sys_));
    ASSERT_TRUE(frozen_->feasible);
    eval_ = std::make_unique<SolutionEvaluator>(
        *sys_, frozen_->state, smallProfile(), MetricWeights{});
  }

  MappingSolution goodMapping() const {
    MappingSolution m(*sys_);
    m.setNode(ids_.diamond.p1, NodeId{0});
    m.setNode(ids_.diamond.p2, NodeId{1});
    m.setNode(ids_.diamond.p3, NodeId{0});
    m.setNode(ids_.diamond.p4, NodeId{0});
    return m;
  }

  ScenarioIds ids_;
  std::unique_ptr<SystemModel> sys_;
  std::unique_ptr<FrozenBase> frozen_;
  std::unique_ptr<SolutionEvaluator> eval_;
};

TEST_F(EvaluatorTest, FeasibleSolutionGetsObjectiveCost) {
  const EvalResult r = eval_->evaluate(goodMapping());
  EXPECT_TRUE(r.placed);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.deadlineMisses, 0);
  EXPECT_DOUBLE_EQ(r.cost, r.objective);
  EXPECT_LT(r.cost, SolutionEvaluator::kMissPenalty);
  EXPECT_GE(r.metrics.c2p, 0);
}

TEST_F(EvaluatorTest, LateSolutionGetsGradedPenalty) {
  // Pushing P4 past the 150-tick deadline (but inside the 200-tick period)
  // yields a placed-but-late schedule.
  MappingSolution late = goodMapping();
  late.setStartHint(ids_.diamond.p4, 160);
  const EvalResult r = eval_->evaluate(late);
  EXPECT_FALSE(r.feasible);
  EXPECT_GE(r.cost, SolutionEvaluator::kMissPenalty);
  EXPECT_LT(r.cost, SolutionEvaluator::kUnplacedPenalty);
  EXPECT_GT(r.lateness, 0);
}

TEST_F(EvaluatorTest, LatenessGradesThePenalty) {
  MappingSolution lateA = goodMapping();
  lateA.setStartHint(ids_.diamond.p4, 160);
  MappingSolution lateB = goodMapping();
  lateB.setStartHint(ids_.diamond.p4, 180);  // even later
  const double a = eval_->evaluate(lateA).cost;
  const double b = eval_->evaluate(lateB).cost;
  EXPECT_LT(a, b);
}

TEST_F(EvaluatorTest, OutputsScheduleAndSlackOnRequest) {
  ScheduleOutcome outcome;
  SlackInfo slack;
  const EvalResult r = eval_->evaluate(goodMapping(), &outcome, &slack);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(outcome.schedule.processEntryCount(), 4u);
  EXPECT_EQ(slack.horizon, sys_->hyperperiod());
  EXPECT_EQ(slack.nodeFree.size(), 2u);
  // Slack excludes both frozen and current occupancy.
  EXPECT_LT(slack.totalNodeSlack(), 2 * sys_->hyperperiod());
}

TEST_F(EvaluatorTest, EvaluationDoesNotMutateBaseline) {
  const Time before = eval_->baseline().totalNodeSlack();
  (void)eval_->evaluate(goodMapping());
  (void)eval_->evaluate(goodMapping());
  EXPECT_EQ(eval_->baseline().totalNodeSlack(), before);
}

TEST_F(EvaluatorTest, StateWithCommitsSolution) {
  const PlatformState state = eval_->stateWith(goodMapping());
  EXPECT_LT(state.totalNodeSlack(), eval_->baseline().totalNodeSlack());
}

TEST_F(EvaluatorTest, CurrentGraphsAndPrioritiesMatch) {
  ASSERT_EQ(eval_->currentGraphs().size(), 1u);
  EXPECT_EQ(eval_->currentGraphs()[0], ids_.diamond.graph);
  ASSERT_EQ(eval_->priorities().size(), 1u);
  EXPECT_EQ(eval_->priorities()[0].size(), 4u);
}

TEST_F(EvaluatorTest, DeterministicEvaluation) {
  const EvalResult a = eval_->evaluate(goodMapping());
  const EvalResult b = eval_->evaluate(goodMapping());
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  EXPECT_EQ(a.metrics.c2p, b.metrics.c2p);
  EXPECT_DOUBLE_EQ(a.metrics.c1p, b.metrics.c1p);
}

}  // namespace
}  // namespace ides
