#include "core/multi_increment.h"

#include <gtest/gtest.h>

#include "model/system_model.h"
#include "tgen/benchmark_suite.h"
#include "test_helpers.h"

namespace ides {
namespace {

class MultiIncrementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Several candidate increments embedded as Future applications.
    SuiteConfig cfg = ides::testing::smallSuiteConfig();
    cfg.currentProcesses = 16;  // version N increment is small
    cfg.futureAppCount = 6;
    cfg.futureProcesses = 12;
    cfg.futureGraphSize = 12;
    cfg.tneedOverride = 2 * 12 * 69;
    suite_ = std::make_unique<Suite>(buildSuite(cfg, 9));
    // The queue: the current app first, then the future candidates.
    increments_ = suite_->system.applicationsOfKind(AppKind::Current);
    const auto futures =
        suite_->system.applicationsOfKind(AppKind::Future);
    increments_.insert(increments_.end(), futures.begin(), futures.end());
  }

  std::unique_ptr<Suite> suite_;
  std::vector<ApplicationId> increments_;
};

TEST_F(MultiIncrementTest, PreFiredStopTokenYieldsAnEmptyUntaintedRun) {
  StopToken stop;
  stop.requestStop();
  MultiIncrementOptions options;
  options.stop = &stop;
  const MultiIncrementResult r = runIncrementSequence(
      suite_->system, suite_->profile, increments_, options);
  EXPECT_TRUE(r.stopped);
  EXPECT_TRUE(r.steps.empty());
  EXPECT_EQ(r.accepted, 0u);
}

TEST_F(MultiIncrementTest, UnfiredStopTokenChangesNothing) {
  StopToken stop;  // never fires
  MultiIncrementOptions options;
  options.stop = &stop;
  const MultiIncrementResult withToken = runIncrementSequence(
      suite_->system, suite_->profile, increments_, options);
  const MultiIncrementResult without = runIncrementSequence(
      suite_->system, suite_->profile, increments_, {});
  EXPECT_FALSE(withToken.stopped);
  EXPECT_EQ(withToken.accepted, without.accepted);
  ASSERT_EQ(withToken.steps.size(), without.steps.size());
  for (std::size_t i = 0; i < withToken.steps.size(); ++i) {
    EXPECT_EQ(withToken.steps[i].accepted, without.steps[i].accepted) << i;
    EXPECT_EQ(withToken.steps[i].objective, without.steps[i].objective) << i;
  }
}

TEST_F(MultiIncrementTest, AcceptsAtLeastTheFirstIncrement) {
  const MultiIncrementResult r = runIncrementSequence(
      suite_->system, suite_->profile, increments_, {});
  ASSERT_EQ(r.steps.size(), increments_.size());
  EXPECT_TRUE(r.steps.front().accepted);
  EXPECT_GE(r.accepted, 1u);
}

TEST_F(MultiIncrementTest, AcceptedStepsReportMetrics) {
  const MultiIncrementResult r = runIncrementSequence(
      suite_->system, suite_->profile, increments_, {});
  for (const IncrementStep& step : r.steps) {
    if (step.accepted) {
      EXPECT_GE(step.objective, 0.0);
      EXPECT_GE(step.metrics.c2p, 0);
    }
  }
}

TEST_F(MultiIncrementTest, OccupancyGrowsMonotonically) {
  const FrozenBase base = freezeExistingApplications(suite_->system);
  const MultiIncrementResult r = runIncrementSequence(
      suite_->system, suite_->profile, increments_, {});
  EXPECT_LT(r.finalState.totalNodeSlack(), base.state.totalNodeSlack());
}

TEST_F(MultiIncrementTest, FutureAwarePolicyAbsorbsAtLeastAsMany) {
  MultiIncrementOptions ahOpts;
  ahOpts.strategy = Strategy::AdHoc;
  MultiIncrementOptions mhOpts;
  mhOpts.strategy = Strategy::MappingHeuristic;
  const MultiIncrementResult ah = runIncrementSequence(
      suite_->system, suite_->profile, increments_, ahOpts);
  const MultiIncrementResult mh = runIncrementSequence(
      suite_->system, suite_->profile, increments_, mhOpts);
  EXPECT_GE(mh.accepted, ah.accepted);
}

TEST_F(MultiIncrementTest, StopAtFirstRejectTruncatesTheRun) {
  MultiIncrementOptions opts;
  opts.stopAtFirstReject = true;
  const MultiIncrementResult r = runIncrementSequence(
      suite_->system, suite_->profile, increments_, opts);
  // Either everything was accepted, or the run ends right after the first
  // rejection.
  if (r.accepted < increments_.size()) {
    EXPECT_EQ(r.steps.size(), r.accepted + 1);
    EXPECT_FALSE(r.steps.back().accepted);
  }
}

TEST_F(MultiIncrementTest, DeterministicAcrossRuns) {
  const MultiIncrementResult a = runIncrementSequence(
      suite_->system, suite_->profile, increments_, {});
  const MultiIncrementResult b = runIncrementSequence(
      suite_->system, suite_->profile, increments_, {});
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].accepted, b.steps[i].accepted);
    EXPECT_DOUBLE_EQ(a.steps[i].objective, b.steps[i].objective);
  }
}

TEST(MultiIncrementErrors, ThrowsOnUnschedulableBase) {
  SystemModel sys(makeUniformArchitecture(1, 10, 1));
  const ApplicationId e = sys.addApplication("e", AppKind::Existing);
  const GraphId ge = sys.addGraph(e, 100);
  sys.addProcess(ge, "E0", {60});
  sys.addProcess(ge, "E1", {60});
  const ApplicationId c = sys.addApplication("c", AppKind::Current);
  const GraphId gc = sys.addGraph(c, 100);
  sys.addProcess(gc, "C", {10});
  sys.finalize();
  FutureProfile profile;
  profile.tmin = 100;
  profile.tneed = 10;
  profile.bneedBytes = 4;
  profile.wcetDistribution = DiscreteDistribution({{10, 1.0}});
  profile.messageSizeDistribution = DiscreteDistribution({{4, 1.0}});
  EXPECT_THROW(runIncrementSequence(sys, profile, {c}, {}),
               std::runtime_error);
}

}  // namespace
}  // namespace ides
