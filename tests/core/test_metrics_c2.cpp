// C2 (slack distribution) metric tests, including the paper's slide-13
// illustration: the same amount of slack scores C2 = 0 when clustered into
// one Tmin window and C2 = tneed when spread over every window.
#include <gtest/gtest.h>

#include "core/metrics.h"

namespace ides {
namespace {

FutureProfile profileWith(Time tmin, Time tneed = 40,
                          std::int64_t bneed = 16) {
  FutureProfile p;
  p.tmin = tmin;
  p.tneed = tneed;
  p.bneedBytes = bneed;
  p.wcetDistribution = DiscreteDistribution({{10, 1.0}});
  p.messageSizeDistribution = DiscreteDistribution({{4, 1.0}});
  return p;
}

SlackInfo makeSlack(std::vector<std::vector<Interval>> nodeGaps,
                    Time horizon) {
  SlackInfo s;
  s.horizon = horizon;
  s.busBytesPerTick = 1;
  for (auto& gaps : nodeGaps) s.nodeFree.emplace_back(std::move(gaps));
  return s;
}

// ---- the slide-13 scenario -------------------------------------------------

TEST(C2Metric, SlackClusteredInOneWindowScoresZero) {
  // Horizon 200, Tmin 50 (4 windows); all 40 ticks of slack live in window
  // 0, so some window has zero slack: C2P = 0 < tneed.
  const SlackInfo slack = makeSlack({{{{0, 40}}}}, 200);
  const DesignMetrics m = computeMetrics(slack, profileWith(50));
  EXPECT_EQ(m.c2p, 0);
}

TEST(C2Metric, SlackSpreadOverEveryWindowScoresTneed) {
  // 40 ticks of slack in each of the 4 windows: min window slack = 40.
  const SlackInfo slack = makeSlack(
      {{{{0, 40}, {50, 90}, {100, 140}, {150, 190}}}}, 200);
  const DesignMetrics m = computeMetrics(slack, profileWith(50));
  EXPECT_EQ(m.c2p, 40);
}

TEST(C2Metric, MinimumIsTakenPerNodeThenSummed) {
  // Node 0: min window slack 10; node 1: min window slack 25.
  const SlackInfo slack = makeSlack(
      {
          {{{0, 10}, {50, 100}}},          // windows: 10, 50
          {{{20, 45}, {70, 100}}},         // windows: 25, 30
      },
      100);
  const DesignMetrics m = computeMetrics(slack, profileWith(50));
  EXPECT_EQ(m.c2p, 35);
}

TEST(C2Metric, SlackStraddlingWindowBoundarySplitsCorrectly) {
  // One gap [40, 60) over windows [0,50) and [50,100): 10 ticks each.
  const SlackInfo slack = makeSlack({{{{40, 60}}}}, 100);
  const DesignMetrics m = computeMetrics(slack, profileWith(50));
  EXPECT_EQ(m.c2p, 10);
}

TEST(C2Metric, FullyFreeNodeScoresTmin) {
  const SlackInfo slack = makeSlack({{{{0, 200}}}}, 200);
  const DesignMetrics m = computeMetrics(slack, profileWith(50));
  EXPECT_EQ(m.c2p, 50);
}

TEST(C2Metric, BusWindowsUseBytes) {
  SlackInfo s = makeSlack({{{{0, 100}}}}, 100);
  s.busBytesPerTick = 2;
  // Two windows of 50. Bus free: 12 ticks in window 0, 3 ticks in window 1.
  s.busChunks.push_back({0, 0, 10, 12});
  s.busChunks.push_back({0, 1, 60, 3});
  const DesignMetrics m = computeMetrics(s, profileWith(50));
  EXPECT_EQ(m.c2mBytes, 6);  // min(12,3) ticks * 2 bytes/tick
}

TEST(C2Metric, BusChunkStraddlingWindowCounted) {
  SlackInfo s = makeSlack({{{{0, 100}}}}, 100);
  // Chunk [45,55): 5 ticks in each window; other free bus time is larger.
  s.busChunks.push_back({0, 0, 45, 10});
  s.busChunks.push_back({0, 1, 60, 30});
  const DesignMetrics m = computeMetrics(s, profileWith(50));
  EXPECT_EQ(m.c2mBytes, 5);  // window 0 has only the straddling 5 ticks
}

TEST(C2Metric, NoFullWindowMeansMetricsStayZero) {
  // Tmin larger than the horizon: no complete window exists.
  const SlackInfo slack = makeSlack({{{{0, 100}}}}, 100);
  const DesignMetrics m = computeMetrics(slack, profileWith(400));
  EXPECT_EQ(m.c2p, 0);
  EXPECT_EQ(m.c2mBytes, 0);
}

TEST(C2Metric, BusyNodeContributesZeroToSum) {
  const SlackInfo slack = makeSlack(
      {
          {},                     // node 0 completely busy
          {{{0, 100}}},           // node 1 fully free
      },
      100);
  const DesignMetrics m = computeMetrics(slack, profileWith(50));
  EXPECT_EQ(m.c2p, 50);
}

}  // namespace
}  // namespace ides
