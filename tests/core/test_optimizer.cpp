// The pluggable optimizer API: registry resolution, bit-identity of the
// interface against direct strategy calls, the legacy enum shim, stop
// tokens, progress events, and options validation.
#include "core/optimizer.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/incremental_designer.h"
#include "core/initial_mapping.h"
#include "model/system_model.h"
#include "tgen/benchmark_suite.h"
#include "test_helpers.h"

namespace ides {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    suite_ = std::make_unique<Suite>(
        buildSuite(ides::testing::smallSuiteConfig(), 21));
    DesignerOptions opts;
    opts.sa.iterations = 800;  // keep the test fast
    opts.psa.restarts = 3;
    opts.psa.threads = 2;
    designer_ = std::make_unique<IncrementalDesigner>(suite_->system,
                                                      suite_->profile, opts);
  }

  /// The Initial Mapping every strategy starts from (the legacy flow).
  MappingSolution initialSolution() const {
    PlatformState state = designer_->evaluator().baseline();
    const ScheduleOutcome im =
        initialMapping(suite_->system, state);
    EXPECT_TRUE(im.feasible);
    return im.mapping;
  }

  std::unique_ptr<Suite> suite_;
  std::unique_ptr<IncrementalDesigner> designer_;
};

TEST_F(OptimizerTest, BuiltinRegistryListsThePaperStrategies) {
  const StrategyRegistry& registry = StrategyRegistry::builtin();
  const std::vector<std::string> expected = {"AH", "MH", "SA", "PSA",
                                             "tabu"};
  EXPECT_EQ(registry.names(), expected);
  for (const std::string& name : expected) {
    EXPECT_TRUE(registry.contains(name)) << name;
    const std::unique_ptr<Optimizer> optimizer = registry.create(name);
    ASSERT_NE(optimizer, nullptr);
    EXPECT_EQ(optimizer->name(), name);
  }
}

TEST_F(OptimizerTest, UnknownStrategyThrowsListingTheValidSet) {
  try {
    (void)StrategyRegistry::builtin().create("simulated-annealing");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("simulated-annealing"), std::string::npos);
    for (const char* name : {"AH", "MH", "SA", "PSA"}) {
      EXPECT_NE(message.find(name), std::string::npos) << name;
    }
  }
}

TEST_F(OptimizerTest, DuplicateRegistrationThrows) {
  StrategyRegistry registry;
  registry.add("X", [](const DesignerOptions&) {
    return std::make_unique<AdHocOptimizer>();
  });
  EXPECT_THROW(registry.add("X",
                            [](const DesignerOptions&) {
                              return std::make_unique<AdHocOptimizer>();
                            }),
               std::invalid_argument);
}

TEST_F(OptimizerTest, SaThroughInterfaceIsBitIdenticalToDirectCall) {
  SaOptions sa = designer_->options().sa;
  const SaResult direct = runSimulatedAnnealing(
      designer_->evaluator(), initialSolution(), sa);

  const DesignResult viaName = designer_->run("SA");
  EXPECT_TRUE(viaName.feasible);
  EXPECT_EQ(viaName.mapping, direct.solution);
  EXPECT_EQ(viaName.objective, direct.eval.cost);
  EXPECT_EQ(viaName.evaluations, direct.evaluations + 2);  // IM + final
}

TEST_F(OptimizerTest, PsaThroughInterfaceIsBitIdenticalToDirectCall) {
  ParallelSaOptions psa = designer_->options().psa;
  psa.base = designer_->options().sa;
  const ParallelSaResult direct = runParallelAnnealing(
      designer_->evaluator(), initialSolution(), psa);

  const DesignResult viaName = designer_->run("PSA");
  EXPECT_TRUE(viaName.feasible);
  EXPECT_EQ(viaName.mapping, direct.solution);
  EXPECT_EQ(viaName.objective, direct.eval.cost);
}

TEST_F(OptimizerTest, EnumShimMatchesNameBasedRuns) {
  for (const Strategy s : {Strategy::AdHoc, Strategy::MappingHeuristic,
                           Strategy::SimulatedAnnealing}) {
    const DesignResult byEnum = designer_->run(s);
    const DesignResult byName = designer_->run(std::string(toString(s)));
    EXPECT_EQ(byEnum.mapping, byName.mapping) << toString(s);
    EXPECT_EQ(byEnum.objective, byName.objective) << toString(s);
    EXPECT_EQ(byEnum.evaluations, byName.evaluations) << toString(s);
    EXPECT_EQ(byEnum.strategy, s);
    EXPECT_EQ(byEnum.strategyName, toString(s));
  }
}

TEST_F(OptimizerTest, RepeatedRunsThroughSharedContextAreRepeatable) {
  // The designer's RunContext keeps one pool lease across runs; reusing
  // warm checkpoints must not change any result.
  const DesignResult first = designer_->run("MH");
  const DesignResult ah = designer_->run("AH");
  const DesignResult second = designer_->run("MH");
  EXPECT_EQ(first.mapping, second.mapping);
  EXPECT_EQ(first.objective, second.objective);
  EXPECT_TRUE(ah.feasible);
}

TEST_F(OptimizerTest, PreFiredStopTokenDegradesSaToTheInitialMapping) {
  StopToken stop;
  stop.requestStop();
  RunContext context;
  context.stop = &stop;
  const DesignResult stopped = designer_->run("SA", context);
  const DesignResult ah = designer_->run("AH");
  EXPECT_TRUE(stopped.stopped);
  EXPECT_TRUE(stopped.feasible);
  EXPECT_EQ(stopped.mapping, ah.mapping);
  EXPECT_EQ(stopped.objective, ah.objective);
}

TEST_F(OptimizerTest, PassedDeadlineStopsEveryStrategyGracefully) {
  for (const char* name : {"MH", "SA", "PSA"}) {
    StopToken stop;
    stop.setTimeout(-1.0);  // already expired
    RunContext context;
    context.stop = &stop;
    const DesignResult r = designer_->run(name, context);
    EXPECT_TRUE(r.stopped) << name;
    EXPECT_TRUE(r.feasible) << name;
  }
}

TEST_F(OptimizerTest, UnfiredStopTokenLeavesSaBitIdentical) {
  StopToken stop;  // never fires, no deadline
  RunContext context;
  context.stop = &stop;
  const DesignResult withToken = designer_->run("SA", context);
  const DesignResult without = designer_->run("SA");
  EXPECT_EQ(withToken.mapping, without.mapping);
  EXPECT_EQ(withToken.objective, without.objective);
  EXPECT_FALSE(withToken.stopped);
}

TEST_F(OptimizerTest, ProgressSinkSeesPhaseBoundaries) {
  std::vector<std::string> phases;
  RunContext context;
  context.progress = [&](const ProgressEvent& event) {
    phases.emplace_back(event.phase);
  };
  const DesignResult r = designer_->run("MH", context);
  EXPECT_TRUE(r.feasible);
  const std::vector<std::string> expected = {"initial-mapping", "improve",
                                             "final"};
  EXPECT_EQ(phases, expected);
}

// ---- options validation ---------------------------------------------------

TEST(OptimizerValidation, NegativeSaIterationsThrow) {
  SaOptions opts;
  opts.iterations = -1;
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
}

TEST(OptimizerValidation, SaMoveMixOutOfRangeThrows) {
  SaOptions opts;
  opts.probRemap = 1.5;
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
  opts.probRemap = 0.7;
  opts.probProcessHint = 0.7;  // sums past 1
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
  opts.probProcessHint = -0.1;
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
}

TEST(OptimizerValidation, SaTemperatureKnobsAreRangeChecked) {
  SaOptions opts;
  opts.finalTemp = 0.0;
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
  opts = SaOptions{};
  opts.initialTempFactor = -0.5;
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
}

TEST(OptimizerValidation, SpeculationKnobsAreRangeChecked) {
  SaOptions opts;
  opts.speculation.workers = -1;
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
  opts = SaOptions{};
  opts.speculation.window = 0;
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
  opts = SaOptions{};
  opts.speculation.acceptanceThreshold = -0.1;
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
  // The determinism suite's extremes stay legal: 0 disables, 2 forces.
  opts = SaOptions{};
  opts.speculation.acceptanceThreshold = 0.0;
  EXPECT_NO_THROW(validateOptions(opts));
  opts.speculation.acceptanceThreshold = 2.0;
  EXPECT_NO_THROW(validateOptions(opts));
}

TEST(OptimizerValidation, NegativeMhBudgetsThrow) {
  MhOptions opts;
  opts.maxIterations = -1;
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
  opts = MhOptions{};
  opts.candidateProcesses = -3;
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
}

TEST(OptimizerValidation, PsaShapeIsRangeChecked) {
  ParallelSaOptions opts;
  opts.restarts = 0;
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
  opts = ParallelSaOptions{};
  opts.threads = -2;
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
  opts = ParallelSaOptions{};
  opts.perChainIterations = -1;
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
  // 0 threads = hardware concurrency, a legal auto value.
  opts = ParallelSaOptions{};
  opts.threads = 0;
  EXPECT_NO_THROW(validateOptions(opts));
}

TEST(OptimizerValidation, DesignerOptionsValidateEveryLayer) {
  DesignerOptions opts;
  opts.weights.w2p = -1.0;
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
  opts = DesignerOptions{};
  opts.sa.iterations = -5;
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
  opts = DesignerOptions{};
  opts.mh.busWindows = -1;
  EXPECT_THROW(validateOptions(opts), std::invalid_argument);
}

TEST(OptimizerValidation, InvalidOptionsFailAtTheEntryPoints) {
  const Suite suite = buildSuite(ides::testing::smallSuiteConfig(40, 12), 5);
  DesignerOptions bad;
  bad.sa.iterations = -1;
  EXPECT_THROW(IncrementalDesigner(suite.system, suite.profile, bad),
               std::invalid_argument);
  EXPECT_THROW((void)StrategyRegistry::builtin().create("SA", bad),
               std::invalid_argument);

  IncrementalDesigner designer(suite.system, suite.profile);
  PlatformState state = designer.evaluator().baseline();
  const ScheduleOutcome im = initialMapping(suite.system, state);
  ASSERT_TRUE(im.feasible);
  SaOptions badSa;
  badSa.iterations = -1;
  EXPECT_THROW((void)runSimulatedAnnealing(designer.evaluator(), im.mapping,
                                           badSa),
               std::invalid_argument);
  MhOptions badMh;
  badMh.maxIterations = -1;
  EXPECT_THROW((void)runMappingHeuristic(designer.evaluator(), im.mapping,
                                         badMh),
               std::invalid_argument);
}

}  // namespace
}  // namespace ides
