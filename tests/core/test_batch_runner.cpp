// BatchRunner: canonical-order aggregation, byte-identical JSON across
// shard counts, cooperative cancellation with well-formed partial reports,
// probes, custom jobs, and the named paper sweep builders.
#include "core/batch_runner.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_suites.h"
#include "core/incremental_designer.h"
#include "test_helpers.h"

namespace ides {
namespace {

/// A small but real suite: 2 sizes x 2 seeds x {AH, MH, SA-short} on the
/// loaded 4-node generator config the unit tests use everywhere.
InstanceSuite smallBatchSuite(int saIterations = 150) {
  InstanceSuite suite("unit-batch");
  const std::size_t sizes[] = {12, 20};
  for (const std::size_t size : sizes) {
    for (int s = 0; s < 2; ++s) {
      for (const char* strategy : {"AH", "MH", "SA"}) {
        BatchInstance instance;
        instance.group = "n";  // += avoids GCC -Wrestrict (PR105651)
        instance.group += std::to_string(size);
        instance.id = instance.group;
        instance.id += "/s";
        instance.id += std::to_string(s);
        instance.id += "/";
        instance.id += strategy;
        instance.axis = static_cast<double>(size);
        instance.seedIndex = s;
        instance.suiteSeed = 100 + static_cast<std::uint64_t>(s);
        instance.config = ides::testing::smallSuiteConfig(40, size);
        instance.strategy = strategy;
        instance.options.sa.iterations = saIterations;
        instance.options.sa.seed = static_cast<std::uint64_t>(s) + 1;
        suite.add(std::move(instance));
      }
    }
  }
  return suite;
}

TEST(BatchRunnerTest, AggregatedJsonIsByteIdenticalAcrossShardCounts) {
  const InstanceSuite suite = smallBatchSuite();
  BatchJsonOptions json;
  json.timing = false;  // the deterministic rendering
  std::vector<std::string> renderings;
  for (const int shards : {1, 2, 7}) {
    BatchOptions options;
    options.shards = shards;
    const BatchReport report = runBatch(suite, options);
    EXPECT_EQ(report.completed, suite.size()) << shards << " shards";
    EXPECT_FALSE(report.stopped);
    renderings.push_back(batchReportJson("unit", report, json));
  }
  EXPECT_EQ(renderings[0], renderings[1]);
  EXPECT_EQ(renderings[0], renderings[2]);
  // Sanity: the rendering actually contains every record.
  std::size_t records = 0;
  for (std::size_t pos = renderings[0].find("\"id\":");
       pos != std::string::npos;
       pos = renderings[0].find("\"id\":", pos + 1)) {
    ++records;
  }
  EXPECT_EQ(records, suite.size());
}

TEST(BatchRunnerTest, ResultsArriveInCanonicalOrderWithIdentity) {
  const InstanceSuite suite = smallBatchSuite();
  BatchOptions options;
  options.shards = 3;
  const BatchReport report = runBatch(suite, options);
  ASSERT_EQ(report.results.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const InstanceResult& r = report.results[i];
    EXPECT_EQ(r.index, i);
    EXPECT_EQ(r.id, suite.instances()[i].id);
    EXPECT_EQ(r.group, suite.instances()[i].group);
    EXPECT_TRUE(r.ran);
    EXPECT_TRUE(r.outcome.hasReport);
    EXPECT_EQ(r.outcome.report.strategy, suite.instances()[i].strategy);
    EXPECT_TRUE(r.outcome.report.feasible) << r.id;
  }
}

TEST(BatchRunnerTest, DefaultJobMatchesADirectDesignerRun) {
  const InstanceSuite suite = smallBatchSuite();
  const BatchReport report = runBatch(suite, {});

  // Replay one SA instance by hand: identical config, seed and options
  // must give a bit-identical objective through the legacy facade.
  const BatchInstance& instance = suite.instances()[2];  // n12/s0/SA
  ASSERT_EQ(instance.strategy, "SA");
  const Suite generated = buildSuite(instance.config, instance.suiteSeed);
  IncrementalDesigner designer(generated.system, generated.profile,
                               instance.options);
  const DesignResult direct = designer.run("SA");
  const RunReport& batched = report.results[2].outcome.report;
  EXPECT_EQ(batched.objective, direct.objective);
  EXPECT_EQ(batched.mapping, direct.mapping);
  EXPECT_EQ(batched.evaluations, direct.evaluations);
}

TEST(BatchRunnerTest, MidSuiteCancelYieldsWellFormedPartialReport) {
  const InstanceSuite suite = smallBatchSuite();
  StopToken stop;
  BatchOptions options;
  options.shards = 1;  // deterministic completion prefix
  options.stop = &stop;
  std::size_t seen = 0;
  options.onInstanceDone = [&](const InstanceResult&) {
    if (++seen == 3) stop.requestStop();
  };
  const BatchReport report = runBatch(suite, options);
  EXPECT_TRUE(report.stopped);
  EXPECT_EQ(report.completed, 3u);
  ASSERT_EQ(report.results.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(report.results[i].ran, i < 3) << i;
  }

  const std::string json = batchReportJson("unit", report, {});
  EXPECT_NE(json.find("\"stopped\": true"), std::string::npos);
  EXPECT_NE(json.find("\"completed\": 3"), std::string::npos);
  std::size_t records = 0;
  for (std::size_t pos = json.find("\"id\":"); pos != std::string::npos;
       pos = json.find("\"id\":", pos + 1)) {
    ++records;
  }
  EXPECT_EQ(records, 3u);
  ASSERT_GE(json.size(), 4u);
  EXPECT_EQ(json.substr(json.size() - 4), "]\n}\n") << "rendering truncated?";
}

TEST(BatchRunnerTest, ProbeExtrasLandInTheRecord) {
  InstanceSuite suite("probe");
  BatchInstance instance;
  instance.id = "p/s0/AH";
  instance.group = "p";
  instance.config = ides::testing::smallSuiteConfig(40, 12);
  instance.suiteSeed = 7;
  instance.strategy = "AH";
  instance.probe = [](const Suite&, const SolutionEvaluator&,
                      const RunReport& report, BatchExtras& extras) {
    extras.add("probe_feasible", report.feasible ? 1.0 : 0.0);
    extras.add("answer", 42.0);
  };
  suite.add(std::move(instance));

  const BatchReport report = runBatch(suite, {});
  ASSERT_EQ(report.completed, 1u);
  const BatchExtras& extras = report.results[0].outcome.extras;
  ASSERT_EQ(extras.fields.size(), 2u);
  EXPECT_EQ(extras.fields[0].first, "probe_feasible");
  EXPECT_EQ(extras.fields[0].second, 1.0);
  const std::string json = batchReportJson("probe", report, {});
  EXPECT_NE(json.find("\"answer\": 42"), std::string::npos);
}

TEST(BatchRunnerTest, CustomJobBypassesTheOptimizerPath) {
  InstanceSuite suite("custom");
  BatchInstance instance;
  instance.id = "job/s0/none";
  instance.group = "job";
  instance.job = [](const BatchInstance& inst,
                    const StopToken*) -> InstanceOutcome {
    InstanceOutcome outcome;
    outcome.hasReport = false;
    outcome.extras.add("echo", inst.axis);
    return outcome;
  };
  instance.axis = 5.0;
  suite.add(std::move(instance));

  const BatchReport report = runBatch(suite, {});
  ASSERT_EQ(report.completed, 1u);
  EXPECT_FALSE(report.results[0].outcome.hasReport);
  const std::string json = batchReportJson("custom", report, {});
  EXPECT_NE(json.find("\"echo\": 5"), std::string::npos);
  EXPECT_EQ(json.find("\"objective\""), std::string::npos);
}

TEST(BatchRunnerTest, NegativeShardsThrow) {
  const InstanceSuite suite("empty");
  BatchOptions options;
  options.shards = -1;
  EXPECT_THROW((void)runBatch(suite, options), std::invalid_argument);
}

TEST(BatchRunnerTest, EmptySuiteProducesAnEmptyWellFormedReport) {
  const InstanceSuite suite("empty");
  const BatchReport report = runBatch(suite, {});
  EXPECT_EQ(report.completed, 0u);
  EXPECT_TRUE(report.results.empty());
  const std::string json = batchReportJson("empty", report, {});
  EXPECT_NE(json.find("\"results\": [\n  ]"), std::string::npos);
}

// ---- the ResultCache hook -------------------------------------------------

/// In-memory cache double: serves scripted hits, records store() offers.
class FakeCache final : public ResultCache {
 public:
  bool lookup(const BatchInstance& instance,
              InstanceOutcome& outcome) override {
    const auto it = hits.find(instance.id);
    if (it == hits.end()) return false;
    outcome = it->second;
    return true;
  }
  void store(const BatchInstance& instance,
             const InstanceOutcome& outcome) override {
    stored.emplace_back(instance.id, outcome);
  }

  std::map<std::string, InstanceOutcome> hits;
  std::vector<std::pair<std::string, InstanceOutcome>> stored;
};

TEST(BatchRunnerTest, CacheHitsSkipExecutionAndMissesAreOffered) {
  const InstanceSuite suite = smallBatchSuite();
  FakeCache cache;
  InstanceOutcome canned;
  canned.report.strategy = "AH";
  canned.report.feasible = true;
  canned.report.objective = 42.0;
  cache.hits[suite.instances()[0].id] = canned;

  BatchOptions options;
  options.cache = &cache;
  const BatchReport report = runBatch(suite, options);
  EXPECT_EQ(report.completed, suite.size());
  EXPECT_EQ(report.cacheHits, 1u);
  EXPECT_TRUE(report.results[0].cached);
  EXPECT_EQ(report.results[0].outcome.report.objective, 42.0);
  // Every miss (and only the misses) was offered for persistence.
  EXPECT_EQ(cache.stored.size(), suite.size() - 1);
  for (const auto& [id, outcome] : cache.stored) {
    EXPECT_NE(id, suite.instances()[0].id);
  }
  for (std::size_t i = 1; i < suite.size(); ++i) {
    EXPECT_FALSE(report.results[i].cached) << i;
  }
}

TEST(BatchRunnerTest, CacheHitsCountTowardCompletionNotJson) {
  const InstanceSuite suite = smallBatchSuite();
  // Full-hit cache primed from a real run: the rendering must be
  // byte-identical to the uncached one (cache state never leaks into it).
  BatchJsonOptions json;
  json.timing = false;
  FakeCache cache;
  const BatchReport fresh = runBatch(suite, {});
  for (const InstanceResult& r : fresh.results) {
    cache.hits[r.id] = r.outcome;
  }
  BatchOptions options;
  options.cache = &cache;
  const BatchReport cached = runBatch(suite, options);
  EXPECT_EQ(cached.cacheHits, suite.size());
  EXPECT_TRUE(cache.stored.empty());
  EXPECT_EQ(batchReportJson("unit", cached, json),
            batchReportJson("unit", fresh, json));
}

// ---- BatchIndex -----------------------------------------------------------

TEST(BatchIndexTest, MatchesTheLinearScanItReplaces) {
  const InstanceSuite suite = smallBatchSuite();
  const BatchReport report = runBatch(suite, {});
  const BatchIndex index(report);

  // The index answers exactly like the old first-match linear scan.
  const auto scan = [&](const std::string& group, int seed,
                        const std::string& strategy) -> const
      InstanceResult* {
    for (const InstanceResult& r : report.results) {
      if (!r.ran || r.group != group || r.seedIndex != seed) continue;
      if (!strategy.empty() &&
          (!r.outcome.hasReport || r.outcome.report.strategy != strategy)) {
        continue;
      }
      return &r;
    }
    return nullptr;
  };
  for (const std::string group : {"n12", "n20", "n99"}) {
    for (int seed = 0; seed < 3; ++seed) {
      for (const std::string strategy : {"", "AH", "MH", "SA", "PSA"}) {
        EXPECT_EQ(index.find(group, seed, strategy),
                  scan(group, seed, strategy))
            << group << "/" << seed << "/" << strategy;
      }
    }
  }
}

TEST(BatchIndexTest, SkipsInstancesThatNeverRan) {
  const InstanceSuite suite = smallBatchSuite();
  StopToken stop;
  BatchOptions options;
  options.shards = 1;
  options.stop = &stop;
  std::size_t seen = 0;
  options.onInstanceDone = [&](const InstanceResult&) {
    if (++seen == 2) stop.requestStop();
  };
  const BatchReport partial = runBatch(suite, options);
  const BatchIndex index(partial);
  EXPECT_NE(index.find("n12", 0, "AH"), nullptr);
  EXPECT_EQ(index.find("n20", 1, "SA"), nullptr);  // skipped by the stop
}

// ---- the named paper sweeps ----------------------------------------------

TEST(SweepBuildersTest, NamedSweepsBuildCanonicalNonEmptySuites) {
  SweepScale tiny;
  tiny.name = "tiny";
  tiny.seeds = 1;
  tiny.saIterations = 50;
  tiny.sizes = {40};
  tiny.futureAppsPerInstance = 2;

  for (const std::string& name : sweepNames()) {
    const InstanceSuite first = namedSweep(name, tiny);
    const InstanceSuite second = namedSweep(name, tiny);
    ASSERT_GT(first.size(), 0u) << name;
    ASSERT_EQ(first.size(), second.size()) << name;
    std::vector<std::string> ids;
    for (std::size_t i = 0; i < first.size(); ++i) {
      const BatchInstance& a = first.instances()[i];
      const BatchInstance& b = second.instances()[i];
      EXPECT_EQ(a.id, b.id) << name;
      EXPECT_EQ(a.suiteSeed, b.suiteSeed) << name;
      for (const std::string& seen : ids) {
        EXPECT_NE(seen, a.id) << name << ": duplicate id";
      }
      ids.push_back(a.id);
    }
  }
  EXPECT_THROW((void)namedSweep("nope", tiny), std::invalid_argument);
}

TEST(SweepBuildersTest, ExplicitScaleNamesAreStrict) {
  EXPECT_EQ(sweepScaleNamed("smoke").name, "smoke");
  EXPECT_EQ(sweepScaleNamed("default").name, "default");
  EXPECT_EQ(sweepScaleNamed("full").name, "full");
  // A typo must fail loudly, not silently run the wrong experiment.
  EXPECT_THROW((void)sweepScaleNamed("ful"), std::invalid_argument);
}

TEST(SweepBuildersTest, SweepShapesMatchTheLegacyLoops) {
  SweepScale tiny;
  tiny.seeds = 2;
  tiny.sizes = {40, 160, 320};
  tiny.futureAppsPerInstance = 2;

  // quality/runtime: sizes x seeds x 3 strategies.
  EXPECT_EQ(qualitySweep(tiny).size(), 3u * 2u * 3u);
  EXPECT_EQ(runtimeSweep(tiny).size(), 3u * 2u * 3u);
  // future: sizes below 240 plus 240, 2 strategies.
  EXPECT_EQ(futureSweep(tiny).size(), 3u * 2u * 2u);
  // weights: 4 cases x seeds, MH only.
  EXPECT_EQ(weightsSweep(tiny).size(), 4u * 2u);
  // increments: seeds x 2 policies, custom jobs.
  const InstanceSuite increments = incrementsSweep(tiny);
  EXPECT_EQ(increments.size(), 2u * 2u);
  for (const BatchInstance& instance : increments.instances()) {
    EXPECT_TRUE(static_cast<bool>(instance.job));
  }
  // The quality sweep reproduces the legacy seeding exactly.
  const InstanceSuite quality = qualitySweep(tiny);
  EXPECT_EQ(quality.instances()[0].suiteSeed, 1000u);
  EXPECT_EQ(quality.instances()[0].options.sa.seed, 1u);
  EXPECT_EQ(quality.instances()[3].suiteSeed, 1001u);
  EXPECT_EQ(quality.instances()[3].options.sa.seed, 2u);
}

}  // namespace
}  // namespace ides
