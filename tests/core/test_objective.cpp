// Objective function C = w1P*C1P + w1m*C1m + penalties (slide 14).
#include <gtest/gtest.h>

#include "core/metrics.h"

namespace ides {
namespace {

FutureProfile profile(Time tneed = 100, std::int64_t bneed = 50) {
  FutureProfile p;
  p.tmin = 1000;
  p.tneed = tneed;
  p.bneedBytes = bneed;
  p.wcetDistribution = DiscreteDistribution({{10, 1.0}});
  p.messageSizeDistribution = DiscreteDistribution({{4, 1.0}});
  return p;
}

TEST(Objective, ZeroWhenAllCriteriaSatisfied) {
  DesignMetrics m;
  m.c1p = 0.0;
  m.c1m = 0.0;
  m.c2p = 100;      // exactly tneed
  m.c2mBytes = 50;  // exactly bneed
  EXPECT_DOUBLE_EQ(objectiveValue(m, profile(), MetricWeights{}), 0.0);
}

TEST(Objective, C1TermsAreWeightedPercentages) {
  DesignMetrics m;
  m.c1p = 30.0;
  m.c1m = 10.0;
  m.c2p = 200;       // above tneed: no penalty
  m.c2mBytes = 100;  // above bneed
  const MetricWeights w{.w1p = 2.0, .w1m = 0.5, .w2p = 2.0, .w2m = 2.0};
  EXPECT_DOUBLE_EQ(objectiveValue(m, profile(), w), 2.0 * 30.0 + 0.5 * 10.0);
}

TEST(Objective, PenaltyIsNormalizedShortfall) {
  DesignMetrics m;
  m.c2p = 25;      // shortfall 75 of tneed 100 -> 75%
  m.c2mBytes = 40; // shortfall 10 of bneed 50 -> 20%
  const MetricWeights w{.w1p = 1.0, .w1m = 1.0, .w2p = 2.0, .w2m = 3.0};
  EXPECT_DOUBLE_EQ(objectiveValue(m, profile(), w),
                   2.0 * 75.0 + 3.0 * 20.0);
}

TEST(Objective, SurplusSlackGivesNoCredit) {
  // max(0, ...) clamps: surplus in one criterion cannot offset another.
  DesignMetrics surplus;
  surplus.c1p = 10.0;
  surplus.c2p = 100000;
  surplus.c2mBytes = 100000;
  DesignMetrics exact;
  exact.c1p = 10.0;
  exact.c2p = 100;
  exact.c2mBytes = 50;
  EXPECT_DOUBLE_EQ(objectiveValue(surplus, profile(), MetricWeights{}),
                   objectiveValue(exact, profile(), MetricWeights{}));
}

TEST(Objective, WorstCaseIsBounded) {
  DesignMetrics m;
  m.c1p = 100.0;
  m.c1m = 100.0;
  m.c2p = 0;
  m.c2mBytes = 0;
  // With default weights {1,1,2,2}: 100 + 100 + 200 + 200.
  EXPECT_DOUBLE_EQ(objectiveValue(m, profile(), MetricWeights{}), 600.0);
}

TEST(Objective, MonotoneInEachMetric) {
  const MetricWeights w{};
  DesignMetrics base;
  base.c1p = 10.0;
  base.c1m = 10.0;
  base.c2p = 50;
  base.c2mBytes = 25;
  const double c0 = objectiveValue(base, profile(), w);

  DesignMetrics worseC1 = base;
  worseC1.c1p += 5.0;
  EXPECT_GT(objectiveValue(worseC1, profile(), w), c0);

  DesignMetrics worseC2 = base;
  worseC2.c2p -= 10;
  EXPECT_GT(objectiveValue(worseC2, profile(), w), c0);

  DesignMetrics betterC2m = base;
  betterC2m.c2mBytes += 10;
  EXPECT_LT(objectiveValue(betterC2m, profile(), w), c0);
}

}  // namespace
}  // namespace ides
