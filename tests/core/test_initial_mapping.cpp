#include "core/initial_mapping.h"

#include <gtest/gtest.h>

#include "model/system_model.h"
#include "test_helpers.h"

namespace ides {
namespace {

using ides::testing::makeIncrementalScenario;
using ides::testing::ScenarioIds;
using ides::testing::wcets;

TEST(FreezeExisting, SchedulesAllExistingApplications) {
  ScenarioIds ids;
  const SystemModel sys = makeIncrementalScenario(&ids);
  const FrozenBase base = freezeExistingApplications(sys);
  ASSERT_TRUE(base.feasible);
  EXPECT_EQ(base.schedule.processEntryCount(), 2u);  // E0, E1
  EXPECT_TRUE(base.schedule.hasProcess(ProcessId{0}, 0));
  // The frozen mapping records where existing processes live.
  EXPECT_EQ(base.mapping.nodeOf(ProcessId{0}), NodeId{0});
  EXPECT_EQ(base.mapping.nodeOf(ProcessId{1}), NodeId{1});
  // Platform state carries their occupancy.
  EXPECT_EQ(base.state.nodeBusy(NodeId{0}).totalLength(), 25);
  EXPECT_EQ(base.state.nodeBusy(NodeId{1}).totalLength(), 25);
}

TEST(FreezeExisting, EmptyExistingSetIsTriviallyFeasible) {
  const SystemModel sys = ides::testing::makeDiamondSystem();  // Current only
  const FrozenBase base = freezeExistingApplications(sys);
  EXPECT_TRUE(base.feasible);
  EXPECT_EQ(base.schedule.processEntryCount(), 0u);
  EXPECT_EQ(base.state.totalNodeSlack(), 2 * sys.hyperperiod());
}

TEST(FreezeExisting, ReportsInfeasibleOverload) {
  // One node, 100-tick hyperperiod, 3 x 40 ticks of existing load.
  SystemModel sys(makeUniformArchitecture(1, 10, 1));
  const ApplicationId a = sys.addApplication("e", AppKind::Existing);
  const GraphId g = sys.addGraph(a, 100);
  for (int i = 0; i < 3; ++i) {
    sys.addProcess(g, "E" + std::to_string(i), {40});
  }
  sys.finalize();
  const FrozenBase base = freezeExistingApplications(sys);
  EXPECT_FALSE(base.feasible);
}

TEST(FreezeExisting, ApplicationsFreezeInIdOrderIncrementally) {
  // Two existing single-process apps on one node: the second is scheduled
  // around the first, mirroring incremental delivery.
  SystemModel sys(makeUniformArchitecture(1, 10, 1));
  const ApplicationId a0 = sys.addApplication("old0", AppKind::Existing);
  const GraphId g0 = sys.addGraph(a0, 100);
  sys.addProcess(g0, "A", {30});
  const ApplicationId a1 = sys.addApplication("old1", AppKind::Existing);
  const GraphId g1 = sys.addGraph(a1, 100);
  sys.addProcess(g1, "B", {30});
  sys.finalize();
  const FrozenBase base = freezeExistingApplications(sys);
  ASSERT_TRUE(base.feasible);
  EXPECT_EQ(base.schedule.processEntry(ProcessId{0}, 0).start, 0);
  EXPECT_EQ(base.schedule.processEntry(ProcessId{1}, 0).start, 30);
}

TEST(InitialMapping, ProducesValidScheduleAroundFrozenBase) {
  ScenarioIds ids;
  const SystemModel sys = makeIncrementalScenario(&ids);
  const FrozenBase base = freezeExistingApplications(sys);
  ASSERT_TRUE(base.feasible);

  // Snapshot the frozen occupancy (requirement a: must not change).
  const IntervalSet frozen0 = base.state.nodeBusy(NodeId{0});
  const IntervalSet frozen1 = base.state.nodeBusy(NodeId{1});

  PlatformState state = base.state;
  const ScheduleOutcome out = initialMapping(sys, state);
  ASSERT_TRUE(out.feasible);
  EXPECT_EQ(out.schedule.processEntryCount(), 4u);

  // Every frozen interval is still busy in the final state.
  for (const Interval& iv : frozen0.intervals()) {
    EXPECT_TRUE(state.nodeBusy(NodeId{0}).covers(iv));
  }
  for (const Interval& iv : frozen1.intervals()) {
    EXPECT_TRUE(state.nodeBusy(NodeId{1}).covers(iv));
  }
  // And current-app processes never overlap them (they were inserted into
  // the remaining gaps).
  for (const ScheduledProcess& sp : out.schedule.processes()) {
    const IntervalSet& frozen =
        sp.node == NodeId{0} ? frozen0 : frozen1;
    EXPECT_FALSE(frozen.intersects({sp.start, sp.end}))
        << sys.process(sp.pid).name;
  }
}

TEST(InitialMapping, MapsOntoAllowedNodesOnly) {
  ScenarioIds ids;
  const SystemModel sys = makeIncrementalScenario(&ids);
  const FrozenBase base = freezeExistingApplications(sys);
  PlatformState state = base.state;
  const ScheduleOutcome out = initialMapping(sys, state);
  ASSERT_TRUE(out.feasible);
  for (const ScheduledProcess& sp : out.schedule.processes()) {
    EXPECT_TRUE(sys.process(sp.pid).allowedOn(sp.node));
  }
}

TEST(InitialMapping, ReportsInfeasibleWhenNoRoomLeft) {
  ScenarioIds ids;
  const SystemModel sys = makeIncrementalScenario(&ids);
  PlatformState state(sys.architecture(), sys.hyperperiod());
  // Fill both nodes almost completely.
  state.occupyNode(NodeId{0}, {0, 195});
  state.occupyNode(NodeId{1}, {0, 195});
  const ScheduleOutcome out = initialMapping(sys, state);
  EXPECT_FALSE(out.feasible);
}

}  // namespace
}  // namespace ides
