#include "core/incremental_designer.h"

#include <gtest/gtest.h>

#include "model/system_model.h"
#include "tgen/benchmark_suite.h"
#include "test_helpers.h"

namespace ides {
namespace {

class DesignerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    suite_ = std::make_unique<Suite>(
        buildSuite(ides::testing::smallSuiteConfig(), 21));
    DesignerOptions opts;
    opts.sa.iterations = 1200;  // keep the test fast
    designer_ = std::make_unique<IncrementalDesigner>(suite_->system,
                                                      suite_->profile, opts);
  }

  std::unique_ptr<Suite> suite_;
  std::unique_ptr<IncrementalDesigner> designer_;
};

TEST_F(DesignerTest, FreezesExistingApplicationsOnConstruction) {
  const std::size_t existing =
      suite_->system.processesOfKind(AppKind::Existing).size();
  // Some graphs may run several instances per hyperperiod.
  EXPECT_GE(designer_->frozenSchedule().processEntryCount(), existing);
  EXPECT_TRUE(designer_->frozenBase().feasible);
}

TEST_F(DesignerTest, AllStrategiesProduceFeasibleDesigns) {
  for (Strategy s : {Strategy::AdHoc, Strategy::MappingHeuristic,
                     Strategy::SimulatedAnnealing}) {
    const DesignResult r = designer_->run(s);
    EXPECT_TRUE(r.feasible) << toString(s);
    EXPECT_GT(r.schedule.processEntryCount(), 0u) << toString(s);
    EXPECT_GE(r.seconds, 0.0);
    EXPECT_GE(r.evaluations, 1u);
    EXPECT_LT(r.objective, SolutionEvaluator::kMissPenalty) << toString(s);
  }
}

TEST_F(DesignerTest, OptimizingStrategiesBeatAdHoc) {
  const DesignResult ah = designer_->run(Strategy::AdHoc);
  const DesignResult mh = designer_->run(Strategy::MappingHeuristic);
  const DesignResult sa = designer_->run(Strategy::SimulatedAnnealing);
  EXPECT_LE(mh.objective, ah.objective + 1e-9);
  EXPECT_LE(sa.objective, ah.objective + 1e-9);
}

TEST_F(DesignerTest, EvaluationCountsReflectSearchEffort) {
  const DesignResult ah = designer_->run(Strategy::AdHoc);
  const DesignResult mh = designer_->run(Strategy::MappingHeuristic);
  const DesignResult sa = designer_->run(Strategy::SimulatedAnnealing);
  EXPECT_LE(ah.evaluations, 3u);
  EXPECT_GT(mh.evaluations, ah.evaluations);
  EXPECT_GT(sa.evaluations, 1000u);
}

TEST_F(DesignerTest, RunsAreRepeatable) {
  const DesignResult a = designer_->run(Strategy::MappingHeuristic);
  const DesignResult b = designer_->run(Strategy::MappingHeuristic);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_EQ(a.mapping, b.mapping);
}

TEST_F(DesignerTest, StateWithContainsFrozenPlusCurrent) {
  const DesignResult ah = designer_->run(Strategy::AdHoc);
  const PlatformState after = designer_->stateWith(ah);
  EXPECT_LT(after.totalNodeSlack(),
            designer_->frozenBase().state.totalNodeSlack());
}

TEST(DesignerErrors, ThrowsWhenExistingBaseCannotBeFrozen) {
  SystemModel sys(makeUniformArchitecture(1, 10, 1));
  const ApplicationId e = sys.addApplication("e", AppKind::Existing);
  const GraphId ge = sys.addGraph(e, 100);
  sys.addProcess(ge, "E0", {60});
  sys.addProcess(ge, "E1", {60});  // 120 ticks of load in a 100-tick period
  const ApplicationId c = sys.addApplication("c", AppKind::Current);
  const GraphId gc = sys.addGraph(c, 100);
  sys.addProcess(gc, "C", {10});
  sys.finalize();

  FutureProfile profile;
  profile.tmin = 100;
  profile.tneed = 10;
  profile.bneedBytes = 4;
  profile.wcetDistribution = DiscreteDistribution({{10, 1.0}});
  profile.messageSizeDistribution = DiscreteDistribution({{4, 1.0}});
  EXPECT_THROW(IncrementalDesigner(sys, profile), std::runtime_error);
}

TEST(DesignerErrors, StrategyNames) {
  EXPECT_STREQ(toString(Strategy::AdHoc), "AH");
  EXPECT_STREQ(toString(Strategy::MappingHeuristic), "MH");
  EXPECT_STREQ(toString(Strategy::SimulatedAnnealing), "SA");
}

}  // namespace
}  // namespace ides
