// Tabu search: determinism, the incremental-evaluation bit-identity
// contract, registry integration against a direct call, stop-token
// discipline, and options validation.
#include "core/tabu_search.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/incremental_designer.h"
#include "core/initial_mapping.h"
#include "core/optimizer.h"
#include "tgen/benchmark_suite.h"
#include "test_helpers.h"

namespace ides {
namespace {

class TabuSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    suite_ = std::make_unique<Suite>(
        buildSuite(ides::testing::smallSuiteConfig(), 17));
    options_.tabu.iterations = 200;
    options_.tabu.candidates = 4;
    designer_ = std::make_unique<IncrementalDesigner>(
        suite_->system, suite_->profile, options_);
    PlatformState state = designer_->evaluator().baseline();
    const ScheduleOutcome im = initialMapping(suite_->system, state);
    ASSERT_TRUE(im.feasible);
    initial_ = im.mapping;
  }

  std::unique_ptr<Suite> suite_;
  DesignerOptions options_;
  std::unique_ptr<IncrementalDesigner> designer_;
  MappingSolution initial_;
};

TEST_F(TabuSearchTest, RunsAreDeterministicAndNeverWorseThanTheInitial) {
  const TabuResult first =
      runTabuSearch(designer_->evaluator(), initial_, options_.tabu);
  const TabuResult second =
      runTabuSearch(designer_->evaluator(), initial_, options_.tabu);

  EXPECT_TRUE(first.eval.feasible);
  // Best-so-far discipline: the result is at most the initial cost.
  const EvalResult start = designer_->evaluator().evaluate(initial_);
  EXPECT_LE(first.eval.cost, start.cost);

  EXPECT_EQ(first.solution, second.solution);
  EXPECT_EQ(first.eval.cost, second.eval.cost);
  EXPECT_EQ(first.evaluations, second.evaluations);
  EXPECT_EQ(first.proposals, second.proposals);
  EXPECT_EQ(first.accepted, second.accepted);
}

TEST_F(TabuSearchTest, IncrementalEvalIsAPurePerformanceSwitch) {
  TabuOptions incremental = options_.tabu;
  incremental.incrementalEval = true;
  TabuOptions stateless = options_.tabu;
  stateless.incrementalEval = false;
  const TabuResult fast =
      runTabuSearch(designer_->evaluator(), initial_, incremental);
  const TabuResult slow =
      runTabuSearch(designer_->evaluator(), initial_, stateless);
  EXPECT_EQ(fast.solution, slow.solution);
  EXPECT_EQ(fast.eval.cost, slow.eval.cost);
  EXPECT_EQ(fast.evaluations, slow.evaluations);
  EXPECT_EQ(fast.accepted, slow.accepted);
}

TEST_F(TabuSearchTest, RegistryRunIsBitIdenticalToTheDirectCall) {
  const TabuResult direct =
      runTabuSearch(designer_->evaluator(), initial_, options_.tabu);
  const DesignResult viaName = designer_->run("tabu");
  EXPECT_TRUE(viaName.feasible);
  EXPECT_EQ(viaName.mapping, direct.solution);
  EXPECT_EQ(viaName.objective, direct.eval.cost);
  EXPECT_EQ(viaName.evaluations, direct.evaluations + 2);  // IM + final
}

TEST_F(TabuSearchTest, PreFiredStopKeepsTheInitialSolution) {
  StopToken stop;
  stop.requestStop();
  TabuOptions options = options_.tabu;
  options.stop = &stop;
  const TabuResult stopped =
      runTabuSearch(designer_->evaluator(), initial_, options);
  EXPECT_TRUE(stopped.stopped);
  EXPECT_EQ(stopped.solution, initial_);
  EXPECT_EQ(stopped.evaluations, 1u);  // only the initial evaluation
  EXPECT_EQ(stopped.accepted, 0u);
}

TEST_F(TabuSearchTest, UnfiredStopTokenLeavesTheTrajectoryUntouched) {
  StopToken stop;  // never fires
  TabuOptions withToken = options_.tabu;
  withToken.stop = &stop;
  const TabuResult guarded =
      runTabuSearch(designer_->evaluator(), initial_, withToken);
  const TabuResult plain =
      runTabuSearch(designer_->evaluator(), initial_, options_.tabu);
  EXPECT_FALSE(guarded.stopped);
  EXPECT_EQ(guarded.solution, plain.solution);
  EXPECT_EQ(guarded.eval.cost, plain.eval.cost);
}

TEST_F(TabuSearchTest, InfeasibleInitialSolutionThrows) {
  // Start hints far past the deadline: legal, but never feasible.
  MappingSolution bad = initial_;
  for (std::size_t i = 0; i < bad.processCount(); ++i) {
    bad.setStartHint(ProcessId{static_cast<std::int32_t>(i)},
                     suite_->system.hyperperiod());
  }
  ASSERT_FALSE(designer_->evaluator().evaluate(bad).feasible);
  EXPECT_THROW(
      (void)runTabuSearch(designer_->evaluator(), bad, options_.tabu),
      std::invalid_argument);
}

TEST(TabuValidation, KnobsAreRangeChecked) {
  const auto rejects = [](void (*tweak)(TabuOptions&)) {
    TabuOptions options;
    tweak(options);
    EXPECT_THROW(validateOptions(options), std::invalid_argument);
  };
  rejects([](TabuOptions& o) { o.iterations = -1; });
  rejects([](TabuOptions& o) { o.candidates = 0; });
  rejects([](TabuOptions& o) { o.tenure = -1; });
  rejects([](TabuOptions& o) { o.probRemap = 1.5; });
  rejects([](TabuOptions& o) {
    o.probRemap = 0.7;
    o.probProcessHint = 0.7;  // sums past 1
  });
  // Tabu knobs are validated as part of the designer bag, too.
  DesignerOptions designer;
  designer.tabu.candidates = 0;
  EXPECT_THROW(validateOptions(designer), std::invalid_argument);
}

}  // namespace
}  // namespace ides
