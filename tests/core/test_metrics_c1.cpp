// C1 (slack size) metric tests, including the paper's slide-12
// illustration: identical total slack scores C1 = 0% when contiguous and
// 75% when fragmented.
#include <gtest/gtest.h>

#include "core/metrics.h"

namespace ides {
namespace {

DiscreteDistribution singleValue(std::int64_t v) {
  return DiscreteDistribution({{v, 1.0}});
}

FutureProfile profileWith(DiscreteDistribution wcet, DiscreteDistribution msg,
                          Time tmin = 50) {
  FutureProfile p;
  p.tmin = tmin;
  p.tneed = 1;  // irrelevant for C1 tests
  p.bneedBytes = 1;
  p.wcetDistribution = std::move(wcet);
  p.messageSizeDistribution = std::move(msg);
  return p;
}

SlackInfo slackWithNodeGaps(std::vector<std::vector<Interval>> gaps,
                            Time horizon = 1000) {
  SlackInfo s;
  s.horizon = horizon;
  s.busBytesPerTick = 1;
  for (auto& node : gaps) {
    s.nodeFree.emplace_back(std::move(node));
  }
  return s;
}

TEST(BestFit, EverythingFitsInOneBigContainer) {
  EXPECT_EQ(bestFitUnpacked({50, 30, 20}, {100}), 0);
}

TEST(BestFit, UnpackedWhenNoContainerLargeEnough) {
  EXPECT_EQ(bestFitUnpacked({50}, {40, 49}), 50);
}

TEST(BestFit, PrefersTightestContainer) {
  // Item 30 goes into the 30-container (best fit), leaving 100 for item 90.
  EXPECT_EQ(bestFitUnpacked({30, 90}, {100, 30}), 0);
}

TEST(BestFit, ReusesResidualCapacity) {
  EXPECT_EQ(bestFitUnpacked({60, 40}, {100}), 0);
  EXPECT_EQ(bestFitUnpacked({60, 41}, {100}), 41);
}

TEST(BestFit, EmptyInputs) {
  EXPECT_EQ(bestFitUnpacked({}, {10, 20}), 0);
  EXPECT_EQ(bestFitUnpacked({5, 5}, {}), 10);
}

TEST(LargestFutureDemand, FillsUpToTotalSlack) {
  const auto demand = largestFutureDemand(singleValue(100), 450);
  ASSERT_EQ(demand.size(), 4u);  // 4x100 <= 450 < 5x100
  for (auto v : demand) EXPECT_EQ(v, 100);
}

TEST(LargestFutureDemand, ZeroOrTinySlack) {
  EXPECT_TRUE(largestFutureDemand(singleValue(100), 0).empty());
  EXPECT_TRUE(largestFutureDemand(singleValue(100), 99).empty());
  EXPECT_EQ(largestFutureDemand(singleValue(100), 100).size(), 1u);
}

TEST(LargestFutureDemand, MixedDistributionStaysDescendingAndBounded) {
  const DiscreteDistribution d(
      {{20, 0.2}, {50, 0.4}, {100, 0.3}, {150, 0.1}});
  const auto demand = largestFutureDemand(d, 5000);
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    sum += demand[i];
    if (i > 0) {
      EXPECT_LE(demand[i], demand[i - 1]);
    }
  }
  EXPECT_LE(sum, 5000);
  EXPECT_GT(sum, 4800);  // small items should top it up close to the slack
}

// ---- the slide-12 scenario ------------------------------------------------

TEST(C1Metric, ContiguousSlackScoresZero) {
  // One 400-tick gap; future processes of 100 ticks each.
  const SlackInfo slack = slackWithNodeGaps({{{{100, 500}}}});
  const FutureProfile profile = profileWith(singleValue(100), singleValue(4));
  const DesignMetrics m = computeMetrics(slack, profile);
  EXPECT_DOUBLE_EQ(m.c1p, 0.0);
}

TEST(C1Metric, FragmentedSlackScoresSeventyFivePercent) {
  // Same 400 ticks of slack, but split 80+80+80+160: only the 160 fragment
  // can hold one 100-tick future process; 300 of 400 demand is unpacked.
  const SlackInfo slack = slackWithNodeGaps(
      {{{{0, 80}, {200, 280}, {400, 480}, {600, 760}}}});
  const FutureProfile profile = profileWith(singleValue(100), singleValue(4));
  const DesignMetrics m = computeMetrics(slack, profile);
  EXPECT_DOUBLE_EQ(m.c1p, 75.0);
}

TEST(C1Metric, SlackAcrossNodesIsPooled) {
  // Two nodes with 200-tick gaps each: demand 4x100, all packable.
  const SlackInfo slack = slackWithNodeGaps({{{{0, 200}}}, {{{0, 200}}}});
  const FutureProfile profile = profileWith(singleValue(100), singleValue(4));
  EXPECT_DOUBLE_EQ(computeMetrics(slack, profile).c1p, 0.0);
}

TEST(C1Metric, NoSlackAtAllScoresHundred) {
  const SlackInfo slack = slackWithNodeGaps({{}});
  const FutureProfile profile = profileWith(singleValue(100), singleValue(4));
  EXPECT_DOUBLE_EQ(computeMetrics(slack, profile).c1p, 100.0);
}

TEST(C1Metric, SlackTooSmallForAnyItemScoresZeroDemand) {
  // 50 ticks of slack cannot hold even one 100-tick process, so the
  // "largest future application" is empty and nothing is unpackable.
  const SlackInfo slack = slackWithNodeGaps({{{{0, 50}}}});
  const FutureProfile profile = profileWith(singleValue(100), singleValue(4));
  EXPECT_DOUBLE_EQ(computeMetrics(slack, profile).c1p, 0.0);
}

// ---- C1m: same criterion on the bus ----------------------------------------

SlackInfo slackWithBusChunks(std::vector<Time> freeTicks,
                             std::int64_t bytesPerTick = 1) {
  SlackInfo s;
  s.horizon = 1000;
  s.busBytesPerTick = bytesPerTick;
  s.nodeFree.emplace_back(std::vector<Interval>{{0, 1000}});
  Time t = 0;
  std::int64_t round = 0;
  for (Time f : freeTicks) {
    s.busChunks.push_back({0, round++, t, f});
    t += 100;
  }
  return s;
}

TEST(C1Metric, BusContiguousVersusFragmented) {
  const FutureProfile profile = profileWith(singleValue(10), singleValue(8));
  // One 32-byte chunk: 4 messages of 8 bytes fit.
  EXPECT_DOUBLE_EQ(computeMetrics(slackWithBusChunks({32}), profile).c1m,
                   0.0);
  // 8 chunks of 4 bytes: same 32 bytes, nothing fits.
  const auto m =
      computeMetrics(slackWithBusChunks({4, 4, 4, 4, 4, 4, 4, 4}), profile);
  EXPECT_DOUBLE_EQ(m.c1m, 100.0);
}

TEST(C1Metric, BusBytesScaleWithBandwidth) {
  const FutureProfile profile = profileWith(singleValue(10), singleValue(8));
  // 4 free ticks at 2 bytes/tick = 8 bytes: exactly one message.
  const auto m = computeMetrics(slackWithBusChunks({4}, 2), profile);
  EXPECT_DOUBLE_EQ(m.c1m, 0.0);
}

TEST(C1Metric, RejectsInvalidProfile) {
  const SlackInfo slack = slackWithNodeGaps({{{{0, 100}}}});
  FutureProfile bad;
  EXPECT_THROW(computeMetrics(slack, bad), std::invalid_argument);
}

}  // namespace
}  // namespace ides
