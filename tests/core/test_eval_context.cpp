// EvalContext: the delta-aware evaluation engine must be bit-identical to
// the stateless full-pass evaluator — for arbitrary move sequences (with
// rejected moves, i.e. stale checkpoints), and end to end through SA / PSA /
// MH with incremental evaluation toggled on and off.
#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/initial_mapping.h"
#include "core/mapping_heuristic.h"
#include "core/parallel_annealing.h"
#include "core/simulated_annealing.h"
#include "model/system_model.h"
#include "tgen/benchmark_suite.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace ides {
namespace {

/// A loaded instance whose current application spans several graphs, so
/// checkpoints actually have a prefix to reuse.
Suite multiGraphSuite(std::uint64_t seed = 7) {
  SuiteConfig cfg = ides::testing::smallSuiteConfig(60, 36);
  cfg.currentGraphSize = 10;  // 36 processes -> 4 current graphs
  return buildSuite(cfg, seed);
}

FutureProfile profileOf(const Suite& suite) { return suite.profile; }

class EvalContextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    suite_ = std::make_unique<Suite>(multiGraphSuite());
    frozen_ = std::make_unique<FrozenBase>(
        freezeExistingApplications(suite_->system));
    ASSERT_TRUE(frozen_->feasible);
    evaluator_ = std::make_unique<SolutionEvaluator>(
        suite_->system, frozen_->state, profileOf(*suite_), MetricWeights{});
    PlatformState state = frozen_->state;
    const ScheduleOutcome im = initialMapping(suite_->system, state);
    ASSERT_TRUE(im.feasible);
    initial_ = im.mapping;
    ASSERT_GE(evaluator_->currentGraphs().size(), 3u)
        << "instance too small to exercise checkpoints";
  }

  /// One random SA-style move; returns the hint describing it.
  MoveHint randomMove(MappingSolution& solution, Rng& rng) const {
    const SystemModel& sys = suite_->system;
    std::vector<ProcessId> procs;
    std::vector<MessageId> msgs;
    for (GraphId g : evaluator_->currentGraphs()) {
      const ProcessGraph& graph = sys.graph(g);
      procs.insert(procs.end(), graph.processes.begin(),
                   graph.processes.end());
      msgs.insert(msgs.end(), graph.messages.begin(), graph.messages.end());
    }
    MoveHint hint;
    const double dice = rng.uniform01();
    if (dice < 0.45) {
      const ProcessId p = rng.pick(procs);
      const auto allowed = sys.process(p).allowedNodes();
      solution.setNode(p, allowed[rng.index(allowed.size())]);
      solution.setStartHint(p, 0);
      hint.graph = sys.process(p).graph;
      hint.process = p;
    } else if (dice < 0.8 || msgs.empty()) {
      const ProcessId p = rng.pick(procs);
      const Process& proc = sys.process(p);
      const ProcessGraph& graph = sys.graph(proc.graph);
      const Time maxHint =
          std::max<Time>(0, graph.deadline - proc.wcetOn(solution.nodeOf(p)));
      solution.setStartHint(p,
                            maxHint > 0 ? rng.uniformInt(0, maxHint) : 0);
      hint.graph = proc.graph;
      hint.process = p;
    } else {
      const MessageId m = rng.pick(msgs);
      const ProcessGraph& graph = sys.graph(sys.message(m).graph);
      solution.setMessageHint(m, rng.uniformInt(0, graph.deadline - 1));
      hint.graph = graph.id;
      hint.message = m;
    }
    return hint;
  }

  static void expectBitIdentical(const EvalResult& a, const EvalResult& b) {
    EXPECT_EQ(a.placed, b.placed);
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.deadlineMisses, b.deadlineMisses);
    EXPECT_EQ(a.lateness, b.lateness);
    EXPECT_EQ(a.cost, b.cost);            // exact, not near
    EXPECT_EQ(a.objective, b.objective);  // exact, not near
    EXPECT_EQ(a.metrics.c1p, b.metrics.c1p);
    EXPECT_EQ(a.metrics.c1m, b.metrics.c1m);
    EXPECT_EQ(a.metrics.c2p, b.metrics.c2p);
    EXPECT_EQ(a.metrics.c2mBytes, b.metrics.c2mBytes);
  }

  std::unique_ptr<Suite> suite_;
  std::unique_ptr<FrozenBase> frozen_;
  std::unique_ptr<SolutionEvaluator> evaluator_;
  MappingSolution initial_;
};

TEST_F(EvalContextTest, FullPassMatchesSolutionEvaluator) {
  EvalContext ctx(*evaluator_);
  expectBitIdentical(ctx.evaluate(initial_), evaluator_->evaluate(initial_));
}

TEST_F(EvalContextTest, RandomizedMoveSequenceIsBitIdentical) {
  // Metropolis-style walk with rejections: the context's reference drifts
  // away from the accepted solution, which is exactly the stale-checkpoint
  // case the prefix verification must catch.
  EvalContext ctx(*evaluator_);
  Rng rng(99);
  MappingSolution current = initial_;
  ASSERT_TRUE(ctx.evaluate(current).feasible);

  for (int step = 0; step < 250; ++step) {
    MappingSolution trial = current;
    const MoveHint hint = randomMove(trial, rng);
    const EvalResult incremental = ctx.evaluate(trial, hint);
    const EvalResult reference = evaluator_->evaluate(trial);
    expectBitIdentical(incremental, reference);
    if (rng.chance(0.4)) current = std::move(trial);  // accept sometimes
  }
  // The delta engine must have actually skipped work, not silently done
  // full passes — including whole evaluations served from the cached
  // result when a hint move left the schedule entry-identical.
  EXPECT_GT(ctx.graphsReused(), 0u);
  EXPECT_GT(ctx.zeroDeltaServes(), 0u);
}

TEST_F(EvalContextTest, ZeroDeltaHintMoveIsServedByJournalReplay) {
  // Construct a provable zero-delta: pick a process whose arrival bound
  // shadows a start-hint bump on every instance (k*P + hint <= arrival),
  // so the scheduler never reads the changed hint. The context must serve
  // the cached result after re-scheduling only the restart graph — the
  // downstream graphs' occupancy is restored by journal replay.
  EvalContext ctx(*evaluator_);
  ASSERT_TRUE(ctx.evaluate(initial_).feasible);

  const SystemModel& sys = suite_->system;
  ProcessId victim;
  GraphId victimGraph;
  Time newHint = 0;
  for (GraphId g : evaluator_->currentGraphs()) {
    const ProcessGraph& graph = sys.graph(g);
    const std::int64_t instances = sys.instanceCount(g);
    for (const ProcessId p : graph.processes) {
      Time shadow = graph.deadline;  // min over instances of arrival - k*P
      for (std::int64_t k = 0; k < instances; ++k) {
        const Time arrival = ctx.arrivalBounds()[evaluator_->jobIndexOf(
            p, static_cast<std::int32_t>(k))];
        shadow = std::min(shadow, arrival - k * graph.period);
      }
      if (shadow > 0 && shadow != initial_.startHint(p)) {
        victim = p;
        victimGraph = g;
        newHint = shadow;
        break;
      }
    }
    if (victim.valid()) break;
  }
  ASSERT_TRUE(victim.valid())
      << "instance has no arrival-shadowed process to exercise the serve";

  MappingSolution trial = initial_;
  trial.setStartHint(victim, newHint);
  MoveHint hint;
  hint.graph = victimGraph;
  hint.process = victim;

  const std::size_t scheduledBefore = ctx.graphsScheduled();
  const std::size_t servesBefore = ctx.zeroDeltaServes();
  const EvalResult r = ctx.evaluate(trial, hint);
  expectBitIdentical(r, evaluator_->evaluate(trial));
  EXPECT_EQ(ctx.zeroDeltaServes(), servesBefore + 1);
  // Only the restart graph was re-scheduled; everything downstream was
  // replayed, not re-run.
  EXPECT_LE(ctx.graphsScheduled(), scheduledBefore + 1);

  // The restored state must keep serving exact results for follow-up moves
  // (the replay left checkpoints, fine marks and the metrics cache whole).
  Rng rng(17);
  MappingSolution current = trial;
  for (int step = 0; step < 40; ++step) {
    MappingSolution next = current;
    const MoveHint h = randomMove(next, rng);
    expectBitIdentical(ctx.evaluate(next, h), evaluator_->evaluate(next));
    if (rng.chance(0.5)) current = std::move(next);
  }
}

TEST_F(EvalContextTest, PoolResyncAfterPartialRewindIsBitIdentical) {
  // The speculative engine's substrate: several contexts share one
  // evaluator, each evaluates a rotating subset of trials against its own
  // (stale) reference, and re-aligns lazily — or via resync() — after a
  // move commits. Every context must stay bit-identical to the stateless
  // evaluator through randomized accept/reject sequences, including
  // resyncs that land mid-graph (partial rewind).
  for (const std::size_t workers : {std::size_t{2}, std::size_t{3},
                                    std::size_t{4}}) {
    EvalContextPool pool(*evaluator_, workers);
    ASSERT_EQ(pool.size(), workers);
    pool.resync(initial_, MoveHint{});  // invalid hint degrades to full pass

    Rng rng(4100 + workers);
    MappingSolution current = initial_;
    for (int step = 0; step < 120; ++step) {
      MappingSolution trial = current;
      const MoveHint hint = randomMove(trial, rng);
      // Rotate the evaluating context like the speculative pool does; the
      // others fall behind and catch up on their next evaluation.
      EvalContext& ctx = pool[static_cast<std::size_t>(step) % workers];
      const EvalResult inc = ctx.evaluate(trial, hint);
      expectBitIdentical(inc, evaluator_->evaluate(trial));
      if (rng.chance(0.5)) {
        current = std::move(trial);
        // Sometimes re-align the whole pool eagerly (the hint describes
        // the committed move, so unchanged-prefix contexts rewind only the
        // affected suffix); otherwise leave the catch-up lazy.
        if (rng.chance(0.3)) pool.resync(current, hint);
      }
    }
    // After the walk every context — however stale — must converge on the
    // committed solution with an exact result.
    const EvalResult reference = evaluator_->evaluate(current);
    for (std::size_t w = 0; w < workers; ++w) {
      expectBitIdentical(pool[w].evaluate(current), reference);
    }
  }
}

TEST_F(EvalContextTest, OutputsMatchFullEvaluator) {
  EvalContext ctx(*evaluator_);
  ScheduleOutcome co, eo;
  SlackInfo cs, es;
  const EvalResult cr = ctx.evaluate(initial_, &co, &cs);
  const EvalResult er = evaluator_->evaluate(initial_, &eo, &es);
  expectBitIdentical(cr, er);
  ASSERT_EQ(co.schedule.processEntryCount(), eo.schedule.processEntryCount());
  for (const ScheduledProcess& sp : eo.schedule.processes()) {
    const ScheduledProcess& other =
        co.schedule.processEntry(sp.pid, sp.instance);
    EXPECT_EQ(other.node, sp.node);
    EXPECT_EQ(other.start, sp.start);
    EXPECT_EQ(other.end, sp.end);
  }
  EXPECT_EQ(cs.nodeFree.size(), es.nodeFree.size());
  for (std::size_t n = 0; n < es.nodeFree.size(); ++n) {
    EXPECT_EQ(cs.nodeFree[n], es.nodeFree[n]);
  }
  // Re-reading the same solution serves the cached state.
  const std::size_t scheduledBefore = ctx.graphsScheduled();
  ScheduleOutcome again;
  expectBitIdentical(ctx.evaluate(initial_, &again, nullptr), er);
  EXPECT_EQ(ctx.graphsScheduled(), scheduledBefore);
}

TEST_F(EvalContextTest, StaleHintIsCorrectedNotTrusted) {
  // Claim a move touched the LAST graph while actually changing the FIRST:
  // the context must detect the earlier difference and restart there.
  EvalContext ctx(*evaluator_);
  ASSERT_TRUE(ctx.evaluate(initial_).feasible);

  const GraphId firstGraph = evaluator_->currentGraphs().front();
  const GraphId lastGraph = evaluator_->currentGraphs().back();
  MappingSolution trial = initial_;
  const ProcessId victim = suite_->system.graph(firstGraph).processes.front();
  trial.setStartHint(victim, trial.startHint(victim) + 3);

  MoveHint lyingHint;
  lyingHint.graph = lastGraph;
  expectBitIdentical(ctx.evaluate(trial, lyingHint),
                     evaluator_->evaluate(trial));
}

TEST_F(EvalContextTest, SaIncrementalMatchesFullPass) {
  SaOptions opts;
  opts.seed = 5;
  opts.iterations = 1200;
  opts.incrementalEval = true;
  const SaResult fast = runSimulatedAnnealing(*evaluator_, initial_, opts);
  opts.incrementalEval = false;
  const SaResult slow = runSimulatedAnnealing(*evaluator_, initial_, opts);
  EXPECT_EQ(fast.eval.cost, slow.eval.cost);
  EXPECT_EQ(fast.evaluations, slow.evaluations);
  EXPECT_EQ(fast.accepted, slow.accepted);
  EXPECT_TRUE(fast.solution == slow.solution);
  // The zero-delta filter replays proposals without evaluating — but the
  // evaluation/acceptance counters above must stay invariant to it, and
  // full-pass mode (no fingerprint) never skips.
  EXPECT_EQ(fast.proposals, slow.proposals);
  EXPECT_GT(fast.zeroDeltaSkips, 0u);
  EXPECT_EQ(slow.zeroDeltaSkips, 0u);
}

TEST_F(EvalContextTest, PsaIncrementalMatchesFullPass) {
  ParallelSaOptions opts;
  opts.base.seed = 5;
  opts.base.iterations = 400;
  opts.restarts = 3;
  opts.threads = 2;
  opts.base.incrementalEval = true;
  const ParallelSaResult fast =
      runParallelAnnealing(*evaluator_, initial_, opts);
  opts.base.incrementalEval = false;
  const ParallelSaResult slow =
      runParallelAnnealing(*evaluator_, initial_, opts);
  EXPECT_EQ(fast.eval.cost, slow.eval.cost);
  EXPECT_EQ(fast.bestChain, slow.bestChain);
  EXPECT_EQ(fast.chainCosts, slow.chainCosts);
  EXPECT_TRUE(fast.solution == slow.solution);
}

TEST_F(EvalContextTest, MhIncrementalMatchesFullPass) {
  MhOptions opts;
  opts.maxIterations = 64;
  opts.incrementalEval = true;
  const MhResult fast = runMappingHeuristic(*evaluator_, initial_, opts);
  opts.incrementalEval = false;
  const MhResult slow = runMappingHeuristic(*evaluator_, initial_, opts);
  EXPECT_EQ(fast.eval.cost, slow.eval.cost);
  EXPECT_EQ(fast.evaluations, slow.evaluations);
  EXPECT_EQ(fast.iterations, slow.iterations);
  EXPECT_TRUE(fast.solution == slow.solution);
}

}  // namespace
}  // namespace ides
