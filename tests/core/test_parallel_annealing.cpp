#include "core/parallel_annealing.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/initial_mapping.h"
#include "core/simulated_annealing.h"
#include "model/system_model.h"
#include "tgen/benchmark_suite.h"
#include "test_helpers.h"

namespace ides {
namespace {

class ParallelSaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    suite_ = std::make_unique<Suite>(
        buildSuite(ides::testing::smallSuiteConfig(), 11));
    frozen_ = std::make_unique<FrozenBase>(
        freezeExistingApplications(suite_->system));
    ASSERT_TRUE(frozen_->feasible);
    eval_ = std::make_unique<SolutionEvaluator>(
        suite_->system, frozen_->state, suite_->profile, MetricWeights{});
    PlatformState state = frozen_->state;
    im_ = initialMapping(suite_->system, state);
    ASSERT_TRUE(im_.feasible);
  }

  ParallelSaOptions fastOptions(std::uint64_t seed = 1, int restarts = 4,
                                int threads = 0) const {
    ParallelSaOptions opts;
    opts.base.seed = seed;
    opts.base.iterations = 800;
    opts.restarts = restarts;
    opts.threads = threads;
    return opts;
  }

  std::unique_ptr<Suite> suite_;
  std::unique_ptr<FrozenBase> frozen_;
  std::unique_ptr<SolutionEvaluator> eval_;
  ScheduleOutcome im_;
};

TEST_F(ParallelSaTest, IncumbentIsFeasibleAndReproducible) {
  const ParallelSaResult r =
      runParallelAnnealing(*eval_, im_.mapping, fastOptions());
  EXPECT_TRUE(r.eval.feasible);
  EXPECT_GE(r.bestChain, 0);
  EXPECT_LT(r.bestChain, 4);
  // Re-evaluating the returned incumbent reproduces the reported cost and
  // stays feasible.
  const EvalResult again = eval_->evaluate(r.solution);
  EXPECT_TRUE(again.feasible);
  EXPECT_DOUBLE_EQ(again.cost, r.eval.cost);
}

TEST_F(ParallelSaTest, DeterministicForFixedSeedsAcrossThreadCounts) {
  const ParallelSaResult a =
      runParallelAnnealing(*eval_, im_.mapping, fastOptions(7, 5, 1));
  const ParallelSaResult b =
      runParallelAnnealing(*eval_, im_.mapping, fastOptions(7, 5, 4));
  const ParallelSaResult c =
      runParallelAnnealing(*eval_, im_.mapping, fastOptions(7, 5, 4));
  // Same ensemble seed: identical chains, winner, and incumbent — no matter
  // how many workers ran them.
  EXPECT_EQ(a.chainCosts, b.chainCosts);
  EXPECT_EQ(b.chainCosts, c.chainCosts);
  EXPECT_EQ(a.bestChain, b.bestChain);
  EXPECT_DOUBLE_EQ(a.eval.cost, b.eval.cost);
  EXPECT_TRUE(a.solution == b.solution);
  EXPECT_TRUE(b.solution == c.solution);
}

TEST_F(ParallelSaTest, DistinctSeedsProduceDistinctChains) {
  const ParallelSaResult r =
      runParallelAnnealing(*eval_, im_.mapping, fastOptions(3, 4));
  ASSERT_EQ(r.chainCosts.size(), 4u);
  // Chain seeds must differ (chain 0 keeps the base seed).
  EXPECT_EQ(parallelSaChainSeed(3, 0), 3u);
  EXPECT_NE(parallelSaChainSeed(3, 1), parallelSaChainSeed(3, 2));
  EXPECT_NE(parallelSaChainSeed(3, 1), 3u);
}

TEST_F(ParallelSaTest, BestOfKNeverWorseThanSingleChain) {
  const ParallelSaOptions opts = fastOptions(5, 4);
  const SaResult single =
      runSimulatedAnnealing(*eval_, im_.mapping, opts.base);
  const ParallelSaResult multi =
      runParallelAnnealing(*eval_, im_.mapping, opts);
  // Chain 0 replays the single chain exactly, so best-of-K can only match
  // or beat it.
  EXPECT_DOUBLE_EQ(multi.chainCosts[0], single.eval.cost);
  EXPECT_LE(multi.eval.cost, single.eval.cost + 1e-12);
}

TEST_F(ParallelSaTest, CountersAggregateAcrossChains) {
  const SaOptions base = fastOptions(1).base;
  const SaResult single = runSimulatedAnnealing(*eval_, im_.mapping, base);
  const ParallelSaResult multi =
      runParallelAnnealing(*eval_, im_.mapping, fastOptions(1, 3));
  // Chain 0 == the single run; the other two chains evaluate a comparable
  // amount, so totals land well above a single chain.
  EXPECT_GE(multi.evaluations, 3 * (single.evaluations / 2));
  EXPECT_GT(multi.evaluations, single.evaluations);
  EXPECT_GT(multi.seconds, 0.0);
}

TEST_F(ParallelSaTest, PerChainIterationsOverridesBase) {
  ParallelSaOptions opts = fastOptions(9, 2);
  opts.base.iterations = 50;
  opts.perChainIterations = 400;
  const ParallelSaResult r = runParallelAnnealing(*eval_, im_.mapping, opts);
  // 2 chains × (1 initial + up to 400 move evaluations); far more than the
  // 50-iteration base would allow.
  EXPECT_GT(r.evaluations, 2u * 50u);
  EXPECT_LE(r.evaluations, 2u * 401u);
}

TEST_F(ParallelSaTest, SpeculativeWorkersDoNotChangeAnyChain) {
  // Two-level parallelism: chains x per-chain speculative workers. The
  // speculation is bit-identical to the sequential chain, so every split of
  // the thread budget — including the auto split (0) that hands leftover
  // threads to speculation — must reproduce the same ensemble.
  ParallelSaOptions plain = fastOptions(13, 2, 2);
  plain.speculativeWorkers = 1;
  ParallelSaOptions spec = fastOptions(13, 2, 2);
  spec.speculativeWorkers = 3;
  ParallelSaOptions autoSplit = fastOptions(13, 2, 6);  // 6 threads, 2 chains
  autoSplit.speculativeWorkers = 0;                     // -> 3 workers each
  autoSplit.base.speculation.acceptanceThreshold = 2.0;  // force batches
  spec.base.speculation.acceptanceThreshold = 2.0;
  const ParallelSaResult a = runParallelAnnealing(*eval_, im_.mapping, plain);
  const ParallelSaResult b = runParallelAnnealing(*eval_, im_.mapping, spec);
  const ParallelSaResult c =
      runParallelAnnealing(*eval_, im_.mapping, autoSplit);
  EXPECT_EQ(a.chainCosts, b.chainCosts);
  EXPECT_EQ(a.chainCosts, c.chainCosts);
  EXPECT_EQ(a.bestChain, b.bestChain);
  EXPECT_TRUE(a.solution == b.solution);
  EXPECT_TRUE(a.solution == c.solution);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.accepted, c.accepted);
}

TEST_F(ParallelSaTest, RejectsBadOptions) {
  ParallelSaOptions opts = fastOptions();
  opts.restarts = 0;
  EXPECT_THROW(runParallelAnnealing(*eval_, im_.mapping, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace ides
