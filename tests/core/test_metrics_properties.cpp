// Parameterized property sweeps over the design metrics.
#include <gtest/gtest.h>

#include <random>

#include "core/metrics.h"

namespace ides {
namespace {

FutureProfile paperishProfile(Time tmin) {
  FutureProfile p;
  p.tmin = tmin;
  p.tneed = 100;
  p.bneedBytes = 50;
  p.wcetDistribution =
      DiscreteDistribution({{20, 0.2}, {50, 0.4}, {100, 0.3}, {150, 0.1}});
  p.messageSizeDistribution =
      DiscreteDistribution({{2, 0.2}, {4, 0.4}, {6, 0.3}, {8, 0.1}});
  return p;
}

SlackInfo randomSlack(std::mt19937_64& rng, Time horizon, int fragments) {
  SlackInfo s;
  s.horizon = horizon;
  s.busBytesPerTick = 1;
  IntervalSet free;
  for (int i = 0; i < fragments; ++i) {
    const Time a = static_cast<Time>(rng() % static_cast<std::uint64_t>(
                                               horizon));
    const Time len = 10 + static_cast<Time>(rng() % 200);
    free.add({a, std::min(a + len, horizon)});
  }
  s.nodeFree.push_back(free);
  Time t = 0;
  std::int64_t round = 0;
  while (t < horizon) {
    s.busChunks.push_back({0, round++, t, static_cast<Time>(rng() % 20)});
    t += 100;
  }
  return s;
}

class MetricsProperty : public ::testing::TestWithParam<int> {};

TEST_P(MetricsProperty, C1IsAPercentage) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  const SlackInfo slack = randomSlack(rng, 2000, 12);
  const DesignMetrics m = computeMetrics(slack, paperishProfile(500));
  EXPECT_GE(m.c1p, 0.0);
  EXPECT_LE(m.c1p, 100.0);
  EXPECT_GE(m.c1m, 0.0);
  EXPECT_LE(m.c1m, 100.0);
}

TEST_P(MetricsProperty, C2BoundedByTminAndCapacity) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const SlackInfo slack = randomSlack(rng, 2000, 12);
  const Time tmin = 500;
  const DesignMetrics m = computeMetrics(slack, paperishProfile(tmin));
  // One node: C2P is that node's min window slack, at most tmin.
  EXPECT_GE(m.c2p, 0);
  EXPECT_LE(m.c2p, tmin);
  // And at most the node's total slack.
  EXPECT_LE(m.c2p, slack.nodeFree[0].totalLength());
}

TEST_P(MetricsProperty, MergingFragmentsNeverWorsensC1) {
  // Coalescing two adjacent fragments into one cannot make packing worse.
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  SlackInfo fragmented;
  fragmented.horizon = 2000;
  fragmented.busBytesPerTick = 1;
  IntervalSet gaps;
  Time t = 50;
  for (int i = 0; i < 8; ++i) {
    const Time len = 30 + static_cast<Time>(rng() % 120);
    gaps.add({t, t + len});
    t += len + 40;  // 40-tick busy separators
  }
  fragmented.nodeFree.push_back(gaps);

  SlackInfo merged = fragmented;
  // Merge all gaps into one contiguous block of the same total length.
  const Time total = gaps.totalLength();
  merged.nodeFree[0] = IntervalSet({{0, total}});

  const FutureProfile profile = paperishProfile(500);
  const double cFrag = computeMetrics(fragmented, profile).c1p;
  const double cMerged = computeMetrics(merged, profile).c1p;
  EXPECT_LE(cMerged, cFrag + 1e-9);
}

TEST_P(MetricsProperty, AddingSlackNeverWorsensAnyMetric) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  const SlackInfo base = randomSlack(rng, 2000, 10);
  SlackInfo more = base;
  // Add one extra free interval where there was none.
  IntervalSet extended = more.nodeFree[0];
  extended.add({0, 2000});  // now fully free
  more.nodeFree[0] = extended;

  const FutureProfile profile = paperishProfile(500);
  const DesignMetrics mBase = computeMetrics(base, profile);
  const DesignMetrics mMore = computeMetrics(more, profile);
  EXPECT_LE(mMore.c1p, mBase.c1p + 1e-9);
  EXPECT_GE(mMore.c2p, mBase.c2p);
  const MetricWeights w;
  EXPECT_LE(objectiveValue(mMore, profile, w),
            objectiveValue(mBase, profile, w) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace ides
