#include "core/mapping_heuristic.h"

#include <gtest/gtest.h>

#include "core/initial_mapping.h"
#include "model/system_model.h"
#include "tgen/benchmark_suite.h"
#include "test_helpers.h"

namespace ides {
namespace {

class MhTest : public ::testing::Test {
 protected:
  void SetUp() override {
    suite_ = std::make_unique<Suite>(
        buildSuite(ides::testing::smallSuiteConfig(), 7));
    frozen_ = std::make_unique<FrozenBase>(
        freezeExistingApplications(suite_->system));
    ASSERT_TRUE(frozen_->feasible);
    eval_ = std::make_unique<SolutionEvaluator>(
        suite_->system, frozen_->state, suite_->profile, MetricWeights{});
    PlatformState state = frozen_->state;
    im_ = initialMapping(suite_->system, state);
    ASSERT_TRUE(im_.feasible);
  }

  std::unique_ptr<Suite> suite_;
  std::unique_ptr<FrozenBase> frozen_;
  std::unique_ptr<SolutionEvaluator> eval_;
  ScheduleOutcome im_;
};

TEST_F(MhTest, NeverWorseThanInitialMapping) {
  const double initialCost = eval_->evaluate(im_.mapping).cost;
  const MhResult mh = runMappingHeuristic(*eval_, im_.mapping);
  EXPECT_TRUE(mh.eval.feasible);
  EXPECT_LE(mh.eval.cost, initialCost + 1e-9);
}

TEST_F(MhTest, ImprovesTheAdHocSolutionOnThisInstance) {
  const double initialCost = eval_->evaluate(im_.mapping).cost;
  const MhResult mh = runMappingHeuristic(*eval_, im_.mapping);
  // The suite is tuned so AH leaves improvable slack structure; MH should
  // find at least one improving transformation.
  EXPECT_GT(mh.iterations, 0);
  EXPECT_LT(mh.eval.cost, initialCost);
}

TEST_F(MhTest, ResultIsDeterministic) {
  const MhResult a = runMappingHeuristic(*eval_, im_.mapping);
  const MhResult b = runMappingHeuristic(*eval_, im_.mapping);
  EXPECT_DOUBLE_EQ(a.eval.cost, b.eval.cost);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.solution, b.solution);
}

TEST_F(MhTest, FinalSolutionSchedulesFeasibly) {
  const MhResult mh = runMappingHeuristic(*eval_, im_.mapping);
  ScheduleOutcome outcome;
  const EvalResult r = eval_->evaluate(mh.solution, &outcome, nullptr);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(outcome.deadlineMisses, 0);
}

TEST_F(MhTest, IterationBudgetIsRespected) {
  MhOptions opts;
  opts.maxIterations = 2;
  const MhResult mh = runMappingHeuristic(*eval_, im_.mapping, opts);
  EXPECT_LE(mh.iterations, 2);
}

TEST_F(MhTest, TighterCandidateBudgetStillImproves) {
  MhOptions opts;
  opts.candidateProcesses = 3;
  opts.gapsPerNode = 1;
  opts.candidateMessages = 1;
  const double initialCost = eval_->evaluate(im_.mapping).cost;
  const MhResult mh = runMappingHeuristic(*eval_, im_.mapping, opts);
  EXPECT_LE(mh.eval.cost, initialCost + 1e-9);
}

TEST(MhErrors, ThrowsOnInfeasibleInitialSolution) {
  ides::testing::ScenarioIds ids;
  const SystemModel sys = ides::testing::makeIncrementalScenario(&ids);
  const FrozenBase frozen = freezeExistingApplications(sys);
  FutureProfile profile;
  profile.tmin = 100;
  profile.tneed = 30;
  profile.bneedBytes = 8;
  profile.wcetDistribution = DiscreteDistribution({{10, 1.0}});
  profile.messageSizeDistribution = DiscreteDistribution({{4, 1.0}});
  const SolutionEvaluator eval(sys, frozen.state, profile, MetricWeights{});
  MappingSolution bad(sys);
  bad.setNode(ids.diamond.p1, NodeId{0});
  bad.setNode(ids.diamond.p2, NodeId{1});
  bad.setNode(ids.diamond.p3, NodeId{0});
  bad.setNode(ids.diamond.p4, NodeId{0});
  bad.setStartHint(ids.diamond.p4, 195);  // forces a deadline miss
  EXPECT_THROW(runMappingHeuristic(eval, bad), std::invalid_argument);
}

}  // namespace
}  // namespace ides
