// Determinism suite for the speculative engine: for every tested
// configuration of workers × depth × threshold, the speculative chain must
// be bit-identical to the sequential chain — same final solution, same
// incumbent cost, same acceptance count, same per-iteration cost trace.
// The sequential reference is runSimulatedAnnealing's own loop (a separate
// implementation from the engine's replay), so a divergence in either
// shows up as a diff here.
#include "core/speculative_eval.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/initial_mapping.h"
#include "core/simulated_annealing.h"
#include "model/system_model.h"
#include "tgen/benchmark_suite.h"
#include "test_helpers.h"

namespace ides {
namespace {

struct Instance {
  Suite suite;
  FrozenBase frozen;
  SolutionEvaluator evaluator;
  ScheduleOutcome im;

  explicit Instance(const SuiteConfig& cfg, std::uint64_t seed)
      : suite(buildSuite(cfg, seed)),
        frozen(freezeExistingApplications(suite.system)),
        evaluator(suite.system, frozen.state, suite.profile,
                  MetricWeights{}) {
    PlatformState state = frozen.state;
    im = initialMapping(suite.system, state);
  }
};

/// The two generated presets the suite sweeps: the loaded 4-node instance
/// every strategy test uses, and a smaller 3-node one with a different
/// shape (distinct graph count and message density).
std::unique_ptr<Instance> makePreset(int preset) {
  if (preset == 0) {
    return std::make_unique<Instance>(ides::testing::smallSuiteConfig(), 11);
  }
  SuiteConfig cfg = ides::testing::smallSuiteConfig(36, 12);
  cfg.nodeCount = 3;
  return std::make_unique<Instance>(cfg, 23);
}

SaOptions baseOptions(std::uint64_t seed = 1, int iterations = 900) {
  SaOptions opts;
  opts.seed = seed;
  opts.iterations = iterations;
  opts.recordCostTrace = true;
  return opts;
}

void expectIdentical(const SaResult& a, const SaResult& b,
                     const std::string& what) {
  EXPECT_EQ(a.solution, b.solution) << what;
  EXPECT_DOUBLE_EQ(a.eval.cost, b.eval.cost) << what;
  EXPECT_EQ(a.eval.feasible, b.eval.feasible) << what;
  EXPECT_EQ(a.evaluations, b.evaluations) << what;
  EXPECT_EQ(a.accepted, b.accepted) << what;
  // Pure functions of the trajectory, so invariant across engines — the
  // zero-delta filter must skip exactly the same proposals everywhere.
  EXPECT_EQ(a.proposals, b.proposals) << what;
  EXPECT_EQ(a.zeroDeltaSkips, b.zeroDeltaSkips) << what;
  ASSERT_EQ(a.costTrace.size(), b.costTrace.size()) << what;
  for (std::size_t i = 0; i < a.costTrace.size(); ++i) {
    ASSERT_EQ(a.costTrace[i], b.costTrace[i])
        << what << " diverges at iteration " << i;
  }
}

TEST(SpeculativeSaTest, BitIdenticalAcrossPresetsWorkersAndDepths) {
  for (int preset = 0; preset < 2; ++preset) {
    const auto inst = makePreset(preset);
    ASSERT_TRUE(inst->frozen.feasible);
    ASSERT_TRUE(inst->im.feasible);
    const SaResult reference = runSimulatedAnnealing(
        inst->evaluator, inst->im.mapping, baseOptions());
    // One proposal per iteration; on these loaded presets the
    // gap-fingerprint filter must have replayed some of them for free.
    EXPECT_EQ(reference.proposals,
              static_cast<std::size_t>(baseOptions().iterations));
    EXPECT_GT(reference.zeroDeltaSkips, 0u);
    for (const int workers : {2, 3, 4}) {
      for (const int depth : {2, 8}) {
        SaOptions opts = baseOptions();
        opts.speculation.workers = workers;
        opts.speculation.maxDepth = depth;
        const SaResult spec =
            runSimulatedAnnealing(inst->evaluator, inst->im.mapping, opts);
        expectIdentical(reference, spec,
                        "preset " + std::to_string(preset) + " workers " +
                            std::to_string(workers) + " depth " +
                            std::to_string(depth));
      }
    }
  }
}

TEST(SpeculativeSaTest, ThresholdExtremesDoNotChangeTheTrajectory) {
  const auto inst = makePreset(0);
  ASSERT_TRUE(inst->im.feasible);
  const SaResult reference =
      runSimulatedAnnealing(inst->evaluator, inst->im.mapping, baseOptions());

  // threshold 0: never speculate (pure sequential stepping on the pool).
  SaOptions never = baseOptions();
  never.speculation.workers = 4;
  never.speculation.acceptanceThreshold = 0.0;
  const SaResult neverR =
      runSimulatedAnnealing(inst->evaluator, inst->im.mapping, never);
  EXPECT_EQ(neverR.speculativeBatches, 0u);
  expectIdentical(reference, neverR, "threshold 0");

  // threshold 2: every iteration runs inside a speculation batch (the rate
  // can never reach 2), exercising rejected-batch resync throughout.
  SaOptions always = baseOptions();
  always.speculation.workers = 4;
  always.speculation.acceptanceThreshold = 2.0;
  const SaResult alwaysR =
      runSimulatedAnnealing(inst->evaluator, inst->im.mapping, always);
  EXPECT_GT(alwaysR.speculativeBatches, 0u);
  expectIdentical(reference, alwaysR, "threshold 2");
}

TEST(SpeculativeSaTest, MidRunAcceptanceTransitionEngagesSpeculation) {
  const auto inst = makePreset(0);
  ASSERT_TRUE(inst->im.feasible);
  // Hot start (acceptance near 1 -> sequential stepping) cooling to a
  // glacial final temperature (acceptance near 0 -> speculation), so the
  // run crosses the threshold mid-chain in the direction SA actually does.
  SaOptions opts = baseOptions(7, 1200);
  opts.initialTempFactor = 1.0;
  opts.finalTemp = 1e-6;
  const SaResult reference =
      runSimulatedAnnealing(inst->evaluator, inst->im.mapping, opts);

  SaOptions spec = opts;
  spec.speculation.workers = 4;
  const SaResult specR =
      runSimulatedAnnealing(inst->evaluator, inst->im.mapping, spec);
  // The run must actually have speculated — and still match bit for bit.
  EXPECT_GT(specR.speculativeBatches, 0u);
  expectIdentical(reference, specR, "mid-run transition");
}

TEST(SpeculativeSaTest, AcceptedBatchesRewindAndResync) {
  const auto inst = makePreset(0);
  ASSERT_TRUE(inst->im.feasible);
  // Force speculation from iteration 0 at a temperature where acceptances
  // still happen regularly: every acceptance lands mid-batch, discarding
  // the speculated tail and resyncing the worker contexts.
  SaOptions opts = baseOptions(3, 700);
  opts.initialTempFactor = 0.05;
  opts.speculation.workers = 3;
  opts.speculation.acceptanceThreshold = 2.0;
  const SaResult specR =
      runSimulatedAnnealing(inst->evaluator, inst->im.mapping, opts);
  EXPECT_GT(specR.accepted, 0u);
  EXPECT_GT(specR.discardedEvaluations, 0u);

  opts.speculation.workers = 1;
  const SaResult reference =
      runSimulatedAnnealing(inst->evaluator, inst->im.mapping, opts);
  expectIdentical(reference, specR, "accepted batches");
}

TEST(SpeculativeSaTest, FullPassModeIsAlsoIdentical) {
  const auto inst = makePreset(0);
  ASSERT_TRUE(inst->im.feasible);
  SaOptions opts = baseOptions(5, 400);
  opts.incrementalEval = false;
  const SaResult reference =
      runSimulatedAnnealing(inst->evaluator, inst->im.mapping, opts);
  // The filter needs the incremental context's fingerprint; full-pass mode
  // must never skip.
  EXPECT_EQ(reference.zeroDeltaSkips, 0u);
  opts.speculation.workers = 4;
  opts.speculation.acceptanceThreshold = 2.0;
  const SaResult specR =
      runSimulatedAnnealing(inst->evaluator, inst->im.mapping, opts);
  expectIdentical(reference, specR, "full-pass mode");
}

TEST(SpeculativeSaTest, EngineEntryPointMatchesRouting) {
  const auto inst = makePreset(0);
  ASSERT_TRUE(inst->im.feasible);
  SaOptions opts = baseOptions(9, 300);
  opts.speculation.workers = 2;
  const SaResult viaRouting =
      runSimulatedAnnealing(inst->evaluator, inst->im.mapping, opts);
  const SaResult direct =
      runSpeculativeAnnealing(inst->evaluator, inst->im.mapping, opts);
  expectIdentical(viaRouting, direct, "routing");
}

TEST(SpeculativeSaTest, ThrowsOnInfeasibleInitial) {
  const auto inst = makePreset(0);
  ASSERT_TRUE(inst->im.feasible);
  MappingSolution bad = inst->im.mapping;
  const GraphId g = inst->evaluator.currentGraphs().front();
  const ProcessGraph& graph = inst->suite.system.graph(g);
  bad.setStartHint(graph.processes.front(), graph.deadline - 1);
  if (inst->evaluator.evaluate(bad).feasible) {
    GTEST_SKIP() << "hint did not break feasibility on this instance";
  }
  SaOptions opts = baseOptions();
  opts.speculation.workers = 4;
  EXPECT_THROW(runSimulatedAnnealing(inst->evaluator, bad, opts),
               std::invalid_argument);
}

TEST(SpeculativeSaTest, ContextPoolResyncAlignsEveryContext) {
  const auto inst = makePreset(0);
  ASSERT_TRUE(inst->im.feasible);
  EvalContextPool pool(inst->evaluator, 3);
  ASSERT_EQ(pool.size(), 3u);

  // Drift every context to a different solution, then resync to one move.
  const std::vector<GraphId>& graphs = inst->evaluator.currentGraphs();
  for (std::size_t w = 0; w < pool.size(); ++w) {
    MappingSolution drift = inst->im.mapping;
    const ProcessId p = inst->suite.system
                            .graph(graphs[w % graphs.size()])
                            .processes.front();
    drift.setStartHint(p, static_cast<Time>(1 + w));
    MoveHint hint;
    hint.graph = graphs[w % graphs.size()];
    hint.process = p;
    pool[w].evaluate(drift, hint);
  }

  MappingSolution committed = inst->im.mapping;
  const ProcessId p = inst->suite.system.graph(graphs.back())
                          .processes.back();
  committed.setStartHint(p, 5);
  MoveHint hint;
  hint.graph = graphs.back();
  hint.process = p;
  const EvalResult want = inst->evaluator.evaluate(committed);
  pool.resync(committed, hint);

  // After resync every context serves the committed solution from its
  // checkpoints: re-reading it is pure reuse (no graph re-scheduled) and
  // bit-identical to the full pass.
  for (std::size_t w = 0; w < pool.size(); ++w) {
    const std::size_t before = pool[w].graphsScheduled();
    const EvalResult again = pool[w].evaluate(committed, nullptr, nullptr);
    EXPECT_EQ(pool[w].graphsScheduled(), before) << "context " << w;
    EXPECT_DOUBLE_EQ(again.cost, want.cost) << "context " << w;
    EXPECT_EQ(again.feasible, want.feasible) << "context " << w;
  }
}

}  // namespace
}  // namespace ides
