// Modification-aware design (the CODES 2001 extension).
#include "core/modification.h"

#include <gtest/gtest.h>

#include "core/incremental_designer.h"
#include "model/system_model.h"
#include "sched/validate.h"
#include "tgen/benchmark_suite.h"
#include "test_helpers.h"

namespace ides {
namespace {

using ides::testing::wcets;

std::vector<std::int64_t> uniformCosts(const SystemModel& sys,
                                       std::int64_t cost) {
  return std::vector<std::int64_t>(sys.applications().size(), cost);
}

FutureProfile tinyProfile(Time tmin, Time tneed, std::int64_t bneed) {
  FutureProfile p;
  p.tmin = tmin;
  p.tneed = tneed;
  p.bneedBytes = bneed;
  p.wcetDistribution = DiscreteDistribution({{10, 0.5}, {20, 0.5}});
  p.messageSizeDistribution = DiscreteDistribution({{2, 0.5}, {4, 0.5}});
  return p;
}

TEST(Modification, CostVectorArityIsChecked) {
  ides::testing::ScenarioIds ids;
  const SystemModel sys = ides::testing::makeIncrementalScenario(&ids);
  EXPECT_THROW(designWithModifications(sys, tinyProfile(100, 30, 8), {1, 2, 3}),
               std::invalid_argument);
}

TEST(Modification, NoModificationNeededLeavesOmegaEmpty) {
  // Lightly loaded scenario: the frozen design is already near-optimal and
  // any modification costs more than it gains.
  ides::testing::ScenarioIds ids;
  const SystemModel sys = ides::testing::makeIncrementalScenario(&ids);
  ModificationOptions opts;
  opts.costWeight = 1000.0;  // modifications are prohibitively expensive
  const ModificationResult r = designWithModifications(
      sys, tinyProfile(100, 30, 8), uniformCosts(sys, 5), opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.modifiedApps.empty());
  EXPECT_EQ(r.modificationCost, 0);
}

TEST(Modification, CannotModifyIsRespected) {
  ides::testing::ScenarioIds ids;
  const SystemModel sys = ides::testing::makeIncrementalScenario(&ids);
  ModificationOptions opts;
  opts.costWeight = 0.0;  // modifications are free -> always tempting
  std::vector<std::int64_t> costs = uniformCosts(sys, kCannotModify);
  const ModificationResult r = designWithModifications(
      sys, tinyProfile(100, 30, 8), costs, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.modifiedApps.empty());  // nothing may be touched
}

class ModificationSuiteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Loaded instance where redistributing the frozen base pays off.
    SuiteConfig cfg = ides::testing::smallSuiteConfig();
    cfg.offsetPhases = 1;       // existing base deliberately badly phased
    cfg.existingGraphSize = 30; // two existing applications of 30 processes
    suite_ = std::make_unique<Suite>(buildSuite(cfg, 31));
  }
  std::unique_ptr<Suite> suite_;
};

TEST_F(ModificationSuiteTest, FreeModificationsImproveTheObjective) {
  const SystemModel& sys = suite_->system;
  // Reference: untouchable existing base.
  IncrementalDesigner designer(sys, suite_->profile);
  const DesignResult mh = designer.run(Strategy::MappingHeuristic);
  ASSERT_TRUE(mh.feasible);

  ModificationOptions opts;
  opts.costWeight = 0.0;
  opts.maxModifiedApps = 2;
  const ModificationResult r = designWithModifications(
      sys, suite_->profile, uniformCosts(sys, 1), opts);
  ASSERT_TRUE(r.feasible);
  // With a badly phased frozen base, unfreezing something must help.
  EXPECT_FALSE(r.modifiedApps.empty());
  EXPECT_LT(r.objective, mh.objective);
  EXPECT_LE(static_cast<std::size_t>(r.modificationCost),
            opts.maxModifiedApps);
}

TEST_F(ModificationSuiteTest, ResultScheduleIsValid) {
  const SystemModel& sys = suite_->system;
  ModificationOptions opts;
  opts.costWeight = 0.0;
  opts.maxModifiedApps = 1;
  const ModificationResult r = designWithModifications(
      sys, suite_->profile, uniformCosts(sys, 1), opts);
  ASSERT_TRUE(r.feasible);

  // Rebuild the full schedule: frozen remainder + the result's movable set.
  PlatformState state(sys.architecture(), sys.hyperperiod());
  Schedule full;
  for (ApplicationId app : sys.applicationsOfKind(AppKind::Existing)) {
    if (std::find(r.modifiedApps.begin(), r.modifiedApps.end(), app) !=
        r.modifiedApps.end()) {
      continue;
    }
    ScheduleRequest req;
    req.graphs = sys.application(app).graphs;
    req.chooseNodes = true;
    const ScheduleOutcome out = scheduleGraphs(sys, req, state);
    ASSERT_TRUE(out.feasible);
    full.merge(out.schedule);
  }
  full.merge(r.schedule);

  std::vector<GraphId> allGraphs = sys.graphsOfKind(AppKind::Existing);
  const auto current = sys.graphsOfKind(AppKind::Current);
  allGraphs.insert(allGraphs.end(), current.begin(), current.end());
  const ValidationReport report = validateSchedule(sys, full, allGraphs);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_F(ModificationSuiteTest, CostWeightControlsTheTradeOff) {
  const SystemModel& sys = suite_->system;
  ModificationOptions cheap;
  cheap.costWeight = 0.0;
  ModificationOptions expensive;
  expensive.costWeight = 1e6;
  const ModificationResult rCheap = designWithModifications(
      sys, suite_->profile, uniformCosts(sys, 1), cheap);
  const ModificationResult rExpensive = designWithModifications(
      sys, suite_->profile, uniformCosts(sys, 1), expensive);
  ASSERT_TRUE(rCheap.feasible);
  ASSERT_TRUE(rExpensive.feasible);
  EXPECT_GE(rCheap.modifiedApps.size(), rExpensive.modifiedApps.size());
  EXPECT_TRUE(rExpensive.modifiedApps.empty());
}

TEST_F(ModificationSuiteTest, GreedyPrefersCheaperApplications) {
  const SystemModel& sys = suite_->system;
  // Make one application dramatically cheaper to modify than the rest; if
  // the greedy unfreezes exactly one, it should pick a cheap one unless an
  // expensive one is much more valuable.
  std::vector<std::int64_t> costs = uniformCosts(sys, 1000);
  const auto existing = sys.applicationsOfKind(AppKind::Existing);
  ASSERT_GE(existing.size(), 2u);
  costs[existing[0].index()] = 1;
  ModificationOptions opts;
  opts.costWeight = 0.05;  // cost matters, objective dominates
  opts.maxModifiedApps = 1;
  const ModificationResult r =
      designWithModifications(sys, suite_->profile, costs, opts);
  ASSERT_TRUE(r.feasible);
  if (!r.modifiedApps.empty()) {
    // Total accounting must be consistent either way.
    EXPECT_EQ(r.modificationCost, costs[r.modifiedApps[0].index()]);
    EXPECT_NEAR(r.totalCost,
                r.objective + opts.costWeight *
                                  static_cast<double>(r.modificationCost),
                1e-9);
  }
}

}  // namespace
}  // namespace ides
