#include "core/future_fit.h"

#include <gtest/gtest.h>

#include "core/incremental_designer.h"
#include "model/system_model.h"
#include "tgen/benchmark_suite.h"
#include "test_helpers.h"

namespace ides {
namespace {

using ides::testing::wcets;

TEST(FutureFit, FitsOnAnEmptyPlatform) {
  // A future app alongside a trivial current app; nothing else occupies the
  // platform, so the future app must fit.
  SystemModel sys(ides::testing::twoNodeArch());
  const ApplicationId cur = sys.addApplication("cur", AppKind::Current);
  const GraphId gc = sys.addGraph(cur, 200);
  sys.addProcess(gc, "C", wcets({10, 10}));
  const ApplicationId fut = sys.addApplication("fut", AppKind::Future);
  const GraphId gf = sys.addGraph(fut, 200);
  const ProcessId f1 = sys.addProcess(gf, "F1", wcets({10, 10}));
  const ProcessId f2 = sys.addProcess(gf, "F2", wcets({10, 10}));
  sys.addMessage(gf, f1, f2, 4);
  sys.finalize();

  PlatformState state(sys.architecture(), sys.hyperperiod());
  const FutureFitResult r = tryMapFutureApplication(sys, fut, state);
  EXPECT_TRUE(r.fits);
  EXPECT_EQ(r.outcome.schedule.processEntryCount(), 2u);
}

TEST(FutureFit, DoesNotFitOnASaturatedPlatform) {
  SystemModel sys(ides::testing::twoNodeArch());
  const ApplicationId cur = sys.addApplication("cur", AppKind::Current);
  const GraphId gc = sys.addGraph(cur, 200);
  sys.addProcess(gc, "C", wcets({10, 10}));
  const ApplicationId fut = sys.addApplication("fut", AppKind::Future);
  const GraphId gf = sys.addGraph(fut, 200);
  sys.addProcess(gf, "F", wcets({50, 50}));
  sys.finalize();

  PlatformState state(sys.architecture(), sys.hyperperiod());
  state.occupyNode(NodeId{0}, {0, 180});
  state.occupyNode(NodeId{1}, {0, 180});
  const FutureFitResult r = tryMapFutureApplication(sys, fut, state);
  EXPECT_FALSE(r.fits);
}

TEST(FutureFit, BaseStateIsNotMutated) {
  SystemModel sys(ides::testing::twoNodeArch());
  const ApplicationId cur = sys.addApplication("cur", AppKind::Current);
  const GraphId gc = sys.addGraph(cur, 200);
  sys.addProcess(gc, "C", wcets({10, 10}));
  const ApplicationId fut = sys.addApplication("fut", AppKind::Future);
  const GraphId gf = sys.addGraph(fut, 200);
  sys.addProcess(gf, "F", wcets({10, 10}));
  sys.finalize();

  PlatformState state(sys.architecture(), sys.hyperperiod());
  const Time before = state.totalNodeSlack();
  (void)tryMapFutureApplication(sys, fut, state);
  EXPECT_EQ(state.totalNodeSlack(), before);
}

TEST(FutureFit, RejectsNonFutureApplication) {
  ides::testing::ScenarioIds ids;
  const SystemModel sys = ides::testing::makeIncrementalScenario(&ids);
  PlatformState state(sys.architecture(), sys.hyperperiod());
  EXPECT_THROW(tryMapFutureApplication(sys, ids.currentApp, state),
               std::invalid_argument);
}

TEST(FutureFit, WorksThroughTheDesignerFacade) {
  SuiteConfig cfg = ides::testing::smallSuiteConfig();
  cfg.futureAppCount = 2;
  const Suite suite = buildSuite(cfg, 3);
  IncrementalDesigner designer(suite.system, suite.profile);
  const DesignResult mh = designer.run(Strategy::MappingHeuristic);
  ASSERT_TRUE(mh.feasible);
  const PlatformState after = designer.stateWith(mh);
  for (ApplicationId app :
       suite.system.applicationsOfKind(AppKind::Future)) {
    const FutureFitResult r =
        tryMapFutureApplication(suite.system, app, after);
    // Each candidate either fits or not, but the check must be clean: if it
    // fits, the schedule is complete and deadline-safe.
    if (r.fits) {
      EXPECT_TRUE(r.outcome.feasible);
      EXPECT_GT(r.outcome.schedule.processEntryCount(), 0u);
    }
  }
}

}  // namespace
}  // namespace ides
