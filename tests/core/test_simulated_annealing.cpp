#include "core/simulated_annealing.h"

#include <gtest/gtest.h>

#include "core/initial_mapping.h"
#include "model/system_model.h"
#include "tgen/benchmark_suite.h"
#include "test_helpers.h"

namespace ides {
namespace {

class SaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    suite_ = std::make_unique<Suite>(
        buildSuite(ides::testing::smallSuiteConfig(), 11));
    frozen_ = std::make_unique<FrozenBase>(
        freezeExistingApplications(suite_->system));
    ASSERT_TRUE(frozen_->feasible);
    eval_ = std::make_unique<SolutionEvaluator>(
        suite_->system, frozen_->state, suite_->profile, MetricWeights{});
    PlatformState state = frozen_->state;
    im_ = initialMapping(suite_->system, state);
    ASSERT_TRUE(im_.feasible);
  }

  SaOptions fastOptions(std::uint64_t seed = 1) const {
    SaOptions opts;
    opts.seed = seed;
    opts.iterations = 1500;
    return opts;
  }

  std::unique_ptr<Suite> suite_;
  std::unique_ptr<FrozenBase> frozen_;
  std::unique_ptr<SolutionEvaluator> eval_;
  ScheduleOutcome im_;
};

TEST_F(SaTest, BestSolutionIsFeasibleAndNeverWorseThanInitial) {
  const double initialCost = eval_->evaluate(im_.mapping).cost;
  const SaResult sa = runSimulatedAnnealing(*eval_, im_.mapping,
                                            fastOptions());
  EXPECT_TRUE(sa.eval.feasible);
  EXPECT_LE(sa.eval.cost, initialCost + 1e-9);
  // Re-evaluating the returned solution reproduces the reported cost.
  EXPECT_DOUBLE_EQ(eval_->evaluate(sa.solution).cost, sa.eval.cost);
}

TEST_F(SaTest, ImprovesOnThisInstance) {
  const double initialCost = eval_->evaluate(im_.mapping).cost;
  const SaResult sa = runSimulatedAnnealing(*eval_, im_.mapping,
                                            fastOptions());
  EXPECT_LT(sa.eval.cost, initialCost);
}

TEST_F(SaTest, SameSeedSameResult) {
  const SaResult a = runSimulatedAnnealing(*eval_, im_.mapping,
                                           fastOptions(5));
  const SaResult b = runSimulatedAnnealing(*eval_, im_.mapping,
                                           fastOptions(5));
  EXPECT_DOUBLE_EQ(a.eval.cost, b.eval.cost);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.solution, b.solution);
}

TEST_F(SaTest, EvaluationCountMatchesIterations) {
  SaOptions opts = fastOptions();
  opts.iterations = 500;
  const SaResult sa = runSimulatedAnnealing(*eval_, im_.mapping, opts);
  // One initial evaluation plus at most one per iteration (message moves
  // can be skipped when the app has no messages; this one has plenty).
  EXPECT_GT(sa.evaluations, 450u);
  EXPECT_LE(sa.evaluations, 501u);
  EXPECT_GT(sa.accepted, 0u);
}

TEST_F(SaTest, LongerBudgetDoesNotHurt) {
  SaOptions shortOpts = fastOptions(3);
  shortOpts.iterations = 200;
  SaOptions longOpts = fastOptions(3);
  longOpts.iterations = 3000;
  const double shortCost =
      runSimulatedAnnealing(*eval_, im_.mapping, shortOpts).eval.cost;
  const double longCost =
      runSimulatedAnnealing(*eval_, im_.mapping, longOpts).eval.cost;
  EXPECT_LE(longCost, shortCost + 1e-9);
}

TEST_F(SaTest, ThrowsOnInfeasibleInitial) {
  // Construct an infeasible start by hinting a current process beyond its
  // deadline window on the same mapping.
  MappingSolution bad = im_.mapping;
  const GraphId g = eval_->currentGraphs().front();
  const ProcessGraph& graph = suite_->system.graph(g);
  const ProcessId p = graph.processes.front();
  bad.setStartHint(p, graph.deadline - 1);
  if (!eval_->evaluate(bad).feasible) {
    EXPECT_THROW(runSimulatedAnnealing(*eval_, bad, fastOptions()),
                 std::invalid_argument);
  } else {
    GTEST_SKIP() << "hint did not break feasibility on this instance";
  }
}

}  // namespace
}  // namespace ides
