// Shared builders for hand-crafted test systems.
#pragma once

#include <vector>

#include "model/system_model.h"
#include "tgen/benchmark_suite.h"

namespace ides::testing {

/// Small but *loaded* generated instance: ~65% processor utilization on a
/// 4-node platform, so the slack-distribution criterion bites and the
/// optimizing strategies have real work to do.
inline SuiteConfig smallSuiteConfig(std::size_t existing = 60,
                                    std::size_t current = 24) {
  SuiteConfig cfg;
  cfg.nodeCount = 4;
  cfg.basePeriod = 6000;
  cfg.tmin = 1500;
  cfg.existingProcesses = existing;
  cfg.currentProcesses = current;
  cfg.futureAppCount = 0;
  cfg.futureProcesses = 16;
  cfg.futureGraphSize = 16;
  return cfg;
}

/// Two identical nodes, equal slots (default 10 ticks each, round 20),
/// 1 byte/tick.
inline Architecture twoNodeArch(Time slotLength = 10,
                                std::int64_t bytesPerTick = 1) {
  return makeUniformArchitecture(2, slotLength, bytesPerTick);
}

/// WCET table helper: {w0, w1, ...} with kNoTime where disallowed.
inline std::vector<Time> wcets(std::initializer_list<Time> values) {
  return std::vector<Time>(values);
}

/// The paper's slide-5 example shape: a diamond P1 -> {P2, P3} -> P4 with
/// four messages, on two nodes. Returns the system (finalized) and fills
/// the ids if pointers are given.
struct DiamondIds {
  GraphId graph;
  ProcessId p1, p2, p3, p4;
  MessageId m1, m2, m3, m4;
};

inline SystemModel makeDiamondSystem(DiamondIds* ids = nullptr,
                                     Time period = 200,
                                     AppKind kind = AppKind::Current) {
  SystemModel sys(twoNodeArch());
  const ApplicationId app = sys.addApplication("app", kind);
  const GraphId g = sys.addGraph(app, period);
  // P1 and P4 pinned to node 0; P2 pinned to node 1; P3 mappable to both.
  const ProcessId p1 = sys.addProcess(g, "P1", wcets({10, kNoTime}));
  const ProcessId p2 = sys.addProcess(g, "P2", wcets({kNoTime, 20}));
  const ProcessId p3 = sys.addProcess(g, "P3", wcets({15, 15}));
  const ProcessId p4 = sys.addProcess(g, "P4", wcets({10, kNoTime}));
  const MessageId m1 = sys.addMessage(g, p1, p2, 4);
  const MessageId m2 = sys.addMessage(g, p1, p3, 4);
  const MessageId m3 = sys.addMessage(g, p2, p4, 4);
  const MessageId m4 = sys.addMessage(g, p3, p4, 4);
  sys.finalize();
  if (ids != nullptr) *ids = {g, p1, p2, p3, p4, m1, m2, m3, m4};
  return sys;
}

/// A chain P0 -> P1 -> ... -> P{n-1} on a single-node architecture; no bus
/// traffic possible, handy for pure processor-timeline tests.
inline SystemModel makeChainSystem(std::size_t length, Time wcet = 10,
                                   Time period = 200,
                                   AppKind kind = AppKind::Current) {
  SystemModel sys(makeUniformArchitecture(1, 10, 1));
  const ApplicationId app = sys.addApplication("chain", kind);
  const GraphId g = sys.addGraph(app, period);
  std::vector<ProcessId> ps;
  for (std::size_t i = 0; i < length; ++i) {
    ps.push_back(sys.addProcess(g, "C" + std::to_string(i), {wcet}));
  }
  for (std::size_t i = 1; i < length; ++i) {
    sys.addMessage(g, ps[i - 1], ps[i], 2);
  }
  sys.finalize();
  return sys;
}

/// A hand-built incremental scenario on two nodes: one frozen existing
/// chain per node and a current diamond to place. Profile tuned so the
/// metrics are non-trivial.
struct ScenarioIds {
  ApplicationId existingApp, currentApp;
  DiamondIds diamond;
};

inline SystemModel makeIncrementalScenario(ScenarioIds* ids = nullptr,
                                           Time period = 200,
                                           Time currentDeadline = kNoTime) {
  SystemModel sys(twoNodeArch());
  const ApplicationId ex = sys.addApplication("legacy", AppKind::Existing);
  const GraphId ge = sys.addGraph(ex, period);
  const ProcessId e0 = sys.addProcess(ge, "E0", wcets({25, kNoTime}));
  const ProcessId e1 = sys.addProcess(ge, "E1", wcets({kNoTime, 25}));
  sys.addMessage(ge, e0, e1, 4);

  const ApplicationId cur = sys.addApplication("new", AppKind::Current);
  const GraphId g = sys.addGraph(cur, period, currentDeadline);
  const ProcessId p1 = sys.addProcess(g, "P1", wcets({10, kNoTime}));
  const ProcessId p2 = sys.addProcess(g, "P2", wcets({kNoTime, 20}));
  const ProcessId p3 = sys.addProcess(g, "P3", wcets({15, 15}));
  const ProcessId p4 = sys.addProcess(g, "P4", wcets({10, kNoTime}));
  const MessageId m1 = sys.addMessage(g, p1, p2, 4);
  const MessageId m2 = sys.addMessage(g, p1, p3, 4);
  const MessageId m3 = sys.addMessage(g, p2, p4, 4);
  const MessageId m4 = sys.addMessage(g, p3, p4, 4);
  sys.finalize();
  if (ids != nullptr) {
    *ids = {ex, cur, {g, p1, p2, p3, p4, m1, m2, m3, m4}};
  }
  return sys;
}

}  // namespace ides::testing
