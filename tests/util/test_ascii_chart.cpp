#include "util/ascii_chart.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ides {
namespace {

TEST(AsciiChart, EmptyChartRendersPlaceholder) {
  AsciiChart chart("empty", "x", "y");
  std::ostringstream os;
  chart.render(os);
  EXPECT_NE(os.str().find("(no data)"), std::string::npos);
}

TEST(AsciiChart, RejectsMismatchedSeries) {
  AsciiChart chart("t", "x", "y");
  chart.setXAxis({1.0, 2.0, 3.0});
  EXPECT_THROW(chart.addSeries("s", {1.0}), std::invalid_argument);
}

TEST(AsciiChart, RendersTitleLegendAndMarkers) {
  AsciiChart chart("quality", "processes", "deviation");
  chart.setXAxis({40, 80, 160});
  chart.addSeries("AH", {120.0, 125.0, 130.0});
  chart.addSeries("MH", {5.0, 8.0, 6.0});
  std::ostringstream os;
  chart.render(os, 40, 10);
  const std::string s = os.str();
  EXPECT_NE(s.find("quality"), std::string::npos);
  EXPECT_NE(s.find("AH"), std::string::npos);
  EXPECT_NE(s.find("MH"), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);  // first series marker
  EXPECT_NE(s.find('o'), std::string::npos);  // second series marker
}

TEST(AsciiChart, ConstantSeriesDoesNotCrash) {
  AsciiChart chart("flat", "x", "y");
  chart.setXAxis({1, 2, 3});
  chart.addSeries("s", {0.0, 0.0, 0.0});
  std::ostringstream os;
  EXPECT_NO_THROW(chart.render(os, 30, 8));
}

TEST(AsciiChart, SinglePointSeries) {
  AsciiChart chart("one", "x", "y");
  chart.setXAxis({5.0});
  chart.addSeries("s", {7.0});
  std::ostringstream os;
  EXPECT_NO_THROW(chart.render(os, 30, 8));
  EXPECT_NE(os.str().find('*'), std::string::npos);
}

}  // namespace
}  // namespace ides
