#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ides {
namespace {

TEST(CsvTable, RejectsEmptyHeader) {
  EXPECT_THROW(CsvTable(std::vector<std::string>{}), std::invalid_argument);
}

TEST(CsvTable, RejectsArityMismatch) {
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.addRow({"1"}), std::invalid_argument);
  EXPECT_THROW(t.addRow({"1", "2", "3"}), std::invalid_argument);
}

TEST(CsvTable, WritesCsvRows) {
  CsvTable t({"n", "AH", "MH"});
  t.addRow({"40", "120.5", "8.25"});
  t.addRow({"80", "131.0", "9.75"});
  std::ostringstream os;
  t.writeCsv(os);
  EXPECT_EQ(os.str(), "n,AH,MH\n40,120.5,8.25\n80,131.0,9.75\n");
}

TEST(CsvTable, PrettyAlignsColumns) {
  CsvTable t({"name", "v"});
  t.addRow({"x", "123456"});
  std::ostringstream os;
  t.writePretty(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("123456"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(CsvTable, NumFormatting) {
  EXPECT_EQ(CsvTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(CsvTable::num(3.0, 0), "3");
  EXPECT_EQ(CsvTable::num(static_cast<long long>(42)), "42");
}

TEST(CsvTable, RowCountTracksAdds) {
  CsvTable t({"a"});
  EXPECT_EQ(t.rowCount(), 0u);
  t.addRow({"1"});
  t.addRow({"2"});
  EXPECT_EQ(t.rowCount(), 2u);
  EXPECT_EQ(t.rows()[1][0], "2");
}

}  // namespace
}  // namespace ides
