#include <gtest/gtest.h>

#include <unordered_set>

#include "util/ids.h"
#include "util/time.h"

namespace ides {
namespace {

TEST(TimeHelpers, CeilDiv) {
  EXPECT_EQ(ceilDiv(0, 5), 0);
  EXPECT_EQ(ceilDiv(1, 5), 1);
  EXPECT_EQ(ceilDiv(5, 5), 1);
  EXPECT_EQ(ceilDiv(6, 5), 2);
  EXPECT_EQ(ceilDiv(10, 5), 2);
  EXPECT_EQ(ceilDiv(11, 5), 3);
}

TEST(TimeHelpers, Sentinels) {
  EXPECT_LT(kNoTime, 0);
  EXPECT_GT(kTimeMax, 0);
  EXPECT_NE(kNoTime, kTimeMax);
}

TEST(TaggedIds, DefaultIsInvalid) {
  NodeId n;
  EXPECT_FALSE(n.valid());
  EXPECT_TRUE(NodeId{0}.valid());
  EXPECT_FALSE(NodeId{-3}.valid());
}

TEST(TaggedIds, ComparisonAndIndex) {
  EXPECT_EQ(ProcessId{3}, ProcessId{3});
  EXPECT_NE(ProcessId{3}, ProcessId{4});
  EXPECT_LT(ProcessId{3}, ProcessId{4});
  EXPECT_EQ(ProcessId{7}.index(), 7u);
}

TEST(TaggedIds, DistinctTagsAreDistinctTypes) {
  // Compile-time property: NodeId and ProcessId must not be comparable.
  static_assert(!std::is_same_v<NodeId, ProcessId>);
  static_assert(!std::is_convertible_v<NodeId, ProcessId>);
  SUCCEED();
}

TEST(TaggedIds, Hashable) {
  std::unordered_set<MessageId> set;
  set.insert(MessageId{1});
  set.insert(MessageId{2});
  set.insert(MessageId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(MessageId{2}));
  EXPECT_FALSE(set.contains(MessageId{3}));
}

}  // namespace
}  // namespace ides
