// Fnv1aHasher: stability, framing (no field aliasing), canonical doubles,
// and the 128-bit hex rendering the sweep store keys records with.
#include "util/hashing.h"

#include <gtest/gtest.h>

namespace ides {
namespace {

TEST(HashingTest, Fnv1a64MatchesPublishedTestVectors) {
  // Landon Curt Noll's reference values for FNV-1a 64.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashingTest, HasherIsDeterministicAcrossInstances) {
  const auto digest = [] {
    Fnv1aHasher h;
    h.str("suite");
    h.u64(42);
    h.f64(3.25);
    h.boolean(true);
    return h.value();
  };
  EXPECT_EQ(digest(), digest());
}

TEST(HashingTest, StringFramingPreventsAliasing) {
  Fnv1aHasher a, b;
  a.str("ab");
  a.str("c");
  b.str("a");
  b.str("bc");
  EXPECT_NE(a.value(), b.value());
}

TEST(HashingTest, ScalarWidthPreventsAliasing) {
  Fnv1aHasher a, b;
  a.u64(1);
  a.u64(0);
  b.u64(0);
  b.u64(1);
  EXPECT_NE(a.value(), b.value());
}

TEST(HashingTest, NegativeZeroHashesLikePositiveZero) {
  Fnv1aHasher a, b;
  a.f64(0.0);
  b.f64(-0.0);
  EXPECT_EQ(a.value(), b.value());
}

TEST(HashingTest, DifferentBasesGiveIndependentLanes) {
  Fnv1aHasher a(Fnv1aHasher::kDefaultBasis);
  Fnv1aHasher b(0x9e3779b97f4a7c15ULL);
  a.str("same input");
  b.str("same input");
  EXPECT_NE(a.value(), b.value());
}

TEST(HashingTest, SingleBitChangesAvalanche) {
  Fnv1aHasher a, b;
  a.u64(0);
  b.u64(1);
  const std::uint64_t diff = a.value() ^ b.value();
  int flipped = 0;
  for (int i = 0; i < 64; ++i) flipped += (diff >> i) & 1;
  // splitmix64 finalization: roughly half the output bits should flip.
  EXPECT_GE(flipped, 16);
}

TEST(HashingTest, HashHexRenders32LowercaseDigits) {
  EXPECT_EQ(hashHex(0, 0), "00000000000000000000000000000000");
  EXPECT_EQ(hashHex(0x0123456789abcdefULL, 0xfedcba9876543210ULL),
            "0123456789abcdeffedcba9876543210");
}

}  // namespace
}  // namespace ides
