#include "util/log.h"

#include <gtest/gtest.h>

namespace ides {
namespace {

/// Restores the process-wide threshold so these tests compose with any
/// IDES_LOG the suite was launched under.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = logThreshold(); }
  void TearDown() override { setLogThreshold(saved_); }

 private:
  LogLevel saved_ = LogLevel::Warn;
};

TEST_F(LogTest, ParseLogLevelAcceptsEveryLevelName) {
  EXPECT_EQ(parseLogLevel("debug", LogLevel::Off), LogLevel::Debug);
  EXPECT_EQ(parseLogLevel("info", LogLevel::Off), LogLevel::Info);
  EXPECT_EQ(parseLogLevel("warn", LogLevel::Off), LogLevel::Warn);
  EXPECT_EQ(parseLogLevel("error", LogLevel::Off), LogLevel::Error);
  EXPECT_EQ(parseLogLevel("off", LogLevel::Debug), LogLevel::Off);
}

TEST_F(LogTest, ParseLogLevelFallsBackOnGarbage) {
  // IDES_LOG semantics: unknown values degrade to the default threshold
  // instead of erroring — the env var must never break a run.
  EXPECT_EQ(parseLogLevel("verbose", LogLevel::Warn), LogLevel::Warn);
  EXPECT_EQ(parseLogLevel("", LogLevel::Warn), LogLevel::Warn);
  EXPECT_EQ(parseLogLevel("DEBUG", LogLevel::Error), LogLevel::Error);
  EXPECT_EQ(parseLogLevel("warn ", LogLevel::Info), LogLevel::Info);
}

TEST_F(LogTest, SetThresholdRoundTrips) {
  for (const LogLevel level :
       {LogLevel::Debug, LogLevel::Info, LogLevel::Warn, LogLevel::Error,
        LogLevel::Off}) {
    setLogThreshold(level);
    EXPECT_EQ(logThreshold(), level);
  }
}

TEST_F(LogTest, SuppressedLevelShortCircuitsArgumentEvaluation) {
  setLogThreshold(LogLevel::Error);
  int evaluated = 0;
  const auto touch = [&evaluated] {
    ++evaluated;
    return "expensive";
  };
  IDES_LOG_AT(LogLevel::Debug) << touch();
  IDES_LOG_AT(LogLevel::Info) << touch();
  IDES_LOG_AT(LogLevel::Warn) << touch();
  // Below the threshold the macro's dead branch must not build the line —
  // that is what makes debug logging free in release runs.
  EXPECT_EQ(evaluated, 0);
}

TEST_F(LogTest, EnabledLevelEvaluatesAndEmits) {
  setLogThreshold(LogLevel::Debug);
  int evaluated = 0;
  const auto touch = [&evaluated] {
    ++evaluated;
    return "line";
  };
  IDES_LOG_AT(LogLevel::Debug) << touch();
  IDES_LOG_AT(LogLevel::Error) << touch();
  EXPECT_EQ(evaluated, 2);
}

TEST_F(LogTest, OffSilencesEvenErrors) {
  setLogThreshold(LogLevel::Off);
  int evaluated = 0;
  IDES_LOG_AT(LogLevel::Error) << [&evaluated] {
    ++evaluated;
    return "";
  }();
  EXPECT_EQ(evaluated, 0);
}

}  // namespace
}  // namespace ides
