// Fault injection: spec grammar (parse matrix, defaults, loud rejection
// of malformed entries), point lookup, and the stall action's timing.
// The lethal actions (crash, exit) terminate the process by design — they
// are exercised by the sweep-fault CI job against real worker processes,
// not here.
#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <stdexcept>

namespace ides {
namespace {

TEST(FaultSpecTest, ParsesSingleAndMultipleEntries) {
  const auto single = parseFaultSpec("post-claim:crash");
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].point, "post-claim");
  EXPECT_EQ(single[0].action, FaultSpec::Action::Crash);

  const auto multi =
      parseFaultSpec("post-claim:exit:3,mid-renewal:stall:0.5");
  ASSERT_EQ(multi.size(), 2u);
  EXPECT_EQ(multi[0].action, FaultSpec::Action::Exit);
  EXPECT_DOUBLE_EQ(multi[0].arg, 3.0);
  EXPECT_EQ(multi[1].point, "mid-renewal");
  EXPECT_EQ(multi[1].action, FaultSpec::Action::Stall);
  EXPECT_DOUBLE_EQ(multi[1].arg, 0.5);
}

TEST(FaultSpecTest, AppliesDefaultsAndSkipsEmptyEntries) {
  const auto exitDefault = parseFaultSpec("p:exit");
  ASSERT_EQ(exitDefault.size(), 1u);
  EXPECT_DOUBLE_EQ(exitDefault[0].arg, 70.0);

  const auto stallDefault = parseFaultSpec("p:stall");
  ASSERT_EQ(stallDefault.size(), 1u);
  EXPECT_DOUBLE_EQ(stallDefault[0].arg, 1.0);

  EXPECT_TRUE(parseFaultSpec("").empty());
  EXPECT_EQ(parseFaultSpec("a:crash,,b:stall:2,").size(), 2u);
}

TEST(FaultSpecTest, MalformedSpecsThrowNamingTheEntry) {
  EXPECT_THROW((void)parseFaultSpec("naked"), std::invalid_argument);
  EXPECT_THROW((void)parseFaultSpec(":crash"), std::invalid_argument);
  EXPECT_THROW((void)parseFaultSpec("p:frobnicate"), std::invalid_argument);
  EXPECT_THROW((void)parseFaultSpec("p:crash:1"), std::invalid_argument);
  EXPECT_THROW((void)parseFaultSpec("p:stall:soon"), std::invalid_argument);
  EXPECT_THROW((void)parseFaultSpec("p:stall:-1"), std::invalid_argument);
  EXPECT_THROW((void)parseFaultSpec("p:exit:3.5"), std::invalid_argument);
  EXPECT_THROW((void)parseFaultSpec("p:exit:300"), std::invalid_argument);
  bool threw = false;
  try {
    (void)parseFaultSpec("good:crash,bad:frob");
  } catch (const std::invalid_argument& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("frob"), std::string::npos);
  }
  EXPECT_TRUE(threw);
}

TEST(FaultSpecTest, FindFaultMatchesByPoint) {
  const auto specs = parseFaultSpec("a:crash,b:stall:2");
  ASSERT_TRUE(findFault(specs, "b").has_value());
  EXPECT_EQ(findFault(specs, "b")->action, FaultSpec::Action::Stall);
  EXPECT_FALSE(findFault(specs, "c").has_value());
}

TEST(FaultInjectionTest, StallSleepsThenReturns) {
  FaultSpec spec;
  spec.point = "test";
  spec.action = FaultSpec::Action::Stall;
  spec.arg = 0.05;
  const auto before = std::chrono::steady_clock::now();
  executeFault(spec);  // returns, unlike crash/exit
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    before)
          .count();
  EXPECT_GE(elapsed, 0.04);
}

TEST(FaultInjectionTest, InertWithoutEnvironmentVariable) {
  // This must run before anything else in the process touches faultPoint:
  // the spec parses once. No other test in this binary sets IDES_FAULT, so
  // clearing it here pins the production (inert) path.
  ::unsetenv("IDES_FAULT");
  EXPECT_FALSE(faultInjectionActive());
  faultPoint("post-claim");  // still alive == the hook is a no-op
  faultPoint("no-such-point");
  SUCCEED();
}

}  // namespace
}  // namespace ides
