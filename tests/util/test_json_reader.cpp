// JSON reader: the store's record/manifest parser. Round-trip of %.17g
// numbers matters most — resume byte-identity rests on it.
#include "util/json_reader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace ides {
namespace {

TEST(JsonReaderTest, ParsesScalarsAndStructure) {
  const JsonValue root = parseJson(
      "{\"name\": \"x\", \"n\": -12.5, \"ok\": true, \"off\": false,\n"
      " \"nil\": null, \"list\": [1, 2, 3], \"nested\": {\"a\": [[]]}}");
  ASSERT_TRUE(root.isObject());
  EXPECT_EQ(root.stringAt("name"), "x");
  EXPECT_EQ(root.numberAt("n"), -12.5);
  EXPECT_TRUE(root.boolAt("ok"));
  EXPECT_FALSE(root.boolAt("off"));
  EXPECT_EQ(root.at("nil").kind, JsonValue::Kind::Null);
  ASSERT_TRUE(root.at("list").isArray());
  ASSERT_EQ(root.at("list").items.size(), 3u);
  EXPECT_EQ(root.at("list").items[2].numberValue, 3.0);
  ASSERT_TRUE(root.at("nested").at("a").isArray());
}

TEST(JsonReaderTest, PreservesMemberOrder) {
  const JsonValue root = parseJson("{\"z\": 1, \"a\": 2, \"m\": 3}");
  ASSERT_EQ(root.members.size(), 3u);
  EXPECT_EQ(root.members[0].first, "z");
  EXPECT_EQ(root.members[1].first, "a");
  EXPECT_EQ(root.members[2].first, "m");
}

TEST(JsonReaderTest, DecodesEscapes) {
  const JsonValue root =
      parseJson("{\"s\": \"a\\\"b\\\\c\\n\\t\\u0041\"}");
  EXPECT_EQ(root.stringAt("s"), "a\"b\\c\n\tA");
}

TEST(JsonReaderTest, RoundTrips17DigitDoublesExactly) {
  for (const double value :
       {0.1, 1.0 / 3.0, 123456.789012345, 2.2250738585072014e-308,
        9.87654321e+12, -0.030000000000000002}) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "{\"v\": %.17g}", value);
    const JsonValue root = parseJson(buf);
    EXPECT_EQ(root.numberAt("v"), value) << buf;
  }
}

TEST(JsonReaderTest, MalformedInputThrowsWithOffset) {
  for (const char* bad :
       {"", "{", "{\"a\" 1}", "[1,,2]", "{\"a\": tru}", "nul", "\"open",
        "{\"a\": 1} trailing", "[1e]", "{\"a\": \"\\x\"}"}) {
    EXPECT_THROW((void)parseJson(bad), std::runtime_error) << bad;
  }
  try {
    (void)parseJson("{\"a\": }");
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(JsonReaderTest, TypedAccessorsNameTheOffendingKey) {
  const JsonValue root = parseJson("{\"a\": 1}");
  try {
    (void)root.stringAt("a");
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("\"a\""), std::string::npos);
  }
  EXPECT_THROW((void)root.numberAt("missing"), std::runtime_error);
  EXPECT_EQ(root.find("missing"), nullptr);
}

}  // namespace
}  // namespace ides
