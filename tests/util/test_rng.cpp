#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace ides {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniformInt(0, 1000000) == b.uniformInt(0, 1000000)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, StreamSeedsAreDeterministic) {
  EXPECT_EQ(rngStreamSeed(42, 0), rngStreamSeed(42, 0));
  EXPECT_EQ(splitmix64(7), splitmix64(7));
}

TEST(Rng, StreamsOfOneSeedAreDecorrelated) {
  // Streams 0 and 1 of the same seed (SA's proposal / acceptance split)
  // must behave like independent generators.
  Rng a(rngStreamSeed(5, 0)), b(rngStreamSeed(5, 1));
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniformInt(0, 1000000) == b.uniformInt(0, 1000000)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, StreamSeedsDistinctAcrossSeedsAndStreams) {
  // No collisions across a grid of nearby seeds x small stream ids — the
  // regime every SA chain and PSA ensemble actually lives in.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    for (std::uint64_t stream = 0; stream < 8; ++stream) {
      seen.push_back(rngStreamSeed(seed, stream));
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniformInt(5, 4), std::invalid_argument);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceStatistics) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(9);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) seen[rng.index(5)] += 1;
  for (int count : seen) EXPECT_GT(count, 100);
}

TEST(Rng, IndexRejectsEmpty) {
  Rng rng(9);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkIsIndependentOfParentUse) {
  Rng a(99);
  Rng childA = a.fork();
  // Re-derive from a fresh parent: same fork point, same child stream.
  Rng b(99);
  Rng childB = b.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(childA.uniformInt(0, 1 << 30), childB.uniformInt(0, 1 << 30));
  }
}

TEST(DiscreteDistribution, RejectsEmptyAndNonPositive) {
  EXPECT_THROW(DiscreteDistribution(std::vector<DiscreteDistribution::Entry>{}),
               std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({{10, 0.0}}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({{10, -0.5}}), std::invalid_argument);
}

TEST(DiscreteDistribution, NormalizesProbabilities) {
  const DiscreteDistribution d({{1, 2.0}, {2, 2.0}});
  EXPECT_DOUBLE_EQ(d.entries()[0].probability, 0.5);
  EXPECT_DOUBLE_EQ(d.entries()[1].probability, 0.5);
}

TEST(DiscreteDistribution, ExpectedValue) {
  const DiscreteDistribution d({{20, 0.2}, {50, 0.4}, {100, 0.3}, {150, 0.1}});
  EXPECT_NEAR(d.expectedValue(), 0.2 * 20 + 0.4 * 50 + 0.3 * 100 + 0.1 * 150,
              1e-12);
}

TEST(DiscreteDistribution, SampleFrequenciesMatchProbabilities) {
  const DiscreteDistribution d({{1, 0.1}, {2, 0.6}, {3, 0.3}});
  Rng rng(17);
  std::int64_t c1 = 0, c2 = 0, c3 = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    switch (d.sample(rng)) {
      case 1: ++c1; break;
      case 2: ++c2; break;
      case 3: ++c3; break;
      default: FAIL() << "sample outside support";
    }
  }
  EXPECT_NEAR(static_cast<double>(c1) / n, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(c2) / n, 0.6, 0.02);
  EXPECT_NEAR(static_cast<double>(c3) / n, 0.3, 0.02);
}

TEST(DiscreteDistribution, MinMaxValues) {
  const DiscreteDistribution d({{100, 0.3}, {2, 0.2}, {50, 0.5}});
  EXPECT_EQ(d.minValue(), 2);
  EXPECT_EQ(d.maxValue(), 100);
}

TEST(DiscreteDistribution, DeterministicStreamHasExactCount) {
  const DiscreteDistribution d({{20, 0.2}, {50, 0.4}, {100, 0.3}, {150, 0.1}});
  for (std::size_t count : {0u, 1u, 7u, 100u, 1000u}) {
    EXPECT_EQ(d.deterministicStream(count).size(), count);
  }
}

TEST(DiscreteDistribution, DeterministicStreamIsDescending) {
  const DiscreteDistribution d({{20, 0.25}, {50, 0.25}, {100, 0.5}});
  const auto stream = d.deterministicStream(40);
  EXPECT_TRUE(std::is_sorted(stream.rbegin(), stream.rend()));
}

TEST(DiscreteDistribution, DeterministicStreamMatchesMixExactly) {
  const DiscreteDistribution d({{20, 0.2}, {50, 0.4}, {100, 0.3}, {150, 0.1}});
  const auto stream = d.deterministicStream(100);
  const auto count = [&](std::int64_t v) {
    return std::count(stream.begin(), stream.end(), v);
  };
  EXPECT_EQ(count(20), 20);
  EXPECT_EQ(count(50), 40);
  EXPECT_EQ(count(100), 30);
  EXPECT_EQ(count(150), 10);
}

TEST(DiscreteDistribution, DeterministicStreamIsReproducible) {
  const DiscreteDistribution d({{2, 0.2}, {4, 0.4}, {6, 0.3}, {8, 0.1}});
  EXPECT_EQ(d.deterministicStream(123), d.deterministicStream(123));
}

}  // namespace
}  // namespace ides
