// HTTP client: URL parsing matrix, backoff arithmetic (deterministic,
// capped, jitter-bounded), and real socket round trips against an
// in-process HttpServer — including the retry policy's split between
// transient failures (transport errors, 5xx: retry) and client errors
// (4xx: surface immediately).
#include "util/http_client.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <thread>

#include "serve/http_server.h"
#include "util/rng.h"
#include "util/stop_token.h"

namespace ides {
namespace {

TEST(ParseHttpUrlTest, AcceptsHostPortAndPath) {
  const auto full = parseHttpUrl("http://coordinator:8080/sweeps/nightly");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->host, "coordinator");
  EXPECT_EQ(full->port, 8080);
  EXPECT_EQ(full->path, "/sweeps/nightly");

  const auto bare = parseHttpUrl("http://10.0.0.7");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->host, "10.0.0.7");
  EXPECT_EQ(bare->port, 80);  // scheme default
  EXPECT_EQ(bare->path, "/");

  const auto rooted = parseHttpUrl("http://h:90/");
  ASSERT_TRUE(rooted.has_value());
  EXPECT_EQ(rooted->port, 90);
  EXPECT_EQ(rooted->path, "/");
}

TEST(ParseHttpUrlTest, RejectsWrongSchemeAndBadAuthorities) {
  EXPECT_FALSE(parseHttpUrl("https://h/x").has_value());
  EXPECT_FALSE(parseHttpUrl("host:80/x").has_value());
  EXPECT_FALSE(parseHttpUrl("http://").has_value());
  EXPECT_FALSE(parseHttpUrl("http:///x").has_value());
  EXPECT_FALSE(parseHttpUrl("http://:8080/x").has_value());
  EXPECT_FALSE(parseHttpUrl("http://h:").has_value());
  EXPECT_FALSE(parseHttpUrl("http://h:0").has_value());
  EXPECT_FALSE(parseHttpUrl("http://h:65536").has_value());
  EXPECT_FALSE(parseHttpUrl("http://h:8x80").has_value());
}

TEST(BackoffTest, GeometricGrowthCapsAtMaxWithoutJitter) {
  BackoffPolicy policy;
  policy.initialSeconds = 1.0;
  policy.maxSeconds = 8.0;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  Rng rng(7);
  EXPECT_DOUBLE_EQ(backoffDelaySeconds(policy, 0, rng), 1.0);
  EXPECT_DOUBLE_EQ(backoffDelaySeconds(policy, 1, rng), 2.0);
  EXPECT_DOUBLE_EQ(backoffDelaySeconds(policy, 2, rng), 4.0);
  EXPECT_DOUBLE_EQ(backoffDelaySeconds(policy, 3, rng), 8.0);
  EXPECT_DOUBLE_EQ(backoffDelaySeconds(policy, 9, rng), 8.0);  // capped
}

TEST(BackoffTest, JitterIsBoundedAndSeedDeterministic) {
  BackoffPolicy policy;  // defaults: 0.25s base, x2, 25% jitter, 5s cap
  Rng a(42);
  Rng b(42);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double delayA = backoffDelaySeconds(policy, attempt, a);
    const double delayB = backoffDelaySeconds(policy, attempt, b);
    EXPECT_DOUBLE_EQ(delayA, delayB);  // same seed, same schedule
    const double base =
        std::min(policy.initialSeconds *
                     std::pow(policy.multiplier, static_cast<double>(attempt)),
                 policy.maxSeconds);
    EXPECT_GE(delayA, base * (1.0 - policy.jitter));
    EXPECT_LE(delayA, base * (1.0 + policy.jitter));
  }
}

/// Runs an in-process HttpServer on an ephemeral port for one test.
class ServerFixture {
 public:
  explicit ServerFixture(HttpServer::Handler handler)
      : server_("127.0.0.1", 0),
        thread_([this, handler = std::move(handler)] {
          server_.serve(handler, &stop_);
        }) {}

  ~ServerFixture() {
    stop_.requestStop();
    thread_.join();
  }

  [[nodiscard]] HttpUrl url() const {
    HttpUrl url;
    url.host = "127.0.0.1";
    url.port = server_.port();
    return url;
  }

 private:
  HttpServer server_;
  StopToken stop_;
  std::thread thread_;
};

TEST(HttpClientTest, RoundTripsMethodTargetAndBody) {
  ServerFixture server([](const HttpRequest& request) {
    HttpResponse response;
    if (request.path == "/missing") {
      response.status = 404;
      response.body = "{\"error\": \"nope\"}";
      return response;
    }
    response.body =
        request.method + " " + request.target + " [" + request.body + "]";
    return response;
  });

  const HttpClientResult get =
      httpRequest(server.url(), "GET", "/sweeps/k/manifest", "");
  ASSERT_TRUE(get.ok) << get.error;
  EXPECT_EQ(get.status, 200);
  EXPECT_EQ(get.body, "GET /sweeps/k/manifest []");

  const HttpClientResult post = httpRequest(
      server.url(), "POST", "/sweeps/k/claim", "{\"worker\": \"w1\"}");
  ASSERT_TRUE(post.ok) << post.error;
  EXPECT_EQ(post.body, "POST /sweeps/k/claim [{\"worker\": \"w1\"}]");

  // A 4xx is a successful transport exchange, not an error.
  const HttpClientResult missing =
      httpRequest(server.url(), "GET", "/missing", "");
  ASSERT_TRUE(missing.ok) << missing.error;
  EXPECT_EQ(missing.status, 404);
  EXPECT_EQ(missing.body, "{\"error\": \"nope\"}");
}

BackoffPolicy fastPolicy(int attempts) {
  BackoffPolicy policy;
  policy.initialSeconds = 0.01;
  policy.maxSeconds = 0.02;
  policy.jitter = 0.0;
  policy.maxAttempts = attempts;
  return policy;
}

TEST(HttpClientTest, RetriesServerErrorsUntilRecovery) {
  std::atomic<int> hits{0};
  ServerFixture server([&hits](const HttpRequest&) {
    HttpResponse response;
    if (hits.fetch_add(1) < 2) {
      response.status = 500;
      response.body = "{\"error\": \"warming up\"}";
    } else {
      response.body = "{\"ready\": true}";
    }
    return response;
  });

  Rng rng(1);
  const HttpClientResult result = httpRequestWithRetry(
      server.url(), "GET", "/", "", fastPolicy(5), rng);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(hits.load(), 3);  // two 500s, then success
}

TEST(HttpClientTest, ClientErrorsAreNotRetried) {
  std::atomic<int> hits{0};
  ServerFixture server([&hits](const HttpRequest&) {
    hits.fetch_add(1);
    HttpResponse response;
    response.status = 404;
    response.body = "{\"error\": \"no such sweep\"}";
    return response;
  });

  Rng rng(1);
  const HttpClientResult result = httpRequestWithRetry(
      server.url(), "GET", "/sweeps/nope", "", fastPolicy(5), rng);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 404);
  EXPECT_EQ(hits.load(), 1);  // 4xx surfaces immediately
}

TEST(HttpClientTest, ConnectionRefusedIsATransportError) {
  // Bind an ephemeral port, then shut the server down: the port is known
  // dead, connects are refused fast.
  int deadPort = 0;
  {
    HttpServer server("127.0.0.1", 0);
    deadPort = server.port();
  }
  HttpUrl url;
  url.host = "127.0.0.1";
  url.port = deadPort;

  HttpClientOptions options;
  options.connectTimeoutSeconds = 2.0;
  const HttpClientResult direct = httpRequest(url, "GET", "/", "", options);
  EXPECT_FALSE(direct.ok);
  EXPECT_NE(direct.error.find("connect"), std::string::npos);

  Rng rng(1);
  const HttpClientResult retried = httpRequestWithRetry(
      url, "GET", "/", "", fastPolicy(3), rng, nullptr, options);
  EXPECT_FALSE(retried.ok);
}

TEST(HttpClientTest, StopTokenShortCircuitsRetryLoop) {
  HttpUrl url;
  url.host = "127.0.0.1";
  url.port = 9;  // discard port; never served in the test environment
  StopToken stop;
  stop.requestStop();
  Rng rng(1);
  const HttpClientResult result = httpRequestWithRetry(
      url, "GET", "/", "", fastPolicy(3), rng, &stop);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "stopped");
}

}  // namespace
}  // namespace ides
