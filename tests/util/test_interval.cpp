#include "util/interval.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace ides {
namespace {

TEST(Interval, LengthAndEmptiness) {
  EXPECT_EQ((Interval{0, 10}.length()), 10);
  EXPECT_EQ((Interval{5, 5}.length()), 0);
  EXPECT_TRUE((Interval{5, 5}.empty()));
  EXPECT_TRUE((Interval{7, 3}.empty()));
  EXPECT_FALSE((Interval{3, 7}.empty()));
}

TEST(Interval, ContainsIsHalfOpen) {
  const Interval iv{10, 20};
  EXPECT_FALSE(iv.contains(9));
  EXPECT_TRUE(iv.contains(10));
  EXPECT_TRUE(iv.contains(19));
  EXPECT_FALSE(iv.contains(20));
}

TEST(Interval, OverlapsIsExclusiveAtBoundaries) {
  EXPECT_TRUE((Interval{0, 10}.overlaps({5, 15})));
  EXPECT_FALSE((Interval{0, 10}.overlaps({10, 20})));  // touching: no overlap
  EXPECT_FALSE((Interval{10, 20}.overlaps({0, 10})));
  EXPECT_TRUE((Interval{0, 100}.overlaps({40, 60})));  // containment
}

TEST(Interval, StreamFormat) {
  std::ostringstream os;
  os << Interval{3, 9};
  EXPECT_EQ(os.str(), "[3,9)");
}

TEST(IntervalSet, AddDisjointKeepsAll) {
  IntervalSet set;
  set.add({10, 20});
  set.add({30, 40});
  set.add({0, 5});
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set.intervals()[0], (Interval{0, 5}));
  EXPECT_EQ(set.intervals()[1], (Interval{10, 20}));
  EXPECT_EQ(set.intervals()[2], (Interval{30, 40}));
  EXPECT_EQ(set.totalLength(), 25);
}

TEST(IntervalSet, AddMergesOverlapping) {
  IntervalSet set;
  set.add({10, 20});
  set.add({15, 30});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], (Interval{10, 30}));
}

TEST(IntervalSet, AddCoalescesTouching) {
  IntervalSet set;
  set.add({10, 20});
  set.add({20, 30});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], (Interval{10, 30}));
}

TEST(IntervalSet, AddBridgingMergesManyMembers) {
  IntervalSet set;
  set.add({0, 5});
  set.add({10, 15});
  set.add({20, 25});
  set.add({4, 21});  // bridges all three
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], (Interval{0, 25}));
}

TEST(IntervalSet, AddEmptyIsNoop) {
  IntervalSet set;
  set.add({10, 10});
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, SubtractSplitsMember) {
  IntervalSet set;
  set.add({0, 100});
  set.subtract({40, 60});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{0, 40}));
  EXPECT_EQ(set.intervals()[1], (Interval{60, 100}));
}

TEST(IntervalSet, SubtractRemovesCoveredMembers) {
  IntervalSet set({{0, 10}, {20, 30}, {40, 50}});
  set.subtract({5, 45});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{0, 5}));
  EXPECT_EQ(set.intervals()[1], (Interval{45, 50}));
}

TEST(IntervalSet, SubtractDisjointIsNoop) {
  IntervalSet set({{10, 20}});
  set.subtract({30, 40});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.totalLength(), 10);
}

TEST(IntervalSet, CoversRequiresContainment) {
  IntervalSet set({{0, 10}, {10, 20}});  // coalesces to [0,20)
  EXPECT_TRUE(set.covers({0, 20}));
  EXPECT_TRUE(set.covers({5, 15}));
  EXPECT_FALSE(set.covers({15, 25}));
  EXPECT_TRUE(set.covers({7, 7}));  // empty interval trivially covered
}

TEST(IntervalSet, CoversAcrossGapIsFalse) {
  IntervalSet set({{0, 10}, {15, 25}});
  EXPECT_FALSE(set.covers({5, 20}));
}

TEST(IntervalSet, IntersectsDetectsAnyOverlap) {
  IntervalSet set({{10, 20}, {30, 40}});
  EXPECT_TRUE(set.intersects({15, 35}));
  EXPECT_TRUE(set.intersects({19, 21}));
  EXPECT_FALSE(set.intersects({20, 30}));  // exactly the gap
  EXPECT_FALSE(set.intersects({50, 60}));
  EXPECT_FALSE(set.intersects({5, 5}));
}

TEST(IntervalSet, ComplementWithinFullHorizon) {
  IntervalSet busy({{10, 20}, {30, 40}});
  const IntervalSet free = busy.complementWithin({0, 50});
  ASSERT_EQ(free.size(), 3u);
  EXPECT_EQ(free.intervals()[0], (Interval{0, 10}));
  EXPECT_EQ(free.intervals()[1], (Interval{20, 30}));
  EXPECT_EQ(free.intervals()[2], (Interval{40, 50}));
  EXPECT_EQ(free.totalLength() + busy.totalLength(), 50);
}

TEST(IntervalSet, ComplementOfEmptySetIsHorizon) {
  IntervalSet empty;
  const IntervalSet free = empty.complementWithin({5, 25});
  ASSERT_EQ(free.size(), 1u);
  EXPECT_EQ(free.intervals()[0], (Interval{5, 25}));
}

TEST(IntervalSet, ComplementWhenBusyCoversHorizon) {
  IntervalSet busy({{0, 100}});
  EXPECT_TRUE(busy.complementWithin({10, 90}).empty());
}

TEST(IntervalSet, ComplementClipsMembersOutsideHorizon) {
  IntervalSet busy({{0, 10}, {90, 120}});
  const IntervalSet free = busy.complementWithin({5, 100});
  ASSERT_EQ(free.size(), 1u);
  EXPECT_EQ(free.intervals()[0], (Interval{10, 90}));
}

TEST(IntervalSet, IntersectWithWindow) {
  IntervalSet set({{0, 10}, {20, 30}, {40, 50}});
  const IntervalSet clipped = set.intersectWith({5, 45});
  ASSERT_EQ(clipped.size(), 3u);
  EXPECT_EQ(clipped.intervals()[0], (Interval{5, 10}));
  EXPECT_EQ(clipped.intervals()[1], (Interval{20, 30}));
  EXPECT_EQ(clipped.intervals()[2], (Interval{40, 45}));
}

TEST(IntervalSet, LengthWithinMatchesIntersection) {
  IntervalSet set({{0, 10}, {20, 30}, {40, 50}});
  for (Time a = 0; a <= 50; a += 7) {
    for (Time b = a; b <= 55; b += 5) {
      EXPECT_EQ(set.lengthWithin({a, b}),
                set.intersectWith({a, b}).totalLength())
          << "window [" << a << "," << b << ")";
    }
  }
}

TEST(IntervalSet, LargestMember) {
  EXPECT_EQ(IntervalSet{}.largest(), 0);
  IntervalSet set({{0, 3}, {10, 25}, {30, 32}});
  EXPECT_EQ(set.largest(), 15);
}

TEST(IntervalSet, ConstructorNormalizesInput) {
  IntervalSet set({{20, 30}, {0, 10}, {8, 22}});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], (Interval{0, 30}));
}

// Property: for random busy sets, complement-of-complement is the original,
// and busy/free partition the horizon exactly.
class IntervalSetProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntervalSetProperty, ComplementRoundTripsAndPartitions) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  IntervalSet busy;
  const Time horizon = 1000;
  for (int i = 0; i < 40; ++i) {
    const Time a = static_cast<Time>(rng() % 1000);
    const Time b = a + 1 + static_cast<Time>(rng() % 60);
    busy.add({a, std::min(b, horizon)});
  }
  const IntervalSet free = busy.complementWithin({0, horizon});
  const IntervalSet busyAgain = free.complementWithin({0, horizon});
  const IntervalSet busyClipped = busy.intersectWith({0, horizon});
  EXPECT_EQ(busyAgain, busyClipped);
  EXPECT_EQ(busyClipped.totalLength() + free.totalLength(), horizon);
  for (const Interval& f : free.intervals()) {
    EXPECT_FALSE(busy.intersects(f));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace ides
