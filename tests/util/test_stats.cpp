#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ides {
namespace {

TEST(StatAccumulator, EmptyIsAllZero) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 0.0);
  EXPECT_DOUBLE_EQ(acc.max(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(StatAccumulator, SingleSample) {
  StatAccumulator acc;
  acc.add(42.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 42.0);
  EXPECT_DOUBLE_EQ(acc.min(), 42.0);
  EXPECT_DOUBLE_EQ(acc.max(), 42.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(StatAccumulator, KnownMoments) {
  StatAccumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(StatAccumulator, NegativeValues) {
  StatAccumulator acc;
  acc.add(-3.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), -3.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

}  // namespace
}  // namespace ides
