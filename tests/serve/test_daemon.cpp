// Daemon process discipline without a process: the endpoint router is
// pure over (JobManager, HttpRequest), option/config parsing is pure over
// strings, and the pidfile contract is a couple of filesystem calls — all
// of it unit-tested with no sockets and no signals.
#include "serve/daemon.h"

#include <gtest/gtest.h>

#include "obs/telemetry.h"
#include "util/json_reader.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace ides {
namespace {

using namespace std::chrono_literals;

HttpRequest makeRequest(std::string method, std::string target,
                        std::string body = {}) {
  HttpRequest request;
  request.method = std::move(method);
  request.target = std::move(target);
  const std::size_t qmark = request.target.find('?');
  request.path = request.target.substr(0, qmark);
  if (qmark != std::string::npos) {
    request.query = request.target.substr(qmark + 1);
  }
  request.body = std::move(body);
  return request;
}

bool waitFor(const std::function<bool()>& done, double seconds = 30.0) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return done();
}

/// Fast design job body (AH on a tiny generated instance).
const char* kFastJob =
    "{\"type\": \"design\", \"nodes\": 4, \"existing\": 30, "
    "\"current\": 12, \"strategy\": \"AH\"}";

TEST(RouteRequest, HealthzReportsCounters) {
  JobManager jobs(JobManagerOptions{});
  const HttpResponse response =
      routeRequest(jobs, makeRequest("GET", "/healthz"));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(response.body.find("\"queued\": 0"), std::string::npos);

  EXPECT_EQ(routeRequest(jobs, makeRequest("POST", "/healthz")).status, 405);
}

TEST(RouteRequest, SubmitPollFetchLifecycle) {
  JobManager jobs(JobManagerOptions{});

  const HttpResponse accepted =
      routeRequest(jobs, makeRequest("POST", "/jobs", kFastJob));
  EXPECT_EQ(accepted.status, 202);
  EXPECT_NE(accepted.body.find("\"id\": \"job-1\""), std::string::npos);
  EXPECT_NE(accepted.body.find("\"status_url\": \"/jobs/job-1\""),
            std::string::npos);

  ASSERT_TRUE(
      waitFor([&] { return jobs.state("job-1") == JobState::Done; }));

  const HttpResponse status =
      routeRequest(jobs, makeRequest("GET", "/jobs/job-1"));
  EXPECT_EQ(status.status, 200);
  EXPECT_NE(status.body.find("\"state\": \"done\""), std::string::npos);

  const HttpResponse result =
      routeRequest(jobs, makeRequest("GET", "/jobs/job-1/result"));
  EXPECT_EQ(result.status, 200);
  EXPECT_NE(result.body.find("\"strategy\": \"AH\""), std::string::npos);

  const HttpResponse list = routeRequest(jobs, makeRequest("GET", "/jobs"));
  EXPECT_EQ(list.status, 200);
  EXPECT_NE(list.body.find("\"id\": \"job-1\""), std::string::npos);
}

TEST(RouteRequest, JobListPaginatesAndValidatesQueryParameters) {
  JobManager jobs(JobManagerOptions{});
  ASSERT_EQ(routeRequest(jobs, makeRequest("POST", "/jobs", kFastJob))
                .status,
            202);
  ASSERT_EQ(routeRequest(jobs, makeRequest("POST", "/jobs", kFastJob))
                .status,
            202);
  ASSERT_TRUE(waitFor([&] { return jobs.finishedCount() == 2u; }));

  const HttpResponse page =
      routeRequest(jobs, makeRequest("GET", "/jobs?limit=1"));
  EXPECT_EQ(page.status, 200);
  EXPECT_NE(page.body.find("\"id\": \"job-1\""), std::string::npos);
  EXPECT_EQ(page.body.find("\"id\": \"job-2\""), std::string::npos);
  EXPECT_NE(page.body.find("\"next_after\": \"job-1\""),
            std::string::npos);

  const HttpResponse rest =
      routeRequest(jobs, makeRequest("GET", "/jobs?limit=1&after=job-1"));
  EXPECT_EQ(rest.status, 200);
  EXPECT_NE(rest.body.find("\"id\": \"job-2\""), std::string::npos);
  EXPECT_EQ(rest.body.find("\"id\": \"job-1\""), std::string::npos);
  EXPECT_EQ(rest.body.find("\"next_after\""), std::string::npos);

  // Strict query validation, same policy as the JSON bodies.
  EXPECT_EQ(routeRequest(jobs, makeRequest("GET", "/jobs?limit=x")).status,
            400);
  EXPECT_EQ(routeRequest(jobs, makeRequest("GET", "/jobs?after=7")).status,
            400);
  EXPECT_EQ(routeRequest(jobs, makeRequest("GET", "/jobs?frob=1")).status,
            400);
}

TEST(RouteRequest, BadSpecAnswers400WithReason) {
  JobManager jobs(JobManagerOptions{});
  const HttpResponse response = routeRequest(
      jobs, makeRequest("POST", "/jobs", "{\"type\": \"mystery\"}"));
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("unknown job type"), std::string::npos);
  EXPECT_EQ(jobs.finishedCount() + jobs.queuedCount(), 0u);
}

TEST(RouteRequest, ResultBeforeDoneAnswers409) {
  JobManagerOptions options;
  options.workers = 1;
  JobManager jobs(options);
  // Long SA job so the result query happens while queued/running.
  const HttpResponse accepted = routeRequest(
      jobs, makeRequest("POST", "/jobs",
                        "{\"type\": \"design\", \"nodes\": 4, "
                        "\"existing\": 60, \"current\": 24, \"strategy\": "
                        "\"SA\", \"sa_iters\": 50000000}"));
  ASSERT_EQ(accepted.status, 202);

  const HttpResponse early =
      routeRequest(jobs, makeRequest("GET", "/jobs/job-1/result"));
  EXPECT_EQ(early.status, 409);

  const HttpResponse cancelled =
      routeRequest(jobs, makeRequest("DELETE", "/jobs/job-1"));
  EXPECT_EQ(cancelled.status, 200);
  EXPECT_NE(cancelled.body.find("\"cancelled\": true"), std::string::npos);
  ASSERT_TRUE(waitFor(
      [&] { return jobs.state("job-1") == JobState::Cancelled; }));

  // Terminal cancel: a second DELETE conflicts.
  EXPECT_EQ(routeRequest(jobs, makeRequest("DELETE", "/jobs/job-1")).status,
            409);
}

TEST(RouteRequest, UnknownTargetsAnswer404) {
  JobManager jobs(JobManagerOptions{});
  EXPECT_EQ(routeRequest(jobs, makeRequest("GET", "/")).status, 404);
  EXPECT_EQ(routeRequest(jobs, makeRequest("GET", "/jobs/job-9")).status,
            404);
  EXPECT_EQ(
      routeRequest(jobs, makeRequest("GET", "/jobs/job-9/result")).status,
      404);
  EXPECT_EQ(
      routeRequest(jobs, makeRequest("GET", "/jobs/job-1/resultx")).status,
      404);
  EXPECT_EQ(routeRequest(jobs, makeRequest("PUT", "/jobs")).status, 405);
}

TEST(RouteRequest, FullQueueAnswers503) {
  JobManagerOptions options;
  options.workers = 1;
  options.maxQueued = 1;
  JobManager jobs(options);
  const char* longJob =
      "{\"type\": \"design\", \"nodes\": 4, \"existing\": 60, "
      "\"current\": 24, \"strategy\": \"SA\", \"sa_iters\": 50000000}";
  ASSERT_EQ(routeRequest(jobs, makeRequest("POST", "/jobs", longJob)).status,
            202);
  ASSERT_TRUE(waitFor(
      [&] { return jobs.state("job-1") == JobState::Running; }));
  ASSERT_EQ(routeRequest(jobs, makeRequest("POST", "/jobs", longJob)).status,
            202);

  const HttpResponse rejected =
      routeRequest(jobs, makeRequest("POST", "/jobs", longJob));
  EXPECT_EQ(rejected.status, 503);
  EXPECT_NE(rejected.body.find("full"), std::string::npos);
  jobs.drain();
}

TEST(RouteRequest, HealthzReportsUptimeAndStoreHealth) {
  JobManager jobs(JobManagerOptions{});
  const std::string storeDir = ::testing::TempDir() + "ides_healthz_store";
  std::filesystem::create_directories(storeDir);

  ServeRuntime healthy{jobs, nullptr, storeDir};
  const HttpResponse ok =
      routeRequest(healthy, makeRequest("GET", "/healthz"));
  EXPECT_EQ(ok.status, 200);
  EXPECT_NE(ok.body.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(ok.body.find("\"uptime_seconds\": "), std::string::npos);
  EXPECT_NE(ok.body.find("\"store\": \"ok\""), std::string::npos);

  // No store configured: reported, but not sick.
  ServeRuntime storeless{jobs, nullptr, std::string()};
  const HttpResponse none =
      routeRequest(storeless, makeRequest("GET", "/healthz"));
  EXPECT_EQ(none.status, 200);
  EXPECT_NE(none.body.find("\"store\": \"none\""), std::string::npos);

  // An unreachable store dir (lost mount, full disk) answers 503 so a
  // load balancer drains the instance.
  ServeRuntime sick{jobs, nullptr, "/nonexistent/ides/store"};
  const HttpResponse drained =
      routeRequest(sick, makeRequest("GET", "/healthz"));
  EXPECT_EQ(drained.status, 503);
  EXPECT_NE(drained.body.find("\"status\": \"sick\""), std::string::npos);
  EXPECT_NE(drained.body.find("\"store\": \"unreachable\""),
            std::string::npos);
}

TEST(RouteRequest, SweepsWithoutStoreAnswer503) {
  JobManager jobs(JobManagerOptions{});
  // The back-compat entry point (no runtime): no coordinator wired in.
  const HttpResponse response =
      routeRequest(jobs, makeRequest("GET", "/sweeps"));
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("--store-dir"), std::string::npos);
}

TEST(RouteRequest, SweepLifecycleOverHttpRoutes) {
  JobManager jobs(JobManagerOptions{});
  const std::string storeDir =
      ::testing::TempDir() + "ides_daemon_sweeps_store";
  std::filesystem::remove_all(storeDir);
  SweepCoordinator coordinator(storeDir);
  ServeRuntime runtime{jobs, &coordinator, storeDir};

  // Empty listing before anything is registered.
  const HttpResponse empty =
      routeRequest(runtime, makeRequest("GET", "/sweeps"));
  EXPECT_EQ(empty.status, 200);
  EXPECT_NE(empty.body.find("\"sweeps\": []"), std::string::npos);

  // Register (default scale comes from the body being allowed to omit it).
  const HttpResponse created = routeRequest(
      runtime, makeRequest("POST", "/sweeps/nightly",
                           "{\"sweep\": \"quality\", \"scale\": \"smoke\"}"));
  EXPECT_EQ(created.status, 200) << created.body;
  EXPECT_NE(created.body.find("\"key\": \"nightly\""), std::string::npos);
  EXPECT_NE(created.body.find("\"done\": false"), std::string::npos);

  const HttpResponse listed =
      routeRequest(runtime, makeRequest("GET", "/sweeps"));
  EXPECT_NE(listed.body.find("\"key\": \"nightly\""), std::string::npos);

  // The manifest endpoint serves the canonical document.
  const HttpResponse manifest = routeRequest(
      runtime, makeRequest("GET", "/sweeps/nightly/manifest"));
  EXPECT_EQ(manifest.status, 200);
  EXPECT_NE(manifest.body.find("\"sweep\": \"quality\""),
            std::string::npos);

  // Claim, renew, release round trip.
  const HttpResponse claimed = routeRequest(
      runtime, makeRequest("POST", "/sweeps/nightly/claim",
                           "{\"worker\": \"w1\", \"lease_seconds\": 60}"));
  EXPECT_EQ(claimed.status, 200);
  ASSERT_NE(claimed.body.find("\"claimed\""), std::string::npos);
  const JsonValue claim = parseJson(claimed.body);
  const std::string fingerprint =
      claim.at("claimed").stringAt("fingerprint");

  const HttpResponse renewed = routeRequest(
      runtime, makeRequest("POST", "/sweeps/nightly/renew",
                           "{\"worker\": \"w1\", \"fingerprint\": " +
                               jsonQuote(fingerprint) + "}"));
  EXPECT_NE(renewed.body.find("\"renewed\": true"), std::string::npos);
  const HttpResponse stolen = routeRequest(
      runtime, makeRequest("POST", "/sweeps/nightly/renew",
                           "{\"worker\": \"w2\", \"fingerprint\": " +
                               jsonQuote(fingerprint) + "}"));
  EXPECT_NE(stolen.body.find("\"renewed\": false"), std::string::npos);
  const HttpResponse released = routeRequest(
      runtime, makeRequest("POST", "/sweeps/nightly/release",
                           "{\"worker\": \"w1\", \"fingerprint\": " +
                               jsonQuote(fingerprint) + "}"));
  EXPECT_NE(released.body.find("\"released\": true"), std::string::npos);

  // Error surface: the matrix clients actually hit.
  EXPECT_EQ(routeRequest(runtime, makeRequest("GET", "/sweeps/nope"))
                .status,
            404);
  EXPECT_EQ(routeRequest(runtime, makeRequest("GET", "/sweeps/bad!key"))
                .status,
            400);
  EXPECT_EQ(routeRequest(runtime, makeRequest("PUT", "/sweeps/nightly"))
                .status,
            405);
  EXPECT_EQ(routeRequest(runtime,
                         makeRequest("POST", "/sweeps/nightly/claim",
                                     "{\"worker\": \"w\", "
                                     "\"lease_seconds\": 0}"))
                .status,
            400);
  EXPECT_EQ(routeRequest(runtime, makeRequest("POST", "/sweeps/nightly/claim",
                                              "not json"))
                .status,
            400);
  // Conflicting re-registration of a live key.
  EXPECT_EQ(routeRequest(runtime,
                         makeRequest("POST", "/sweeps/nightly",
                                     "{\"sweep\": \"quality\", "
                                     "\"scale\": \"full\"}"))
                .status,
            400);
  // A garbage record is refused at the completion boundary.
  EXPECT_EQ(routeRequest(runtime,
                         makeRequest("POST", "/sweeps/nightly/complete",
                                     "{\"worker\": \"w1\", "
                                     "\"fingerprint\": " +
                                         jsonQuote(fingerprint) +
                                         ", \"record\": \"junk\"}"))
                .status,
            400);
  // No result until every record is in.
  EXPECT_EQ(
      routeRequest(runtime, makeRequest("GET", "/sweeps/nightly/result"))
          .status,
      409);
}

TEST(ServeConfig, ParsesKeysCommentsAndBlanks) {
  ServeOptions options;
  std::string error;
  const bool ok = parseServeConfig(
      "# ides_serve config\n"
      "port 9090\n"
      "workers = 3\n"
      "store-dir /tmp/store  # inline comment\n"
      "retain-finished 64\n"
      "\n"
      "bind 0.0.0.0\n",
      options, error);
  ASSERT_TRUE(ok) << error;
  EXPECT_EQ(options.port, 9090);
  EXPECT_EQ(options.workers, 3);
  EXPECT_EQ(options.storeDir, "/tmp/store");
  EXPECT_EQ(options.retainFinished, 64);
  EXPECT_EQ(options.bindAddress, "0.0.0.0");
}

TEST(ServeConfig, RejectsUnknownKeysAndBadValues) {
  ServeOptions options;
  std::string error;
  EXPECT_FALSE(parseServeConfig("volume 11\n", options, error));
  EXPECT_NE(error.find("unknown option"), std::string::npos);
  EXPECT_FALSE(parseServeConfig("port zero\n", options, error));
  EXPECT_NE(error.find("bad value"), std::string::npos);
  EXPECT_FALSE(parseServeConfig("port 70000\n", options, error));
  EXPECT_NE(error.find("out of range"), std::string::npos);
  EXPECT_FALSE(parseServeConfig("workers 0\n", options, error));
  EXPECT_FALSE(parseServeConfig("retain-finished -1\n", options, error));
  EXPECT_NE(error.find("retain-finished must be >= 0"), std::string::npos);
  EXPECT_FALSE(parseServeConfig("orphan\n", options, error));
  EXPECT_NE(error.find("expected"), std::string::npos);
}

TEST(ServeOptionsTest, FlagsOverrideConfigFile) {
  const std::string configPath =
      ::testing::TempDir() + "ides_serve_config_test.conf";
  {
    std::ofstream out(configPath);
    out << "port 9090\nworkers 5\n";
  }

  std::vector<std::string> argStorage = {"ides_serve", "--config",
                                         configPath, "--port", "18080"};
  std::vector<char*> argv;
  argv.reserve(argStorage.size());
  for (std::string& arg : argStorage) argv.push_back(arg.data());

  ServeOptions options;
  std::string error;
  bool help = false;
  ASSERT_TRUE(parseServeOptions(static_cast<int>(argv.size()), argv.data(),
                                options, error, help))
      << error;
  EXPECT_FALSE(help);
  EXPECT_EQ(options.port, 18080);  // flag wins over the config's 9090
  EXPECT_EQ(options.workers, 5);   // config survives where no flag is set
  std::filesystem::remove(configPath);
}

TEST(ServeOptionsTest, HelpUnknownFlagAndMissingConfig) {
  ServeOptions options;
  std::string error;
  bool help = false;

  std::vector<std::string> helpArgs = {"ides_serve", "--help"};
  std::vector<char*> helpArgv;
  for (std::string& arg : helpArgs) helpArgv.push_back(arg.data());
  ASSERT_TRUE(parseServeOptions(2, helpArgv.data(), options, error, help));
  EXPECT_TRUE(help);

  std::vector<std::string> badArgs = {"ides_serve", "--volume", "11"};
  std::vector<char*> badArgv;
  for (std::string& arg : badArgs) badArgv.push_back(arg.data());
  EXPECT_FALSE(parseServeOptions(3, badArgv.data(), options, error, help));
  EXPECT_NE(error.find("unknown option"), std::string::npos);

  std::vector<std::string> cfgArgs = {"ides_serve", "--config",
                                      "/nonexistent/serve.conf"};
  std::vector<char*> cfgArgv;
  for (std::string& arg : cfgArgs) cfgArgv.push_back(arg.data());
  EXPECT_FALSE(parseServeOptions(3, cfgArgv.data(), options, error, help));
  EXPECT_NE(error.find("cannot open config file"), std::string::npos);

  EXPECT_NE(std::string(serveUsage()).find("--store-dir"),
            std::string::npos);
}

TEST(PidFileTest, WritesRefusesAndRemoves) {
  const std::string path = ::testing::TempDir() + "ides_serve_test.pid";
  std::filesystem::remove(path);

  std::string error;
  ASSERT_TRUE(writePidFile(path, error)) << error;
  {
    std::ifstream in(path);
    long pid = 0;
    in >> pid;
    EXPECT_GT(pid, 0);
  }

  // A second instance must refuse to clobber the live pidfile.
  EXPECT_FALSE(writePidFile(path, error));
  EXPECT_NE(error.find("already exists"), std::string::npos);

  removePidFile(path);
  EXPECT_FALSE(std::filesystem::exists(path));
  removePidFile(path);  // idempotent on a missing file
}

TEST(RequestLogTest, RendersKeyValueFields) {
  RequestLogEntry entry;
  entry.peer = "127.0.0.1:52114";
  entry.method = "POST";
  entry.target = "/jobs";
  entry.status = 202;
  entry.bytesIn = 96;
  entry.bytesOut = 54;
  entry.milliseconds = 1.5;
  EXPECT_EQ(requestLogLine(entry),
            "peer=127.0.0.1:52114 method=POST target=/jobs status=202 "
            "in=96 out=54 ms=1.5");
}

TEST(RouteRequest, HealthzReportsProbeLatencyAndLeavesNoDebris) {
  JobManager jobs(JobManagerOptions{});
  const std::string storeDir = ::testing::TempDir() + "ides_healthz_probe";
  std::filesystem::create_directories(storeDir);
  const std::filesystem::path probe =
      std::filesystem::path(storeDir) / ".healthz.probe";

  ServeRuntime healthy{jobs, nullptr, storeDir};
  const HttpResponse ok =
      routeRequest(healthy, makeRequest("GET", "/healthz"));
  EXPECT_EQ(ok.status, 200);
  EXPECT_NE(ok.body.find("\"store_probe_ms\": "), std::string::npos);
  // The round-trip must clean its probe file up behind itself.
  EXPECT_FALSE(std::filesystem::exists(probe));

  // Sabotage the round-trip: a directory squatting on the probe path makes
  // the write fail. The probe must answer "unreachable" AND still remove
  // the debris (the empty directory) on the failure path.
  std::filesystem::create_directory(probe);
  const HttpResponse sick =
      routeRequest(healthy, makeRequest("GET", "/healthz"));
  EXPECT_EQ(sick.status, 503);
  EXPECT_NE(sick.body.find("\"store\": \"unreachable\""),
            std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(probe));
}

TEST(RouteRequest, MetricsServesPrometheusExposition) {
  const bool wasEnabled = telemetryEnabled();
  setTelemetryEnabled(true);
  JobManager jobs(JobManagerOptions{});

  // Run one fast design job through the router so the core and serve
  // instrumentation has something to show.
  ASSERT_EQ(routeRequest(jobs, makeRequest("POST", "/jobs", kFastJob))
                .status,
            202);
  ASSERT_TRUE(waitFor([&] {
    return routeRequest(jobs, makeRequest("GET", "/jobs/job-1"))
               .body.find("\"state\": \"done\"") != std::string::npos;
  }));

  // Feed a request-log entry the way the binary's log sink does.
  RequestLogEntry entry;
  entry.method = "POST";
  entry.target = "/jobs";
  entry.status = 202;
  entry.milliseconds = 0.4;
  recordRequestTelemetry(entry);

  const HttpResponse metrics =
      routeRequest(jobs, makeRequest("GET", "/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.contentType, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_EQ(routeRequest(jobs, makeRequest("POST", "/metrics")).status, 405);

  const std::string& text = metrics.body;
  for (const char* name :
       {"ides_opt_runs_total", "ides_opt_evaluations_total",
        "ides_eval_evaluations_total", "ides_eval_rewind_depth_total",
        "ides_serve_requests_total", "ides_serve_request_seconds",
        "ides_serve_jobs_total", "ides_serve_queue_depth",
        "ides_serve_job_seconds"}) {
    EXPECT_NE(text.find(std::string("# TYPE ") + name), std::string::npos)
        << "missing metric family " << name;
  }
  EXPECT_NE(text.find("ides_serve_requests_total{endpoint=\"/jobs\","
                      "method=\"POST\",status=\"202\"}"),
            std::string::npos);
  // The queue drained: the depth gauge must read 0.
  EXPECT_NE(text.find("ides_serve_queue_depth 0"), std::string::npos);
  setTelemetryEnabled(wasEnabled);
}

}  // namespace
}  // namespace ides
